//! B3: index-node routing latency vs fanout, and whole-tree warm descents.
//!
//! `IndexNode::find_child` routes every level of every descent. This bench
//! measures the partitioned (binary-search) routing against the linear
//! reference scan (`find_child_linear` — exactly what every descent paid
//! before this optimisation) on synthetic index nodes of fanout 16, 64, and
//! 256, at both `ts == Timestamp::MAX` (the insert / current-lookup /
//! commit descent) and a past timestamp (as-of descents through the
//! historical region). A whole-tree warm `get_current` bench shows the
//! end-to-end effect with the node cache already hot.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tsb_bench::experiments::descent_fanout::{synthetic_node, STRIDE};
use tsb_common::{Key, Timestamp};

fn bench_descent_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("B3_descent_fanout");
    for fanout in [16u64, 64, 256] {
        let node = synthetic_node(fanout);
        let keyspace = fanout * STRIDE;
        let probes: Vec<Key> = (0..keyspace).step_by(7).map(Key::from_u64).collect();

        group.bench_function(format!("fanout_{fanout}_current_binary"), |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % probes.len();
                black_box(node.find_child(&probes[i], Timestamp::MAX))
            })
        });
        group.bench_function(format!("fanout_{fanout}_current_linear"), |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % probes.len();
                black_box(node.find_child_linear(&probes[i], Timestamp::MAX))
            })
        });
        group.bench_function(format!("fanout_{fanout}_past_binary"), |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % probes.len();
                black_box(node.find_child(&probes[i], Timestamp(50)))
            })
        });
        group.bench_function(format!("fanout_{fanout}_past_linear"), |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % probes.len();
                black_box(node.find_child_linear(&probes[i], Timestamp(50)))
            })
        });
    }
    group.finish();
}

/// Whole-tree warm current lookups: every node on the path is a cache hit,
/// so routing and leaf binary search are all that remains.
fn bench_warm_tree_descent(c: &mut Criterion) {
    let keys = 2_000u64;
    let cfg = tsb_common::TsbConfig::small_pages().with_node_cache_entries(16_384);
    let mut tree = tsb_core::TsbOptions::in_memory()
        .config(cfg)
        .open_tree()
        .unwrap();
    for round in 0..3 {
        for k in 0..keys {
            tree.insert(k, format!("v{round}").into_bytes()).unwrap();
        }
    }
    for k in 0..keys {
        tree.get_current(&Key::from_u64(k)).unwrap();
    }

    let mut group = c.benchmark_group("B3_warm_tree_descent");
    group.bench_function("get_current_warm", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % keys;
            black_box(tree.get_current(&Key::from_u64(i)).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_descent_fanout, bench_warm_tree_descent);
criterion_main!(benches);
