//! B1: insertion throughput of the TSB-tree under the main splitting
//! policies, for insert-only and update-heavy streams (the two ends of the
//! §5 update:insert axis).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tsb_common::{SplitPolicyKind, SplitTimeChoice};
use tsb_core::TsbTree;
use tsb_workload::{generate_ops, Op, WorkloadSpec};

use tsb_bench::measure::experiment_config;

fn apply(tree: &mut TsbTree, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Put { key, value } => {
                tree.insert(key.clone(), value.clone()).expect("insert");
            }
            Op::Delete { key } => {
                tree.delete(key.clone()).expect("delete");
            }
        }
    }
}

fn bench_inserts(c: &mut Criterion) {
    let ops_count = 4_000usize;
    let workloads = [
        (
            "insert-only",
            generate_ops(
                &WorkloadSpec::default()
                    .with_ops(ops_count)
                    .with_keys(ops_count as u64)
                    .with_update_ratio(0.0)
                    .with_value_size(100),
            ),
        ),
        (
            "update-heavy-9to1",
            generate_ops(
                &WorkloadSpec::default()
                    .with_ops(ops_count)
                    .with_keys(500)
                    .with_update_ratio(9.0)
                    .with_value_size(100),
            ),
        ),
    ];
    let policies = [
        ("threshold", SplitPolicyKind::default()),
        ("time-preferring", SplitPolicyKind::TimePreferring),
        ("key-only", SplitPolicyKind::KeyOnly),
        ("wobt-like", SplitPolicyKind::WobtLike),
    ];

    let mut group = c.benchmark_group("B1_insert_throughput");
    group.sample_size(10);
    for (wl_name, ops) in &workloads {
        group.throughput(Throughput::Elements(ops.len() as u64));
        for (policy_name, policy) in &policies {
            group.bench_with_input(BenchmarkId::new(*wl_name, policy_name), ops, |b, ops| {
                b.iter(|| {
                    let mut tree = tsb_core::TsbOptions::in_memory()
                        .config(experiment_config(*policy, SplitTimeChoice::LastUpdate))
                        .open_tree()
                        .unwrap();
                    apply(&mut tree, ops);
                    tree
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_inserts);
criterion_main!(benches);
