//! B3: the cost of the split machinery itself — how long the same
//! update-heavy stream takes under each splitting policy and each
//! split-time choice (§3.2/§3.3 ablation), and how expensive transaction
//! commit stamping is relative to auto-commit writes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tsb_common::{SplitPolicyKind, SplitTimeChoice};
use tsb_workload::{generate_ops, Op, WorkloadSpec};

use tsb_bench::measure::experiment_config;

fn update_heavy_ops(n: usize) -> Vec<Op> {
    generate_ops(
        &WorkloadSpec::default()
            .with_ops(n)
            .with_keys(300)
            .with_update_ratio(6.0)
            .with_value_size(100),
    )
}

fn bench_split_policies(c: &mut Criterion) {
    let ops = update_heavy_ops(3_000);
    let mut group = c.benchmark_group("B3_split_policy_ablation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ops.len() as u64));

    let variants: Vec<(String, SplitPolicyKind, SplitTimeChoice)> = vec![
        (
            "threshold/last-update".into(),
            SplitPolicyKind::default(),
            SplitTimeChoice::LastUpdate,
        ),
        (
            "threshold/current-time".into(),
            SplitPolicyKind::default(),
            SplitTimeChoice::CurrentTime,
        ),
        (
            "threshold/median".into(),
            SplitPolicyKind::default(),
            SplitTimeChoice::MedianVersion,
        ),
        (
            "time-preferring".into(),
            SplitPolicyKind::TimePreferring,
            SplitTimeChoice::LastUpdate,
        ),
        (
            "key-preferring".into(),
            SplitPolicyKind::KeyPreferring,
            SplitTimeChoice::LastUpdate,
        ),
        (
            "cost-based".into(),
            SplitPolicyKind::CostBased,
            SplitTimeChoice::LastUpdate,
        ),
        (
            "wobt-like".into(),
            SplitPolicyKind::WobtLike,
            SplitTimeChoice::CurrentTime,
        ),
    ];
    for (name, policy, choice) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(&name), &ops, |b, ops| {
            b.iter(|| {
                let mut tree = tsb_core::TsbOptions::in_memory()
                    .config(experiment_config(policy, choice))
                    .open_tree()
                    .unwrap();
                for op in ops {
                    match op {
                        Op::Put { key, value } => {
                            tree.insert(key.clone(), value.clone()).unwrap();
                        }
                        Op::Delete { key } => {
                            tree.delete(key.clone()).unwrap();
                        }
                    }
                }
                tree
            })
        });
    }
    group.finish();
}

fn bench_transactions(c: &mut Criterion) {
    let mut group = c.benchmark_group("B3_transactions");
    group.sample_size(10);
    let batch = 2_000u64;
    group.throughput(Throughput::Elements(batch));

    group.bench_function("autocommit_writes", |b| {
        b.iter(|| {
            let mut tree = tsb_core::TsbOptions::in_memory()
                .config(experiment_config(
                    SplitPolicyKind::default(),
                    SplitTimeChoice::LastUpdate,
                ))
                .open_tree()
                .unwrap();
            for i in 0..batch {
                tree.insert(i % 200, vec![b'x'; 100]).unwrap();
            }
            tree
        })
    });
    group.bench_function("txn_writes_commit_every_10", |b| {
        b.iter(|| {
            let mut tree = tsb_core::TsbOptions::in_memory()
                .config(experiment_config(
                    SplitPolicyKind::default(),
                    SplitTimeChoice::LastUpdate,
                ))
                .open_tree()
                .unwrap();
            let mut i = 0u64;
            while i < batch {
                let txn = tree.begin_txn();
                for j in 0..10 {
                    tree.txn_insert(txn, (i + j) % 200, vec![b'x'; 100])
                        .unwrap();
                }
                tree.commit_txn(txn).unwrap();
                i += 10;
            }
            tree
        })
    });
    group.finish();
}

criterion_group!(benches, bench_split_policies, bench_transactions);
criterion_main!(benches);
