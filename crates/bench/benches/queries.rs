//! B2: query latency on a prebuilt multiversion database — current lookups,
//! as-of lookups, snapshot range scans, and version-history scans (the
//! paper's §2.5/§3.7 query classes).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tsb_common::{Key, KeyRange, SplitPolicyKind, SplitTimeChoice, Timestamp};
use tsb_core::TsbTree;
use tsb_workload::{generate_ops, Op, WorkloadSpec};

use tsb_bench::measure::experiment_config;

fn build_db(ops_count: usize, keys: u64) -> (TsbTree, Vec<Timestamp>) {
    let spec = WorkloadSpec::default()
        .with_ops(ops_count)
        .with_keys(keys)
        .with_update_ratio(4.0)
        .with_value_size(100);
    let mut tree = tsb_core::TsbOptions::in_memory()
        .config(experiment_config(
            SplitPolicyKind::default(),
            SplitTimeChoice::LastUpdate,
        ))
        .open_tree()
        .unwrap();
    let mut stamps = Vec::new();
    for op in generate_ops(&spec) {
        match op {
            Op::Put { key, value } => stamps.push(tree.insert(key, value).unwrap()),
            Op::Delete { key } => stamps.push(tree.delete(key).unwrap()),
        }
    }
    (tree, stamps)
}

fn bench_queries(c: &mut Criterion) {
    let (tree, stamps) = build_db(8_000, 800);
    let mid_ts = stamps[stamps.len() / 2];
    let mut group = c.benchmark_group("B2_query_latency");
    group.sample_size(30);

    group.bench_function("current_get", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 800;
            tree.get_current(&Key::from_u64(i)).unwrap()
        })
    });
    group.bench_function("as_of_get_mid_history", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 800;
            tree.get_as_of(&Key::from_u64(i), mid_ts).unwrap()
        })
    });
    group.bench_function("range_scan_64_keys_current", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 13) % 700;
            let range = KeyRange::bounded(Key::from_u64(i), Key::from_u64(i + 64));
            tree.scan_current(&range).unwrap()
        })
    });
    group.bench_function("range_scan_64_keys_as_of", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 13) % 700;
            let range = KeyRange::bounded(Key::from_u64(i), Key::from_u64(i + 64));
            tree.scan_as_of(&range, mid_ts).unwrap()
        })
    });
    group.bench_function("version_history", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 800;
            tree.versions(&Key::from_u64(i)).unwrap()
        })
    });
    group.bench_function("full_snapshot_mid_history", |b| {
        b.iter(|| tree.snapshot_at(mid_ts).unwrap())
    });
    group.finish();
}

/// Descent cost with and without the decoded-node cache: the warm path is a
/// hash lookup per node, the cold path re-reads and re-decodes every page
/// image on the root-to-leaf walk (the engine's behaviour before the cache
/// existed).
fn bench_descent_cache(c: &mut Criterion) {
    let (tree, _) = build_db(8_000, 800);
    let mut group = c.benchmark_group("B2_descent_node_cache");
    group.sample_size(30);

    group.bench_function("warm_cache_descent", |b| {
        let mut i = 0u64;
        // Pre-warm every current path once.
        for k in 0..800 {
            tree.get_current(&Key::from_u64(k)).unwrap();
        }
        b.iter(|| {
            i = (i + 7) % 800;
            tree.get_current(&Key::from_u64(i)).unwrap()
        })
    });
    group.bench_function("decode_per_access_descent", |b| {
        let mut i = 0u64;
        // The engine's behaviour before the node cache existed: buffer pool
        // warm, but every node access pays a decode. Teardown is untimed.
        b.iter_batched(
            || tree.drop_node_cache().unwrap(),
            |()| {
                i = (i + 7) % 800;
                tree.get_current(&Key::from_u64(i)).unwrap()
            },
            BatchSize::PerIteration,
        )
    });
    group.bench_function("fully_cold_descent", |b| {
        let mut i = 0u64;
        // Page cache and node cache both empty: device re-reads + decodes.
        b.iter_batched(
            || tree.drop_caches().unwrap(),
            |()| {
                i = (i + 7) % 800;
                tree.get_current(&Key::from_u64(i)).unwrap()
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();

    // The headline number for the cache: hit rate and decodes over a warm
    // query sweep.
    let stats = tree.io_stats();
    tree.drop_caches().unwrap();
    for k in 0..800 {
        tree.get_current(&Key::from_u64(k)).unwrap();
    }
    let before = stats.snapshot();
    for k in 0..800 {
        tree.get_current(&Key::from_u64(k)).unwrap();
    }
    let delta = stats.snapshot().delta_since(&before);
    println!(
        "warm sweep over 800 keys: node-cache hit rate {:.3}, {} decodes, {} node accesses",
        delta.node_cache_hit_rate().unwrap_or(0.0),
        delta.node_decodes,
        delta.total_node_accesses(),
    );
}

criterion_group!(benches, bench_queries, bench_descent_cache);
criterion_main!(benches);
