//! B4: the WOBT baseline — insertion throughput and query latency on the
//! same streams used for the TSB-tree benches, so the two structures'
//! micro-costs can be compared directly.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tsb_common::{Key, Timestamp};
use tsb_wobt::Wobt;
use tsb_workload::{generate_ops, Op, WorkloadSpec};

use tsb_bench::measure::wobt_config;

fn workload(n: usize) -> Vec<Op> {
    generate_ops(
        &WorkloadSpec::default()
            .with_ops(n)
            .with_keys(500)
            .with_update_ratio(4.0)
            .with_value_size(100),
    )
}

fn bench_wobt(c: &mut Criterion) {
    let ops = workload(3_000);
    let mut group = c.benchmark_group("B4_wobt_baseline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ops.len() as u64));

    group.bench_function("insert_throughput", |b| {
        b.iter(|| {
            let mut wobt = Wobt::new_in_memory(wobt_config()).unwrap();
            for op in &ops {
                match op {
                    Op::Put { key, value } => {
                        wobt.insert(key.clone(), value.clone()).unwrap();
                    }
                    Op::Delete { key } => {
                        wobt.delete(key.clone()).unwrap();
                    }
                }
            }
            wobt
        })
    });

    // Prebuild once for the query benches.
    let mut wobt = Wobt::new_in_memory(wobt_config()).unwrap();
    for op in &ops {
        match op {
            Op::Put { key, value } => {
                wobt.insert(key.clone(), value.clone()).unwrap();
            }
            Op::Delete { key } => {
                wobt.delete(key.clone()).unwrap();
            }
        }
    }
    let mid = Timestamp(ops.len() as u64 / 2);

    group.throughput(Throughput::Elements(1));
    group.bench_function("current_get", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 500;
            wobt.get_current(&Key::from_u64(i)).unwrap()
        })
    });
    group.bench_function("as_of_get_mid_history", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 500;
            wobt.get_as_of(&Key::from_u64(i), mid).unwrap()
        })
    });
    group.bench_function("version_history", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 500;
            wobt.versions(&Key::from_u64(i)).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_wobt);
criterion_main!(benches);
