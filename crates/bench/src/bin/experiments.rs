//! The experiment harness CLI.
//!
//! ```text
//! cargo run -p tsb-bench --release --bin experiments             # all experiments, full scale
//! cargo run -p tsb-bench --release --bin experiments -- e3 e7    # selected experiments
//! cargo run -p tsb-bench --bin experiments -- --scale small all  # quick smoke run
//! ```

use tsb_bench::experiments::{run_all, run_experiment, ALL_EXPERIMENTS};
use tsb_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut requested: Vec<String> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => match iter.next().map(String::as_str) {
                Some("small") => scale = Scale::Small,
                Some("full") => scale = Scale::Full,
                Some("tiny") => scale = Scale::Tiny,
                other => {
                    eprintln!("unknown scale {other:?}; expected small|full|tiny");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other => requested.push(other.to_string()),
        }
    }

    println!("TSB-tree experiment harness (Lomet & Salzberg, SIGMOD 1989)");
    println!("scale: {scale:?}");

    let tables = if requested.is_empty() || requested.iter().any(|r| r == "all") {
        run_all(scale)
    } else {
        let mut tables = Vec::new();
        for id in &requested {
            match run_experiment(id, scale) {
                Some(mut t) => tables.append(&mut t),
                None => {
                    eprintln!("unknown experiment '{id}'; known: {ALL_EXPERIMENTS:?} (or 'all')");
                    std::process::exit(2);
                }
            }
        }
        tables
    };
    for table in tables {
        println!("{table}");
    }
    println!("\nSee EXPERIMENTS.md for the paper-vs-measured interpretation of each table.");
}

fn print_usage() {
    println!("usage: experiments [--scale small|full|tiny] [e1 e2 ... | all]");
    println!("experiments: {ALL_EXPERIMENTS:?}");
}
