//! Wakeup profiler for the served path (the E13 `Os`-row regression).
//!
//! BENCH_PR7 recorded served `Os` throughput *falling* from 2 to 8
//! connections (68k → 40k ops/s). `Os` never touches the device, so the
//! drop cannot be fsync scheduling — the suspect is the wakeup chain
//! itself: every reply wakes a client thread, every request wakes that
//! connection's worker thread, and on a single core all of those threads
//! round-robin one run queue.
//!
//! This probe runs the E13 `Os` cells (loopback server + driver threads
//! in one process) and has **each connection thread read its own context
//! switch counters** from `/proc/thread-self/status` around the measured
//! window — thread counters die with the thread, so a process-wide sample
//! after the fact sees nothing. Client-side switches are half of every
//! client↔worker handoff, so switches/op on the client is a faithful
//! proxy for the whole chain. The verdict is the **switches/op** column:
//! throughput falling while switches/op rises with connection count means
//! the regression is scheduler thrash from the worker-per-connection
//! wakeup path, not engine work.
//!
//! ```text
//! cargo run -p tsb-bench --release --bin wakeups
//! ```

use std::time::Instant;

use tsb_client::protocol::{Reply, Request};
use tsb_client::TsbClient;
use tsb_common::{FsyncPolicy, Key, SplitPolicyKind, SplitTimeChoice};
use tsb_core::TsbOptions;
use tsb_server::TsbServer;

use tsb_bench::measure::experiment_config;

/// (voluntary, involuntary) context switches of the *calling thread*,
/// from `/proc/thread-self/status`. Linux-only by construction.
fn thread_ctx_switches() -> (u64, u64) {
    let status = match std::fs::read_to_string("/proc/thread-self/status") {
        Ok(s) => s,
        Err(_) => return (0, 0),
    };
    let mut voluntary = 0u64;
    let mut involuntary = 0u64;
    for line in status.lines() {
        if let Some(v) = line.strip_prefix("voluntary_ctxt_switches:") {
            voluntary = v.trim().parse().unwrap_or(0);
        } else if let Some(v) = line.strip_prefix("nonvoluntary_ctxt_switches:") {
            involuntary = v.trim().parse().unwrap_or(0);
        }
    }
    (voluntary, involuntary)
}

struct ConnStats {
    committed: u64,
    voluntary: u64,
    involuntary: u64,
}

/// One closed-loop pipelined connection (the E13 driver's loop), returning
/// its own context-switch delta alongside the op count.
fn conn_loop(addr: std::net::SocketAddr, ops: usize, depth: usize, seed: u64) -> ConnStats {
    let mut client = TsbClient::connect(addr).expect("connect");
    // Keys only need to spread; a simple multiplicative generator avoids
    // pulling a rand dependency into the probe.
    let mut state = seed | 1;
    let (vol_before, invol_before) = thread_ctx_switches();
    let mut committed = 0u64;
    let mut in_flight = 0usize;
    let mut sent = 0usize;
    while sent < ops || in_flight > 0 {
        while sent < ops && in_flight < depth {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = state >> 52;
            let value = vec![0xA5u8; 48];
            client
                .send(&Request::Put {
                    key: Key::from_u64(key),
                    value,
                })
                .expect("send");
            in_flight += 1;
            sent += 1;
        }
        match client.recv_any().expect("recv") {
            (_, Reply::Committed { .. }) => {
                committed += 1;
                in_flight -= 1;
            }
            (_, other) => panic!("unexpected reply: {other:?}"),
        }
    }
    let (vol_after, invol_after) = thread_ctx_switches();
    ConnStats {
        committed,
        voluntary: vol_after - vol_before,
        involuntary: invol_after - invol_before,
    }
}

fn main() {
    let ops_per_conn = 2_000usize;
    println!("served-path wakeup probe: Os policy, loopback server, closed-loop driver");
    println!(
        "{ops_per_conn} ops/conn; 'client sw/op' counted per connection thread (the client \
         side of every client<->worker handoff); 'lock-wait us/op' is the engine's writer-lock \
         wait instrumentation summed over shards\n"
    );
    println!(
        "{:<7} {:<6} {:<6} {:<10} {:<13} {:<13} {:<15}",
        "shards", "conns", "depth", "ops/s", "client vol/op", "client inv/op", "lock-wait us/op"
    );

    for shards in [1usize, 4] {
        for conns in [1usize, 2, 4, 8] {
            let depth = if conns == 1 { 1 } else { 4 };
            let dir = std::env::temp_dir().join(format!(
                "tsb-wakeups-{}-{shards}s-{conns}c",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("mkdir");

            let mut cfg =
                experiment_config(SplitPolicyKind::TimePreferring, SplitTimeChoice::LastUpdate);
            cfg.fsync_policy = FsyncPolicy::Os;
            let db = TsbOptions::durable(&dir)
                .config(cfg)
                .shards(shards)
                .open()
                .expect("durable engine");
            let server = TsbServer::start(db, "127.0.0.1:0").expect("start server");
            let addr = server.local_addr();

            // Warmup outside the window: prime connections, tree, WAL extent.
            std::thread::scope(|s| {
                for i in 0..conns {
                    s.spawn(move || {
                        conn_loop(addr, (ops_per_conn / 4).max(8), depth, 0xAAAA + i as u64)
                    });
                }
            });

            let io_before = server.db().io_snapshot();
            let start = Instant::now();
            let stats: Vec<ConnStats> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..conns)
                    .map(|i| {
                        s.spawn(move || conn_loop(addr, ops_per_conn, depth, 0xE13 + i as u64))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("conn"))
                    .collect()
            });
            let elapsed = start.elapsed();
            let io = server.db().io_snapshot().delta_since(&io_before);
            server.shutdown().expect("shutdown");
            let _ = std::fs::remove_dir_all(&dir);

            let committed: u64 = stats.iter().map(|s| s.committed).sum();
            let vol: u64 = stats.iter().map(|s| s.voluntary).sum();
            let invol: u64 = stats.iter().map(|s| s.involuntary).sum();
            let ops = committed.max(1) as f64;
            println!(
                "{:<7} {:<6} {:<6} {:<10.0} {:<13.2} {:<13.2} {:<15.1}",
                shards,
                conns,
                depth,
                committed as f64 / elapsed.as_secs_f64().max(1e-9),
                vol as f64 / ops,
                invol as f64 / ops,
                io.writer_lock_wait_nanos as f64 / 1e3 / ops
            );
        }
    }
}
