//! E9 (ablation): the two secondary design knobs DESIGN.md calls out.
//!
//! * **Recalcitrant-child marking** (§3.5's closing optimization): when a
//!   local index time split is blocked by a current child that still holds
//!   old data (Figure 9), the TSB-tree can mark that child so it prefers a
//!   time split at its next opportunity. The ablation runs the same workload
//!   with the optimization on and off and reports how much more history
//!   migrates (and what it costs in redundancy).
//! * **Split fill threshold**: splitting before a node is completely full
//!   trades space utilization for fewer entry moves. The paper assumes
//!   split-on-overflow; the ablation quantifies the effect of earlier
//!   splits.

use tsb_common::{SplitPolicyKind, SplitTimeChoice, TsbConfig};
use tsb_core::{TsbOptions, TsbTree};
use tsb_workload::{generate_ops, Op};

use crate::measure::{default_workload, experiment_config, Scale};
use crate::report::{kib, ratio, Table};

fn run_with(cfg: TsbConfig, ops: &[Op]) -> TsbTree {
    let mut tree = TsbOptions::in_memory()
        .config(cfg)
        .open_tree()
        .expect("valid config");
    for op in ops {
        match op {
            Op::Put { key, value } => {
                tree.insert(key.clone(), value.clone()).expect("insert");
            }
            Op::Delete { key } => {
                tree.delete(key.clone()).expect("delete");
            }
        }
    }
    tree
}

/// Runs both ablations.
pub fn run(scale: Scale) -> Vec<Table> {
    let spec = default_workload(scale);
    let ops = generate_ops(&spec);
    let note = format!(
        "{} operations over {} keys, update:insert = 4:1; threshold 2/3 policy, split time = last update",
        spec.num_ops, spec.num_keys
    );

    // --- marking ablation ---------------------------------------------------
    let mut marking = Table::new(
        "E9a: ablation — recalcitrant-child marking (§3.5 optimization)",
        note.clone(),
        &[
            "marking",
            "magnetic KiB",
            "worm KiB",
            "historical index nodes",
            "redundancy",
        ],
    );
    for (label, enabled) in [("enabled", true), ("disabled", false)] {
        let mut cfg = experiment_config(
            SplitPolicyKind::Threshold {
                key_split_live_fraction: 2.0 / 3.0,
            },
            SplitTimeChoice::LastUpdate,
        );
        cfg.mark_recalcitrant_children = enabled;
        let tree = run_with(cfg, &ops);
        let stats = tree.tree_stats().expect("stats");
        marking.push_row(vec![
            label.to_string(),
            kib(stats.space.magnetic_bytes),
            kib(stats.space.worm_bytes),
            stats.historical_index_nodes.to_string(),
            ratio(stats.redundancy_ratio()),
        ]);
    }

    // --- fill-threshold ablation ---------------------------------------------
    let mut fill = Table::new(
        "E9b: ablation — split fill threshold",
        note,
        &[
            "fill threshold",
            "magnetic KiB",
            "worm KiB",
            "current data nodes",
            "redundancy",
        ],
    );
    for threshold in [1.0f64, 0.85, 0.7] {
        let mut cfg = experiment_config(
            SplitPolicyKind::Threshold {
                key_split_live_fraction: 2.0 / 3.0,
            },
            SplitTimeChoice::LastUpdate,
        );
        cfg.split_fill_threshold = threshold;
        let tree = run_with(cfg, &ops);
        let stats = tree.tree_stats().expect("stats");
        fill.push_row(vec![
            format!("{threshold:.2}"),
            kib(stats.space.magnetic_bytes),
            kib(stats.space.worm_bytes),
            stats.current_data_nodes.to_string(),
            ratio(stats.redundancy_ratio()),
        ]);
    }

    vec![marking, fill]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_runs_and_lower_fill_threshold_uses_more_current_nodes() {
        let spec = default_workload(Scale::Tiny);
        let ops = generate_ops(&spec);
        let policy = SplitPolicyKind::Threshold {
            key_split_live_fraction: 2.0 / 3.0,
        };
        let mut tight = experiment_config(policy, SplitTimeChoice::LastUpdate);
        tight.split_fill_threshold = 1.0;
        let mut eager = experiment_config(policy, SplitTimeChoice::LastUpdate);
        eager.split_fill_threshold = 0.7;
        let tight_tree = run_with(tight, &ops);
        let eager_tree = run_with(eager, &ops);
        tight_tree.verify().unwrap();
        eager_tree.verify().unwrap();
        let tight_nodes = tight_tree.tree_stats().unwrap().current_data_nodes;
        let eager_nodes = eager_tree.tree_stats().unwrap().current_data_nodes;
        assert!(
            eager_nodes >= tight_nodes,
            "splitting earlier ({eager_nodes} nodes) cannot use fewer nodes than splitting on overflow ({tight_nodes})"
        );

        // Both marking settings verify and produce tables.
        let tables = run(Scale::Tiny);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 2);
        assert_eq!(tables[1].rows.len(), 3);
    }
}
