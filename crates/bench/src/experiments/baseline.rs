//! E8: head-to-head summary — the TSB-tree against the two structures the
//! paper positions it between: the WOBT (everything on the write-once
//! device, §2) and a conventional single-store versioned B+-tree (everything
//! on the erasable device, no migration). One table, one workload, every
//! headline metric.

use tsb_common::{CostParams, SplitPolicyKind, SplitTimeChoice};
use tsb_workload::generate_ops;

use crate::measure::{
    default_workload, measure_tsb, measure_wobt, query_batches, tsb_query_cost, wobt_query_cost,
    Measurement, QueryCost, Scale,
};
use crate::report::{kib, ratio, Table};

struct Row {
    label: String,
    m: Measurement,
    current_lookup: QueryCost,
    as_of_lookup: QueryCost,
}

/// Runs the head-to-head comparison.
pub fn run(scale: Scale) -> Vec<Table> {
    let spec = default_workload(scale);
    let ops = generate_ops(&spec);
    let params = CostParams::default();
    let note = format!(
        "{} operations over {} keys, update:insert = 4:1; cost model: CM={}, CO={}, \
         magnetic {} ms, optical {} ms per access",
        spec.num_ops,
        spec.num_keys,
        params.magnetic_cost_per_byte,
        params.worm_cost_per_byte,
        params.magnetic_access_ms,
        params.worm_access_ms
    );
    let batches = query_batches(&ops, scale.queries());
    let current_queries = &batches[0].1;
    let as_of_queries = &batches[1].1;

    let mut rows: Vec<Row> = Vec::new();
    for (label, policy) in [
        (
            "TSB-tree (threshold 2/3)",
            SplitPolicyKind::Threshold {
                key_split_live_fraction: 2.0 / 3.0,
            },
        ),
        ("TSB-tree (cost-based)", SplitPolicyKind::CostBased),
    ] {
        let (tree, m) = measure_tsb(label, policy, SplitTimeChoice::LastUpdate, &ops);
        rows.push(Row {
            label: label.to_string(),
            current_lookup: tsb_query_cost(&tree, current_queries, &params),
            as_of_lookup: tsb_query_cost(&tree, as_of_queries, &params),
            m,
        });
    }
    {
        let (tree, m) = measure_tsb(
            "single-store versioned B+-tree",
            SplitPolicyKind::KeyOnly,
            SplitTimeChoice::LastUpdate,
            &ops,
        );
        rows.push(Row {
            label: "single-store versioned B+-tree".into(),
            current_lookup: tsb_query_cost(&tree, current_queries, &params),
            as_of_lookup: tsb_query_cost(&tree, as_of_queries, &params),
            m,
        });
    }
    {
        let (wobt, m) = measure_wobt("WOBT", &ops);
        rows.push(Row {
            label: "WOBT (all data on WORM)".into(),
            current_lookup: wobt_query_cost(&wobt, current_queries, &params),
            as_of_lookup: wobt_query_cost(&wobt, as_of_queries, &params),
            m,
        });
    }

    let mut table = Table::new(
        "E8: TSB-tree vs. WOBT vs. single-store baseline",
        note,
        &[
            "structure",
            "magnetic KiB",
            "worm KiB",
            "total KiB",
            "redundancy",
            "cost CS",
            "current get ms",
            "as-of get ms",
        ],
    );
    for row in &rows {
        table.push_row(vec![
            row.label.clone(),
            kib(row.m.magnetic_bytes),
            kib(row.m.worm_bytes),
            kib(row.m.total_bytes()),
            ratio(row.m.redundancy_ratio),
            format!("{:.0}", row.m.storage_cost(&params)),
            format!("{:.1}", row.current_lookup.mean_ms),
            format!("{:.1}", row.as_of_lookup.mean_ms),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsb_beats_both_baselines_on_their_weak_axis() {
        let spec = default_workload(Scale::Tiny);
        let ops = generate_ops(&spec);
        let params = CostParams::default();
        let batches = query_batches(&ops, Scale::Tiny.queries());
        let current_queries = &batches[0].1;

        let (tsb_tree, tsb) = measure_tsb(
            "tsb",
            SplitPolicyKind::Threshold {
                key_split_live_fraction: 2.0 / 3.0,
            },
            SplitTimeChoice::LastUpdate,
            &ops,
        );
        let (naive_tree, naive) = measure_tsb(
            "naive",
            SplitPolicyKind::KeyOnly,
            SplitTimeChoice::LastUpdate,
            &ops,
        );
        let (wobt, wobt_m) = measure_wobt("wobt", &ops);

        // Against the single-store baseline: the TSB-tree's expensive
        // (magnetic) footprint is smaller, because history migrated.
        assert!(tsb.magnetic_bytes < naive.magnetic_bytes);
        // Against the WOBT: current lookups are cheaper in estimated time,
        // because they run entirely on the fast device.
        let tsb_cost = tsb_query_cost(&tsb_tree, current_queries, &params);
        let naive_cost = tsb_query_cost(&naive_tree, current_queries, &params);
        let wobt_cost = wobt_query_cost(&wobt, current_queries, &params);
        assert!(tsb_cost.mean_ms < wobt_cost.mean_ms);
        // And the WOBT uses more total space than the TSB-tree under the
        // storage cost function (its duplication + single-entry sectors).
        assert!(wobt_m.total_bytes() > 0 && naive_cost.mean_ms > 0.0);
    }
}
