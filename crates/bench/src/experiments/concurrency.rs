//! E10: reader throughput scaling under a single-writer pipeline.
//!
//! The paper's §4.1 promise — read-only transactions run without locks,
//! concurrently with the current-database writer — is the reason
//! [`ConcurrentTsb`] exists. This experiment measures it: a preloaded tree
//! keeps absorbing a scripted update stream from one writer thread while
//! 1, 2, 4, and 8 reader threads replay deterministic
//! [`tsb_workload::ConcurrentSpec`] query plans pinned at the install
//! fence. Reported alongside E6 (single-threaded query cost): E6 prices
//! one query, E10 shows how many of them concurrent readers sustain while
//! the writer is active.
//!
//! Reader scaling is a *hardware* property as much as a software one: on a
//! single-core host the threads time-slice one CPU and aggregate
//! throughput stays flat regardless of how lock-free the readers are. The
//! table therefore records the detected parallelism next to the scaling
//! factor; the ≥3x-at-4-readers expectation applies on hosts with ≥4
//! cores.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use tsb_common::{TimeRange, Timestamp};
use tsb_core::{ConcurrentTsb, TsbOptions};
use tsb_workload::{pin_fraction, ConcurrentSpec, Op, ReaderQueryKind};

use crate::measure::{experiment_config, Scale};
use crate::report::Table;

/// Reader thread counts measured (each against the same active writer).
const READER_COUNTS: &[usize] = &[1, 2, 4, 8];

/// Runs the readers-vs-writer scaling measurement.
pub fn run(scale: Scale) -> Vec<Table> {
    let (preload_ops, window) = match scale {
        Scale::Tiny => (2_000, Duration::from_millis(60)),
        Scale::Small => (6_000, Duration::from_millis(150)),
        Scale::Full => (20_000, Duration::from_millis(400)),
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let spec = tsb_workload::concurrent::stress_spec(preload_ops, (preload_ops / 8) as u64, 0xE10);
    let ops = spec.writer_ops();

    let mut table = Table::new(
        "E10: concurrent reader throughput while one writer is active",
        format!(
            "{preload_ops} preloaded ops, {}ms window per row, {cores} core(s) detected; \
             readers replay deterministic as-of/scan/history plans pinned at the install fence",
            window.as_millis()
        ),
        &[
            "reader threads",
            "reader queries/s",
            "scaling vs 1",
            "writer ops/s",
            "fence lag (ts)",
        ],
    );

    let mut base_throughput: Option<f64> = None;
    for &readers in READER_COUNTS {
        let m = measure_one(&spec, &ops, readers, window);
        let scaling = match base_throughput {
            None => {
                base_throughput = Some(m.reader_qps);
                1.0
            }
            Some(base) if base > 0.0 => m.reader_qps / base,
            _ => 0.0,
        };
        table.push_row(vec![
            readers.to_string(),
            format!("{:.0}", m.reader_qps),
            format!("{scaling:.2}x"),
            format!("{:.0}", m.writer_ops_per_sec),
            m.fence_lag.to_string(),
        ]);
    }
    vec![table]
}

struct RunMeasurement {
    reader_qps: f64,
    writer_ops_per_sec: f64,
    /// now() - last_installed() observed at the end of the window: how far
    /// the clock had run ahead of fully installed writes (0 or 1 when the
    /// writer keeps up).
    fence_lag: u64,
}

fn measure_one(
    spec: &ConcurrentSpec,
    preload: &[Op],
    readers: usize,
    window: Duration,
) -> RunMeasurement {
    let db = TsbOptions::in_memory()
        .config(experiment_config(
            tsb_common::SplitPolicyKind::TimePreferring,
            tsb_common::SplitTimeChoice::LastUpdate,
        ))
        .open_concurrent()
        .expect("in-memory engine");
    for op in preload {
        apply(&db, op);
    }
    // Warm every reader path once so the measurement sees the steady state
    // (decoded-node cache resident, as in E6's warm query costs). Each
    // reader thread replays its own deterministic plan, so all plans for
    // this row's thread count must be warmed — warming only plan 0 would
    // leave the multi-reader rows paying their cold misses inside the
    // timed window and deflate the scaling factor.
    let fence = db.last_installed().value();
    for r in 0..readers {
        for q in &spec.reader_plan(r) {
            run_query(&db, &q.kind, Timestamp(pin_fraction(q.ts_fraction, fence)));
        }
    }

    let stop = AtomicBool::new(false);
    let reader_queries = AtomicU64::new(0);
    let writer_ops = AtomicU64::new(0);

    std::thread::scope(|s| {
        // The single writer: replays the scripted stream cyclically.
        s.spawn(|| {
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                apply(&db, &preload[i % preload.len()]);
                writer_ops.fetch_add(1, Ordering::Relaxed);
                i += 1;
            }
        });
        for r in 0..readers {
            let plan = spec.reader_plan(r);
            let db = &db;
            let stop = &stop;
            let reader_queries = &reader_queries;
            s.spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let q = &plan[i % plan.len()];
                    let fence = db.last_installed().value();
                    let ts = Timestamp(pin_fraction(q.ts_fraction, fence));
                    run_query(db, &q.kind, ts);
                    reader_queries.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
    });

    let secs = window.as_secs_f64();
    RunMeasurement {
        reader_qps: reader_queries.load(Ordering::Relaxed) as f64 / secs,
        writer_ops_per_sec: writer_ops.load(Ordering::Relaxed) as f64 / secs,
        fence_lag: db.now().value().saturating_sub(db.last_installed().value()),
    }
}

fn apply(db: &ConcurrentTsb, op: &Op) {
    match op {
        Op::Put { key, value } => {
            db.insert(key.clone(), value.clone()).expect("insert");
        }
        Op::Delete { key } => {
            db.delete(key.clone()).expect("delete");
        }
    }
}

fn run_query(db: &ConcurrentTsb, kind: &ReaderQueryKind, ts: Timestamp) {
    match kind {
        ReaderQueryKind::PointAsOf(key) => {
            db.get_as_of(key, ts).expect("point as-of");
        }
        ReaderQueryKind::RangeAsOf(range) => {
            db.scan_as_of(range, ts).expect("range as-of");
        }
        ReaderQueryKind::HistoryTo(key) => {
            db.history_between(key, TimeRange::bounded(Timestamp::ZERO, ts.next()))
                .expect("history");
        }
        ReaderQueryKind::CountAsOf(range) => {
            db.count_as_of(range, ts).expect("count as-of");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_produces_one_row_per_thread_count() {
        let tables = run(Scale::Tiny);
        assert_eq!(tables.len(), 1);
        let table = &tables[0];
        assert_eq!(table.rows.len(), READER_COUNTS.len());
        for (row, readers) in table.rows.iter().zip(READER_COUNTS) {
            assert_eq!(row[0], readers.to_string());
            let qps: f64 = row[1].parse().expect("reader throughput cell");
            assert!(qps > 0.0, "row for {readers} readers measured no queries");
        }
    }
}
