//! E5: the §3.2 cost function `CS = SpaceM·CM + SpaceO·CO`.
//!
//! The experiment varies the magnetic:optical price ratio and evaluates the
//! cost of the layouts produced by fixed policies and by the cost-based
//! policy (which sees the prices when deciding each split). Expected shape:
//! when magnetic storage is much more expensive, time-splitting layouts are
//! cheapest; as the prices converge, key-splitting layouts win because they
//! avoid redundant bytes; the cost-based policy tracks whichever fixed
//! policy is better at each price point.

use tsb_common::{CostParams, SplitPolicyKind, SplitTimeChoice, TsbConfig};
use tsb_core::TsbOptions;
use tsb_workload::{generate_ops, Op};

use crate::measure::{default_workload, Scale};
use crate::report::Table;

/// The magnetic-per-byte : optical-per-byte price ratios swept.
pub const PRICE_RATIOS: &[f64] = &[2.0, 5.0, 10.0, 20.0];

fn run_with_cost(policy: SplitPolicyKind, cost: CostParams, ops: &[Op]) -> (u64, u64) {
    let mut cfg = TsbConfig::default()
        .with_page_size(1024)
        .with_worm_sector_size(1024)
        .with_split_policy(policy)
        .with_split_time_choice(SplitTimeChoice::LastUpdate)
        .with_cost(cost);
    cfg.max_key_len = 64;
    let mut tree = TsbOptions::in_memory()
        .config(cfg)
        .open_tree()
        .expect("valid config");
    for op in ops {
        match op {
            Op::Put { key, value } => {
                tree.insert(key.clone(), value.clone()).expect("insert");
            }
            Op::Delete { key } => {
                tree.delete(key.clone()).expect("delete");
            }
        }
    }
    let space = tree.space();
    (space.magnetic_bytes, space.worm_bytes)
}

/// Runs the price sweep.
pub fn run(scale: Scale) -> Vec<Table> {
    let spec = default_workload(scale);
    let ops = generate_ops(&spec);
    let note = format!(
        "{} operations over {} keys, update:insert = 4:1; CS = SpaceM*CM + SpaceO*CO (CO = 1)",
        spec.num_ops, spec.num_keys
    );
    let mut table = Table::new(
        "E5: storage cost CS under different device price ratios",
        note,
        &[
            "CM : CO",
            "policy",
            "magnetic KiB",
            "worm KiB",
            "cost CS",
            "cheapest?",
        ],
    );

    for &cm in PRICE_RATIOS {
        let cost = CostParams {
            magnetic_cost_per_byte: cm,
            worm_cost_per_byte: 1.0,
            ..CostParams::default()
        };
        let candidates = [
            ("time-preferring", SplitPolicyKind::TimePreferring),
            (
                "threshold 2/3",
                SplitPolicyKind::Threshold {
                    key_split_live_fraction: 2.0 / 3.0,
                },
            ),
            ("key-preferring", SplitPolicyKind::KeyPreferring),
            ("cost-based", SplitPolicyKind::CostBased),
        ];
        let results: Vec<(&str, u64, u64, f64)> = candidates
            .iter()
            .map(|(label, policy)| {
                let (mag, worm) = run_with_cost(*policy, cost, &ops);
                (*label, mag, worm, cost.storage_cost(mag, worm))
            })
            .collect();
        let min_cost = results
            .iter()
            .map(|(_, _, _, c)| *c)
            .fold(f64::INFINITY, f64::min);
        for (label, mag, worm, cs) in results {
            table.push_row(vec![
                format!("{cm}:1"),
                label.to_string(),
                crate::report::kib(mag),
                crate::report::kib(worm),
                format!("{cs:.0}"),
                if (cs - min_cost).abs() < 1e-9 {
                    "*".into()
                } else {
                    "".into()
                },
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_based_policy_is_never_far_from_the_best_fixed_policy() {
        let spec = default_workload(Scale::Tiny);
        let ops = generate_ops(&spec);
        for &cm in &[2.0, 20.0] {
            let cost = CostParams {
                magnetic_cost_per_byte: cm,
                worm_cost_per_byte: 1.0,
                ..CostParams::default()
            };
            let fixed = [
                SplitPolicyKind::TimePreferring,
                SplitPolicyKind::KeyPreferring,
                SplitPolicyKind::Threshold {
                    key_split_live_fraction: 2.0 / 3.0,
                },
            ];
            let best_fixed = fixed
                .iter()
                .map(|p| {
                    let (m, w) = run_with_cost(*p, cost, &ops);
                    cost.storage_cost(m, w)
                })
                .fold(f64::INFINITY, f64::min);
            let (m, w) = run_with_cost(SplitPolicyKind::CostBased, cost, &ops);
            let cost_based = cost.storage_cost(m, w);
            // The adaptive policy should be within 2x of the best fixed
            // layout at every price point (it usually matches it).
            assert!(
                cost_based <= best_fixed * 2.0,
                "CM={cm}: cost-based {cost_based:.0} vs best fixed {best_fixed:.0}"
            );
        }
    }
}
