//! E11: index-node routing cost vs fanout — partitioned binary search
//! against the linear reference scan.
//!
//! The paper's access-cost model (§2.2, §2.5) prices a search as one
//! root-to-leaf path of node accesses; once warm accesses are decode-free
//! (node cache) and lock-free (seqlock descents), what remains is the work
//! *inside* each node. This experiment times `IndexNode::find_child` — the
//! partitioned O(log fanout) routing — against `find_child_linear` (the
//! O(fanout) scan every descent paid before) on synthetic nodes shaped
//! like the engine's own: `fanout` current children tiling the key space
//! plus `fanout` historical children one time band below. Both the
//! `ts == MAX` descent (inserts, current lookups, commits) and a past-time
//! descent are measured.

use std::time::Instant;

use tsb_common::{Key, KeyBound, KeyRange, TimeRange, Timestamp};
use tsb_core::{IndexEntry, IndexNode, NodeAddr};
use tsb_storage::{HistAddr, PageId};

use crate::measure::Scale;
use crate::report::{descent_cells, Table};

/// Key-space width assigned to each current child of [`synthetic_node`].
pub const STRIDE: u64 = 16;

/// Fanouts measured (entries per region; the node holds 2x this).
const FANOUTS: &[u64] = &[16, 64, 256];

/// Builds an index node with `fanout` current children tiling the key
/// space and `fanout` historical children one time band below them —
/// the shape a long insert/update stream produces. Shared with the
/// `B3_descent_fanout` criterion bench so the E11 table and the bench
/// always measure the same node.
pub fn synthetic_node(fanout: u64) -> IndexNode {
    let mut entries = Vec::new();
    for i in 0..fanout {
        let lo = if i == 0 {
            Key::MIN
        } else {
            Key::from_u64(i * STRIDE)
        };
        let hi = if i == fanout - 1 {
            KeyBound::PlusInfinity
        } else {
            KeyBound::Finite(Key::from_u64((i + 1) * STRIDE))
        };
        let range = KeyRange::new(lo, hi);
        entries.push(IndexEntry::new(
            range.clone(),
            TimeRange::from(Timestamp(100)),
            NodeAddr::Current(PageId(i + 1)),
        ));
        entries.push(IndexEntry::new(
            range,
            TimeRange::bounded(Timestamp(0), Timestamp(100)),
            NodeAddr::Historical(HistAddr::new(i * 256, 128)),
        ));
    }
    let node = IndexNode::from_entries(KeyRange::full(), TimeRange::full(), entries);
    node.validate().expect("synthetic node must be valid");
    node
}

/// Times `f` over `iters` probe rounds, returning mean ns per call.
fn time_ns(probes: &[Key], iters: usize, mut f: impl FnMut(&Key)) -> f64 {
    let start = Instant::now();
    let mut done = 0usize;
    while done < iters {
        for p in probes {
            f(p);
        }
        done += probes.len();
    }
    start.elapsed().as_nanos() as f64 / done as f64
}

/// Runs the routing measurement.
pub fn run(scale: Scale) -> Vec<Table> {
    let iters = match scale {
        Scale::Tiny => 2_000,
        Scale::Small => 50_000,
        Scale::Full => 400_000,
    };
    let mut table = Table::new(
        "E11: index routing cost vs fanout (binary-search regions vs linear scan)",
        format!(
            "{iters} probes per cell; node = fanout current + fanout historical entries; \
             'current' probes at ts=MAX (insert/lookup/commit path), 'past' mid-history"
        ),
        &[
            "fanout",
            "cur linear ns",
            "cur binary ns",
            "cur speedup",
            "past linear ns",
            "past binary ns",
            "past speedup",
        ],
    );
    for &fanout in FANOUTS {
        let node = synthetic_node(fanout);
        let keyspace = fanout * STRIDE;
        let probes: Vec<Key> = (0..keyspace).step_by(7).map(Key::from_u64).collect();
        let past = Timestamp(50);

        let cur_linear = time_ns(&probes, iters, |k| {
            std::hint::black_box(node.find_child_linear(k, Timestamp::MAX));
        });
        let cur_binary = time_ns(&probes, iters, |k| {
            std::hint::black_box(node.find_child(k, Timestamp::MAX));
        });
        let past_linear = time_ns(&probes, iters, |k| {
            std::hint::black_box(node.find_child_linear(k, past));
        });
        let past_binary = time_ns(&probes, iters, |k| {
            std::hint::black_box(node.find_child(k, past));
        });

        let mut row = vec![fanout.to_string()];
        row.extend(descent_cells(cur_linear, cur_binary));
        row.extend(descent_cells(past_linear, past_binary));
        table.push_row(row);
    }
    vec![table]
}
