//! E12: the price of durability — WAL fsync policies and recovery time.
//!
//! The paper's two-device design leaves the current (magnetic) database
//! volatile; PR 4's write-ahead log closes that gap. This experiment prices
//! it. The first table replays one insert/update stream into file-backed
//! trees that differ only in logging: no WAL at all (the pre-durability
//! engine), then a WAL under each [`FsyncPolicy`] — `Os` (appends only),
//! group commit (`EveryN(64)`, `EveryN(8)`), and `Always` (fsync per
//! commit). Reported: sustained write throughput, WAL traffic, and fsyncs,
//! plus the per-op normalizations (`wal B/op`, `syncs/op`) the slim-log
//! work is judged by — the classic durability/throughput trade, measurable
//! per policy.
//!
//! The second table measures crash-consistent reopen: a tree is built and
//! dropped *without* a checkpoint (everything since create lives only in
//! the log), then [`TsbTree::open_durable`] must replay, purge, verify, and
//! re-fence. Recovery time is reported against the number of ops since the
//! last checkpoint — the knob an operator turns (checkpoint cadence) to
//! bound restart time.
//!
//! The third table (E12c) prices the **pipelined group commit**: closed-loop
//! writer threads share the group-commit thread's fsyncs, so `Always`-policy
//! committed throughput scales with thread count while fsyncs/op falls.
//! Because every fsync-bound number is hostage to the filesystem under
//! `/tmp`, the harness first calibrates the device's raw fsync latency
//! ([`fsync_floor`]) and reports each durability row as a percentage of its
//! policy's theoretical fsync ceiling — a noisy-FS run then shows up as a
//! low floor, not as a mysterious regression.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use tsb_common::{FsyncPolicy, SplitPolicyKind, SplitTimeChoice, TsbConfig};
use tsb_core::{TsbOptions, TsbTree};
use tsb_workload::{drive_durable, generate_ops, DurableDriveSpec, Op, WorkloadSpec};

use crate::measure::{experiment_config, Scale};
use crate::report::Table;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "tsb-e12-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn e12_config(policy: Option<FsyncPolicy>) -> TsbConfig {
    let mut cfg = experiment_config(SplitPolicyKind::TimePreferring, SplitTimeChoice::LastUpdate);
    if let Some(policy) = policy {
        cfg.fsync_policy = policy;
    }
    cfg
}

fn e12_workload(scale: Scale) -> WorkloadSpec {
    WorkloadSpec::default()
        .with_ops(match scale {
            Scale::Tiny => 400,
            Scale::Small => 3_000,
            Scale::Full => 15_000,
        })
        .with_keys(scale.keys())
        .with_update_ratio(4.0)
        .with_value_size(48)
}

fn replay(tree: &mut TsbTree, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Put { key, value } => {
                tree.insert(key.clone(), value.clone()).expect("insert");
            }
            Op::Delete { key } => {
                tree.delete(key.clone()).expect("delete");
            }
        }
    }
}

/// Calibrates the raw fsync latency of the filesystem backing the bench
/// temp directories: a small file is rewritten and fsynced `rounds` times
/// and the median latency returned. Every fsync-bound ceiling in the E12
/// tables is derived from this floor, so noisy-FS runs stay interpretable.
pub fn fsync_floor(rounds: usize) -> Duration {
    use std::io::Write;
    let dir = TempDir::new("fsync-floor");
    let path = dir.0.join("probe");
    let mut file = std::fs::File::create(&path).expect("probe file");
    let mut samples = Vec::with_capacity(rounds);
    for i in 0..rounds.max(1) {
        file.write_all(&[i as u8; 64]).expect("probe write");
        let start = Instant::now();
        file.sync_all().expect("probe fsync");
        samples.push(start.elapsed());
    }
    samples.sort();
    samples[samples.len() / 2]
}

/// `throughput / ceiling` as a printable percentage, where the ceiling is
/// the throughput the run would reach if its fsyncs were its *only* cost
/// (`ops / (fsyncs × floor)`). Rows that issued no fsync have no ceiling.
pub(crate) fn pct_of_fsync_ceiling(ops: u64, fsyncs: u64, elapsed: f64, floor: Duration) -> String {
    if fsyncs == 0 || ops == 0 {
        return "-".to_string();
    }
    let ceiling = ops as f64 / (fsyncs as f64 * floor.as_secs_f64().max(1e-9));
    let actual = ops as f64 / elapsed.max(1e-9);
    format!("{:.0}%", 100.0 * actual / ceiling)
}

/// Runs the fsync-policy throughput table, the recovery-time table, and the
/// pipelined-group-commit scaling table.
pub fn run(scale: Scale) -> Vec<Table> {
    let floor = fsync_floor(33);
    vec![
        fsync_policy_table(scale, floor),
        recovery_table(scale),
        group_commit_table(scale, floor),
    ]
}

fn fsync_policy_table(scale: Scale, floor: Duration) -> Table {
    let ops = generate_ops(&e12_workload(scale));
    let mut table = Table::new(
        "E12a: write throughput by durability level (file-backed stores)",
        format!(
            "{} ops, 4 updates per insert; 'none' is the pre-WAL engine (crash loses \
             everything unflushed), each WAL row survives any crash up to its fsync horizon; \
             calibrated fsync floor {:.0}us — '% ceiling' is throughput over the pure-fsync \
             bound ops/(fsyncs x floor)",
            ops.len(),
            floor.as_secs_f64() * 1e6
        ),
        &[
            "durability",
            "inserts/s",
            "vs none",
            "wal appends",
            "wal fsyncs",
            "wal KiB",
            "wal B/op",
            "syncs/op",
            "% ceiling",
        ],
    );

    let rows: &[(&str, Option<FsyncPolicy>)] = &[
        ("none (no WAL)", None),
        ("wal + Os", Some(FsyncPolicy::Os)),
        ("wal + EveryN(64)", Some(FsyncPolicy::EveryN(64))),
        ("wal + EveryN(8)", Some(FsyncPolicy::EveryN(8))),
        ("wal + Always", Some(FsyncPolicy::Always)),
    ];
    let mut baseline: Option<f64> = None;
    for (label, policy) in rows {
        let dir = TempDir::new(&format!("tput-{}", label.replace([' ', '(', ')'], "")));
        let cfg = e12_config(*policy);
        let mut tree = if policy.is_some() {
            TsbOptions::durable(&dir.0)
                .config(cfg)
                .open_tree()
                .expect("durable tree")
        } else {
            open_plain_file_tree(&dir, cfg)
        };
        let before = tree.io_stats().snapshot();
        let start = Instant::now();
        replay(&mut tree, &ops);
        let elapsed = start.elapsed().as_secs_f64();
        let delta = tree.io_stats().snapshot().delta_since(&before);
        let throughput = ops.len() as f64 / elapsed.max(1e-9);
        let relative = match baseline {
            None => {
                baseline = Some(throughput);
                1.0
            }
            Some(base) if base > 0.0 => throughput / base,
            _ => 0.0,
        };
        table.push_row(vec![
            label.to_string(),
            format!("{throughput:.0}"),
            format!("{relative:.2}x"),
            delta.wal_appends.to_string(),
            delta.wal_syncs.to_string(),
            wal_kib(&dir),
            format!("{:.1}", delta.wal_bytes_appended as f64 / ops.len() as f64),
            format!("{:.3}", delta.wal_syncs as f64 / ops.len() as f64),
            pct_of_fsync_ceiling(ops.len() as u64, delta.wal_syncs, elapsed, floor),
        ]);
    }
    table
}

fn group_commit_table(scale: Scale, floor: Duration) -> Table {
    let ops_per_thread = match scale {
        Scale::Tiny => 40,
        Scale::Small => 200,
        Scale::Full => 500,
    };
    let mut table = Table::new(
        "E12c: pipelined group commit — committed throughput vs closed-loop writer threads",
        format!(
            "each thread commits its next durable insert only after the previous was \
             acknowledged; the fsync runs on the group-commit thread, so concurrent \
             commits share drains; {ops_per_thread} ops/thread, value 48B, calibrated \
             fsync floor {:.0}us",
            floor.as_secs_f64() * 1e6
        ),
        &[
            "policy",
            "threads",
            "committed ops/s",
            "fsyncs/op",
            "commits/fsync",
            "parked us/op",
            "% ceiling",
        ],
    );
    let policies: &[(&str, FsyncPolicy)] = &[
        ("Always", FsyncPolicy::Always),
        ("EveryN(8)", FsyncPolicy::EveryN(8)),
        ("EveryN(64)", FsyncPolicy::EveryN(64)),
        ("Os", FsyncPolicy::Os),
    ];
    for (label, policy) in policies {
        for threads in [1usize, 2, 4, 8] {
            let dir = TempDir::new(&format!("gc-{}-{threads}", label.replace(['(', ')'], "")));
            let cfg = e12_config(Some(*policy));
            let db = TsbOptions::durable(&dir.0)
                .config(cfg)
                .open_concurrent()
                .expect("durable engine");
            let spec = DurableDriveSpec {
                threads,
                ops_per_thread,
                num_keys: scale.keys(),
                value_size: 48,
                seed: 0xE12C ^ threads as u64,
            };
            // Warmup outside the measurement: grow the WAL file and prime
            // the tree so the measured window excludes extent-allocation
            // fsyncs and thread spawn-up (they dominate short runs).
            let warmup = DurableDriveSpec {
                ops_per_thread: (ops_per_thread / 4).max(8),
                seed: spec.seed ^ 0xAAAA,
                ..spec.clone()
            };
            drive_durable(&db, &warmup).expect("warmup");
            let report = drive_durable(&db, &spec).expect("drive");
            let commits_per_fsync = report
                .io
                .commits_per_fsync()
                .map(|r| format!("{r:.1}"))
                .unwrap_or_else(|| "-".to_string());
            table.push_row(vec![
                label.to_string(),
                threads.to_string(),
                format!("{:.0}", report.ops_per_sec()),
                format!("{:.3}", report.fsyncs_per_op()),
                commits_per_fsync,
                format!("{:.1}", report.parked_wait_per_op().as_secs_f64() * 1e6),
                pct_of_fsync_ceiling(
                    report.committed_ops,
                    report.io.wal_syncs,
                    report.elapsed.as_secs_f64(),
                    floor,
                ),
            ]);
        }
    }
    table
}

fn recovery_table(scale: Scale) -> Table {
    let depths: &[usize] = match scale {
        Scale::Tiny => &[100, 400],
        Scale::Small => &[500, 2_000, 4_000],
        Scale::Full => &[1_000, 5_000, 20_000],
    };
    let mut table = Table::new(
        "E12b: crash-consistent reopen time vs ops since the last checkpoint",
        "tree built then dropped with no checkpoint; open_durable replays the WAL, \
         erases in-flight txns, verifies, and re-fences"
            .to_string(),
        &[
            "ops since checkpoint",
            "recovery ms",
            "wal KiB replayed",
            "keys recovered",
        ],
    );
    for depth in depths {
        let dir = TempDir::new(&format!("rec-{depth}"));
        let cfg = e12_config(Some(FsyncPolicy::Os));
        let spec = e12_workload(scale).with_ops(*depth);
        let ops = generate_ops(&spec);
        {
            let mut tree = TsbOptions::durable(&dir.0)
                .config(cfg.clone())
                .open_tree()
                .expect("durable tree");
            replay(&mut tree, &ops);
            // Dropped hot: every post-create write exists only in the WAL.
        }
        let wal_kib = wal_kib(&dir);
        let start = Instant::now();
        let tree = TsbOptions::durable(&dir.0)
            .config(cfg)
            .open_tree()
            .expect("recovery");
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        let keys = tree
            .scan_current(&tsb_common::KeyRange::full())
            .expect("scan")
            .len();
        table.push_row(vec![
            depth.to_string(),
            format!("{elapsed_ms:.1}"),
            wal_kib,
            keys.to_string(),
        ]);
    }
    table
}

/// A file-backed tree with no WAL: the pre-durability baseline.
fn open_plain_file_tree(dir: &TempDir, cfg: TsbConfig) -> TsbTree {
    use std::sync::Arc;
    use tsb_storage::{IoStats, MagneticStore, WormStore};
    let stats = Arc::new(IoStats::new());
    let magnetic = Arc::new(
        MagneticStore::open_file(
            dir.0.join("current.pages"),
            cfg.page_size,
            Arc::clone(&stats),
        )
        .expect("magnetic store"),
    );
    let worm = Arc::new(
        WormStore::open_file(dir.0.join("history.worm"), cfg.worm_sector_size, stats)
            .expect("worm store"),
    );
    TsbTree::create(magnetic, worm, cfg).expect("tree")
}

fn wal_kib(dir: &TempDir) -> String {
    match std::fs::metadata(dir.0.join("redo.wal")) {
        Ok(meta) => format!("{:.1}", meta.len() as f64 / 1024.0),
        Err(_) => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_produces_all_three_tables() {
        let tables = run(Scale::Tiny);
        assert_eq!(tables.len(), 3);
        // Throughput table: one row per durability level, baseline first.
        assert_eq!(tables[0].rows.len(), 5);
        assert_eq!(tables[0].rows[0][2], "1.00x");
        let baseline_appends: u64 = tables[0].rows[0][3].parse().unwrap();
        assert_eq!(baseline_appends, 0, "no WAL, no appends");
        for row in &tables[0].rows[1..] {
            let appends: u64 = row[3].parse().unwrap();
            assert!(appends > 0, "durable rows log every mutation");
        }
        // Always fsyncs at least as often as EveryN(8), which beats EveryN(64).
        let syncs: Vec<u64> = tables[0].rows[1..]
            .iter()
            .map(|r| r[4].parse().unwrap())
            .collect();
        assert!(syncs[0] <= syncs[1] && syncs[1] <= syncs[2] && syncs[2] <= syncs[3]);
        // Recovery table: rows report a positive key count.
        for row in &tables[1].rows {
            let keys: usize = row[3].parse().unwrap();
            assert!(keys > 0, "recovery must surface the written keys");
        }
        // Group-commit table: 4 policies x 4 thread counts, Os never parks
        // and never hits a ceiling; every row commits at a positive rate.
        assert_eq!(tables[2].rows.len(), 16);
        for row in &tables[2].rows {
            let tput: f64 = row[2].parse().unwrap();
            assert!(tput > 0.0, "all group-commit rows commit");
            if row[0] == "Os" {
                assert_eq!(row[5], "0.0", "Os never parks on the watermark");
            }
        }
    }

    #[test]
    fn fsync_floor_probe_measures_something() {
        let floor = fsync_floor(9);
        assert!(floor > Duration::ZERO);
        assert!(
            floor < Duration::from_secs(1),
            "fsync floor implausibly slow"
        );
    }

    /// The zero-fsync cells (`Os` rows) and empty runs must render `-`,
    /// never `NaN`/`inf` — pinned so the tables and BENCH JSON stay clean.
    #[test]
    fn ceiling_cell_renders_dash_for_zero_denominators() {
        let floor = Duration::from_micros(100);
        assert_eq!(pct_of_fsync_ceiling(100, 0, 1.0, floor), "-");
        assert_eq!(pct_of_fsync_ceiling(0, 10, 1.0, floor), "-");
        assert_eq!(pct_of_fsync_ceiling(0, 0, 0.0, floor), "-");
        // A degenerate floor still yields a finite percentage.
        let cell = pct_of_fsync_ceiling(100, 10, 1.0, Duration::ZERO);
        assert!(cell.ends_with('%') && !cell.contains("NaN") && !cell.contains("inf"));
        // And a sane row renders a percentage.
        let cell = pct_of_fsync_ceiling(1000, 100, 0.5, floor);
        assert!(cell.ends_with('%'), "unexpected cell: {cell}");
    }
}
