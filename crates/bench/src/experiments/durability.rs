//! E12: the price of durability — WAL fsync policies and recovery time.
//!
//! The paper's two-device design leaves the current (magnetic) database
//! volatile; PR 4's write-ahead log closes that gap. This experiment prices
//! it. The first table replays one insert/update stream into file-backed
//! trees that differ only in logging: no WAL at all (the pre-durability
//! engine), then a WAL under each [`FsyncPolicy`] — `Os` (appends only),
//! group commit (`EveryN(64)`, `EveryN(8)`), and `Always` (fsync per
//! commit). Reported: sustained write throughput, WAL traffic, and fsyncs,
//! plus the per-op normalizations (`wal B/op`, `syncs/op`) the slim-log
//! work is judged by — the classic durability/throughput trade, measurable
//! per policy.
//!
//! The second table measures crash-consistent reopen: a tree is built and
//! dropped *without* a checkpoint (everything since create lives only in
//! the log), then [`TsbTree::open_durable`] must replay, purge, verify, and
//! re-fence. Recovery time is reported against the number of ops since the
//! last checkpoint — the knob an operator turns (checkpoint cadence) to
//! bound restart time.

use std::path::PathBuf;
use std::time::Instant;

use tsb_common::{FsyncPolicy, SplitPolicyKind, SplitTimeChoice, TsbConfig};
use tsb_core::TsbTree;
use tsb_workload::{generate_ops, Op, WorkloadSpec};

use crate::measure::{experiment_config, Scale};
use crate::report::Table;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "tsb-e12-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn e12_config(policy: Option<FsyncPolicy>) -> TsbConfig {
    let mut cfg = experiment_config(SplitPolicyKind::TimePreferring, SplitTimeChoice::LastUpdate);
    if let Some(policy) = policy {
        cfg.fsync_policy = policy;
    }
    cfg
}

fn e12_workload(scale: Scale) -> WorkloadSpec {
    WorkloadSpec::default()
        .with_ops(match scale {
            Scale::Tiny => 400,
            Scale::Small => 3_000,
            Scale::Full => 15_000,
        })
        .with_keys(scale.keys())
        .with_update_ratio(4.0)
        .with_value_size(48)
}

fn replay(tree: &mut TsbTree, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Put { key, value } => {
                tree.insert(key.clone(), value.clone()).expect("insert");
            }
            Op::Delete { key } => {
                tree.delete(key.clone()).expect("delete");
            }
        }
    }
}

/// Runs the fsync-policy throughput table and the recovery-time table.
pub fn run(scale: Scale) -> Vec<Table> {
    vec![fsync_policy_table(scale), recovery_table(scale)]
}

fn fsync_policy_table(scale: Scale) -> Table {
    let ops = generate_ops(&e12_workload(scale));
    let mut table = Table::new(
        "E12a: write throughput by durability level (file-backed stores)",
        format!(
            "{} ops, 4 updates per insert; 'none' is the pre-WAL engine (crash loses \
             everything unflushed), each WAL row survives any crash up to its fsync horizon",
            ops.len()
        ),
        &[
            "durability",
            "inserts/s",
            "vs none",
            "wal appends",
            "wal fsyncs",
            "wal KiB",
            "wal B/op",
            "syncs/op",
        ],
    );

    let rows: &[(&str, Option<FsyncPolicy>)] = &[
        ("none (no WAL)", None),
        ("wal + Os", Some(FsyncPolicy::Os)),
        ("wal + EveryN(64)", Some(FsyncPolicy::EveryN(64))),
        ("wal + EveryN(8)", Some(FsyncPolicy::EveryN(8))),
        ("wal + Always", Some(FsyncPolicy::Always)),
    ];
    let mut baseline: Option<f64> = None;
    for (label, policy) in rows {
        let dir = TempDir::new(&format!("tput-{}", label.replace([' ', '(', ')'], "")));
        let cfg = e12_config(*policy);
        let mut tree = if policy.is_some() {
            TsbTree::open_durable(&dir.0, cfg).expect("durable tree")
        } else {
            open_plain_file_tree(&dir, cfg)
        };
        let before = tree.io_stats().snapshot();
        let start = Instant::now();
        replay(&mut tree, &ops);
        let elapsed = start.elapsed().as_secs_f64();
        let delta = tree.io_stats().snapshot().delta_since(&before);
        let throughput = ops.len() as f64 / elapsed.max(1e-9);
        let relative = match baseline {
            None => {
                baseline = Some(throughput);
                1.0
            }
            Some(base) if base > 0.0 => throughput / base,
            _ => 0.0,
        };
        table.push_row(vec![
            label.to_string(),
            format!("{throughput:.0}"),
            format!("{relative:.2}x"),
            delta.wal_appends.to_string(),
            delta.wal_syncs.to_string(),
            wal_kib(&dir),
            format!("{:.1}", delta.wal_bytes_appended as f64 / ops.len() as f64),
            format!("{:.3}", delta.wal_syncs as f64 / ops.len() as f64),
        ]);
    }
    table
}

fn recovery_table(scale: Scale) -> Table {
    let depths: &[usize] = match scale {
        Scale::Tiny => &[100, 400],
        Scale::Small => &[500, 2_000, 4_000],
        Scale::Full => &[1_000, 5_000, 20_000],
    };
    let mut table = Table::new(
        "E12b: crash-consistent reopen time vs ops since the last checkpoint",
        "tree built then dropped with no checkpoint; open_durable replays the WAL, \
         erases in-flight txns, verifies, and re-fences"
            .to_string(),
        &[
            "ops since checkpoint",
            "recovery ms",
            "wal KiB replayed",
            "keys recovered",
        ],
    );
    for depth in depths {
        let dir = TempDir::new(&format!("rec-{depth}"));
        let cfg = e12_config(Some(FsyncPolicy::Os));
        let spec = e12_workload(scale).with_ops(*depth);
        let ops = generate_ops(&spec);
        {
            let mut tree = TsbTree::open_durable(&dir.0, cfg.clone()).expect("durable tree");
            replay(&mut tree, &ops);
            // Dropped hot: every post-create write exists only in the WAL.
        }
        let wal_kib = wal_kib(&dir);
        let start = Instant::now();
        let tree = TsbTree::open_durable(&dir.0, cfg).expect("recovery");
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        let keys = tree
            .scan_current(&tsb_common::KeyRange::full())
            .expect("scan")
            .len();
        table.push_row(vec![
            depth.to_string(),
            format!("{elapsed_ms:.1}"),
            wal_kib,
            keys.to_string(),
        ]);
    }
    table
}

/// A file-backed tree with no WAL: the pre-durability baseline.
fn open_plain_file_tree(dir: &TempDir, cfg: TsbConfig) -> TsbTree {
    use std::sync::Arc;
    use tsb_storage::{IoStats, MagneticStore, WormStore};
    let stats = Arc::new(IoStats::new());
    let magnetic = Arc::new(
        MagneticStore::open_file(
            dir.0.join("current.pages"),
            cfg.page_size,
            Arc::clone(&stats),
        )
        .expect("magnetic store"),
    );
    let worm = Arc::new(
        WormStore::open_file(dir.0.join("history.worm"), cfg.worm_sector_size, stats)
            .expect("worm store"),
    );
    TsbTree::create(magnetic, worm, cfg).expect("tree")
}

fn wal_kib(dir: &TempDir) -> String {
    match std::fs::metadata(dir.0.join("redo.wal")) {
        Ok(meta) => format!("{:.1}", meta.len() as f64 / 1024.0),
        Err(_) => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_produces_both_tables() {
        let tables = run(Scale::Tiny);
        assert_eq!(tables.len(), 2);
        // Throughput table: one row per durability level, baseline first.
        assert_eq!(tables[0].rows.len(), 5);
        assert_eq!(tables[0].rows[0][2], "1.00x");
        let baseline_appends: u64 = tables[0].rows[0][3].parse().unwrap();
        assert_eq!(baseline_appends, 0, "no WAL, no appends");
        for row in &tables[0].rows[1..] {
            let appends: u64 = row[3].parse().unwrap();
            assert!(appends > 0, "durable rows log every mutation");
        }
        // Always fsyncs at least as often as EveryN(8), which beats EveryN(64).
        let syncs: Vec<u64> = tables[0].rows[1..]
            .iter()
            .map(|r| r[4].parse().unwrap())
            .collect();
        assert!(syncs[0] <= syncs[1] && syncs[1] <= syncs[2] && syncs[2] <= syncs[3]);
        // Recovery table: rows report a positive key count.
        for row in &tables[1].rows {
            let keys: usize = row[3].parse().unwrap();
            assert!(keys > 0, "recovery must surface the written keys");
        }
    }
}
