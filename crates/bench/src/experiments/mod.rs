//! The experiments (E1–E8). Each module builds its workloads, replays them
//! into the structures under test, and returns printable [`Table`]s. The
//! mapping from experiment id to paper artifact is in DESIGN.md §4; the
//! measured results and their interpretation are recorded in EXPERIMENTS.md.

pub mod ablation;
pub mod baseline;
pub mod concurrency;
pub mod cost_function;
pub mod descent_fanout;
pub mod durability;
pub mod policy_space;
pub mod query_cost;
pub mod ratio_sweep;
pub mod replication;
pub mod served;
pub mod sharded;
pub mod worm_utilization;

use crate::measure::Scale;
use crate::report::Table;

/// Every experiment id the harness knows about.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
];

/// Runs one experiment by id, returning its tables.
pub fn run_experiment(id: &str, scale: Scale) -> Option<Vec<Table>> {
    match id {
        "e1" | "e2" | "e3" => {
            // E1–E3 share one set of runs; return only the requested table.
            let tables = policy_space::run(scale);
            let index = match id {
                "e1" => 0,
                "e2" => 1,
                _ => 2,
            };
            Some(vec![tables.into_iter().nth(index)?])
        }
        "e1-3" | "policy-space" => Some(policy_space::run(scale)),
        "e4" => Some(ratio_sweep::run(scale)),
        "e5" => Some(cost_function::run(scale)),
        "e6" => Some(query_cost::run(scale)),
        "e7" => Some(worm_utilization::run(scale)),
        "e8" => Some(baseline::run(scale)),
        "e9" => Some(ablation::run(scale)),
        "e10" | "concurrency" => Some(concurrency::run(scale)),
        "e11" | "descent-fanout" => Some(descent_fanout::run(scale)),
        "e12" | "durability" => Some(durability::run(scale)),
        "e13" | "served" => Some(served::run(scale)),
        "e14" | "sharded" => Some(sharded::run(scale)),
        "e15" | "replication" => Some(replication::run(scale)),
        _ => None,
    }
}

/// Runs every experiment, returning all tables in order.
pub fn run_all(scale: Scale) -> Vec<Table> {
    let mut out = Vec::new();
    out.extend(policy_space::run(scale));
    out.extend(ratio_sweep::run(scale));
    out.extend(cost_function::run(scale));
    out.extend(query_cost::run(scale));
    out.extend(concurrency::run(scale));
    out.extend(descent_fanout::run(scale));
    out.extend(durability::run(scale));
    out.extend(served::run(scale));
    out.extend(sharded::run(scale));
    out.extend(replication::run(scale));
    out.extend(worm_utilization::run(scale));
    out.extend(baseline::run(scale));
    out.extend(ablation::run(scale));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_id_dispatches() {
        for id in ALL_EXPERIMENTS {
            let tables = run_experiment(id, Scale::Tiny)
                .unwrap_or_else(|| panic!("experiment {id} must be runnable"));
            assert!(!tables.is_empty());
            for t in &tables {
                assert!(!t.rows.is_empty(), "{id} produced an empty table");
            }
        }
        assert!(run_experiment("nope", Scale::Tiny).is_none());
    }
}
