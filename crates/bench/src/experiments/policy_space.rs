//! E1–E3: the paper's §5 evaluation — total space, current-database space,
//! and redundancy, under different splitting policies (E1, E2) and different
//! split-time choices (E3, §3.3 / Figure 6).

use tsb_common::{SplitPolicyKind, SplitTimeChoice};
use tsb_workload::generate_ops;

use crate::measure::{default_workload, measure_tsb, measure_wobt, Measurement, Scale};
use crate::report::{kib, ratio, Table};

/// The policy set every space experiment compares.
pub fn policy_matrix() -> Vec<(&'static str, SplitPolicyKind, SplitTimeChoice)> {
    vec![
        (
            "wobt-like (time @ now)",
            SplitPolicyKind::WobtLike,
            SplitTimeChoice::CurrentTime,
        ),
        (
            "time-preferring",
            SplitPolicyKind::TimePreferring,
            SplitTimeChoice::LastUpdate,
        ),
        (
            "threshold 2/3",
            SplitPolicyKind::Threshold {
                key_split_live_fraction: 2.0 / 3.0,
            },
            SplitTimeChoice::LastUpdate,
        ),
        (
            "cost-based",
            SplitPolicyKind::CostBased,
            SplitTimeChoice::LastUpdate,
        ),
        (
            "key-preferring",
            SplitPolicyKind::KeyPreferring,
            SplitTimeChoice::LastUpdate,
        ),
        (
            "key-only (naive B+-tree)",
            SplitPolicyKind::KeyOnly,
            SplitTimeChoice::LastUpdate,
        ),
    ]
}

/// Runs the shared workload under every policy (plus the WOBT) and produces
/// the E1, E2, and E3 tables, in that order.
pub fn run(scale: Scale) -> Vec<Table> {
    let spec = default_workload(scale);
    let ops = generate_ops(&spec);
    let note = format!(
        "{} operations over {} keys, update:insert = 4:1, {}-byte values",
        spec.num_ops, spec.num_keys, spec.value_size.0
    );

    let mut measurements: Vec<Measurement> = Vec::new();
    for (label, policy, choice) in policy_matrix() {
        let (_tree, m) = measure_tsb(label, policy, choice, &ops);
        measurements.push(m);
    }
    let (_wobt, wobt_m) = measure_wobt("WOBT (all data on WORM)", &ops);
    measurements.push(wobt_m);

    // E1: total space.
    let mut e1 = Table::new(
        "E1: total space use by splitting policy (SpaceM + SpaceO)",
        note.clone(),
        &["policy", "magnetic KiB", "worm KiB", "total KiB", "vs best"],
    );
    let best_total = measurements
        .iter()
        .map(Measurement::total_bytes)
        .min()
        .unwrap_or(1)
        .max(1);
    for m in &measurements {
        e1.push_row(vec![
            m.label.clone(),
            kib(m.magnetic_bytes),
            kib(m.worm_bytes),
            kib(m.total_bytes()),
            format!("{:.2}x", m.total_bytes() as f64 / best_total as f64),
        ]);
    }

    // E2: current-database space (the paper's SpaceM, the expensive device).
    let mut e2 = Table::new(
        "E2: current-database (magnetic) space by splitting policy",
        note.clone(),
        &["policy", "magnetic KiB", "live versions", "vs best"],
    );
    let best_mag = measurements
        .iter()
        .filter(|m| m.tree_stats.is_some())
        .map(|m| m.magnetic_bytes)
        .min()
        .unwrap_or(1)
        .max(1);
    for m in &measurements {
        let live = m
            .tree_stats
            .as_ref()
            .map(|s| s.live_versions.to_string())
            .unwrap_or_else(|| "-".to_string());
        let vs = if m.tree_stats.is_some() {
            format!("{:.2}x", m.magnetic_bytes as f64 / best_mag as f64)
        } else {
            "n/a".to_string()
        };
        e2.push_row(vec![m.label.clone(), kib(m.magnetic_bytes), live, vs]);
    }

    // E3: redundancy by policy and, for the time-preferring policy, by
    // split-time choice.
    let mut e3 = Table::new(
        "E3: redundancy by splitting policy and split-time choice",
        note,
        &[
            "policy / split-time choice",
            "version copies",
            "distinct",
            "redundant",
            "ratio",
        ],
    );
    for m in &measurements {
        e3.push_row(vec![
            m.label.clone(),
            (m.redundant_copies + m.distinct_versions).to_string(),
            m.distinct_versions.to_string(),
            m.redundant_copies.to_string(),
            ratio(m.redundancy_ratio),
        ]);
    }
    for (label, choice) in [
        (
            "time-preferring / split @ now",
            SplitTimeChoice::CurrentTime,
        ),
        (
            "time-preferring / split @ last update",
            SplitTimeChoice::LastUpdate,
        ),
        (
            "time-preferring / split @ median",
            SplitTimeChoice::MedianVersion,
        ),
    ] {
        let (_t, m) = measure_tsb(label, SplitPolicyKind::TimePreferring, choice, &ops);
        e3.push_row(vec![
            m.label.clone(),
            (m.redundant_copies + m.distinct_versions).to_string(),
            m.distinct_versions.to_string(),
            m.redundant_copies.to_string(),
            ratio(m.redundancy_ratio),
        ]);
    }

    vec![e1, e2, e3]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_the_paper_expectations() {
        let tables = run(Scale::Tiny);
        assert_eq!(tables.len(), 3);
        // Re-run the underlying measurements to assert on the numbers rather
        // than parsing table strings.
        let ops = generate_ops(&default_workload(Scale::Tiny));
        let (_t, time_pref) = measure_tsb(
            "time",
            SplitPolicyKind::TimePreferring,
            SplitTimeChoice::LastUpdate,
            &ops,
        );
        let (_t, key_pref) = measure_tsb(
            "key",
            SplitPolicyKind::KeyPreferring,
            SplitTimeChoice::LastUpdate,
            &ops,
        );
        let (_w, wobt) = measure_wobt("wobt", &ops);
        // Time splits minimize the current store; key splits minimize
        // redundancy; the WOBT (everything on WORM, duplicating on every
        // reorganization) uses the most total space.
        assert!(time_pref.magnetic_bytes <= key_pref.magnetic_bytes);
        assert!(key_pref.redundancy_ratio <= time_pref.redundancy_ratio);
        assert!(wobt.total_bytes() >= key_pref.total_bytes());
    }
}
