//! E6: query cost by query class and structure.
//!
//! The paper's design goal is "faster access to the most recent records
//! while tolerating slower access to the older, historical records" (§1),
//! with current data concentrated in a small number of (fast) magnetic
//! nodes and historical data on the (slow, ~3× seek) optical device. The
//! experiment measures logical node accesses per query — split by device —
//! and converts them to an estimated access time with the device model, for
//! the TSB-tree, the single-store baseline, and the WOBT.

use tsb_common::{CostParams, SplitPolicyKind, SplitTimeChoice};
use tsb_workload::generate_ops;

use crate::measure::{
    default_workload, measure_tsb, measure_wobt, query_batches, tsb_query_cost, wobt_query_cost,
    Scale,
};
use crate::report::{node_cache_cells, Table, NODE_CACHE_HEADERS};

/// Runs the query-cost experiment.
pub fn run(scale: Scale) -> Vec<Table> {
    let spec = default_workload(scale);
    let ops = generate_ops(&spec);
    let params = CostParams::default();
    let note = format!(
        "database built from {} operations (4 updates per insert); {} queries per class; \
         magnetic access {} ms, optical access {} ms",
        spec.num_ops,
        scale.queries(),
        params.magnetic_access_ms,
        params.worm_access_ms
    );

    let (tsb, _) = measure_tsb(
        "tsb (threshold 2/3)",
        SplitPolicyKind::Threshold {
            key_split_live_fraction: 2.0 / 3.0,
        },
        SplitTimeChoice::LastUpdate,
        &ops,
    );
    let (naive, _) = measure_tsb(
        "key-only baseline",
        SplitPolicyKind::KeyOnly,
        SplitTimeChoice::LastUpdate,
        &ops,
    );
    let (wobt, _) = measure_wobt("WOBT", &ops);

    let headers: Vec<&str> = [
        "query class",
        "structure",
        "magnetic accesses",
        "optical accesses",
        "est. ms/query",
    ]
    .into_iter()
    .chain(NODE_CACHE_HEADERS)
    .collect();
    let mut table = Table::new(
        "E6: query cost by query class (mean node accesses per query)",
        note,
        &headers,
    );
    for (class, queries) in query_batches(&ops, scale.queries()) {
        let tsb_cost = tsb_query_cost(&tsb, &queries, &params);
        let naive_cost = tsb_query_cost(&naive, &queries, &params);
        let wobt_cost = wobt_query_cost(&wobt, &queries, &params);
        for (structure, cost) in [
            ("TSB-tree (threshold 2/3)", tsb_cost),
            ("single-store versioned B+-tree", naive_cost),
            ("WOBT (all on optical)", wobt_cost),
        ] {
            let mut row = vec![
                class.to_string(),
                structure.to_string(),
                format!("{:.2}", cost.mean_current_accesses),
                format!("{:.2}", cost.mean_historical_accesses),
                format!("{:.1}", cost.mean_ms),
            ];
            row.extend(node_cache_cells(&cost.io_delta));
            table.push_row(row);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_lookups_stay_on_the_magnetic_device() {
        let spec = default_workload(Scale::Tiny);
        let ops = generate_ops(&spec);
        let params = CostParams::default();
        let (tsb, _) = measure_tsb(
            "tsb",
            SplitPolicyKind::Threshold {
                key_split_live_fraction: 2.0 / 3.0,
            },
            SplitTimeChoice::LastUpdate,
            &ops,
        );
        let (wobt, _) = measure_wobt("wobt", &ops);
        let batches = query_batches(&ops, Scale::Tiny.queries());
        let (_, current_queries) = &batches[0];
        let tsb_cost = tsb_query_cost(&tsb, current_queries, &params);
        let wobt_cost = wobt_query_cost(&wobt, current_queries, &params);
        // Current lookups in the TSB-tree never touch the optical device.
        assert_eq!(tsb_cost.mean_historical_accesses, 0.0);
        assert!(tsb_cost.mean_current_accesses >= 1.0);
        // The WOBT pays optical-device prices even for current data.
        assert!(wobt_cost.mean_ms > tsb_cost.mean_ms);
    }
}
