//! E4: the §5 parameter sweep over the rate of update versus insertion.
//!
//! Expected shape: with no updates (insert-only) every policy behaves like a
//! B+-tree (no migration, no redundancy); as the update share grows, the
//! historical store grows, the time-splitting policies hold the current
//! store flat while the single-store baseline balloons, and redundancy rises
//! for policies that duplicate spanning versions.

use tsb_common::{SplitPolicyKind, SplitTimeChoice};
use tsb_workload::{generate_ops, scenarios};

use crate::measure::{measure_tsb, Scale};
use crate::report::{kib, ratio, Table};

/// The update:insert ratios swept (updates per insert).
pub const RATIOS: &[f64] = &[0.0, 1.0, 4.0, 9.0, 19.0];

/// Runs the sweep for a representative policy trio.
pub fn run(scale: Scale) -> Vec<Table> {
    let note = format!(
        "{} operations, 100-byte values; ratios are updates per insert; the key space of \
         each row is ops/(1+ratio) so the mix is exact",
        scale.ops()
    );
    let sweep = scenarios::update_ratio_sweep(scale.ops(), RATIOS, 0xA11CE);

    let policies = [
        (
            "threshold 2/3",
            SplitPolicyKind::Threshold {
                key_split_live_fraction: 2.0 / 3.0,
            },
        ),
        ("time-preferring", SplitPolicyKind::TimePreferring),
        ("key-only (naive B+-tree)", SplitPolicyKind::KeyOnly),
    ];

    let mut table = Table::new(
        "E4: space and redundancy vs. update:insert ratio",
        note,
        &[
            "update:insert",
            "policy",
            "magnetic KiB",
            "worm KiB",
            "total KiB",
            "redundancy",
        ],
    );
    for (r, spec) in &sweep {
        let mut spec = spec.clone();
        spec.value_size = (100, 100);
        let ops = generate_ops(&spec);
        for (label, policy) in &policies {
            let (_t, m) = measure_tsb(label, *policy, SplitTimeChoice::LastUpdate, &ops);
            table.push_row(vec![
                format!("{r}:1"),
                label.to_string(),
                kib(m.magnetic_bytes),
                kib(m.worm_bytes),
                kib(m.total_bytes()),
                ratio(m.redundancy_ratio),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsb_workload::WorkloadSpec;

    #[test]
    fn higher_update_ratios_shift_data_to_the_historical_store() {
        let base = WorkloadSpec::default()
            .with_ops(Scale::Tiny.ops())
            .with_value_size(100);
        // Insert-only needs a key space at least as large as the op count.
        let insert_only = generate_ops(
            &base
                .clone()
                .with_keys(Scale::Tiny.ops() as u64)
                .with_update_ratio(0.0),
        );
        let update_heavy = generate_ops(&base.with_keys(Scale::Tiny.keys()).with_update_ratio(9.0));

        let policy = SplitPolicyKind::Threshold {
            key_split_live_fraction: 2.0 / 3.0,
        };
        let (_a, m_ins) = measure_tsb("ins", policy, SplitTimeChoice::LastUpdate, &insert_only);
        let (_b, m_upd) = measure_tsb("upd", policy, SplitTimeChoice::LastUpdate, &update_heavy);

        // Insert-only: nothing migrates, nothing is redundant.
        assert_eq!(m_ins.worm_bytes, 0);
        assert_eq!(m_ins.redundant_copies, 0);
        // Update-heavy: history migrates and the current store is smaller
        // than the insert-only current store (fewer live records).
        assert!(m_upd.worm_bytes > 0);
        assert!(m_upd.magnetic_bytes <= m_ins.magnetic_bytes);
    }
}
