//! E15: read scale-out and replication lag — 1 primary + {0, 1, 2} replicas.
//!
//! The WAL-shipping tentpole's economic claim is that replicas turn the
//! redundant log into **served read capacity**: every replica is a full
//! TSB engine answering current, as-of, and history reads from its own
//! disk, while the primary keeps taking writes. This experiment prices
//! that claim on loopback. For each row a fresh durable primary is
//! preloaded, wrapped in a [`TsbServer`], and joined by `R` replica
//! servers (each a [`ReplicaEngine`] bootstrapped and streamed by a
//! [`ReplicaRunner`]). A fixed per-endpoint budget of closed-loop reader
//! connections then issues point gets round-robin over every serving
//! endpoint while a background writer keeps committing on the primary —
//! so the read fleet is measured *under* replication traffic, not on a
//! quiesced system.
//!
//! Reported per row: aggregate served read ops/s, its ratio to the
//! primary-only baseline (the acceptance bar is ≥ 1.5x at two replicas),
//! the background writer's committed ops/s, the worst replication lag a
//! status poll observed during the window (records behind the primary's
//! durable LSN, and milliseconds since the replica last applied), and how
//! long the replicas needed to drain to lag zero after the writer stopped.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tsb_client::TsbClient;
use tsb_common::{FsyncPolicy, Key, SplitPolicyKind, SplitTimeChoice};
use tsb_core::TsbOptions;
use tsb_server::replica::ReplicaRunner;
use tsb_server::TsbServer;

use crate::measure::{experiment_config, Scale};
use crate::report::Table;

/// Closed-loop reader connections per serving endpoint: a fixed per-node
/// budget, so added replicas add aggregate capacity.
const READERS_PER_ENDPOINT: usize = 4;

/// Client think time between point reads (TPC-style closed loop). Each
/// connection demands at most `1 / (THINK + service)` ops/s, so a single
/// endpoint's budgeted connections cap out and added replicas — each
/// bringing its own budget — raise fleet capacity until the host
/// saturates. Without think time a loopback reader is pure CPU and the
/// table would measure core count, not serving capacity.
const READ_THINK_TIME: Duration = Duration::from_micros(150);

/// Pause between background writer commits: enough traffic to keep the
/// replicas streaming for the whole window without the writer starving
/// the read fleet of CPU.
const WRITE_PACING: Duration = Duration::from_micros(500);

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "tsb-e15-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn reads_per_conn(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 60,
        Scale::Small => 300,
        Scale::Full => 1_000,
    }
}

fn value_for(key: u64, round: u64) -> Vec<u8> {
    format!("e15-{key}-{round}").into_bytes()
}

/// Blocks until every replica reports `serving` with zero lag and answers
/// a sentinel read with the preloaded value.
fn wait_synced(addrs: &[String], sentinel_key: u64, sentinel: &[u8]) {
    let deadline = Instant::now() + Duration::from_secs(30);
    for addr in addrs {
        loop {
            assert!(
                Instant::now() < deadline,
                "replica {addr} failed to sync within 30s"
            );
            if let Ok(mut client) = TsbClient::connect(addr.as_str()) {
                if let Ok(status) = client.replica_status() {
                    if status.serving
                        && status.lag_records == 0
                        && client.get(Key::from_u64(sentinel_key)).ok().flatten()
                            == Some(sentinel.to_vec())
                    {
                        break;
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

struct RowResult {
    read_ops_per_sec: f64,
    writer_ops_per_sec: f64,
    max_lag_records: u64,
    max_lag_ms: u64,
    catchup_ms: u128,
}

fn run_row(scale: Scale, replicas: usize) -> RowResult {
    let num_keys = scale.keys();
    let reads = reads_per_conn(scale);

    let pdir = TempDir::new(&format!("p{replicas}"));
    let mut cfg = experiment_config(SplitPolicyKind::TimePreferring, SplitTimeChoice::LastUpdate);
    // Always: every acknowledged commit is durable immediately, so the
    // shipping watermark (which stops at the durable LSN) never strands a
    // paced writer's tail behind an unfilled fsync group.
    cfg.fsync_policy = FsyncPolicy::Always;
    let primary = TsbOptions::durable(&pdir.0)
        .config(cfg.clone())
        .open_concurrent()
        .expect("primary engine");

    // Preload every key so point reads always hit.
    for key in 0..num_keys {
        primary
            .insert(Key::from_u64(key), value_for(key, 0))
            .expect("preload");
    }

    let primary_server = TsbServer::start(primary.clone(), "127.0.0.1:0").expect("primary server");
    let primary_addr = primary_server.local_addr().to_string();

    let mut rdirs = Vec::new();
    let mut replica_servers = Vec::new();
    let mut runners = Vec::new();
    let mut replica_addrs = Vec::new();
    for r in 0..replicas {
        let dir = TempDir::new(&format!("r{replicas}-{r}"));
        let engine = TsbOptions::durable(&dir.0)
            .config(cfg.clone())
            .open_replica()
            .expect("replica engine");
        let server = TsbServer::start_engine(Arc::new(engine.clone()), "127.0.0.1:0")
            .expect("replica server");
        replica_addrs.push(server.local_addr().to_string());
        runners.push(ReplicaRunner::start(engine, primary_addr.clone()));
        replica_servers.push(server);
        rdirs.push(dir);
    }
    wait_synced(&replica_addrs, 0, &value_for(0, 0));

    // Background writer: keeps the primary committing (and the replicas
    // streaming) for the whole read window.
    let stop = Arc::new(AtomicBool::new(false));
    let writer_ops = Arc::new(AtomicU64::new(0));
    let writer = {
        let primary = primary.clone();
        let stop = stop.clone();
        let writer_ops = writer_ops.clone();
        std::thread::spawn(move || {
            let mut round = 1u64;
            while !stop.load(Ordering::Relaxed) {
                let key = round % num_keys;
                primary
                    .insert(Key::from_u64(key), value_for(key, round))
                    .expect("background write");
                writer_ops.fetch_add(1, Ordering::Relaxed);
                round += 1;
                std::thread::sleep(WRITE_PACING);
            }
        })
    };

    // Lag sampler: the worst status any poll sees during the window.
    let max_lag_records = Arc::new(AtomicU64::new(0));
    let max_lag_ms = Arc::new(AtomicU64::new(0));
    let sampler = {
        let addrs = replica_addrs.clone();
        let stop = stop.clone();
        let max_lag_records = max_lag_records.clone();
        let max_lag_ms = max_lag_ms.clone();
        std::thread::spawn(move || {
            let mut clients: Vec<TsbClient> = addrs
                .iter()
                .filter_map(|a| TsbClient::connect(a.as_str()).ok())
                .collect();
            while !stop.load(Ordering::Relaxed) {
                for client in &mut clients {
                    if let Ok(status) = client.replica_status() {
                        max_lag_records.fetch_max(status.lag_records, Ordering::Relaxed);
                        max_lag_ms.fetch_max(status.lag_ms, Ordering::Relaxed);
                    }
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    // The read fleet: READERS_PER_ENDPOINT closed-loop connections per
    // serving endpoint (primary included), point gets over the keyspace.
    let mut endpoints = vec![primary_addr.clone()];
    endpoints.extend(replica_addrs.iter().cloned());
    let start = Instant::now();
    let total_reads: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = endpoints
            .iter()
            .enumerate()
            .flat_map(|(e, addr)| {
                (0..READERS_PER_ENDPOINT).map(move |c| {
                    let addr = addr.clone();
                    let seed = (e * READERS_PER_ENDPOINT + c) as u64;
                    s.spawn(move || {
                        let mut client = TsbClient::connect(addr.as_str()).expect("reader connect");
                        let mut key = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) % num_keys;
                        let mut done = 0u64;
                        for _ in 0..reads {
                            let value = client.get(Key::from_u64(key)).expect("read");
                            assert!(value.is_some(), "preloaded key {key} missing");
                            done += 1;
                            std::thread::sleep(READ_THINK_TIME);
                            key = (key.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1))
                                % num_keys;
                        }
                        done
                    })
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("reader")).sum()
    });
    let read_elapsed = start.elapsed();

    // Stop the writer, then time how long the replicas take to drain.
    stop.store(true, Ordering::Relaxed);
    writer.join().expect("writer thread");
    sampler.join().expect("sampler thread");
    let writer_elapsed = read_elapsed; // writer ran for the same window
    let catchup_start = Instant::now();
    if !replica_addrs.is_empty() {
        let last_round = writer_ops.load(Ordering::Relaxed);
        let (skey, sval) = if last_round == 0 {
            (0, value_for(0, 0))
        } else {
            (
                last_round % num_keys,
                value_for(last_round % num_keys, last_round),
            )
        };
        wait_synced(&replica_addrs, skey, &sval);
    }
    let catchup_ms = catchup_start.elapsed().as_millis();

    for runner in &mut runners {
        runner.stop();
    }
    for server in replica_servers {
        server.shutdown().expect("replica shutdown");
    }
    primary_server.shutdown().expect("primary shutdown");

    RowResult {
        read_ops_per_sec: total_reads as f64 / read_elapsed.as_secs_f64().max(1e-9),
        writer_ops_per_sec: writer_ops.load(Ordering::Relaxed) as f64
            / writer_elapsed.as_secs_f64().max(1e-9),
        max_lag_records: max_lag_records.load(Ordering::Relaxed),
        max_lag_ms: max_lag_ms.load(Ordering::Relaxed),
        catchup_ms,
    }
}

/// Runs the read scale-out table.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut table = Table::new(
        "E15: served read ops/s and replication lag vs replica count (loopback, writer running)",
        format!(
            "{} closed-loop reader conns per endpoint with {}us client think time, {} gets \
             each; paced background writer commits on the primary throughout; lag sampled \
             from replica_status every 2ms",
            READERS_PER_ENDPOINT,
            READ_THINK_TIME.as_micros(),
            reads_per_conn(scale)
        ),
        &[
            "replicas",
            "endpoints",
            "readers",
            "read ops/s",
            "vs primary-only",
            "writer ops/s",
            "max lag recs",
            "max lag ms",
            "catchup ms",
        ],
    );

    let mut baseline: Option<f64> = None;
    for replicas in [0usize, 1, 2] {
        let row = run_row(scale, replicas);
        let relative = match baseline {
            None => {
                baseline = Some(row.read_ops_per_sec);
                1.0
            }
            Some(base) if base > 0.0 => row.read_ops_per_sec / base,
            _ => 0.0,
        };
        table.push_row(vec![
            replicas.to_string(),
            (replicas + 1).to_string(),
            ((replicas + 1) * READERS_PER_ENDPOINT).to_string(),
            format!("{:.0}", row.read_ops_per_sec),
            format!("{relative:.2}x"),
            format!("{:.0}", row.writer_ops_per_sec),
            row.max_lag_records.to_string(),
            row.max_lag_ms.to_string(),
            row.catchup_ms.to_string(),
        ]);
    }
    vec![table]
}
