//! E13: served throughput — pipelined connections over the wire.
//!
//! E12c prices the group-commit pipeline with in-process closed-loop
//! threads; this experiment prices it **through the server**. For each
//! fsync policy a fresh durable engine is wrapped in a loopback
//! [`TsbServer`] and driven by the socket harness at 1, 2, 4, and 8
//! connections. The single connection runs a strict closed loop
//! (`pipeline_depth = 1`) — the blocking baseline — while multi-connection
//! rows pipeline with a bounded window of 4, so the server's batch path
//! (drain a burst, execute through the deferred-durability API, park once
//! on the max commit LSN) can coalesce many acks into few fsyncs.
//!
//! Reported per cell: committed throughput, its ratio to the policy's
//! blocking baseline, p50/p99 send-to-ack latency, fsyncs per op,
//! commits per fsync, and the E12 `% ceiling` column against the
//! calibrated device fsync floor — the acceptance bar for the served
//! path is `Always` at 8 pipelined connections reaching at least twice
//! the blocking baseline with under one fsync per op.

use std::path::PathBuf;

use tsb_common::{FsyncPolicy, SplitPolicyKind, SplitTimeChoice};
use tsb_core::TsbOptions;
use tsb_server::TsbServer;
use tsb_workload::{drive_socket, SocketDriveSpec};

use super::durability::{fsync_floor, pct_of_fsync_ceiling};
use crate::measure::{experiment_config, Scale};
use crate::report::Table;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "tsb-e13-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn ops_per_conn(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 30,
        Scale::Small => 150,
        Scale::Full => 400,
    }
}

/// Runs the served-throughput table.
pub fn run(scale: Scale) -> Vec<Table> {
    let floor = fsync_floor(33);
    let ops = ops_per_conn(scale);
    let mut table = Table::new(
        "E13: served ops/s and ack latency vs pipelined connections (loopback server)",
        format!(
            "{ops} puts/conn; 1 conn is a closed loop (depth 1), >1 conn pipeline at depth 4; \
             acks ride the durable-LSN watermark so a burst shares fsyncs; calibrated fsync \
             floor {:.0}us — '% ceiling' as in E12",
            floor.as_secs_f64() * 1e6
        ),
        &[
            "fsync policy",
            "conns",
            "depth",
            "ops/s",
            "vs 1 conn",
            "p50 us",
            "p99 us",
            "syncs/op",
            "commits/fsync",
            "% ceiling",
        ],
    );

    let policies: &[(&str, FsyncPolicy)] = &[
        ("Always", FsyncPolicy::Always),
        ("EveryN(8)", FsyncPolicy::EveryN(8)),
        ("Os", FsyncPolicy::Os),
    ];
    for (label, policy) in policies {
        let mut baseline: Option<f64> = None;
        for conns in [1usize, 2, 4, 8] {
            let depth = if conns == 1 { 1 } else { 4 };
            let dir = TempDir::new(&format!(
                "{}-{conns}",
                label.replace(['(', ')'], "").to_lowercase()
            ));
            // Same engine shape as E12c (1 KiB pages, 128-page pool): a
            // tiny `small_pages` pool evicts constantly and the flushed-LSN
            // barrier turns every eviction into a WAL fsync, drowning the
            // group-commit signal this table is after.
            let mut cfg =
                experiment_config(SplitPolicyKind::TimePreferring, SplitTimeChoice::LastUpdate);
            cfg.fsync_policy = *policy;
            let db = TsbOptions::durable(&dir.0)
                .config(cfg)
                .open_concurrent()
                .expect("durable engine");
            let server = TsbServer::start(db, "127.0.0.1:0").expect("start server");
            let addr = server.local_addr();

            let spec = SocketDriveSpec {
                connections: conns,
                ops_per_conn: ops,
                pipeline_depth: depth,
                num_keys: scale.keys(),
                value_size: 48,
                seed: 0xE13 ^ conns as u64,
            };
            // Warmup outside the window: prime connections, the tree, and
            // the WAL extent so the measured cell is steady-state.
            let warmup = SocketDriveSpec {
                ops_per_conn: (ops / 4).max(8),
                seed: spec.seed ^ 0xAAAA,
                ..spec.clone()
            };
            drive_socket(addr, &warmup).expect("warmup");

            let before = server.db().io_snapshot();
            let report = drive_socket(addr, &spec).expect("drive");
            let delta = server.db().io_snapshot().delta_since(&before);
            server.shutdown().expect("server shutdown");

            let throughput = report.ops_per_sec();
            let relative = match baseline {
                None => {
                    baseline = Some(throughput);
                    1.0
                }
                Some(base) if base > 0.0 => throughput / base,
                _ => 0.0,
            };
            let syncs_per_op = if report.committed_ops == 0 {
                "-".to_string()
            } else {
                format!(
                    "{:.3}",
                    delta.wal_syncs as f64 / report.committed_ops as f64
                )
            };
            let commits_per_fsync = delta
                .commits_per_fsync()
                .map(|r| format!("{r:.1}"))
                .unwrap_or_else(|| "-".to_string());
            table.push_row(vec![
                label.to_string(),
                conns.to_string(),
                depth.to_string(),
                format!("{throughput:.0}"),
                format!("{relative:.2}x"),
                format!("{:.0}", report.p50().as_secs_f64() * 1e6),
                format!("{:.0}", report.p99().as_secs_f64() * 1e6),
                syncs_per_op,
                commits_per_fsync,
                pct_of_fsync_ceiling(
                    report.committed_ops,
                    delta.wal_syncs,
                    report.elapsed.as_secs_f64(),
                    floor,
                ),
            ]);
        }
    }
    vec![table]
}
