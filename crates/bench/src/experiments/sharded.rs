//! E14: sharded write scaling — committed throughput, fsyncs/op, and
//! writer-lock wait across shard counts.
//!
//! Sharding attacks the two serialization points E12c left standing: the
//! single engine writer lock (every mutation serializes through it) and
//! the single WAL (every commit fsync queues behind it). An `N`-shard
//! [`tsb_core::ShardedTsb`] gives each shard its own lock, WAL, and
//! group-commit thread under one global commit clock, so writers touching
//! different shards append and fsync independently.
//!
//! The table runs the E12c closed loop across
//! `{1, 2, 4} shards × {1, 4, 8} writers × {Always, EveryN(8), Os}` and
//! reports, per cell: committed ops/s, the ratio to the same cell at one
//! shard, fsyncs per op, commits per fsync, mean writer-lock wait per op
//! (the "how serialized are the writers" number sharding exists to cut),
//! and the E12 `% ceiling` normalization against the calibrated device
//! fsync floor.
//!
//! On a single-core host the CPU, not the lock, is the ceiling: every
//! writer and committer thread time-slices one core, so committed ops/s
//! cannot scale with shard count. What sharding still must deliver here —
//! and what the acceptance criteria check — is *decoupling*: fsyncs/op at
//! 4 shards no worse than at 1 (independent WALs don't multiply syncs per
//! acknowledged commit), and writer-lock wait per op falling steeply as
//! contended writers spread over `N` locks.

use std::path::PathBuf;

use tsb_common::{FsyncPolicy, SplitPolicyKind, SplitTimeChoice};
use tsb_core::TsbOptions;
use tsb_workload::{drive_sharded, DurableDriveSpec};

use super::durability::{fsync_floor, pct_of_fsync_ceiling};
use crate::measure::{experiment_config, Scale};
use crate::report::Table;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "tsb-e14-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn ops_per_thread(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 40,
        Scale::Small => 200,
        Scale::Full => 500,
    }
}

/// Runs the sharded write-scaling table.
pub fn run(scale: Scale) -> Vec<Table> {
    let floor = fsync_floor(33);
    let ops = ops_per_thread(scale);
    let mut table = Table::new(
        "E14: sharded write scaling — ops/s, fsyncs/op, and writer-lock wait vs shard count",
        format!(
            "closed-loop writers (E12c harness) over an N-shard engine, one WAL + \
             group-commit thread per shard, one global commit clock; {ops} ops/writer, \
             value 48B; 'vs 1 shard' compares the same policy x writers cell; calibrated \
             fsync floor {:.0}us — '% ceiling' as in E12",
            floor.as_secs_f64() * 1e6
        ),
        &[
            "fsync policy",
            "shards",
            "writers",
            "ops/s",
            "vs 1 shard",
            "fsyncs/op",
            "commits/fsync",
            "lock-wait us/op",
            "% ceiling",
        ],
    );

    let policies: &[(&str, FsyncPolicy)] = &[
        ("Always", FsyncPolicy::Always),
        ("EveryN(8)", FsyncPolicy::EveryN(8)),
        ("Os", FsyncPolicy::Os),
    ];
    for (label, policy) in policies {
        for writers in [1usize, 4, 8] {
            let mut baseline: Option<f64> = None;
            for shards in [1usize, 2, 4] {
                let dir = TempDir::new(&format!(
                    "{}-{writers}w-{shards}s",
                    label.replace(['(', ')'], "").to_lowercase()
                ));
                // Same engine shape as E12c/E13 (1 KiB pages, 128-page
                // pool per shard) so rows are comparable across tables.
                let mut cfg =
                    experiment_config(SplitPolicyKind::TimePreferring, SplitTimeChoice::LastUpdate);
                cfg.fsync_policy = *policy;
                let db = TsbOptions::durable(&dir.0)
                    .config(cfg)
                    .shards(shards)
                    .open()
                    .expect("sharded engine");

                let spec = DurableDriveSpec {
                    threads: writers,
                    ops_per_thread: ops,
                    num_keys: scale.keys(),
                    value_size: 48,
                    seed: 0xE14 ^ (writers as u64) << 8 ^ shards as u64,
                };
                // Warmup outside the window: prime each shard's tree and
                // WAL extent so the measured cell is steady state.
                let warmup = DurableDriveSpec {
                    ops_per_thread: (ops / 4).max(8),
                    seed: spec.seed ^ 0xAAAA,
                    ..spec.clone()
                };
                drive_sharded(&db, &warmup).expect("warmup");
                let report = drive_sharded(&db, &spec).expect("drive");

                let throughput = report.ops_per_sec();
                let relative = match baseline {
                    None => {
                        baseline = Some(throughput);
                        1.0
                    }
                    Some(base) if base > 0.0 => throughput / base,
                    _ => 0.0,
                };
                let commits_per_fsync = report
                    .io
                    .commits_per_fsync()
                    .map(|r| format!("{r:.1}"))
                    .unwrap_or_else(|| "-".to_string());
                table.push_row(vec![
                    label.to_string(),
                    shards.to_string(),
                    writers.to_string(),
                    format!("{throughput:.0}"),
                    format!("{relative:.2}x"),
                    format!("{:.3}", report.fsyncs_per_op()),
                    commits_per_fsync,
                    format!("{:.1}", report.lock_wait_per_op().as_secs_f64() * 1e6),
                    pct_of_fsync_ceiling(
                        report.committed_ops,
                        report.io.wal_syncs,
                        report.elapsed.as_secs_f64(),
                        floor,
                    ),
                ]);
            }
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_produces_the_full_matrix() {
        let tables = run(Scale::Tiny);
        assert_eq!(tables.len(), 1);
        // 3 policies x 3 writer counts x 3 shard counts.
        assert_eq!(tables[0].rows.len(), 27);
        for row in &tables[0].rows {
            let tput: f64 = row[3].parse().unwrap();
            assert!(tput > 0.0, "every cell commits");
            let fsyncs_per_op: f64 = row[5].parse().unwrap();
            assert!(fsyncs_per_op.is_finite());
            if row[0] == "Os" {
                assert_eq!(row[8], "-", "Os rows have no fsync ceiling");
            }
        }
        // Each (policy, writers) group leads with its own 1-shard baseline.
        for group in tables[0].rows.chunks(3) {
            assert_eq!(group[0][1], "1");
            assert_eq!(group[0][4], "1.00x");
        }
    }
}
