//! E7: WORM sector utilization — the TSB-tree's consolidation-then-append
//! migration (§3.4) versus the WOBT's one-new-entry-per-sector writes (§2.1),
//! which is the space problem the paper opens with (§1).

use tsb_common::{SplitPolicyKind, SplitTimeChoice};
use tsb_workload::generate_ops;

use crate::measure::{default_workload, measure_tsb, measure_wobt, Scale};
use crate::report::{kib, Table};

/// Runs the utilization comparison across value sizes (small records waste
/// the most WORM space under the WOBT).
pub fn run(scale: Scale) -> Vec<Table> {
    let note = format!(
        "{} operations over {} keys, update:insert = 4:1; 1 KiB WORM sectors",
        scale.ops(),
        scale.keys()
    );
    let mut table = Table::new(
        "E7: WORM sector utilization — consolidation vs. one entry per sector",
        note,
        &[
            "record size",
            "structure",
            "worm KiB",
            "payload KiB",
            "utilization",
        ],
    );
    for &value_size in &[32usize, 100, 400] {
        let mut spec = default_workload(scale);
        spec.value_size = (value_size, value_size);
        let ops = generate_ops(&spec);

        let (_t, tsb) = measure_tsb(
            "tsb",
            SplitPolicyKind::TimePreferring,
            SplitTimeChoice::LastUpdate,
            &ops,
        );
        let (_w, wobt) = measure_wobt("wobt", &ops);

        let tsb_stats = tsb.tree_stats.as_ref().expect("tsb stats");
        table.push_row(vec![
            format!("{value_size} B"),
            "TSB-tree (historical store)".into(),
            kib(tsb.worm_bytes),
            kib(tsb_stats.space.worm_payload_bytes),
            tsb.worm_utilization
                .map(|u| format!("{:.2}", u))
                .unwrap_or_else(|| "-".into()),
        ]);
        let wobt_stats = wobt.wobt_stats.as_ref().expect("wobt stats");
        table.push_row(vec![
            format!("{value_size} B"),
            "WOBT (whole database)".into(),
            kib(wobt.worm_bytes),
            kib(wobt_stats.payload_bytes),
            format!("{:.2}", wobt_stats.utilization()),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consolidated_migration_beats_single_entry_sectors_for_small_records() {
        let mut spec = default_workload(Scale::Tiny);
        spec.value_size = (32, 32);
        let ops = generate_ops(&spec);
        let (_t, tsb) = measure_tsb(
            "tsb",
            SplitPolicyKind::TimePreferring,
            SplitTimeChoice::LastUpdate,
            &ops,
        );
        let (_w, wobt) = measure_wobt("wobt", &ops);
        let tsb_util = tsb.worm_utilization.unwrap_or(1.0);
        let wobt_util = wobt.worm_utilization.unwrap();
        assert!(
            tsb_util > wobt_util,
            "TSB {tsb_util:.3} must beat WOBT {wobt_util:.3} for 32-byte records"
        );
    }
}
