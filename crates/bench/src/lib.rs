//! # tsb-bench
//!
//! The experiment harness for the TSB-tree reproduction. The SIGMOD '89
//! paper contains no measured evaluation tables; §5 defines the evaluation
//! the authors planned — *total space use, space use in the current
//! database, and amount of redundancy, under different splitting policies
//! and with different rates of update versus insertion* — and the rest of
//! the paper motivates query-cost and WORM-utilization comparisons against
//! the Write-Once B-tree. Each experiment here (E1–E8, indexed in DESIGN.md
//! and EXPERIMENTS.md) regenerates one of those tables:
//!
//! * **E1** total space by splitting policy,
//! * **E2** current-database (magnetic) space by policy,
//! * **E3** redundancy by policy and by split-time choice (§3.3 / Figure 6),
//! * **E4** the update:insert ratio sweep,
//! * **E5** the storage cost function `CS = SpaceM·CM + SpaceO·CO` under
//!   different device price ratios, with the cost-based policy,
//! * **E6** query cost (node accesses and device-weighted time) for current
//!   lookups, as-of lookups, range scans, and version histories,
//! * **E7** WORM sector utilization: TSB consolidation vs. the WOBT's
//!   one-entry-per-sector writes,
//! * **E8** head-to-head: TSB-tree vs. WOBT vs. a single-store versioned
//!   B+-tree baseline.
//!
//! Run everything with `cargo run -p tsb-bench --bin experiments --release`,
//! or a single experiment with e.g. `... -- e3`. Criterion micro-benchmarks
//! (B1–B4) live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod measure;
pub mod report;

pub use measure::{measure_tsb, measure_wobt, Measurement, Scale};
pub use report::Table;
