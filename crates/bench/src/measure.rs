//! Shared measurement plumbing: build a structure, replay a workload, and
//! collect exactly the quantities the paper's evaluation names.

use tsb_common::{
    CostParams, Key, KeyRange, SplitPolicyKind, SplitTimeChoice, Timestamp, TsbConfig,
};
use tsb_core::{TreeStats, TsbOptions, TsbTree};
use tsb_wobt::{Wobt, WobtConfig, WobtStats};
use tsb_workload::{generate_queries, Op, Oracle, Query, QueryMix, WorkloadSpec};

/// Experiment scale: `Small` for CI / smoke runs, `Full` for the numbers
/// reported in EXPERIMENTS.md.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Minimal runs used by unit tests of the harness itself.
    Tiny,
    /// Fast runs (seconds) for smoke testing: `--scale small`.
    Small,
    /// The default reporting scale.
    Full,
}

impl Scale {
    /// Number of operations per workload at this scale.
    pub fn ops(&self) -> usize {
        match self {
            Scale::Tiny => 300,
            Scale::Small => 3_000,
            Scale::Full => 20_000,
        }
    }

    /// Key-space size at this scale.
    pub fn keys(&self) -> u64 {
        match self {
            Scale::Tiny => 40,
            Scale::Small => 300,
            Scale::Full => 2_000,
        }
    }

    /// Number of read queries per query experiment.
    pub fn queries(&self) -> usize {
        match self {
            Scale::Tiny => 60,
            Scale::Small => 500,
            Scale::Full => 4_000,
        }
    }
}

/// The standard experiment configuration: 1 KiB magnetic pages and the
/// paper's ~1 KB optical sectors, scaled down alongside small value sizes so
/// trees get realistically deep without needing millions of records.
pub fn experiment_config(policy: SplitPolicyKind, choice: SplitTimeChoice) -> TsbConfig {
    let mut cfg = TsbConfig::default()
        .with_page_size(1024)
        .with_worm_sector_size(1024)
        .with_split_policy(policy)
        .with_split_time_choice(choice);
    cfg.max_key_len = 64;
    cfg.buffer_pool_pages = 128;
    cfg
}

/// The matching WOBT configuration (same sector size, 8-sector extents ≈ the
/// same 8 KiB node footprint as eight magnetic pages of history).
pub fn wobt_config() -> WobtConfig {
    WobtConfig {
        sector_size: 1024,
        node_sectors: 8,
        max_key_len: 64,
    }
}

/// The default experiment workload: the §5 setting of a mixed
/// insert/update stream (4 updates per insert unless overridden).
pub fn default_workload(scale: Scale) -> WorkloadSpec {
    WorkloadSpec::default()
        .with_ops(scale.ops())
        .with_keys(scale.keys())
        .with_update_ratio(4.0)
        .with_value_size(100)
        .with_seed(0x5EED)
}

/// Everything measured for one structure under one workload.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Human-readable label (policy / structure name).
    pub label: String,
    /// Bytes on the magnetic (current) store — `SpaceM`.
    pub magnetic_bytes: u64,
    /// Bytes on the WORM (historical) store — `SpaceO`.
    pub worm_bytes: u64,
    /// Redundant version copies.
    pub redundant_copies: usize,
    /// Distinct logical versions.
    pub distinct_versions: usize,
    /// Redundancy ratio (redundant / distinct).
    pub redundancy_ratio: f64,
    /// WORM utilization (payload / device bytes), if any WORM space is used.
    pub worm_utilization: Option<f64>,
    /// Full TSB census when the structure is a TSB-tree.
    pub tree_stats: Option<TreeStats>,
    /// Full WOBT census when the structure is a WOBT.
    pub wobt_stats: Option<WobtStats>,
}

impl Measurement {
    /// Total device bytes.
    pub fn total_bytes(&self) -> u64 {
        self.magnetic_bytes + self.worm_bytes
    }

    /// Storage cost under `params`.
    pub fn storage_cost(&self, params: &CostParams) -> f64 {
        params.storage_cost(self.magnetic_bytes, self.worm_bytes)
    }
}

/// Replays `ops` into a fresh TSB-tree with the given policy and returns the
/// tree plus its measurement.
pub fn measure_tsb(
    label: &str,
    policy: SplitPolicyKind,
    choice: SplitTimeChoice,
    ops: &[Op],
) -> (TsbTree, Measurement) {
    let mut tree = TsbOptions::in_memory()
        .config(experiment_config(policy, choice))
        .open_tree()
        .expect("experiment config is valid");
    for op in ops {
        match op {
            Op::Put { key, value } => {
                tree.insert(key.clone(), value.clone()).expect("insert");
            }
            Op::Delete { key } => {
                tree.delete(key.clone()).expect("delete");
            }
        }
    }
    let stats = tree.tree_stats().expect("stats");
    let space = tree.space();
    let m = Measurement {
        label: label.to_string(),
        magnetic_bytes: space.magnetic_bytes,
        worm_bytes: space.worm_bytes,
        redundant_copies: stats.redundant_copies,
        distinct_versions: stats.distinct_versions,
        redundancy_ratio: stats.redundancy_ratio(),
        worm_utilization: space.worm_utilization(),
        tree_stats: Some(stats),
        wobt_stats: None,
    };
    (tree, m)
}

/// Replays `ops` into a fresh WOBT and returns it plus its measurement. The
/// WOBT has no magnetic component; all of its space is on the WORM device.
pub fn measure_wobt(label: &str, ops: &[Op]) -> (Wobt, Measurement) {
    let mut wobt = Wobt::new_in_memory(wobt_config()).expect("wobt config is valid");
    for op in ops {
        match op {
            Op::Put { key, value } => {
                wobt.insert(key.clone(), value.clone()).expect("insert");
            }
            Op::Delete { key } => {
                wobt.delete(key.clone()).expect("delete");
            }
        }
    }
    let stats = wobt.stats().expect("stats");
    let m = Measurement {
        label: label.to_string(),
        magnetic_bytes: 0,
        worm_bytes: stats.device_bytes,
        redundant_copies: stats.redundant_copies,
        distinct_versions: stats.distinct_versions,
        redundancy_ratio: stats.redundancy_ratio(),
        worm_utilization: Some(stats.utilization()),
        tree_stats: None,
        wobt_stats: Some(stats),
    };
    (wobt, m)
}

/// Builds the oracle for a replayed TSB-tree workload so queries can be
/// sampled from its history. The tree assigns timestamps 1, 2, 3, … in
/// operation order, which this mirrors.
pub fn oracle_for(ops: &[Op]) -> Oracle {
    let mut oracle = Oracle::new();
    for (i, op) in ops.iter().enumerate() {
        let ts = Timestamp(i as u64 + 1);
        match op {
            Op::Put { key, value } => oracle.put(key.clone(), ts, value.clone()),
            Op::Delete { key } => oracle.delete(key.clone(), ts),
        }
    }
    oracle
}

/// Average logical node accesses per query, split by device, for a TSB-tree.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryCost {
    /// Queries executed.
    pub queries: usize,
    /// Mean current-store node accesses per query.
    pub mean_current_accesses: f64,
    /// Mean historical-store node accesses per query.
    pub mean_historical_accesses: f64,
    /// Estimated mean access time per query in milliseconds (device-weighted
    /// with the experiment cost parameters).
    pub mean_ms: f64,
    /// Raw counter delta over the batch (node-cache hits/misses, decodes,
    /// device traffic) for the cache-behaviour columns of the reports.
    pub io_delta: tsb_storage::IoSnapshot,
}

/// Runs a query batch against a TSB-tree and reports mean node accesses.
pub fn tsb_query_cost(tree: &TsbTree, queries: &[Query], params: &CostParams) -> QueryCost {
    let stats = tree.io_stats();
    // Settle deferred build-phase encodes first: a query-time cache miss
    // can evict a dirty node left over from building the database, and
    // that encode + page write belongs to the build, not the queries.
    tree.flush_node_cache().expect("node-cache flush");
    let before = stats.snapshot();
    for q in queries {
        run_tsb_query(tree, q);
    }
    let delta = stats.snapshot().delta_since(&before);
    let n = queries.len().max(1) as f64;
    let mean_current = delta.node_accesses_current as f64 / n;
    let mean_hist = delta.node_accesses_historical as f64 / n;
    QueryCost {
        queries: queries.len(),
        mean_current_accesses: mean_current,
        mean_historical_accesses: mean_hist,
        mean_ms: mean_current * params.magnetic_access_ms
            + mean_hist * (params.worm_access_ms + params.worm_mount_ms),
        io_delta: delta,
    }
}

fn run_tsb_query(tree: &TsbTree, q: &Query) {
    match q {
        Query::CurrentGet { key } => {
            let _ = tree.get_current(key);
        }
        Query::AsOfGet { key, ts } => {
            let _ = tree.get_as_of(key, *ts);
        }
        Query::RangeScan { range, ts } => {
            let _ = tree.scan_as_of(range, *ts);
        }
        Query::VersionHistory { key } => {
            let _ = tree.versions(key);
        }
    }
}

/// Runs a query batch against a WOBT and reports mean node accesses (the
/// WOBT is entirely on the optical device, so all accesses are "historical").
pub fn wobt_query_cost(wobt: &Wobt, queries: &[Query], params: &CostParams) -> QueryCost {
    let stats = wobt.io_stats();
    let before = stats.snapshot();
    for q in queries {
        match q {
            Query::CurrentGet { key } => {
                let _ = wobt.get_current(key);
            }
            Query::AsOfGet { key, ts } => {
                let _ = wobt.get_as_of(key, *ts);
            }
            Query::RangeScan { range, ts } => {
                let _ = wobt.scan_as_of(range, *ts);
            }
            Query::VersionHistory { key } => {
                let _ = wobt.versions(key);
            }
        }
    }
    let delta = stats.snapshot().delta_since(&before);
    let n = queries.len().max(1) as f64;
    let mean_hist = delta.node_accesses_historical as f64 / n;
    QueryCost {
        queries: queries.len(),
        mean_current_accesses: 0.0,
        mean_historical_accesses: mean_hist,
        mean_ms: mean_hist * (params.worm_access_ms + params.worm_mount_ms),
        io_delta: delta,
    }
}

/// Samples per-shape query batches from a workload's history.
pub fn query_batches(ops: &[Op], count: usize) -> Vec<(&'static str, Vec<Query>)> {
    let oracle = oracle_for(ops);
    let shapes: [(&'static str, QueryMix); 4] = [
        (
            "current lookup",
            QueryMix {
                current_get: 1,
                as_of_get: 0,
                range_scan: 0,
                version_history: 0,
            },
        ),
        (
            "as-of lookup",
            QueryMix {
                current_get: 0,
                as_of_get: 1,
                range_scan: 0,
                version_history: 0,
            },
        ),
        (
            "range scan (as-of)",
            QueryMix {
                current_get: 0,
                as_of_get: 0,
                range_scan: 1,
                version_history: 0,
            },
        ),
        (
            "version history",
            QueryMix {
                current_get: 0,
                as_of_get: 0,
                range_scan: 0,
                version_history: 1,
            },
        ),
    ];
    shapes
        .iter()
        .map(|(name, mix)| (*name, generate_queries(&oracle, mix, count, 0xC0FFEE)))
        .collect()
}

/// Ensures query correctness while measuring: spot checks a handful of
/// queries against the oracle (cheap insurance that the measured structure
/// is not silently wrong).
pub fn spot_check_against_oracle(tree: &TsbTree, ops: &[Op]) {
    let oracle = oracle_for(ops);
    let keys: Vec<Key> = oracle.keys().cloned().collect();
    for key in keys.iter().step_by((keys.len() / 20).max(1)) {
        assert_eq!(
            tree.get_current(key).expect("read"),
            oracle.get_current(key),
            "spot check failed for {key}"
        );
    }
    let times = oracle.all_timestamps();
    if !times.is_empty() {
        let mid = times[times.len() / 2];
        assert_eq!(
            tree.count_as_of(&KeyRange::full(), mid).expect("count"),
            oracle.count_as_of(&KeyRange::full(), mid)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsb_workload::generate_ops;

    #[test]
    fn measurements_cover_both_structures() {
        let spec = WorkloadSpec::default()
            .with_ops(400)
            .with_keys(50)
            .with_update_ratio(3.0)
            .with_value_size(40);
        let ops = generate_ops(&spec);
        let (tree, m_tsb) = measure_tsb(
            "threshold",
            SplitPolicyKind::default(),
            SplitTimeChoice::LastUpdate,
            &ops,
        );
        assert_eq!(m_tsb.distinct_versions, 400);
        assert!(m_tsb.total_bytes() > 0);
        spot_check_against_oracle(&tree, &ops);

        let (_, m_wobt) = measure_wobt("wobt", &ops);
        assert_eq!(m_wobt.distinct_versions, 400);
        assert_eq!(m_wobt.magnetic_bytes, 0);
        assert!(m_wobt.worm_utilization.unwrap() > 0.0);

        // Query cost measurement runs and produces sane numbers.
        let params = CostParams::default();
        for (name, batch) in query_batches(&ops, 50) {
            let cost = tsb_query_cost(&tree, &batch, &params);
            assert_eq!(cost.queries, 50, "{name}");
            assert!(cost.mean_current_accesses + cost.mean_historical_accesses >= 1.0);
            assert!(cost.mean_ms > 0.0);
        }
    }

    #[test]
    fn oracle_for_mirrors_tree_timestamps() {
        let spec = WorkloadSpec::default()
            .with_ops(100)
            .with_keys(20)
            .with_value_size(16);
        let ops = generate_ops(&spec);
        let (tree, _) = measure_tsb(
            "check",
            SplitPolicyKind::default(),
            SplitTimeChoice::LastUpdate,
            &ops,
        );
        let oracle = oracle_for(&ops);
        for key in oracle.keys() {
            assert_eq!(tree.get_current(key).unwrap(), oracle.get_current(key));
        }
    }
}
