//! Plain-text table rendering for the experiment harness.

use std::fmt;

use tsb_storage::IoSnapshot;

/// A printable experiment table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id and title, e.g. `"E1: total space by splitting policy"`.
    pub title: String,
    /// One short note line printed under the title (workload parameters).
    pub note: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, note: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            note: note.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as there are headers).
    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "\n== {} ==", self.title)?;
        if !self.note.is_empty() {
            writeln!(f, "   {}", self.note)?;
        }
        let widths = self.widths();
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:<width$}", h, width = widths[i]))
            .collect();
        writeln!(f, "   {}", header_line.join("  "))?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "   {}", rule.join("  "))?;
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(8)))
                .collect();
            writeln!(f, "   {}", line.join("  "))?;
        }
        Ok(())
    }
}

/// Formats a byte count as KiB with one decimal.
pub fn kib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

/// Formats a ratio with three decimals.
pub fn ratio(r: f64) -> String {
    format!("{r:.3}")
}

/// Formats one baseline-vs-optimised timing pair of the E11 descent-routing
/// table: the two mean latencies and the speedup factor.
pub fn descent_cells(linear_ns: f64, binary_ns: f64) -> Vec<String> {
    vec![
        format!("{linear_ns:.1}"),
        format!("{binary_ns:.1}"),
        speedup(linear_ns, binary_ns),
    ]
}

/// Formats a speedup factor (`baseline / optimised`) as `N.NNx`.
pub fn speedup(baseline: f64, optimised: f64) -> String {
    if optimised <= 0.0 {
        "-".into()
    } else {
        format!("{:.2}x", baseline / optimised)
    }
}

/// Column headers matching [`node_cache_cells`].
pub const NODE_CACHE_HEADERS: [&str; 3] = ["nc hit rate", "nc hits/misses", "decodes"];

/// Formats the decoded-node cache columns of an experiment row from a
/// counter delta: hit rate, hit/miss counts, and the decodes actually paid.
/// Structures without a node cache (the WOBT) report `"-"` cells.
pub fn node_cache_cells(delta: &IoSnapshot) -> Vec<String> {
    match delta.node_cache_hit_rate() {
        Some(rate) => vec![
            ratio(rate),
            format!("{}/{}", delta.node_cache_hits, delta.node_cache_misses),
            delta.node_decodes.to_string(),
        ],
        None => vec!["-".into(), "-".into(), "-".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_renders_dash_for_zero_or_negative_denominator() {
        assert_eq!(speedup(100.0, 0.0), "-");
        assert_eq!(speedup(100.0, -1.0), "-");
        assert_eq!(speedup(100.0, 50.0), "2.00x");
    }

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("E0: demo", "note line", &["policy", "space", "redundancy"]);
        t.push_row(vec!["wobt-like".into(), "123.4".into(), "1.280".into()]);
        t.push_row(vec![
            "key-preferring-long-name".into(),
            "5.0".into(),
            "0".into(),
        ]);
        let text = t.to_string();
        assert!(text.contains("E0: demo"));
        assert!(text.contains("note line"));
        assert!(text.contains("key-preferring-long-name"));
        // Header separator present.
        assert!(text.contains("---"));
        assert_eq!(kib(2048), "2.0");
        assert_eq!(ratio(0.5), "0.500");
    }

    #[test]
    fn node_cache_cells_format_hits_and_absence() {
        let delta = IoSnapshot {
            node_cache_hits: 30,
            node_cache_misses: 10,
            node_decodes: 10,
            ..IoSnapshot::default()
        };
        assert_eq!(node_cache_cells(&delta), vec!["0.750", "30/10", "10"]);
        let empty = IoSnapshot::default();
        assert_eq!(node_cache_cells(&empty), vec!["-", "-", "-"]);
        assert_eq!(NODE_CACHE_HEADERS.len(), node_cache_cells(&empty).len());
    }
}
