//! [`FailoverClient`]: retries over an endpoint list, following the
//! primary across promotions.

use std::time::Duration;

use tsb_common::{Key, KeyRange, TimeRange, Timestamp, TsbError, TsbResult};

use crate::{connection_broken, ClientOptions, ServerRole, TsbClient};

/// A client that holds a **list of candidate endpoints** (primary plus
/// replicas) instead of one connection, and retries per
/// [`crate::RetryPolicy`]:
///
/// * **Reads** (idempotent) are served by whichever endpoint answers —
///   replicas included — and rotate to the next candidate on connection
///   failure or overload shedding.
/// * **Writes** follow the primary. On `read-only` (the endpoint is a
///   replica, or a primary that has been demoted/fenced), on overload, or
///   on a broken connection, the client re-discovers the primary by
///   asking every reachable endpoint for its `role` and picking the
///   primary with the **highest promotion epoch**, then retries there.
///
/// Failed write retries are **at-least-once**: a connection that dies
/// between send and reply leaves the outcome unknown, and the retry may
/// apply the write a second time (two adjacent versions with the same
/// value — harmless for last-writer-wins keys, observable in version
/// histories). Callers that need exactly-once must keep their own idempotency
/// keys.
///
/// Each failed attempt sleeps a deterministically jittered exponential
/// backoff (seeded by `salt`, see [`crate::RetryPolicy::backoff_for`]), so a
/// thousand clients re-finding a freshly promoted primary do not arrive in
/// lockstep.
pub struct FailoverClient {
    endpoints: Vec<String>,
    opts: ClientOptions,
    salt: u64,
    /// Connection currently believed to be the primary.
    primary: Option<TsbClient>,
    /// Connection serving reads (may be a replica, may be the index of a
    /// primary — whatever answered).
    reader: Option<TsbClient>,
    /// Rotation cursor for read connections, so consecutive reconnects
    /// spread over the endpoint list.
    reader_cursor: usize,
    attempts_observed: u64,
}

impl FailoverClient {
    /// Creates a failover client over `endpoints` (each `host:port`).
    /// Connections are opened lazily, per operation class. `salt` seeds
    /// retry jitter: fix it for reproducible schedules, derive it from a
    /// per-client id in fleets.
    pub fn new(
        endpoints: impl IntoIterator<Item = impl Into<String>>,
        opts: ClientOptions,
        salt: u64,
    ) -> TsbResult<FailoverClient> {
        let endpoints: Vec<String> = endpoints.into_iter().map(Into::into).collect();
        if endpoints.is_empty() {
            return Err(TsbError::config(
                "FailoverClient needs at least one endpoint",
            ));
        }
        Ok(FailoverClient {
            endpoints,
            opts,
            salt,
            primary: None,
            reader: None,
            reader_cursor: 0,
            attempts_observed: 0,
        })
    }

    /// Total attempts that failed and were retried so far (for harnesses
    /// asserting that chaos actually exercised the retry path).
    pub fn retries(&self) -> u64 {
        self.attempts_observed
    }

    // ----- the verbs ------------------------------------------------------

    /// Durable insert on the current primary, failing over if it moved.
    pub fn put(&mut self, key: impl Into<Key>, value: Vec<u8>) -> TsbResult<Timestamp> {
        let (key, value) = (key.into(), value);
        self.with_retry(true, move |c| c.put(key.clone(), value.clone()))
    }

    /// Durable delete on the current primary, failing over if it moved.
    pub fn delete(&mut self, key: impl Into<Key>) -> TsbResult<Timestamp> {
        let key = key.into();
        self.with_retry(true, move |c| c.delete(key.clone()))
    }

    /// Point read from any live endpoint (replicas serve this too;
    /// bounded staleness applies — see [`crate::ReadPreference`]).
    pub fn get(&mut self, key: impl Into<Key>) -> TsbResult<Option<Vec<u8>>> {
        let key = key.into();
        self.with_retry(false, move |c| c.get(key.clone()))
    }

    /// As-of point read from any live endpoint.
    pub fn get_as_of(
        &mut self,
        key: impl Into<Key>,
        as_of: Timestamp,
    ) -> TsbResult<Option<Vec<u8>>> {
        let key = key.into();
        self.with_retry(false, move |c| c.get_as_of(key.clone(), as_of))
    }

    /// Range scan from any live endpoint.
    pub fn range(
        &mut self,
        range: KeyRange,
        as_of: Option<Timestamp>,
    ) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        self.with_retry(false, move |c| c.range(range.clone(), as_of))
    }

    /// Version history from any live endpoint.
    pub fn history(
        &mut self,
        key: impl Into<Key>,
        window: TimeRange,
    ) -> TsbResult<Vec<tsb_common::Version>> {
        let key = key.into();
        self.with_retry(false, move |c| c.history(key.clone(), window))
    }

    /// The current primary's role (discovering it if necessary).
    pub fn primary_role(&mut self) -> TsbResult<ServerRole> {
        self.with_retry(true, |c| c.role())
    }

    // ----- machinery ------------------------------------------------------

    fn with_retry<T>(
        &mut self,
        write: bool,
        mut op: impl FnMut(&mut TsbClient) -> TsbResult<T>,
    ) -> TsbResult<T> {
        let max_retries = self.opts.retry.max_retries;
        let mut last_err: Option<TsbError> = None;
        for attempt in 0..=max_retries {
            if attempt > 0 {
                self.attempts_observed += 1;
                std::thread::sleep(self.opts.retry.backoff_for(attempt - 1, self.salt));
            }
            let conn = if write {
                self.primary_conn()
            } else {
                self.read_conn()
            };
            let client = match conn {
                Ok(c) => c,
                Err(e) => {
                    // Could not reach any endpoint this round; back off
                    // and try again unless the budget is gone.
                    last_err = Some(e);
                    continue;
                }
            };
            match op(client) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    let drop_conn = connection_broken(&e)
                        // A write answered `read-only` means this endpoint
                        // is not (any longer) the primary: re-discover.
                        || (write && matches!(e, TsbError::ReadOnly))
                        // Shed at accept: this endpoint is saturated,
                        // rotate away from it.
                        || matches!(e, TsbError::Overloaded(_))
                        // A read answered with a transient server-side
                        // condition (e.g. a replica still bootstrapping):
                        // rotate rather than hammer the same endpoint.
                        || (!write && matches!(e, TsbError::Internal(_)));
                    if drop_conn {
                        if write {
                            self.primary = None;
                        } else {
                            self.reader = None;
                        }
                    }
                    if !retryable(&e, write) {
                        return Err(e);
                    }
                    last_err = Some(e);
                }
            }
        }
        Err(last_err
            .unwrap_or_else(|| TsbError::internal("retry loop ended without an error recorded")))
    }

    fn primary_conn(&mut self) -> TsbResult<&mut TsbClient> {
        if self.primary.is_none() {
            self.primary = Some(self.discover_primary()?);
        }
        Ok(self.primary.as_mut().unwrap())
    }

    /// Asks every reachable endpoint for its role and keeps the primary
    /// with the highest promotion epoch (after a failover, both the newly
    /// promoted node and — briefly — a rebooted stale primary may claim
    /// the role; the epoch arbitrates).
    fn discover_primary(&mut self) -> TsbResult<TsbClient> {
        // Probe with a snappy connect so one dead endpoint does not eat
        // the whole retry budget.
        let probe_opts = ClientOptions {
            connect_timeout: self.opts.connect_timeout.min(Duration::from_secs(2)),
            ..self.opts.clone()
        };
        let mut best: Option<(u64, TsbClient)> = None;
        let mut last_err: Option<TsbError> = None;
        for addr in &self.endpoints {
            let mut client = match TsbClient::connect_with(addr.as_str(), &probe_opts) {
                Ok(c) => c,
                Err(e) => {
                    last_err = Some(e);
                    continue;
                }
            };
            match client.role() {
                Ok(role) if role.primary => {
                    if best.as_ref().is_none_or(|(epoch, _)| role.epoch > *epoch) {
                        best = Some((role.epoch, client));
                    }
                }
                Ok(_) => {}
                Err(e) => last_err = Some(e),
            }
        }
        match best {
            Some((_, client)) => Ok(client),
            None => Err(last_err.unwrap_or_else(|| {
                TsbError::internal("no endpoint currently claims the primary role")
            })),
        }
    }

    fn read_conn(&mut self) -> TsbResult<&mut TsbClient> {
        if self.reader.is_none() {
            self.reader = Some(self.connect_reader()?);
        }
        Ok(self.reader.as_mut().unwrap())
    }

    /// Connects to the next endpoint in rotation that accepts (replica or
    /// primary — for reads either will do; a replica that is still
    /// bootstrapping answers reads with `unavailable`, which the retry
    /// loop treats like any other transient failure).
    fn connect_reader(&mut self) -> TsbResult<TsbClient> {
        let n = self.endpoints.len();
        let mut last_err: Option<TsbError> = None;
        for step in 0..n {
            let idx = (self.reader_cursor + step) % n;
            match TsbClient::connect_with(self.endpoints[idx].as_str(), &self.opts) {
                Ok(c) => {
                    self.reader_cursor = (idx + 1) % n;
                    return Ok(c);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| TsbError::internal("endpoint list is empty")))
    }
}

/// Whether an error is worth another attempt.
fn retryable(e: &TsbError, write: bool) -> bool {
    if connection_broken(e) {
        return true;
    }
    match e {
        // Shed at accept or saturated: nothing executed, safe for both
        // classes.
        TsbError::Overloaded(_) => true,
        // The endpoint is not the primary (replica, or demoted): writes
        // retry against the re-discovered primary. A read never sees
        // this.
        TsbError::ReadOnly => write,
        // The per-op deadline is the caller's end-to-end budget; once it
        // is spent, retrying would overrun it.
        TsbError::DeadlineExceeded(_) => false,
        // Replica not serving yet / mid-rebase (travels as a remote
        // `config` error): transient for reads — rotate and retry.
        TsbError::Internal(msg) => !write && msg.contains("not serving"),
        _ => false,
    }
}
