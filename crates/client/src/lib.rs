//! `tsb-client`: a blocking TCP client for `tsb-server` that supports
//! request pipelining.
//!
//! Every request carries a client-chosen id; the server echoes it in the
//! reply, so a connection may keep many requests in flight and match
//! responses as they arrive. [`TsbClient`] exposes both styles:
//!
//! * **Sync conveniences** ([`TsbClient::put`], [`TsbClient::get`], …)
//!   send one request and block for its reply — the closed-loop client.
//! * **Pipelining primitives** ([`TsbClient::send`], [`TsbClient::recv_any`],
//!   [`TsbClient::wait_for`]) let a caller queue a window of requests
//!   before reaping replies. With several such connections (or one with a
//!   deep window), the server batches their commits into shared fsyncs —
//!   the over-the-wire face of the engine's pipelined group commit.
//!
//! Replies that arrive while waiting for a specific id are parked and
//! handed out later; nothing is dropped. The wire format is re-exported
//! as [`protocol`].
//!
//! ## Timeouts, deadlines, and failover
//!
//! Connections are guarded by default socket timeouts (connect 5 s,
//! read/write 30 s — see [`ClientOptions`]), so a dead or wedged server
//! surfaces as an error instead of a hang. An optional per-operation
//! deadline ([`ClientOptions::op_timeout`]) bounds each closed-loop verb
//! end to end, failing it with [`TsbError::DeadlineExceeded`].
//!
//! [`FailoverClient`] layers a retry loop over a list of candidate
//! endpoints: idempotent reads rotate across the replica set, writes
//! follow the primary (re-discovering it by `role` epoch after a
//! promotion), and transient failures — connection errors, server
//! overload shedding, a demoted primary's `read-only` — back off with
//! deterministic jitter ([`RetryPolicy`]) before the next attempt.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use tsb_common::{Key, KeyRange, TimeRange, Timestamp, TsbError, TsbResult, TxnId, Version};

pub use tsb_server::protocol;

mod failover;
mod retry;

pub use failover::FailoverClient;
pub use retry::{Deadline, RetryPolicy};

use protocol::{FrameDecoder, Reply, Request};

/// Connection and resilience knobs for [`TsbClient::connect_with`] and
/// [`FailoverClient`].
#[derive(Clone, Debug)]
pub struct ClientOptions {
    /// TCP connect timeout (per resolved address). Default 5 s.
    pub connect_timeout: Duration,
    /// Socket read timeout: the longest a blocking receive may sit
    /// without a byte from the server before erroring. Default 30 s;
    /// `None` waits forever.
    pub read_timeout: Option<Duration>,
    /// Socket write timeout. Default 30 s; `None` waits forever.
    pub write_timeout: Option<Duration>,
    /// End-to-end budget for each closed-loop verb (send + wait for the
    /// reply). `None` (the default) bounds operations only by the socket
    /// timeouts above. When it expires the verb fails with
    /// [`TsbError::DeadlineExceeded`]; the reply, if it later arrives, is
    /// parked like any other.
    pub op_timeout: Option<Duration>,
    /// Retry schedule used by [`FailoverClient`] (plain [`TsbClient`]s
    /// never retry on their own).
    pub retry: RetryPolicy,
}

impl Default for ClientOptions {
    fn default() -> ClientOptions {
        ClientOptions {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            op_timeout: None,
            retry: RetryPolicy::default(),
        }
    }
}

/// Where a client's read verbs are served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadPreference {
    /// Every verb goes to the connected server (the default).
    Primary,
    /// Point reads, range scans, and history queries go to a read replica
    /// at this address; writes, transactions, and everything else stay on
    /// the primary connection. Replica reads are fence-pinned at the
    /// replica's applied durable prefix, so they may trail the primary
    /// (bounded staleness) but never observe a torn or uncommitted state.
    Replica(String),
}

/// A server's answer to the `role` verb.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerRole {
    /// `true` for a primary (accepts writes), `false` for a read replica.
    pub primary: bool,
    /// The primary's shard count (1 for replicas).
    pub shards: u32,
    /// The server's promotion epoch. Starts at 1 for a never-promoted
    /// lineage and is bumped (durably, before the first write is
    /// accepted) every time a replica is promoted; after a failover the
    /// true primary is the one presenting the highest epoch.
    pub epoch: u64,
    /// The newest durable position in the server's log (0 for in-memory
    /// or sharded servers; a replica reports its applied fence LSN). The
    /// no-loss promotion drill: quiesce writers, read this off the
    /// primary, and promote only once the replica's
    /// [`ReplicaStatusReport::applied_lsn`] has reached it. The replica's
    /// own lag counters are relative to the primary watermark it *last
    /// polled*, so they can momentarily read zero while newer durable
    /// records exist that never shipped.
    pub durable_lsn: u64,
}

/// A replica's answer to the `replica_status` verb.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicaStatusReport {
    /// Whether the replica has an installed base and serves reads.
    pub serving: bool,
    /// Highest primary LSN applied and locally durable.
    pub applied_lsn: u64,
    /// Highest primary LSN received into the replica's local log (it may
    /// still be ahead of `applied_lsn` while an apply is in flight).
    pub received_lsn: u64,
    /// The primary's durable watermark as of the last shipped batch.
    pub source_durable_lsn: u64,
    /// Records between the primary's durable watermark and what this
    /// replica has **applied** (the end-to-end replication lag).
    pub lag_records: u64,
    /// Records between the primary's durable watermark and what this
    /// replica has **received** (the shipping lag; `lag_records -
    /// ship_lag_records` of it is merely waiting to be applied locally).
    /// When choosing a promotion candidate, pick the replica with the
    /// smallest shipping lag — received-but-unapplied records are
    /// recovered during promotion, records never shipped are gone.
    pub ship_lag_records: u64,
    /// Milliseconds since replication last made progress.
    pub lag_ms: u64,
}

impl ReplicaStatusReport {
    /// Records received but not yet applied locally (`received_lsn -
    /// applied_lsn`). High values mean the replica is apply-bound rather
    /// than network-bound.
    pub fn apply_lag_records(&self) -> u64 {
        self.received_lsn.saturating_sub(self.applied_lsn)
    }
}

/// One connection to a `tsb-server`.
///
/// Not `Sync` by design: a pipelined protocol needs one reader of the
/// response stream. Open one client per thread (that is also what gives
/// the server fsync-sharing across connections).
pub struct TsbClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Replies that arrived while waiting for a different id.
    parked: BTreeMap<u64, Reply>,
    next_id: u64,
    read_buf: Vec<u8>,
    opts: ClientOptions,
    /// The read timeout currently programmed on the socket, to avoid a
    /// setsockopt per read on the (common) deadline-free path.
    socket_read_timeout: Option<Duration>,
    /// Second connection serving reads under
    /// [`ReadPreference::Replica`]; `None` routes everything here.
    replica: Option<Box<TsbClient>>,
}

impl TsbClient {
    /// Connects to a server with [`ClientOptions::default`] (connect
    /// timeout 5 s, read/write timeouts 30 s).
    pub fn connect(addr: impl ToSocketAddrs) -> TsbResult<TsbClient> {
        TsbClient::connect_with(addr, &ClientOptions::default())
    }

    /// Connects to a server with explicit options. Each resolved address
    /// is tried in turn under `opts.connect_timeout`; the last error is
    /// returned if none accepts.
    pub fn connect_with(addr: impl ToSocketAddrs, opts: &ClientOptions) -> TsbResult<TsbClient> {
        let mut last_err = None;
        let mut stream = None;
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, opts.connect_timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let stream = match stream {
            Some(s) => s,
            None => {
                return Err(TsbError::Io(last_err.unwrap_or_else(|| {
                    std::io::Error::new(ErrorKind::InvalidInput, "address resolved to nothing")
                })))
            }
        };
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(opts.read_timeout)?;
        stream.set_write_timeout(opts.write_timeout)?;
        Ok(TsbClient {
            stream,
            decoder: FrameDecoder::new(),
            parked: BTreeMap::new(),
            next_id: 1,
            read_buf: vec![0u8; 64 * 1024],
            socket_read_timeout: opts.read_timeout,
            opts: opts.clone(),
            replica: None,
        })
    }

    /// The remote address this client is connected to.
    pub fn peer_addr(&self) -> TsbResult<SocketAddr> {
        Ok(self.stream.peer_addr()?)
    }

    /// Chooses where read verbs ([`Self::get`], [`Self::get_as_of`],
    /// [`Self::range`], [`Self::history`]) are served. Selecting
    /// [`ReadPreference::Replica`] opens (or replaces) a second connection
    /// to the replica; [`ReadPreference::Primary`] closes it.
    pub fn set_read_preference(&mut self, pref: ReadPreference) -> TsbResult<()> {
        match pref {
            ReadPreference::Primary => self.replica = None,
            ReadPreference::Replica(addr) => {
                let opts = self.opts.clone();
                self.replica = Some(Box::new(TsbClient::connect_with(addr.as_str(), &opts)?));
            }
        }
        Ok(())
    }

    // ----- pipelining primitives -----------------------------------------

    /// Sends `req` immediately and returns its request id without waiting
    /// for the reply. Queue as many as you like; reap with
    /// [`Self::recv_any`] or [`Self::wait_for`].
    pub fn send(&mut self, req: &Request) -> TsbResult<u64> {
        let id = self.next_id;
        self.next_id += 1;
        self.stream.write_all(&protocol::encode_request(id, req))?;
        Ok(id)
    }

    /// Returns the next available reply (a parked one, else blocks on the
    /// wire). Use when any completion order is acceptable.
    pub fn recv_any(&mut self) -> TsbResult<(u64, Reply)> {
        if let Some((&id, _)) = self.parked.iter().next() {
            let reply = self.parked.remove(&id).unwrap();
            return Ok((id, reply));
        }
        self.read_one(None)
    }

    /// Blocks until the reply for `id` arrives, parking any replies to
    /// other in-flight requests.
    pub fn wait_for(&mut self, id: u64) -> TsbResult<Reply> {
        self.wait_for_by(id, None)
    }

    /// [`Self::wait_for`] bounded by a deadline: fails with
    /// [`TsbError::DeadlineExceeded`] once it passes, leaving the request
    /// in flight (its reply parks on arrival).
    pub fn wait_for_deadline(&mut self, id: u64, deadline: Deadline) -> TsbResult<Reply> {
        self.wait_for_by(id, Some(deadline))
    }

    fn wait_for_by(&mut self, id: u64, deadline: Option<Deadline>) -> TsbResult<Reply> {
        if let Some(reply) = self.parked.remove(&id) {
            return Ok(reply);
        }
        loop {
            let (got, reply) = self.read_one(deadline)?;
            if got == id {
                return Ok(reply);
            }
            self.parked.insert(got, reply);
        }
    }

    /// Number of replies parked (received but not yet handed out).
    pub fn parked(&self) -> usize {
        self.parked.len()
    }

    /// The per-operation deadline implied by the options, started now.
    fn op_deadline(&self) -> Option<Deadline> {
        self.opts.op_timeout.map(Deadline::after)
    }

    fn read_one(&mut self, deadline: Option<Deadline>) -> TsbResult<(u64, Reply)> {
        loop {
            match self.decoder.next_frame()? {
                Some(body) => {
                    let (id, reply) = protocol::parse_reply(&body)?;
                    // Id 0 is reserved for connection-level conditions the
                    // server raises unprompted — e.g. `overloaded` when an
                    // accept is shed past `--max-conns`. Surface it as this
                    // operation's error instead of parking it forever.
                    if id == 0 {
                        if let Reply::Error { code, message } = reply {
                            return Err(remote_error(code, &message));
                        }
                    }
                    return Ok((id, reply));
                }
                None => {
                    self.arm_read_timeout(deadline.as_ref())?;
                    match self.stream.read(&mut self.read_buf) {
                        Ok(0) => {
                            return Err(TsbError::Io(std::io::Error::new(
                                ErrorKind::UnexpectedEof,
                                "server closed the connection",
                            )))
                        }
                        Ok(n) => {
                            let filled = &self.read_buf[..n];
                            self.decoder.feed(filled);
                        }
                        Err(e)
                            if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) =>
                        {
                            match deadline {
                                // The clamped deadline slice elapsed:
                                // either the budget is gone or we loop to
                                // re-arm the next slice.
                                Some(d) if d.expired() => {
                                    return Err(TsbError::DeadlineExceeded(
                                        "timed out waiting for the server's reply".into(),
                                    ))
                                }
                                Some(_) => continue,
                                // No deadline: this is the base socket
                                // read timeout — a wedged server.
                                None => return Err(TsbError::Io(e)),
                            }
                        }
                        Err(e) => return Err(TsbError::Io(e)),
                    }
                }
            }
        }
    }

    /// Programs the socket read timeout for the next blocking read: the
    /// base timeout, clamped to the deadline's remaining budget (never
    /// zero — a zero socket timeout is rejected by the OS).
    fn arm_read_timeout(&mut self, deadline: Option<&Deadline>) -> TsbResult<()> {
        let want = match deadline {
            None => self.opts.read_timeout,
            Some(d) => {
                if d.expired() {
                    return Err(TsbError::DeadlineExceeded(
                        "deadline expired before the server replied".into(),
                    ));
                }
                let remaining = d.remaining().max(Duration::from_millis(1));
                Some(match self.opts.read_timeout {
                    Some(base) => base.min(remaining),
                    None => remaining,
                })
            }
        };
        if want != self.socket_read_timeout {
            self.stream.set_read_timeout(want)?;
            self.socket_read_timeout = want;
        }
        Ok(())
    }

    // ----- closed-loop conveniences --------------------------------------

    /// Durable insert; returns the commit timestamp once acknowledged.
    pub fn put(&mut self, key: impl Into<Key>, value: Vec<u8>) -> TsbResult<Timestamp> {
        let deadline = self.op_deadline();
        let id = self.send(&Request::Put {
            key: key.into(),
            value,
        })?;
        committed(self.wait_for_by(id, deadline)?)
    }

    /// Durable delete; returns the tombstone's commit timestamp.
    pub fn delete(&mut self, key: impl Into<Key>) -> TsbResult<Timestamp> {
        let deadline = self.op_deadline();
        let id = self.send(&Request::Delete { key: key.into() })?;
        committed(self.wait_for_by(id, deadline)?)
    }

    /// Current-state point read (served per the read preference).
    pub fn get(&mut self, key: impl Into<Key>) -> TsbResult<Option<Vec<u8>>> {
        if let Some(replica) = self.replica.as_mut() {
            return replica.get(key);
        }
        let deadline = self.op_deadline();
        let id = self.send(&Request::Get { key: key.into() })?;
        value(self.wait_for_by(id, deadline)?)
    }

    /// As-of point read (served per the read preference).
    pub fn get_as_of(
        &mut self,
        key: impl Into<Key>,
        as_of: Timestamp,
    ) -> TsbResult<Option<Vec<u8>>> {
        if let Some(replica) = self.replica.as_mut() {
            return replica.get_as_of(key, as_of);
        }
        let deadline = self.op_deadline();
        let id = self.send(&Request::GetAsOf {
            key: key.into(),
            as_of,
        })?;
        value(self.wait_for_by(id, deadline)?)
    }

    /// Range scan; `as_of: None` reads the current database (served per
    /// the read preference).
    pub fn range(
        &mut self,
        range: KeyRange,
        as_of: Option<Timestamp>,
    ) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        if let Some(replica) = self.replica.as_mut() {
            return replica.range(range, as_of);
        }
        let deadline = self.op_deadline();
        let id = self.send(&Request::Range { range, as_of })?;
        match self.wait_for_by(id, deadline)? {
            Reply::Rows { rows } => Ok(rows),
            other => unexpected("Rows", other),
        }
    }

    /// Version history of `key` within `window` (served per the read
    /// preference).
    pub fn history(&mut self, key: impl Into<Key>, window: TimeRange) -> TsbResult<Vec<Version>> {
        if let Some(replica) = self.replica.as_mut() {
            return replica.history(key, window);
        }
        let deadline = self.op_deadline();
        let id = self.send(&Request::History {
            key: key.into(),
            window,
        })?;
        match self.wait_for_by(id, deadline)? {
            Reply::Versions { versions } => Ok(versions),
            other => unexpected("Versions", other),
        }
    }

    /// Begins a multi-key transaction on this connection.
    pub fn txn_begin(&mut self) -> TsbResult<TxnId> {
        let deadline = self.op_deadline();
        let id = self.send(&Request::TxnBegin)?;
        match self.wait_for_by(id, deadline)? {
            Reply::Txn { txn } => Ok(txn),
            other => unexpected("Txn", other),
        }
    }

    /// Buffers a write inside `txn` (`None` = delete).
    pub fn txn_write(
        &mut self,
        txn: TxnId,
        key: impl Into<Key>,
        value: Option<Vec<u8>>,
    ) -> TsbResult<()> {
        let deadline = self.op_deadline();
        let id = self.send(&Request::TxnWrite {
            txn,
            key: key.into(),
            value,
        })?;
        unit(self.wait_for_by(id, deadline)?)
    }

    /// Commits `txn`; returns its commit timestamp once durable.
    pub fn txn_commit(&mut self, txn: TxnId) -> TsbResult<Timestamp> {
        let deadline = self.op_deadline();
        let id = self.send(&Request::TxnCommit { txn })?;
        committed(self.wait_for_by(id, deadline)?)
    }

    /// Aborts `txn`.
    pub fn txn_abort(&mut self, txn: TxnId) -> TsbResult<()> {
        let deadline = self.op_deadline();
        let id = self.send(&Request::TxnAbort { txn })?;
        unit(self.wait_for_by(id, deadline)?)
    }

    /// Asks the connected server whether it is a primary or a replica,
    /// and at which promotion epoch.
    pub fn role(&mut self) -> TsbResult<ServerRole> {
        let deadline = self.op_deadline();
        let id = self.send(&Request::Role)?;
        match self.wait_for_by(id, deadline)? {
            Reply::RoleInfo {
                primary,
                shards,
                epoch,
                durable_lsn,
            } => Ok(ServerRole {
                primary,
                shards,
                epoch,
                durable_lsn,
            }),
            other => unexpected("RoleInfo", other),
        }
    }

    /// Replication progress of the connected replica (errors on a
    /// primary).
    pub fn replica_status(&mut self) -> TsbResult<ReplicaStatusReport> {
        let deadline = self.op_deadline();
        let id = self.send(&Request::ReplicaStatus)?;
        match self.wait_for_by(id, deadline)? {
            Reply::ReplicaStatusInfo {
                serving,
                applied_lsn,
                received_lsn,
                source_durable_lsn,
                lag_records,
                ship_lag_records,
                lag_ms,
            } => Ok(ReplicaStatusReport {
                serving,
                applied_lsn,
                received_lsn,
                source_durable_lsn,
                lag_records,
                ship_lag_records,
                lag_ms,
            }),
            other => unexpected("ReplicaStatusInfo", other),
        }
    }

    /// Promotes the connected **replica** to primary and returns its new
    /// promotion epoch. The replica stops replicating, recovers its local
    /// copy of the log through ordinary primary recovery (acknowledged
    /// writes survive; a partially shipped tail that was never
    /// acknowledged anywhere is discarded), durably bumps its epoch, and
    /// starts accepting writes. Idempotent: promoting a primary returns
    /// its current epoch. The old primary, if it ever comes back, is
    /// fenced off — its stale epoch is rejected on `subscribe`.
    pub fn promote(&mut self) -> TsbResult<u64> {
        let deadline = self.op_deadline();
        let id = self.send(&Request::Promote)?;
        match self.wait_for_by(id, deadline)? {
            Reply::Promoted { epoch } => Ok(epoch),
            other => unexpected("Promoted", other),
        }
    }

    /// Liveness probe; returns the server's install fence.
    pub fn ping(&mut self) -> TsbResult<Timestamp> {
        let deadline = self.op_deadline();
        let id = self.send(&Request::Ping)?;
        match self.wait_for_by(id, deadline)? {
            Reply::Pong { last_installed } => Ok(last_installed),
            other => unexpected("Pong", other),
        }
    }

    /// Asks the server to shut down cleanly (acknowledged before it
    /// stops).
    pub fn shutdown_server(&mut self) -> TsbResult<()> {
        let deadline = self.op_deadline();
        let id = self.send(&Request::Shutdown)?;
        unit(self.wait_for_by(id, deadline)?)
    }
}

/// Converts a remote error reply into a [`TsbError`]. Codes with a
/// faithful local variant round-trip to it (`read-only`, `stale-epoch`
/// loses its numbers, `overloaded`, `deadline-exceeded`), so callers can
/// classify retryable failures by matching the variant; everything else
/// becomes an [`TsbError::Internal`] tagged with the wire code's class
/// name.
pub fn remote_error(code: u8, message: &str) -> TsbError {
    match code {
        protocol::CODE_READ_ONLY => TsbError::ReadOnly,
        protocol::CODE_OVERLOADED => TsbError::Overloaded(format!("remote: {message}")),
        protocol::CODE_DEADLINE_EXCEEDED => {
            TsbError::DeadlineExceeded(format!("remote: {message}"))
        }
        // 20..=22: the server could not parse *our* byte stream (torn or
        // duplicated bytes between us and it). The connection is
        // desynchronized beyond repair — classify like a locally detected
        // torn frame so the failover layer reconnects instead of giving
        // up on a healthy server.
        20..=22 => TsbError::Corruption(format!(
            "protocol: peer rejected our frame stream [{}]: {message}",
            TsbError::wire_code_name(code)
        )),
        _ => TsbError::internal(format!(
            "remote error [{}]: {message}",
            TsbError::wire_code_name(code)
        )),
    }
}

/// Whether `e` means the connection itself is unusable (as opposed to a
/// healthy server answering with an application error).
pub(crate) fn connection_broken(e: &TsbError) -> bool {
    match e {
        TsbError::Io(io) => matches!(
            io.kind(),
            ErrorKind::UnexpectedEof
                | ErrorKind::ConnectionReset
                | ErrorKind::ConnectionAborted
                | ErrorKind::ConnectionRefused
                | ErrorKind::BrokenPipe
                | ErrorKind::NotConnected
                | ErrorKind::WouldBlock
                | ErrorKind::TimedOut
        ),
        // A torn frame means the stream is desynchronized beyond repair.
        TsbError::Corruption(msg) => msg.starts_with("protocol"),
        _ => false,
    }
}

fn committed(reply: Reply) -> TsbResult<Timestamp> {
    match reply {
        Reply::Committed { ts } => Ok(ts),
        other => unexpected("Committed", other),
    }
}

fn value(reply: Reply) -> TsbResult<Option<Vec<u8>>> {
    match reply {
        Reply::Value { value } => Ok(value),
        other => unexpected("Value", other),
    }
}

fn unit(reply: Reply) -> TsbResult<()> {
    match reply {
        Reply::Unit => Ok(()),
        other => unexpected("Unit", other),
    }
}

fn unexpected<T>(wanted: &str, got: Reply) -> TsbResult<T> {
    Err(match got {
        Reply::Error { code, message } => remote_error(code, &message),
        other => TsbError::corruption(format!(
            "protocol: expected a {wanted} reply, got {other:?}"
        )),
    })
}
