//! `tsb-client`: a blocking TCP client for `tsb-server` that supports
//! request pipelining.
//!
//! Every request carries a client-chosen id; the server echoes it in the
//! reply, so a connection may keep many requests in flight and match
//! responses as they arrive. [`TsbClient`] exposes both styles:
//!
//! * **Sync conveniences** ([`TsbClient::put`], [`TsbClient::get`], …)
//!   send one request and block for its reply — the closed-loop client.
//! * **Pipelining primitives** ([`TsbClient::send`], [`TsbClient::recv_any`],
//!   [`TsbClient::wait_for`]) let a caller queue a window of requests
//!   before reaping replies. With several such connections (or one with a
//!   deep window), the server batches their commits into shared fsyncs —
//!   the over-the-wire face of the engine's pipelined group commit.
//!
//! Replies that arrive while waiting for a specific id are parked and
//! handed out later; nothing is dropped. The wire format is re-exported
//! as [`protocol`].

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use tsb_common::{Key, KeyRange, TimeRange, Timestamp, TsbError, TsbResult, TxnId, Version};

pub use tsb_server::protocol;

use protocol::{FrameDecoder, Reply, Request};

/// Where a client's read verbs are served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadPreference {
    /// Every verb goes to the connected server (the default).
    Primary,
    /// Point reads, range scans, and history queries go to a read replica
    /// at this address; writes, transactions, and everything else stay on
    /// the primary connection. Replica reads are fence-pinned at the
    /// replica's applied durable prefix, so they may trail the primary
    /// (bounded staleness) but never observe a torn or uncommitted state.
    Replica(String),
}

/// A server's answer to the `role` verb.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerRole {
    /// `true` for a primary (accepts writes), `false` for a read replica.
    pub primary: bool,
    /// The primary's shard count (1 for replicas).
    pub shards: u32,
}

/// A replica's answer to the `replica_status` verb.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicaStatusReport {
    /// Whether the replica has an installed base and serves reads.
    pub serving: bool,
    /// Highest primary LSN applied and locally durable.
    pub applied_lsn: u64,
    /// The primary's durable watermark as of the last shipped batch.
    pub source_durable_lsn: u64,
    /// Records between the two (the replication lag, in log records).
    pub lag_records: u64,
    /// Milliseconds since replication last made progress.
    pub lag_ms: u64,
}

/// One connection to a `tsb-server`.
///
/// Not `Sync` by design: a pipelined protocol needs one reader of the
/// response stream. Open one client per thread (that is also what gives
/// the server fsync-sharing across connections).
pub struct TsbClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Replies that arrived while waiting for a different id.
    parked: BTreeMap<u64, Reply>,
    next_id: u64,
    read_buf: Vec<u8>,
    /// Second connection serving reads under
    /// [`ReadPreference::Replica`]; `None` routes everything here.
    replica: Option<Box<TsbClient>>,
}

impl TsbClient {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> TsbResult<TsbClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(TsbClient {
            stream,
            decoder: FrameDecoder::new(),
            parked: BTreeMap::new(),
            next_id: 1,
            read_buf: vec![0u8; 64 * 1024],
            replica: None,
        })
    }

    /// Chooses where read verbs ([`Self::get`], [`Self::get_as_of`],
    /// [`Self::range`], [`Self::history`]) are served. Selecting
    /// [`ReadPreference::Replica`] opens (or replaces) a second connection
    /// to the replica; [`ReadPreference::Primary`] closes it.
    pub fn set_read_preference(&mut self, pref: ReadPreference) -> TsbResult<()> {
        match pref {
            ReadPreference::Primary => self.replica = None,
            ReadPreference::Replica(addr) => {
                self.replica = Some(Box::new(TsbClient::connect(addr.as_str())?));
            }
        }
        Ok(())
    }

    // ----- pipelining primitives -----------------------------------------

    /// Sends `req` immediately and returns its request id without waiting
    /// for the reply. Queue as many as you like; reap with
    /// [`Self::recv_any`] or [`Self::wait_for`].
    pub fn send(&mut self, req: &Request) -> TsbResult<u64> {
        let id = self.next_id;
        self.next_id += 1;
        self.stream.write_all(&protocol::encode_request(id, req))?;
        Ok(id)
    }

    /// Returns the next available reply (a parked one, else blocks on the
    /// wire). Use when any completion order is acceptable.
    pub fn recv_any(&mut self) -> TsbResult<(u64, Reply)> {
        if let Some((&id, _)) = self.parked.iter().next() {
            let reply = self.parked.remove(&id).unwrap();
            return Ok((id, reply));
        }
        self.read_one()
    }

    /// Blocks until the reply for `id` arrives, parking any replies to
    /// other in-flight requests.
    pub fn wait_for(&mut self, id: u64) -> TsbResult<Reply> {
        if let Some(reply) = self.parked.remove(&id) {
            return Ok(reply);
        }
        loop {
            let (got, reply) = self.read_one()?;
            if got == id {
                return Ok(reply);
            }
            self.parked.insert(got, reply);
        }
    }

    /// Number of replies parked (received but not yet handed out).
    pub fn parked(&self) -> usize {
        self.parked.len()
    }

    fn read_one(&mut self) -> TsbResult<(u64, Reply)> {
        loop {
            match self.decoder.next_frame()? {
                Some(body) => {
                    let (id, reply) = protocol::parse_reply(&body)?;
                    return Ok((id, reply));
                }
                None => {
                    let n = self.stream.read(&mut self.read_buf)?;
                    if n == 0 {
                        return Err(TsbError::Io(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "server closed the connection",
                        )));
                    }
                    let filled = &self.read_buf[..n];
                    self.decoder.feed(filled);
                }
            }
        }
    }

    // ----- closed-loop conveniences --------------------------------------

    /// Durable insert; returns the commit timestamp once acknowledged.
    pub fn put(&mut self, key: impl Into<Key>, value: Vec<u8>) -> TsbResult<Timestamp> {
        let id = self.send(&Request::Put {
            key: key.into(),
            value,
        })?;
        committed(self.wait_for(id)?)
    }

    /// Durable delete; returns the tombstone's commit timestamp.
    pub fn delete(&mut self, key: impl Into<Key>) -> TsbResult<Timestamp> {
        let id = self.send(&Request::Delete { key: key.into() })?;
        committed(self.wait_for(id)?)
    }

    /// Current-state point read (served per the read preference).
    pub fn get(&mut self, key: impl Into<Key>) -> TsbResult<Option<Vec<u8>>> {
        if let Some(replica) = self.replica.as_mut() {
            return replica.get(key);
        }
        let id = self.send(&Request::Get { key: key.into() })?;
        value(self.wait_for(id)?)
    }

    /// As-of point read (served per the read preference).
    pub fn get_as_of(
        &mut self,
        key: impl Into<Key>,
        as_of: Timestamp,
    ) -> TsbResult<Option<Vec<u8>>> {
        if let Some(replica) = self.replica.as_mut() {
            return replica.get_as_of(key, as_of);
        }
        let id = self.send(&Request::GetAsOf {
            key: key.into(),
            as_of,
        })?;
        value(self.wait_for(id)?)
    }

    /// Range scan; `as_of: None` reads the current database (served per
    /// the read preference).
    pub fn range(
        &mut self,
        range: KeyRange,
        as_of: Option<Timestamp>,
    ) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        if let Some(replica) = self.replica.as_mut() {
            return replica.range(range, as_of);
        }
        let id = self.send(&Request::Range { range, as_of })?;
        match self.wait_for(id)? {
            Reply::Rows { rows } => Ok(rows),
            other => unexpected("Rows", other),
        }
    }

    /// Version history of `key` within `window` (served per the read
    /// preference).
    pub fn history(&mut self, key: impl Into<Key>, window: TimeRange) -> TsbResult<Vec<Version>> {
        if let Some(replica) = self.replica.as_mut() {
            return replica.history(key, window);
        }
        let id = self.send(&Request::History {
            key: key.into(),
            window,
        })?;
        match self.wait_for(id)? {
            Reply::Versions { versions } => Ok(versions),
            other => unexpected("Versions", other),
        }
    }

    /// Begins a multi-key transaction on this connection.
    pub fn txn_begin(&mut self) -> TsbResult<TxnId> {
        let id = self.send(&Request::TxnBegin)?;
        match self.wait_for(id)? {
            Reply::Txn { txn } => Ok(txn),
            other => unexpected("Txn", other),
        }
    }

    /// Buffers a write inside `txn` (`None` = delete).
    pub fn txn_write(
        &mut self,
        txn: TxnId,
        key: impl Into<Key>,
        value: Option<Vec<u8>>,
    ) -> TsbResult<()> {
        let id = self.send(&Request::TxnWrite {
            txn,
            key: key.into(),
            value,
        })?;
        unit(self.wait_for(id)?)
    }

    /// Commits `txn`; returns its commit timestamp once durable.
    pub fn txn_commit(&mut self, txn: TxnId) -> TsbResult<Timestamp> {
        let id = self.send(&Request::TxnCommit { txn })?;
        committed(self.wait_for(id)?)
    }

    /// Aborts `txn`.
    pub fn txn_abort(&mut self, txn: TxnId) -> TsbResult<()> {
        let id = self.send(&Request::TxnAbort { txn })?;
        unit(self.wait_for(id)?)
    }

    /// Asks the connected server whether it is a primary or a replica.
    pub fn role(&mut self) -> TsbResult<ServerRole> {
        let id = self.send(&Request::Role)?;
        match self.wait_for(id)? {
            Reply::RoleInfo { primary, shards } => Ok(ServerRole { primary, shards }),
            other => unexpected("RoleInfo", other),
        }
    }

    /// Replication progress of the connected replica (errors on a
    /// primary).
    pub fn replica_status(&mut self) -> TsbResult<ReplicaStatusReport> {
        let id = self.send(&Request::ReplicaStatus)?;
        match self.wait_for(id)? {
            Reply::ReplicaStatusInfo {
                serving,
                applied_lsn,
                source_durable_lsn,
                lag_records,
                lag_ms,
            } => Ok(ReplicaStatusReport {
                serving,
                applied_lsn,
                source_durable_lsn,
                lag_records,
                lag_ms,
            }),
            other => unexpected("ReplicaStatusInfo", other),
        }
    }

    /// Liveness probe; returns the server's install fence.
    pub fn ping(&mut self) -> TsbResult<Timestamp> {
        let id = self.send(&Request::Ping)?;
        match self.wait_for(id)? {
            Reply::Pong { last_installed } => Ok(last_installed),
            other => unexpected("Pong", other),
        }
    }

    /// Asks the server to shut down cleanly (acknowledged before it
    /// stops).
    pub fn shutdown_server(&mut self) -> TsbResult<()> {
        let id = self.send(&Request::Shutdown)?;
        unit(self.wait_for(id)?)
    }
}

/// Converts a remote error reply into a [`TsbError`], preserving the wire
/// code's class name in the message.
pub fn remote_error(code: u8, message: &str) -> TsbError {
    TsbError::internal(format!(
        "remote error [{}]: {message}",
        TsbError::wire_code_name(code)
    ))
}

fn committed(reply: Reply) -> TsbResult<Timestamp> {
    match reply {
        Reply::Committed { ts } => Ok(ts),
        other => unexpected("Committed", other),
    }
}

fn value(reply: Reply) -> TsbResult<Option<Vec<u8>>> {
    match reply {
        Reply::Value { value } => Ok(value),
        other => unexpected("Value", other),
    }
}

fn unit(reply: Reply) -> TsbResult<()> {
    match reply {
        Reply::Unit => Ok(()),
        other => unexpected("Unit", other),
    }
}

fn unexpected<T>(wanted: &str, got: Reply) -> TsbResult<T> {
    Err(match got {
        Reply::Error { code, message } => remote_error(code, &message),
        other => TsbError::corruption(format!(
            "protocol: expected a {wanted} reply, got {other:?}"
        )),
    })
}
