//! Retry and deadline arithmetic for the resilient client paths.
//!
//! Everything here is deliberately pure (no clocks, no RNG state): the
//! backoff schedule is a function of `(policy, attempt, salt)` and the
//! deadline type owns the only [`Instant`] it ever compares against. That
//! keeps the arithmetic property-testable — see `tests/retry_props.rs` —
//! and makes chaos runs reproducible when the harness fixes the salt.

use std::time::{Duration, Instant};

/// How [`crate::FailoverClient`] retries a failed operation.
///
/// Attempt `n` (0-based) sleeps a jittered exponential backoff:
/// `cap = min(base_backoff << n, max_backoff)`, then a duration drawn
/// deterministically from `[cap/2, cap]` (decorrelated half-jitter — the
/// floor keeps retry storms from collapsing to zero sleep, the jitter
/// spreads reconnecting clients so they do not stampede a recovering
/// server in lockstep).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying). An
    /// operation is tried at most `max_retries + 1` times.
    pub max_retries: u32,
    /// Backoff before the first retry (the exponential's base).
    pub base_backoff: Duration,
    /// Ceiling the exponential saturates at.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 5,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// The un-jittered exponential cap for `attempt`: monotone
    /// non-decreasing in `attempt`, never above `max_backoff`, and safe
    /// at every input (the shift and multiply both saturate, so
    /// `base_backoff = Duration::MAX` cannot overflow).
    pub fn cap_for(&self, attempt: u32) -> Duration {
        let factor = 1u64.checked_shl(attempt.min(63)).unwrap_or(u64::MAX);
        saturating_scale(self.base_backoff, factor).min(self.max_backoff)
    }

    /// The backoff to sleep before retry number `attempt` (0-based),
    /// jittered deterministically by `salt`. Always within
    /// `[cap_for(attempt) / 2, cap_for(attempt)]`.
    pub fn backoff_for(&self, attempt: u32, salt: u64) -> Duration {
        let cap = self.cap_for(attempt);
        let half = cap / 2;
        // Mix the salt and attempt into a uniform-ish fraction of `half`.
        let mix = splitmix64(salt ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let jitter = fraction(half, mix % 1024, 1024);
        half.saturating_add(jitter)
    }
}

/// An absolute per-operation deadline.
///
/// `Deadline::after(Duration::MAX)` (and any budget too large for the
/// platform clock) degrades to "never expires" instead of panicking.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    /// `None` means unbounded.
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline `budget` from now. Saturates to unbounded if the
    /// platform clock cannot represent `now + budget`.
    pub fn after(budget: Duration) -> Deadline {
        Deadline {
            at: Instant::now().checked_add(budget),
        }
    }

    /// A deadline that never expires.
    pub fn unbounded() -> Deadline {
        Deadline { at: None }
    }

    /// Time left before expiry (zero once expired, [`Duration::MAX`] when
    /// unbounded).
    pub fn remaining(&self) -> Duration {
        match self.at {
            None => Duration::MAX,
            Some(at) => at.saturating_duration_since(Instant::now()),
        }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.remaining() == Duration::ZERO
    }
}

/// `d * factor`, saturating at [`Duration::MAX`].
fn saturating_scale(d: Duration, factor: u64) -> Duration {
    duration_from_nanos_saturating(d.as_nanos().saturating_mul(u128::from(factor)))
}

/// `d * num / den` for `num <= den` (so the result never exceeds `d`).
fn fraction(d: Duration, num: u64, den: u64) -> Duration {
    debug_assert!(num <= den && den > 0);
    duration_from_nanos_saturating(d.as_nanos() * u128::from(num) / u128::from(den))
}

fn duration_from_nanos_saturating(nanos: u128) -> Duration {
    const NANOS_PER_SEC: u128 = 1_000_000_000;
    let secs = nanos / NANOS_PER_SEC;
    if secs > u128::from(u64::MAX) {
        return Duration::MAX;
    }
    Duration::new(secs as u64, (nanos % NANOS_PER_SEC) as u32)
}

/// Fast, well-mixed 64-bit finalizer (public-domain SplitMix64 step);
/// good enough to decorrelate per-client jitter, not a statistical RNG.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_defaults_look_sane() {
        let p = RetryPolicy::default();
        assert_eq!(p.cap_for(0), Duration::from_millis(20));
        assert_eq!(p.cap_for(1), Duration::from_millis(40));
        // Saturates at the ceiling, including for absurd attempt counts.
        assert_eq!(p.cap_for(30), Duration::from_secs(2));
        assert_eq!(p.cap_for(u32::MAX), Duration::from_secs(2));
        let b = p.backoff_for(3, 42);
        assert!(b >= p.cap_for(3) / 2 && b <= p.cap_for(3));
        // Deterministic for a fixed salt.
        assert_eq!(b, p.backoff_for(3, 42));
    }

    #[test]
    fn deadline_extremes_do_not_panic() {
        let d = Deadline::after(Duration::MAX);
        assert!(!d.expired());
        assert!(d.remaining() > Duration::from_secs(3600));
        let z = Deadline::after(Duration::ZERO);
        assert!(z.expired());
        assert_eq!(z.remaining(), Duration::ZERO);
        assert!(!Deadline::unbounded().expired());
    }
}
