//! Property tests for the retry/deadline arithmetic behind
//! [`tsb_client::FailoverClient`].
//!
//! The backoff schedule runs inside every failover and chaos path, so its
//! arithmetic must hold at *every* input, including the absurd ones
//! (`Duration::MAX` bases, `u32::MAX` attempts):
//!
//! * jittered backoff always lands in `[cap/2, cap]` and never above
//!   `max_backoff`;
//! * the un-jittered cap is monotone non-decreasing in the attempt number
//!   and saturates at the ceiling instead of overflowing;
//! * the schedule is a pure function of `(policy, attempt, salt)` —
//!   identical inputs give identical sleeps (reproducible chaos runs);
//! * deadline construction never panics, even from `Duration::MAX`.

use std::time::Duration;

use proptest::prelude::*;
use tsb_client::{Deadline, RetryPolicy};

fn policy() -> impl Strategy<Value = RetryPolicy> {
    // Millisecond-scale bases and ceilings in any order (the policy must
    // behave even when base > max), plus occasional extreme values.
    (
        0u32..10,
        prop_oneof![
            (0u64..10_000).prop_map(Duration::from_millis),
            Just(Duration::ZERO),
            Just(Duration::MAX),
        ],
        prop_oneof![
            (0u64..10_000).prop_map(Duration::from_millis),
            Just(Duration::ZERO),
            Just(Duration::MAX),
        ],
    )
        .prop_map(|(max_retries, base_backoff, max_backoff)| RetryPolicy {
            max_retries,
            base_backoff,
            max_backoff,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The jittered sleep stays inside `[cap/2, cap]` and under the
    /// policy ceiling, for any attempt and salt.
    #[test]
    fn backoff_stays_within_the_cap(
        p in policy(),
        attempt in any::<u32>(),
        salt in any::<u64>(),
    ) {
        let cap = p.cap_for(attempt);
        let b = p.backoff_for(attempt, salt);
        prop_assert!(b >= cap / 2, "backoff {b:?} below half the cap {cap:?}");
        prop_assert!(b <= cap, "backoff {b:?} above the cap {cap:?}");
        prop_assert!(b <= p.max_backoff, "backoff {b:?} above the ceiling {:?}", p.max_backoff);
    }

    /// The un-jittered cap never decreases as attempts accumulate, and
    /// never exceeds the ceiling — including at `u32::MAX` attempts,
    /// where the doubling must saturate, not overflow.
    #[test]
    fn cap_is_monotone_and_saturates(
        p in policy(),
        attempt in any::<u32>(),
    ) {
        let here = p.cap_for(attempt);
        let next = p.cap_for(attempt.saturating_add(1));
        prop_assert!(next >= here, "cap decreased: {here:?} -> {next:?}");
        prop_assert!(here <= p.max_backoff);
        prop_assert!(p.cap_for(u32::MAX) <= p.max_backoff);
    }

    /// The schedule is deterministic in `(attempt, salt)` — a fixed salt
    /// replays the exact same sleeps, which is what makes chaos runs
    /// reproducible.
    #[test]
    fn backoff_is_deterministic(
        p in policy(),
        attempt in any::<u32>(),
        salt in any::<u64>(),
    ) {
        prop_assert_eq!(p.backoff_for(attempt, salt), p.backoff_for(attempt, salt));
    }

    /// Deadline construction is total: any budget, including
    /// `Duration::MAX` (which overflows the platform clock and must
    /// degrade to "never expires"), produces a usable deadline.
    #[test]
    fn deadline_construction_never_panics(millis in any::<u64>()) {
        let d = Deadline::after(Duration::from_millis(millis));
        // remaining() is bounded by the budget (it only ever counts down).
        prop_assert!(d.remaining() <= Duration::from_millis(millis).max(Duration::from_millis(1)));
        let far = Deadline::after(Duration::MAX);
        prop_assert!(!far.expired());
        prop_assert!(Deadline::after(Duration::ZERO).expired());
    }
}
