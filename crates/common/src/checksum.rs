//! CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. Hand-rolled
//! to keep the dependency set first-party.
//!
//! Shared by every integrity check in the system: WAL record frames on
//! disk and protocol frames on the wire. A length-prefixed format without
//! a body checksum can *resynchronize on garbage* — a duplicated or torn
//! byte stream occasionally parses as a valid frame with shifted field
//! boundaries, turning a transport fault into silent data corruption. The
//! checksum turns that into a detectable framing error instead.

/// CRC-32 of `bytes` (IEEE polynomial `0xEDB88320`, reflected,
/// initial/final XOR `!0` — the same variant as zip/zlib/ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    }
    const TABLE: [u32; 256] = table();
    let mut crc = !0u32;
    for b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ *b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE variant.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Sensitive to any single flipped byte.
        assert_ne!(crc32(b"123456789"), crc32(b"123456788"));
    }
}
