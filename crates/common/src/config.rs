//! Configuration for the TSB-tree and the storage substrate.
//!
//! The paper's central tuning knobs are (a) **whether** to key-split or
//! time-split a full node (§3.2), (b) **which time** to split at when
//! time-splitting (§3.3), and (c) the **storage cost function**
//! `CS = SpaceM · CM + SpaceO · CO` that the policy may optimize (§3.2).
//! [`SplitPolicyKind`], [`SplitTimeChoice`], and [`CostParams`] expose exactly
//! those knobs; everything else is conventional storage-engine configuration
//! (page size, WORM sector size, buffer-pool size).

use crate::error::{TsbError, TsbResult};

/// How a full *data* node chooses between a key split and a time split.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum SplitPolicyKind {
    /// Mimic the Write-Once B-tree: always time-split at the *current* time;
    /// if the surviving current versions alone still overflow, follow with a
    /// key split (the WOBT's "split by key value and current time").
    WobtLike,
    /// Threshold policy (the paper's qualitative rule): if the fraction of
    /// entries that are *current* versions is at least
    /// `key_split_live_fraction`, do a key split (most data is live, so
    /// migrating would just duplicate it); otherwise do a time split
    /// (most data is historical, so migrate it).
    Threshold {
        /// Fraction of live entries at or above which a key split is chosen.
        /// `2/3` is a reasonable default; `1.0` means "time-split whenever
        /// any historical version exists".
        key_split_live_fraction: f64,
    },
    /// Always prefer key splits (minimizes total space and redundancy at the
    /// price of a larger current database). Time splits still happen when a
    /// key split is impossible (a single key fills the node).
    KeyPreferring,
    /// Always prefer time splits (minimizes the current database at the price
    /// of redundancy). Key splits still happen when a time split is useless
    /// (every entry is a current version).
    TimePreferring,
    /// Choose the split that minimizes the incremental storage cost under
    /// [`CostParams`], i.e. the paper's `CS = SpaceM·CM + SpaceO·CO`.
    CostBased,
    /// Never time split: every version stays in the current (magnetic) store
    /// and nodes are only ever key split. This degenerates into a
    /// conventional versioned B+-tree with all versions inline — the
    /// "single-store" baseline the paper argues against. (A node holding
    /// versions of a single key cannot be key split; in that corner case a
    /// time split is still performed so the structure can make progress.)
    KeyOnly,
}

impl Default for SplitPolicyKind {
    fn default() -> Self {
        SplitPolicyKind::Threshold {
            key_split_live_fraction: 2.0 / 3.0,
        }
    }
}

/// Which timestamp a time split uses (§3.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SplitTimeChoice {
    /// Split at the current time, as the WOBT is forced to do. Every version
    /// alive *now* is duplicated into the current node.
    CurrentTime,
    /// Split at the time of the last update (the newest commit timestamp of a
    /// *superseded* version). Insertions performed after the last update are
    /// then not carried into the historical node (§3.3's example), which is
    /// usually the best redundancy/space trade-off.
    #[default]
    LastUpdate,
    /// Split at the median commit timestamp present in the node: pushes the
    /// split time further back, moving less data to the historical store but
    /// keeping more historical data on magnetic disk.
    MedianVersion,
}

/// When the write-ahead log forces its buffered records to stable storage
/// (`fsync`). Every policy keeps the *append* synchronous — a commit's
/// records are always written to the log file before the engine touches the
/// page store — the policy only chooses how often the file is fsynced, which
/// is where the durability-versus-throughput trade lives (measured by the
/// E12 experiment).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FsyncPolicy {
    /// Fsync after every commit record. No acknowledged commit can be lost
    /// to a power failure; the slowest policy.
    #[default]
    Always,
    /// Group commit: fsync once every `N` commit records (and at every
    /// checkpoint). A crash can lose up to the last `N - 1` acknowledged
    /// commits; amortizes the fsync across a batch of writers.
    EveryN(u32),
    /// Never fsync explicitly; leave flushing to the operating system.
    /// A process crash loses nothing (the records are in the OS page
    /// cache); a power failure can lose everything since the last
    /// checkpoint. The fastest policy.
    Os,
}

impl FsyncPolicy {
    /// Returns the policy with the degenerate `EveryN(0)` clamped to
    /// `EveryN(1)`.
    ///
    /// A zero group size can never reach a group boundary, so a WAL
    /// configured with it would buffer commits forever and never
    /// acknowledge them — silently worse than `Os`, which at least never
    /// parks. [`TsbConfig::validate`] rejects `EveryN(0)` outright for
    /// engine configs; components that accept a bare policy (the WAL
    /// constructors) clamp through this instead, so a raw
    /// `Wal::create(.., EveryN(0), ..)` behaves like `Always`.
    pub fn normalized(self) -> FsyncPolicy {
        match self {
            FsyncPolicy::EveryN(0) => FsyncPolicy::EveryN(1),
            other => other,
        }
    }
}

/// What the write-ahead log records for a content-only node rewrite.
///
/// Structural rewrites (splits, root growth, node initialization) always
/// log the full page image — they replace a page's content wholesale, so
/// there is nothing smaller to say. The mode only governs the hot path: a
/// leaf absorbing one more version.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum WalMode {
    /// ARIES-style slim logging: the *first* dirtying of a page per
    /// checkpoint interval logs its full image; every later content-only
    /// rewrite logs only a compact logical `PageDelta` (insert-version /
    /// remove-uncommitted). Recovery replays images, then re-applies the
    /// deltas in LSN order. Steady-state log traffic drops from one page
    /// image per mutation to tens of bytes.
    #[default]
    Hybrid,
    /// Log a full page image on every rewrite (the PR 4 behaviour). Kept
    /// as the off-switch: byte-for-byte the simplest replay, and the
    /// reference the `delta_replay_equals_image_replay` property tests
    /// hybrid mode against.
    ImagesOnly,
}

/// Per-byte storage prices used by the cost function `CS` and by the
/// cost-based split policy. Units are arbitrary; only the ratio matters.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CostParams {
    /// Cost per byte on the magnetic (current) store — the paper's `CM`.
    pub magnetic_cost_per_byte: f64,
    /// Cost per byte on the optical/WORM (historical) store — the paper's `CO`.
    pub worm_cost_per_byte: f64,
    /// Average access (seek + transfer) time for a magnetic-disk node, in
    /// milliseconds. Used by the access-time experiments.
    pub magnetic_access_ms: f64,
    /// Average access time for an optical-disk node, in milliseconds. The
    /// paper cites roughly a 3× slower seek for optical drives.
    pub worm_access_ms: f64,
    /// Time to mount an off-line optical platter from a robot library, in
    /// milliseconds (the paper cites ~20 s). Only charged by experiments that
    /// model platter exchange; 0 disables it.
    pub worm_mount_ms: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        // The paper motivates the design with optical storage being
        // substantially cheaper per byte and ~3x slower to access.
        CostParams {
            magnetic_cost_per_byte: 10.0,
            worm_cost_per_byte: 1.0,
            magnetic_access_ms: 15.0,
            worm_access_ms: 45.0,
            worm_mount_ms: 0.0,
        }
    }
}

impl CostParams {
    /// The total storage cost `CS = SpaceM·CM + SpaceO·CO`.
    pub fn storage_cost(&self, magnetic_bytes: u64, worm_bytes: u64) -> f64 {
        magnetic_bytes as f64 * self.magnetic_cost_per_byte
            + worm_bytes as f64 * self.worm_cost_per_byte
    }
}

/// Configuration of a TSB-tree and its two stores.
#[derive(Clone, Debug)]
pub struct TsbConfig {
    /// Size of a magnetic-disk page in bytes (current nodes). Default 4096.
    pub page_size: usize,
    /// Size of a WORM sector in bytes (the smallest writable unit on the
    /// historical device). The paper cites ~1 KB sectors. Default 1024.
    pub worm_sector_size: usize,
    /// Number of pages the buffer pool caches. Default 256.
    pub buffer_pool_pages: usize,
    /// Number of decoded nodes the node cache holds (current pages and
    /// immutable historical nodes). Descents served from this cache perform
    /// no decode at all. Default 512.
    pub node_cache_entries: usize,
    /// Maximum key length in bytes. Default 512.
    pub max_key_len: usize,
    /// How full (fraction of usable page bytes) a data node must be before an
    /// insertion triggers a split. Default 1.0 (split only when the entry no
    /// longer fits); values below 1.0 split earlier.
    pub split_fill_threshold: f64,
    /// Data-node split policy (§3.2).
    pub split_policy: SplitPolicyKind,
    /// Split-time choice for time splits (§3.3).
    pub split_time_choice: SplitTimeChoice,
    /// Storage cost parameters (§3.2's cost function).
    pub cost: CostParams,
    /// When an index node cannot be *locally* time split because a child
    /// current node still holds old data (Figure 9), mark that child so it is
    /// time split at its next split opportunity. This is the optimization the
    /// paper sketches at the end of §3.5.
    pub mark_recalcitrant_children: bool,
    /// How often the write-ahead log fsyncs its commit records (only
    /// meaningful for trees opened with a WAL attached; in-memory trees
    /// ignore it). Default [`FsyncPolicy::Always`].
    pub fsync_policy: FsyncPolicy,
    /// What the write-ahead log records for content-only rewrites (only
    /// meaningful for trees opened with a WAL attached). Default
    /// [`WalMode::Hybrid`].
    pub wal_mode: WalMode,
}

impl Default for TsbConfig {
    fn default() -> Self {
        TsbConfig {
            page_size: 4096,
            worm_sector_size: 1024,
            buffer_pool_pages: 256,
            node_cache_entries: 512,
            max_key_len: 512,
            split_fill_threshold: 1.0,
            split_policy: SplitPolicyKind::default(),
            split_time_choice: SplitTimeChoice::default(),
            cost: CostParams::default(),
            mark_recalcitrant_children: true,
            fsync_policy: FsyncPolicy::default(),
            wal_mode: WalMode::default(),
        }
    }
}

impl TsbConfig {
    /// A small-page configuration convenient for tests: nodes hold only a
    /// handful of entries so splits happen constantly.
    pub fn small_pages() -> Self {
        TsbConfig {
            page_size: 256,
            worm_sector_size: 64,
            buffer_pool_pages: 64,
            node_cache_entries: 128,
            max_key_len: 64,
            ..TsbConfig::default()
        }
    }

    /// Validates the configuration, returning an error describing the first
    /// problem found.
    pub fn validate(&self) -> TsbResult<()> {
        if self.page_size < 128 {
            return Err(TsbError::config(format!(
                "page_size must be at least 128 bytes, got {}",
                self.page_size
            )));
        }
        if self.page_size > 1 << 24 {
            return Err(TsbError::config(format!(
                "page_size must be at most 16 MiB, got {}",
                self.page_size
            )));
        }
        if self.worm_sector_size < 32 {
            return Err(TsbError::config(format!(
                "worm_sector_size must be at least 32 bytes, got {}",
                self.worm_sector_size
            )));
        }
        if self.buffer_pool_pages < 8 {
            return Err(TsbError::config(format!(
                "buffer_pool_pages must be at least 8, got {}",
                self.buffer_pool_pages
            )));
        }
        if self.node_cache_entries < 8 {
            return Err(TsbError::config(format!(
                "node_cache_entries must be at least 8, got {}",
                self.node_cache_entries
            )));
        }
        if self.max_key_len == 0 || self.max_key_len > self.page_size / 4 {
            return Err(TsbError::config(format!(
                "max_key_len must be between 1 and page_size/4 ({}), got {}",
                self.page_size / 4,
                self.max_key_len
            )));
        }
        if !(0.1..=1.0).contains(&self.split_fill_threshold) {
            return Err(TsbError::config(format!(
                "split_fill_threshold must be in [0.1, 1.0], got {}",
                self.split_fill_threshold
            )));
        }
        if let SplitPolicyKind::Threshold {
            key_split_live_fraction,
        } = self.split_policy
        {
            if !(0.0..=1.0).contains(&key_split_live_fraction) {
                return Err(TsbError::config(format!(
                    "key_split_live_fraction must be in [0.0, 1.0], got {key_split_live_fraction}"
                )));
            }
        }
        if self.cost.magnetic_cost_per_byte < 0.0 || self.cost.worm_cost_per_byte < 0.0 {
            return Err(TsbError::config(
                "storage costs must be non-negative".to_string(),
            ));
        }
        if let FsyncPolicy::EveryN(n) = self.fsync_policy {
            if n == 0 {
                return Err(TsbError::config(
                    "FsyncPolicy::EveryN(0) never syncs; use FsyncPolicy::Os to say that",
                ));
            }
        }
        Ok(())
    }

    /// Builder-style setter for the split policy.
    pub fn with_split_policy(mut self, policy: SplitPolicyKind) -> Self {
        self.split_policy = policy;
        self
    }

    /// Builder-style setter for the split-time choice.
    pub fn with_split_time_choice(mut self, choice: SplitTimeChoice) -> Self {
        self.split_time_choice = choice;
        self
    }

    /// Builder-style setter for the page size.
    pub fn with_page_size(mut self, page_size: usize) -> Self {
        self.page_size = page_size;
        self
    }

    /// Builder-style setter for the WORM sector size.
    pub fn with_worm_sector_size(mut self, sector_size: usize) -> Self {
        self.worm_sector_size = sector_size;
        self
    }

    /// Builder-style setter for the cost parameters.
    pub fn with_cost(mut self, cost: CostParams) -> Self {
        self.cost = cost;
        self
    }

    /// Builder-style setter for the decoded-node cache capacity.
    pub fn with_node_cache_entries(mut self, entries: usize) -> Self {
        self.node_cache_entries = entries;
        self
    }

    /// Builder-style setter for the WAL fsync policy.
    pub fn with_fsync_policy(mut self, policy: FsyncPolicy) -> Self {
        self.fsync_policy = policy;
        self
    }

    /// Builder-style setter for the WAL record mode.
    pub fn with_wal_mode(mut self, mode: WalMode) -> Self {
        self.wal_mode = mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        TsbConfig::default().validate().unwrap();
        TsbConfig::small_pages().validate().unwrap();
    }

    #[test]
    fn normalized_clamps_only_the_degenerate_group_size() {
        assert_eq!(FsyncPolicy::EveryN(0).normalized(), FsyncPolicy::EveryN(1));
        for policy in [
            FsyncPolicy::Always,
            FsyncPolicy::EveryN(1),
            FsyncPolicy::EveryN(64),
            FsyncPolicy::Os,
        ] {
            assert_eq!(policy.normalized(), policy);
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let cases: Vec<TsbConfig> = vec![
            TsbConfig {
                page_size: 16,
                ..TsbConfig::default()
            },
            TsbConfig {
                worm_sector_size: 4,
                ..TsbConfig::default()
            },
            TsbConfig {
                buffer_pool_pages: 1,
                ..TsbConfig::default()
            },
            TsbConfig {
                // Larger than page_size / 4.
                max_key_len: TsbConfig::default().page_size,
                ..TsbConfig::default()
            },
            TsbConfig {
                node_cache_entries: 2,
                ..TsbConfig::default()
            },
            TsbConfig {
                split_fill_threshold: 0.0,
                ..TsbConfig::default()
            },
            TsbConfig {
                split_policy: SplitPolicyKind::Threshold {
                    key_split_live_fraction: 1.5,
                },
                ..TsbConfig::default()
            },
            TsbConfig {
                cost: CostParams {
                    worm_cost_per_byte: -1.0,
                    ..CostParams::default()
                },
                ..TsbConfig::default()
            },
        ];
        for (i, c) in cases.iter().enumerate() {
            assert!(c.validate().is_err(), "case {i} should be rejected");
        }
    }

    #[test]
    fn builders_compose() {
        let c = TsbConfig::default()
            .with_page_size(8192)
            .with_worm_sector_size(2048)
            .with_split_policy(SplitPolicyKind::TimePreferring)
            .with_split_time_choice(SplitTimeChoice::CurrentTime);
        assert_eq!(c.page_size, 8192);
        assert_eq!(c.worm_sector_size, 2048);
        assert_eq!(c.split_policy, SplitPolicyKind::TimePreferring);
        assert_eq!(c.split_time_choice, SplitTimeChoice::CurrentTime);
        c.validate().unwrap();
    }

    #[test]
    fn cost_function_matches_paper_formula() {
        let p = CostParams {
            magnetic_cost_per_byte: 10.0,
            worm_cost_per_byte: 1.0,
            ..CostParams::default()
        };
        // CS = SpaceM * CM + SpaceO * CO
        assert_eq!(p.storage_cost(100, 1000), 100.0 * 10.0 + 1000.0 * 1.0);
        assert_eq!(p.storage_cost(0, 0), 0.0);
    }
}
