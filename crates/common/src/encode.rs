//! Hand-rolled binary encoding helpers.
//!
//! Precise, self-describing page layouts are part of this reproduction (the
//! paper's space accounting depends on how many bytes each entry occupies on
//! each device), so encoding is done by hand rather than through a
//! serialization framework. All integers are little-endian. Variable-length
//! byte strings are length-prefixed.
//!
//! [`ByteWriter`] appends to a growable buffer; [`ByteReader`] consumes a
//! slice and returns [`TsbError::Corruption`] on truncation or malformed
//! input, never panicking.

use crate::error::{TsbError, TsbResult};
use crate::key::{Key, KeyBound, KeyRange};
use crate::record::{TsState, TxnId, Version};
use crate::time::{TimeBound, TimeRange, Timestamp};

/// Appends primitive values to a growable byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter { buf: Vec::new() }
    }

    /// Creates a writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// A view of the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Writes a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16` (little-endian).
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes raw bytes with no length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a `u32`-length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a key (length-prefixed).
    pub fn put_key(&mut self, key: &Key) {
        self.put_bytes(key.as_bytes());
    }

    /// Writes a key bound (tag + optional key).
    pub fn put_key_bound(&mut self, bound: &KeyBound) {
        match bound {
            KeyBound::Finite(k) => {
                self.put_u8(0);
                self.put_key(k);
            }
            KeyBound::PlusInfinity => self.put_u8(1),
        }
    }

    /// Writes a key range.
    pub fn put_key_range(&mut self, range: &KeyRange) {
        self.put_key(&range.lo);
        self.put_key_bound(&range.hi);
    }

    /// Writes a timestamp.
    pub fn put_timestamp(&mut self, t: Timestamp) {
        self.put_u64(t.0);
    }

    /// Writes a time bound (tag + optional timestamp).
    pub fn put_time_bound(&mut self, bound: &TimeBound) {
        match bound {
            TimeBound::Finite(t) => {
                self.put_u8(0);
                self.put_timestamp(*t);
            }
            TimeBound::Infinity => self.put_u8(1),
        }
    }

    /// Writes a time range.
    pub fn put_time_range(&mut self, range: &TimeRange) {
        self.put_timestamp(range.lo);
        self.put_time_bound(&range.hi);
    }

    /// Writes a timestamp state (committed/uncommitted tag + payload).
    pub fn put_ts_state(&mut self, state: &TsState) {
        match state {
            TsState::Committed(t) => {
                self.put_u8(0);
                self.put_timestamp(*t);
            }
            TsState::Uncommitted(id) => {
                self.put_u8(1);
                self.put_u64(id.0);
            }
        }
    }

    /// Writes a full version entry (key, state, tombstone flag, value).
    pub fn put_version(&mut self, v: &Version) {
        self.put_key(&v.key);
        self.put_ts_state(&v.state);
        match &v.value {
            Some(bytes) => {
                self.put_u8(1);
                self.put_bytes(bytes);
            }
            None => self.put_u8(0),
        }
    }
}

/// Encoded size helpers, used by split logic to decide whether an entry fits
/// without actually encoding it.
pub mod size {
    use super::*;

    /// Encoded size of a length-prefixed byte string.
    pub fn bytes(len: usize) -> usize {
        4 + len
    }

    /// Encoded size of a key.
    pub fn key(k: &Key) -> usize {
        bytes(k.len())
    }

    /// Encoded size of a key bound.
    pub fn key_bound(b: &KeyBound) -> usize {
        match b {
            KeyBound::Finite(k) => 1 + key(k),
            KeyBound::PlusInfinity => 1,
        }
    }

    /// Encoded size of a key range.
    pub fn key_range(r: &KeyRange) -> usize {
        key(&r.lo) + key_bound(&r.hi)
    }

    /// Encoded size of a timestamp state.
    pub fn ts_state() -> usize {
        1 + 8
    }

    /// Encoded size of a time bound.
    pub fn time_bound(b: &TimeBound) -> usize {
        match b {
            TimeBound::Finite(_) => 1 + 8,
            TimeBound::Infinity => 1,
        }
    }

    /// Encoded size of a time range.
    pub fn time_range(r: &TimeRange) -> usize {
        8 + time_bound(&r.hi)
    }

    /// Encoded size of a version entry.
    pub fn version(v: &Version) -> usize {
        key(&v.key)
            + ts_state()
            + 1
            + match &v.value {
                Some(bytes_) => bytes(bytes_.len()),
                None => 0,
            }
    }
}

/// Reads primitive values from a byte slice, failing with
/// [`TsbError::Corruption`] instead of panicking.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Number of bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the reader is exhausted.
    pub fn is_exhausted(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> TsbResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(TsbError::corruption(format!(
                "truncated input: need {n} bytes at offset {}, only {} remaining",
                self.pos,
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a single byte.
    pub fn get_u8(&mut self) -> TsbResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn get_u16(&mut self) -> TsbResult<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> TsbResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> TsbResult<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads `n` raw bytes.
    pub fn get_raw(&mut self, n: usize) -> TsbResult<&'a [u8]> {
        self.take(n)
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn get_bytes(&mut self) -> TsbResult<Vec<u8>> {
        let len = self.get_u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a key. Decodes straight from the input slice, so small keys
    /// are materialized inline without a heap allocation.
    pub fn get_key(&mut self) -> TsbResult<Key> {
        let len = self.get_u32()? as usize;
        Ok(Key::from_bytes(self.take(len)?))
    }

    /// Reads a key bound.
    pub fn get_key_bound(&mut self) -> TsbResult<KeyBound> {
        match self.get_u8()? {
            0 => Ok(KeyBound::Finite(self.get_key()?)),
            1 => Ok(KeyBound::PlusInfinity),
            t => Err(TsbError::corruption(format!("invalid key-bound tag {t}"))),
        }
    }

    /// Reads a key range.
    pub fn get_key_range(&mut self) -> TsbResult<KeyRange> {
        let lo = self.get_key()?;
        let hi = self.get_key_bound()?;
        Ok(KeyRange { lo, hi })
    }

    /// Reads a timestamp.
    pub fn get_timestamp(&mut self) -> TsbResult<Timestamp> {
        Ok(Timestamp(self.get_u64()?))
    }

    /// Reads a time bound.
    pub fn get_time_bound(&mut self) -> TsbResult<TimeBound> {
        match self.get_u8()? {
            0 => Ok(TimeBound::Finite(self.get_timestamp()?)),
            1 => Ok(TimeBound::Infinity),
            t => Err(TsbError::corruption(format!("invalid time-bound tag {t}"))),
        }
    }

    /// Reads a time range.
    pub fn get_time_range(&mut self) -> TsbResult<TimeRange> {
        let lo = self.get_timestamp()?;
        let hi = self.get_time_bound()?;
        Ok(TimeRange { lo, hi })
    }

    /// Reads a timestamp state.
    pub fn get_ts_state(&mut self) -> TsbResult<TsState> {
        match self.get_u8()? {
            0 => Ok(TsState::Committed(self.get_timestamp()?)),
            1 => Ok(TsState::Uncommitted(TxnId(self.get_u64()?))),
            t => Err(TsbError::corruption(format!("invalid ts-state tag {t}"))),
        }
    }

    /// Reads a version entry.
    pub fn get_version(&mut self) -> TsbResult<Version> {
        let key = self.get_key()?;
        let state = self.get_ts_state()?;
        let value = match self.get_u8()? {
            0 => None,
            1 => Some(self.get_bytes()?),
            t => Err(TsbError::corruption(format!(
                "invalid version value tag {t}"
            )))?,
        };
        Ok(Version { key, state, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEADBEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_bytes(b"hello");
        let buf = w.into_vec();

        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.put_u64(42);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf[..5]);
        assert!(matches!(r.get_u64(), Err(TsbError::Corruption(_))));

        let mut r = ByteReader::new(&[0u8, 200, 0, 0, 0]); // claims 200-byte string
        let _tag = r.get_u8().unwrap();
        assert!(r.get_bytes().is_err());
    }

    #[test]
    fn invalid_tags_are_corruption() {
        let mut r = ByteReader::new(&[9]);
        assert!(matches!(r.get_key_bound(), Err(TsbError::Corruption(_))));
        let mut r = ByteReader::new(&[9]);
        assert!(matches!(r.get_time_bound(), Err(TsbError::Corruption(_))));
        let mut r = ByteReader::new(&[9]);
        assert!(matches!(r.get_ts_state(), Err(TsbError::Corruption(_))));
    }

    #[test]
    fn domain_types_round_trip() {
        let range = KeyRange::bounded(Key::from_u64(10), Key::from_u64(99));
        let open = KeyRange::new(Key::from("m"), KeyBound::PlusInfinity);
        let trange = TimeRange::bounded(Timestamp(3), Timestamp(17));
        let topen = TimeRange::from(Timestamp(5));
        let v1 = Version::committed(50u64, Timestamp(3), b"Joe".to_vec());
        let v2 = Version::tombstone("gone", Timestamp(8));
        let v3 = Version::uncommitted(70u64, TxnId(12), b"Sue".to_vec());

        let mut w = ByteWriter::new();
        w.put_key_range(&range);
        w.put_key_range(&open);
        w.put_time_range(&trange);
        w.put_time_range(&topen);
        w.put_version(&v1);
        w.put_version(&v2);
        w.put_version(&v3);
        let buf = w.into_vec();

        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_key_range().unwrap(), range);
        assert_eq!(r.get_key_range().unwrap(), open);
        assert_eq!(r.get_time_range().unwrap(), trange);
        assert_eq!(r.get_time_range().unwrap(), topen);
        assert_eq!(r.get_version().unwrap(), v1);
        assert_eq!(r.get_version().unwrap(), v2);
        assert_eq!(r.get_version().unwrap(), v3);
        assert!(r.is_exhausted());
    }

    #[test]
    fn size_helpers_match_encoded_size() {
        let v = Version::committed(50u64, Timestamp(3), vec![7u8; 100]);
        let mut w = ByteWriter::new();
        w.put_version(&v);
        assert_eq!(w.len(), size::version(&v));

        let t = Version::tombstone(1u64, Timestamp(1));
        let mut w = ByteWriter::new();
        w.put_version(&t);
        assert_eq!(w.len(), size::version(&t));

        let r = KeyRange::full();
        let mut w = ByteWriter::new();
        w.put_key_range(&r);
        assert_eq!(w.len(), size::key_range(&r));

        let tr = TimeRange::from(Timestamp(9));
        let mut w = ByteWriter::new();
        w.put_time_range(&tr);
        assert_eq!(w.len(), size::time_range(&tr));
    }
}
