//! The workspace error type.
//!
//! All fallible operations across `tsb-storage`, `tsb-core`, and `tsb-wobt`
//! return [`TsbResult`]. The error type is hand-written (no `thiserror`) to
//! keep the dependency set to the approved list.

use std::fmt;
use std::io;

use crate::key::Key;
use crate::record::TxnId;

/// Result alias used across the workspace.
pub type TsbResult<T> = Result<T, TsbError>;

/// Errors produced by the TSB-tree, the WOBT baseline, and the storage
/// substrate.
#[derive(Debug)]
pub enum TsbError {
    /// An underlying I/O error from a file-backed store.
    Io(io::Error),
    /// A page, node, or historical record failed to decode.
    Corruption(String),
    /// An entry is too large to ever fit in a node of the configured size.
    EntryTooLarge {
        /// Encoded size of the offending entry in bytes.
        entry_size: usize,
        /// Usable capacity of a node in bytes.
        capacity: usize,
    },
    /// A key exceeds the configured maximum key length.
    KeyTooLarge {
        /// Length of the offending key.
        len: usize,
        /// Configured maximum.
        max: usize,
    },
    /// Attempt to rewrite an already-written WORM sector.
    WormRewrite {
        /// Index of the sector that was already written.
        sector: u64,
    },
    /// Attempt to read beyond the end of the WORM store or outside a written
    /// region.
    WormOutOfBounds {
        /// Byte offset of the attempted read.
        offset: u64,
        /// Length of the attempted read.
        len: u64,
    },
    /// A page id does not refer to an allocated page.
    PageNotFound(u64),
    /// The buffer pool has no evictable frame (everything is pinned).
    BufferPoolExhausted,
    /// A write-write conflict: another in-flight transaction already has an
    /// uncommitted version of the key.
    WriteConflict {
        /// The contended key.
        key: Key,
        /// The transaction currently holding the uncommitted version.
        holder: TxnId,
    },
    /// The transaction id is not active (already committed, aborted, or never
    /// begun).
    TxnNotActive(TxnId),
    /// A structural invariant was violated (reported by the verifier or by
    /// internal consistency checks).
    InvariantViolation(String),
    /// Invalid configuration.
    Config(String),
    /// Operation attempted on a historical (write-once) node that requires an
    /// erasable node.
    HistoricalNodeImmutable,
    /// An internal assumption failed; indicates a bug in this library.
    Internal(String),
    /// A mutation was attempted against a read-only engine (a replication
    /// replica). Writes must go to the primary.
    ReadOnly,
    /// A replication subscriber presented a promotion epoch older than the
    /// primary's. The subscriber is a demoted (or partitioned) former
    /// primary and must re-bootstrap from the current primary.
    StaleEpoch {
        /// Epoch presented by the subscriber.
        theirs: u64,
        /// Epoch held by the serving primary.
        ours: u64,
    },
    /// The server is shedding load: the connection limit is reached.
    /// Recoverable — retry against another endpoint or after backoff.
    Overloaded(String),
    /// A client-side per-operation deadline expired before the operation
    /// completed. The operation may or may not have taken effect on the
    /// server; idempotent operations are safe to retry.
    DeadlineExceeded(String),
}

impl TsbError {
    /// Convenience constructor for corruption errors.
    pub fn corruption(msg: impl Into<String>) -> Self {
        TsbError::Corruption(msg.into())
    }

    /// Convenience constructor for invariant violations.
    pub fn invariant(msg: impl Into<String>) -> Self {
        TsbError::InvariantViolation(msg.into())
    }

    /// Convenience constructor for internal errors.
    pub fn internal(msg: impl Into<String>) -> Self {
        TsbError::Internal(msg.into())
    }

    /// Convenience constructor for configuration errors.
    pub fn config(msg: impl Into<String>) -> Self {
        TsbError::Config(msg.into())
    }

    /// Stable one-byte code for this error, carried in `tsb-server`'s wire
    /// protocol so remote clients can dispatch on the error class without
    /// parsing the display string. Codes are append-only: a released code
    /// is never renumbered (see `docs/protocol.md`). Code `0` is reserved
    /// for "no error" and never returned here.
    pub fn wire_code(&self) -> u8 {
        match self {
            TsbError::Io(_) => 1,
            TsbError::Corruption(_) => 2,
            TsbError::EntryTooLarge { .. } => 3,
            TsbError::KeyTooLarge { .. } => 4,
            TsbError::WormRewrite { .. } => 5,
            TsbError::WormOutOfBounds { .. } => 6,
            TsbError::PageNotFound(_) => 7,
            TsbError::BufferPoolExhausted => 8,
            TsbError::WriteConflict { .. } => 9,
            TsbError::TxnNotActive(_) => 10,
            TsbError::InvariantViolation(_) => 11,
            TsbError::Config(_) => 12,
            TsbError::HistoricalNodeImmutable => 13,
            TsbError::Internal(_) => 14,
            TsbError::ReadOnly => 15,
            TsbError::StaleEpoch { .. } => 16,
            // 20..=22 are protocol-layer frame errors minted by tsb-server;
            // overload shedding and deadline expiry sit above them because
            // they are connection-lifecycle conditions, not engine faults.
            TsbError::Overloaded(_) => 23,
            TsbError::DeadlineExceeded(_) => 24,
        }
    }

    /// Human-readable name of a wire code, including the protocol-layer
    /// codes (`20..`) minted by `tsb-server` itself for frame/verb errors.
    pub fn wire_code_name(code: u8) -> &'static str {
        match code {
            0 => "ok",
            1 => "io",
            2 => "corruption",
            3 => "entry-too-large",
            4 => "key-too-large",
            5 => "worm-rewrite",
            6 => "worm-out-of-bounds",
            7 => "page-not-found",
            8 => "buffer-pool-exhausted",
            9 => "write-conflict",
            10 => "txn-not-active",
            11 => "invariant-violation",
            12 => "config",
            13 => "historical-node-immutable",
            14 => "internal",
            15 => "read-only",
            16 => "stale-epoch",
            20 => "protocol-malformed-frame",
            21 => "protocol-oversized-frame",
            22 => "protocol-unknown-verb",
            23 => "overloaded",
            24 => "deadline-exceeded",
            _ => "unknown",
        }
    }
}

impl fmt::Display for TsbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsbError::Io(e) => write!(f, "i/o error: {e}"),
            TsbError::Corruption(msg) => write!(f, "corruption: {msg}"),
            TsbError::EntryTooLarge {
                entry_size,
                capacity,
            } => write!(
                f,
                "entry of {entry_size} bytes cannot fit in a node of capacity {capacity} bytes"
            ),
            TsbError::KeyTooLarge { len, max } => {
                write!(f, "key of {len} bytes exceeds the maximum of {max} bytes")
            }
            TsbError::WormRewrite { sector } => {
                write!(f, "attempt to rewrite write-once sector {sector}")
            }
            TsbError::WormOutOfBounds { offset, len } => write!(
                f,
                "read of {len} bytes at offset {offset} is outside the written WORM region"
            ),
            TsbError::PageNotFound(id) => write!(f, "page {id} is not allocated"),
            TsbError::BufferPoolExhausted => {
                write!(f, "buffer pool exhausted: all frames are pinned")
            }
            TsbError::WriteConflict { key, holder } => write!(
                f,
                "write-write conflict on key {key}: uncommitted version held by {holder}"
            ),
            TsbError::TxnNotActive(id) => write!(f, "transaction {id} is not active"),
            TsbError::InvariantViolation(msg) => write!(f, "invariant violation: {msg}"),
            TsbError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            TsbError::HistoricalNodeImmutable => {
                write!(f, "historical nodes are write-once and cannot be modified")
            }
            TsbError::Internal(msg) => write!(f, "internal error (library bug): {msg}"),
            TsbError::ReadOnly => {
                write!(
                    f,
                    "engine is read-only (replica): writes must go to the primary"
                )
            }
            TsbError::StaleEpoch { theirs, ours } => write!(
                f,
                "stale promotion epoch {theirs}: primary is at epoch {ours}; \
                 re-bootstrap from the current primary"
            ),
            TsbError::Overloaded(msg) => write!(f, "server overloaded: {msg}"),
            TsbError::DeadlineExceeded(msg) => write!(f, "deadline exceeded: {msg}"),
        }
    }
}

impl std::error::Error for TsbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TsbError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TsbError {
    fn from(e: io::Error) -> Self {
        TsbError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TsbError::WormRewrite { sector: 7 };
        assert!(e.to_string().contains("sector 7"));

        let e = TsbError::WriteConflict {
            key: Key::from_u64(42),
            holder: TxnId(3),
        };
        assert!(e.to_string().contains("42"));
        assert!(e.to_string().contains("txn3"));

        let e = TsbError::EntryTooLarge {
            entry_size: 9000,
            capacity: 4000,
        };
        assert!(e.to_string().contains("9000"));
        assert!(e.to_string().contains("4000"));
    }

    #[test]
    fn io_error_conversion_preserves_source() {
        let io_err = io::Error::new(io::ErrorKind::NotFound, "gone");
        let e: TsbError = io_err.into();
        assert!(matches!(e, TsbError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn wire_codes_are_distinct_nonzero_and_named() {
        let errs = [
            TsbError::Io(io::Error::other("x")),
            TsbError::corruption("x"),
            TsbError::EntryTooLarge {
                entry_size: 1,
                capacity: 0,
            },
            TsbError::KeyTooLarge { len: 1, max: 0 },
            TsbError::WormRewrite { sector: 0 },
            TsbError::WormOutOfBounds { offset: 0, len: 0 },
            TsbError::PageNotFound(0),
            TsbError::BufferPoolExhausted,
            TsbError::WriteConflict {
                key: Key::from_u64(1),
                holder: TxnId(1),
            },
            TsbError::TxnNotActive(TxnId(1)),
            TsbError::invariant("x"),
            TsbError::config("x"),
            TsbError::HistoricalNodeImmutable,
            TsbError::internal("x"),
            TsbError::ReadOnly,
            TsbError::StaleEpoch { theirs: 1, ours: 2 },
            TsbError::Overloaded("x".into()),
            TsbError::DeadlineExceeded("x".into()),
        ];
        let mut seen = std::collections::BTreeSet::new();
        for e in &errs {
            let code = e.wire_code();
            assert_ne!(code, 0, "0 is reserved for ok");
            assert!(seen.insert(code), "duplicate wire code {code}");
            assert_ne!(TsbError::wire_code_name(code), "unknown");
        }
        assert_eq!(TsbError::wire_code_name(0), "ok");
        assert_eq!(TsbError::wire_code_name(255), "unknown");
    }

    #[test]
    fn constructors() {
        assert!(matches!(
            TsbError::corruption("bad magic"),
            TsbError::Corruption(_)
        ));
        assert!(matches!(
            TsbError::invariant("overlap"),
            TsbError::InvariantViolation(_)
        ));
        assert!(matches!(TsbError::internal("bug"), TsbError::Internal(_)));
        assert!(matches!(TsbError::config("bad"), TsbError::Config(_)));
    }
}
