//! Keys, key bounds, and key ranges.
//!
//! The paper's examples use small integer keys ("50 Joe", "90 Alice"), but the
//! TSB-tree itself only needs a totally ordered key space with a minimum
//! element. We use variable-length byte strings ordered lexicographically,
//! which subsumes integers (encoded big-endian) and strings, and is what a
//! production storage engine would expose.
//!
//! A [`KeyRange`] is the key-space interval spanned by a TSB-tree node — what
//! the paper calls a *key range* in §3.5. Ranges are half-open
//! `[lo, hi)`, with `hi` possibly `+∞` ([`KeyBound::PlusInfinity`]). The
//! left-most node's `lo` is [`Key::MIN`] (the empty byte string), playing the
//! role of the paper's "lowest possible key value (minus infinity)".

use std::borrow::Borrow;
use std::fmt;

/// Keys of at most this many bytes are stored inline in the [`Key`] value
/// itself, with no heap allocation — enough for every fixed-width integer
/// encoding and most short string keys. The enum cannot share bytes with
/// the `Vec` variant's fields (no niche packing for a payload this size),
/// so `Key` is 32 bytes — one word more than the 24-byte `Vec<u8>` it
/// replaced — which buys allocation-free construction, cloning, and
/// comparison for small keys; a compile-time assertion below pins the
/// size so the trade-off stays visible.
pub const KEY_INLINE_CAP: usize = 22;

/// The two storage forms of a key. Keys of length `<= KEY_INLINE_CAP` are
/// *always* stored inline (the representation is canonical), so equality,
/// ordering, and hashing over the byte content — implemented on
/// [`Key::as_bytes`] — never depend on which variant holds the bytes.
#[derive(Clone)]
enum Repr {
    /// `buf[..len]` is the key; the tail is zero padding.
    Inline { len: u8, buf: [u8; KEY_INLINE_CAP] },
    /// Keys longer than [`KEY_INLINE_CAP`] spill to the heap.
    Heap(Vec<u8>),
}

/// A variable-length, lexicographically ordered key.
///
/// `Key::MIN` (the empty byte string) sorts before every other key and stands
/// in for the paper's "minus infinity" key used in root entries.
///
/// # Inline representation
///
/// Keys of at most [`KEY_INLINE_CAP`] (22) bytes are stored inline in the
/// `Key` value itself — creating or cloning such a key is a plain memcpy
/// and never touches the heap. Longer keys spill to a heap allocation.
/// Since every workload generator in this workspace produces 8-byte
/// (big-endian `u64`) keys, the tree's descent hot path — probe keys,
/// routing comparisons, copy-on-write of leaf entries — is allocation-free
/// for them. The inline form is canonical: a short key is never
/// heap-backed, so `Clone` on small keys is always cheap.
pub struct Key(Repr);

// The size trade-off documented on `KEY_INLINE_CAP`, pinned: if `Key` ever
// grows past 32 bytes (or a layout change shrinks it), this fails to
// compile and the docs must be revisited.
const _: () = assert!(std::mem::size_of::<Key>() == 32);

impl Key {
    /// The minimum key (empty byte string); sorts before every other key.
    pub const MIN: Key = Key(Repr::Inline {
        len: 0,
        buf: [0; KEY_INLINE_CAP],
    });

    fn inline(bytes: &[u8]) -> Self {
        debug_assert!(bytes.len() <= KEY_INLINE_CAP);
        let mut buf = [0u8; KEY_INLINE_CAP];
        buf[..bytes.len()].copy_from_slice(bytes);
        Key(Repr::Inline {
            len: bytes.len() as u8,
            buf,
        })
    }

    /// Creates a key from raw bytes. Allocation-free for inputs of at most
    /// [`KEY_INLINE_CAP`] bytes.
    pub fn from_bytes(bytes: impl AsRef<[u8]>) -> Self {
        let bytes = bytes.as_ref();
        if bytes.len() <= KEY_INLINE_CAP {
            Key::inline(bytes)
        } else {
            Key(Repr::Heap(bytes.to_vec()))
        }
    }

    /// Creates a key from an owned byte vector, reusing its allocation when
    /// the key is too long to store inline.
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        if bytes.len() <= KEY_INLINE_CAP {
            Key::inline(&bytes)
        } else {
            Key(Repr::Heap(bytes))
        }
    }

    /// Creates a key from an unsigned integer, encoded big-endian so that the
    /// lexicographic byte order matches the numeric order. Never allocates.
    pub fn from_u64(v: u64) -> Self {
        Key::inline(&v.to_be_bytes())
    }

    /// Attempts to read the key back as a big-endian `u64`.
    ///
    /// Returns `None` if the key is not exactly 8 bytes long.
    pub fn as_u64(&self) -> Option<u64> {
        let bytes = self.as_bytes();
        if bytes.len() == 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(bytes);
            Some(u64::from_be_bytes(buf))
        } else {
            None
        }
    }

    /// The raw bytes of the key.
    pub fn as_bytes(&self) -> &[u8] {
        match &self.0 {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Length of the key in bytes.
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(v) => v.len(),
        }
    }

    /// Whether this is the empty (minimum) key.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this is the minimum key.
    pub fn is_min(&self) -> bool {
        self.is_empty()
    }

    /// Whether the key is stored inline (no heap allocation backs it).
    pub fn is_inline(&self) -> bool {
        matches!(self.0, Repr::Inline { .. })
    }

    /// Consumes the key, returning its bytes (allocating for inline keys).
    pub fn into_bytes(self) -> Vec<u8> {
        match self.0 {
            Repr::Inline { len, buf } => buf[..len as usize].to_vec(),
            Repr::Heap(v) => v,
        }
    }
}

impl Clone for Key {
    fn clone(&self) -> Self {
        Key(self.0.clone())
    }
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_bytes().cmp(other.as_bytes())
    }
}

// Hashing goes through the byte slice so that `Borrow<[u8]>` keeps its
// contract: `hash(key) == hash(key.borrow())` for map lookups by `&[u8]`.
impl std::hash::Hash for Key {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_bytes().hash(state)
    }
}

impl Default for Key {
    fn default() -> Self {
        Key::MIN
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "Key(-inf)");
        }
        if let Some(v) = self.as_u64() {
            return write!(f, "Key({v})");
        }
        match std::str::from_utf8(self.as_bytes()) {
            Ok(s) if s.chars().all(|c| !c.is_control()) => write!(f, "Key({s:?})"),
            _ => write!(f, "Key(0x{})", hex(self.as_bytes())),
        }
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "-inf");
        }
        if let Some(v) = self.as_u64() {
            return write!(f, "{v}");
        }
        match std::str::from_utf8(self.as_bytes()) {
            Ok(s) if s.chars().all(|c| !c.is_control()) => write!(f, "{s}"),
            _ => write!(f, "0x{}", hex(self.as_bytes())),
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

impl From<u64> for Key {
    fn from(v: u64) -> Self {
        Key::from_u64(v)
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Self {
        Key::from_bytes(s.as_bytes())
    }
}

impl From<String> for Key {
    fn from(s: String) -> Self {
        Key::from_vec(s.into_bytes())
    }
}

impl From<Vec<u8>> for Key {
    fn from(v: Vec<u8>) -> Self {
        Key::from_vec(v)
    }
}

impl From<&[u8]> for Key {
    fn from(v: &[u8]) -> Self {
        Key::from_bytes(v)
    }
}

impl Borrow<[u8]> for Key {
    fn borrow(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl AsRef<[u8]> for Key {
    fn as_ref(&self) -> &[u8] {
        self.as_bytes()
    }
}

/// An upper bound on a key range: either a finite key (exclusive) or `+∞`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum KeyBound {
    /// A finite, exclusive upper bound.
    Finite(Key),
    /// No upper bound; the range extends to the end of the key space.
    PlusInfinity,
}

impl KeyBound {
    /// Returns true if `key < self` (i.e. the key lies below this bound).
    pub fn is_above(&self, key: &Key) -> bool {
        match self {
            KeyBound::Finite(b) => key < b,
            KeyBound::PlusInfinity => true,
        }
    }

    /// Returns the finite bound, if any.
    pub fn as_finite(&self) -> Option<&Key> {
        match self {
            KeyBound::Finite(k) => Some(k),
            KeyBound::PlusInfinity => None,
        }
    }

    /// Whether this bound is `+∞`.
    pub fn is_infinite(&self) -> bool {
        matches!(self, KeyBound::PlusInfinity)
    }

    /// Compares two bounds; `+∞` is greater than every finite bound.
    pub fn min_of(a: &KeyBound, b: &KeyBound) -> KeyBound {
        if Self::le(a, b) {
            a.clone()
        } else {
            b.clone()
        }
    }

    /// `a <= b` where `+∞` is the greatest element.
    pub fn le(a: &KeyBound, b: &KeyBound) -> bool {
        match (a, b) {
            (KeyBound::PlusInfinity, KeyBound::PlusInfinity) => true,
            (KeyBound::PlusInfinity, KeyBound::Finite(_)) => false,
            (KeyBound::Finite(_), KeyBound::PlusInfinity) => true,
            (KeyBound::Finite(x), KeyBound::Finite(y)) => x <= y,
        }
    }
}

impl fmt::Display for KeyBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyBound::Finite(k) => write!(f, "{k}"),
            KeyBound::PlusInfinity => write!(f, "+inf"),
        }
    }
}

impl PartialOrd for KeyBound {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for KeyBound {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (KeyBound::PlusInfinity, KeyBound::PlusInfinity) => Ordering::Equal,
            (KeyBound::PlusInfinity, KeyBound::Finite(_)) => Ordering::Greater,
            (KeyBound::Finite(_), KeyBound::PlusInfinity) => Ordering::Less,
            (KeyBound::Finite(a), KeyBound::Finite(b)) => a.cmp(b),
        }
    }
}

/// A half-open key-space interval `[lo, hi)` — the paper's *key range*
/// (§3.5): the set of keys a TSB-tree node is responsible for.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct KeyRange {
    /// Inclusive lower bound.
    pub lo: Key,
    /// Exclusive upper bound (possibly `+∞`).
    pub hi: KeyBound,
}

impl KeyRange {
    /// The full key space `[-∞, +∞)`.
    pub fn full() -> Self {
        KeyRange {
            lo: Key::MIN,
            hi: KeyBound::PlusInfinity,
        }
    }

    /// Creates a range `[lo, hi)`.
    pub fn new(lo: Key, hi: KeyBound) -> Self {
        KeyRange { lo, hi }
    }

    /// Creates a bounded range `[lo, hi)` from two finite keys.
    pub fn bounded(lo: impl Into<Key>, hi: impl Into<Key>) -> Self {
        KeyRange {
            lo: lo.into(),
            hi: KeyBound::Finite(hi.into()),
        }
    }

    /// Whether the range contains `key`.
    pub fn contains(&self, key: &Key) -> bool {
        *key >= self.lo && self.hi.is_above(key)
    }

    /// Whether the range is empty (`lo >= hi`).
    pub fn is_empty(&self) -> bool {
        match &self.hi {
            KeyBound::Finite(h) => self.lo >= *h,
            KeyBound::PlusInfinity => false,
        }
    }

    /// Whether `split` lies strictly inside the range (`lo < split < hi`).
    ///
    /// This is the condition in the paper's Index Node Keyspace Split Rule
    /// item 4: entries whose key range *strictly includes* the split value
    /// are copied to both new index nodes.
    pub fn strictly_contains(&self, split: &Key) -> bool {
        self.lo < *split
            && match &self.hi {
                KeyBound::Finite(h) => split < h,
                KeyBound::PlusInfinity => true,
            }
    }

    /// Whether this range lies entirely at or below `split`
    /// (rule 2: `hi <= split` goes to the new left node).
    pub fn entirely_below(&self, split: &Key) -> bool {
        match &self.hi {
            KeyBound::Finite(h) => h <= split,
            KeyBound::PlusInfinity => false,
        }
    }

    /// Whether this range lies entirely at or above `split`
    /// (rule 3: `lo >= split` goes to the new right node).
    pub fn entirely_at_or_above(&self, split: &Key) -> bool {
        self.lo >= *split
    }

    /// Whether the two ranges overlap (share at least one key).
    pub fn overlaps(&self, other: &KeyRange) -> bool {
        // [a, b) and [c, d) overlap iff a < d and c < b.
        let a_below_d = other.hi.is_above(&self.lo);
        let c_below_b = self.hi.is_above(&other.lo);
        a_below_d && c_below_b && !self.is_empty() && !other.is_empty()
    }

    /// Whether `other` is entirely contained in `self`.
    pub fn contains_range(&self, other: &KeyRange) -> bool {
        if other.is_empty() {
            return true;
        }
        self.lo <= other.lo && KeyBound::le(&other.hi, &self.hi)
    }

    /// Splits the range at `split`, producing `[lo, split)` and `[split, hi)`.
    ///
    /// Returns `None` if `split` does not lie strictly inside the range (a
    /// split there would create an empty half).
    pub fn split_at(&self, split: &Key) -> Option<(KeyRange, KeyRange)> {
        if !self.strictly_contains(split) {
            return None;
        }
        let left = KeyRange::new(self.lo.clone(), KeyBound::Finite(split.clone()));
        let right = KeyRange::new(split.clone(), self.hi.clone());
        Some((left, right))
    }

    /// The intersection of two ranges (possibly empty).
    pub fn intersection(&self, other: &KeyRange) -> KeyRange {
        let lo = if self.lo >= other.lo {
            self.lo.clone()
        } else {
            other.lo.clone()
        };
        let hi = KeyBound::min_of(&self.hi, &other.hi);
        KeyRange { lo, hi }
    }
}

impl fmt::Display for KeyRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_keys_order_numerically() {
        let a = Key::from_u64(1);
        let b = Key::from_u64(255);
        let c = Key::from_u64(256);
        let d = Key::from_u64(u64::MAX);
        assert!(a < b && b < c && c < d);
        assert_eq!(b.as_u64(), Some(255));
    }

    #[test]
    fn min_key_sorts_first() {
        let strings = ["a", "zzz", "0"];
        for s in strings {
            assert!(Key::MIN < Key::from(s));
        }
        assert!(Key::MIN < Key::from_u64(0));
        assert!(Key::MIN.is_min());
    }

    #[test]
    fn small_keys_are_inline_and_long_keys_spill() {
        assert!(Key::MIN.is_inline());
        assert!(Key::from_u64(42).is_inline());
        assert!(Key::from_bytes(vec![7u8; KEY_INLINE_CAP]).is_inline());
        assert!(!Key::from_bytes(vec![7u8; KEY_INLINE_CAP + 1]).is_inline());
        // The representation is canonical: short keys built from owned
        // vectors are still inline, so clones stay allocation-free.
        assert!(Key::from_vec(b"short".to_vec()).is_inline());
        assert!(Key::from_vec(b"short".to_vec()).clone().is_inline());
        // Round trips and equality cross the representation boundary.
        for len in [0, 1, 8, KEY_INLINE_CAP, KEY_INLINE_CAP + 1, 100] {
            let bytes = vec![0xAB; len];
            let k = Key::from_bytes(&bytes);
            assert_eq!(k.as_bytes(), &bytes[..]);
            assert_eq!(k.len(), len);
            assert_eq!(k.clone().into_bytes(), bytes);
            assert_eq!(k, Key::from_vec(bytes));
        }
    }

    #[test]
    fn ordering_and_hash_cross_representations() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let short = Key::from_bytes(vec![5u8; KEY_INLINE_CAP]);
        let long = Key::from_bytes(vec![5u8; KEY_INLINE_CAP + 4]);
        assert!(short < long, "prefix sorts first regardless of repr");
        assert!(Key::from_bytes(vec![9u8; 2]) > long);
        // Hash must agree with the borrowed byte slice (Borrow contract).
        let hash_of = |h: &dyn Fn(&mut DefaultHasher)| {
            let mut s = DefaultHasher::new();
            h(&mut s);
            s.finish()
        };
        for k in [&short, &long] {
            let via_key = hash_of(&|s| k.hash(s));
            let via_slice = hash_of(&|s| {
                let b: &[u8] = k.borrow();
                b.hash(s)
            });
            assert_eq!(via_key, via_slice);
        }
    }

    #[test]
    fn key_display_and_debug() {
        assert_eq!(format!("{}", Key::from_u64(42)), "42");
        assert_eq!(format!("{}", Key::from("alice")), "alice");
        assert_eq!(format!("{}", Key::MIN), "-inf");
        assert_eq!(format!("{:?}", Key::from_u64(7)), "Key(7)");
    }

    #[test]
    fn key_bound_ordering() {
        let f1 = KeyBound::Finite(Key::from_u64(10));
        let f2 = KeyBound::Finite(Key::from_u64(20));
        let inf = KeyBound::PlusInfinity;
        assert!(f1 < f2);
        assert!(f2 < inf);
        assert!(KeyBound::le(&f1, &f1));
        assert_eq!(KeyBound::min_of(&f2, &inf), f2);
        assert!(inf.is_infinite());
        assert!(!f1.is_infinite());
    }

    #[test]
    fn range_contains() {
        let r = KeyRange::bounded(Key::from_u64(10), Key::from_u64(20));
        assert!(r.contains(&Key::from_u64(10)));
        assert!(r.contains(&Key::from_u64(19)));
        assert!(!r.contains(&Key::from_u64(20)));
        assert!(!r.contains(&Key::from_u64(9)));
        assert!(KeyRange::full().contains(&Key::from_u64(9)));
        assert!(KeyRange::full().contains(&Key::MIN));
    }

    #[test]
    fn range_strictly_contains() {
        let r = KeyRange::bounded(Key::from_u64(10), Key::from_u64(20));
        assert!(!r.strictly_contains(&Key::from_u64(10)));
        assert!(r.strictly_contains(&Key::from_u64(15)));
        assert!(!r.strictly_contains(&Key::from_u64(20)));
        let open = KeyRange::new(Key::from_u64(10), KeyBound::PlusInfinity);
        assert!(open.strictly_contains(&Key::from_u64(u64::MAX)));
    }

    #[test]
    fn range_split() {
        let r = KeyRange::full();
        let (l, rr) = r.split_at(&Key::from_u64(50)).unwrap();
        assert!(l.contains(&Key::from_u64(49)));
        assert!(!l.contains(&Key::from_u64(50)));
        assert!(rr.contains(&Key::from_u64(50)));
        assert!(rr.hi.is_infinite());
        // Splitting at the lower bound is rejected.
        assert!(rr.split_at(&Key::from_u64(50)).is_none());
    }

    #[test]
    fn range_overlap_and_containment() {
        let a = KeyRange::bounded(Key::from_u64(10), Key::from_u64(20));
        let b = KeyRange::bounded(Key::from_u64(15), Key::from_u64(25));
        let c = KeyRange::bounded(Key::from_u64(20), Key::from_u64(30));
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(KeyRange::full().contains_range(&a));
        assert!(!a.contains_range(&b));
        let i = a.intersection(&b);
        assert_eq!(i, KeyRange::bounded(Key::from_u64(15), Key::from_u64(20)));
        let empty = a.intersection(&c);
        assert!(empty.is_empty());
    }

    #[test]
    fn empty_range() {
        let e = KeyRange::bounded(Key::from_u64(10), Key::from_u64(10));
        assert!(e.is_empty());
        assert!(!e.contains(&Key::from_u64(10)));
        assert!(!e.overlaps(&KeyRange::full()));
    }

    #[test]
    fn entirely_below_and_above() {
        let r = KeyRange::bounded(Key::from_u64(10), Key::from_u64(20));
        assert!(r.entirely_below(&Key::from_u64(20)));
        assert!(r.entirely_below(&Key::from_u64(25)));
        assert!(!r.entirely_below(&Key::from_u64(15)));
        assert!(r.entirely_at_or_above(&Key::from_u64(10)));
        assert!(!r.entirely_at_or_above(&Key::from_u64(11)));
        let open = KeyRange::new(Key::from_u64(10), KeyBound::PlusInfinity);
        assert!(!open.entirely_below(&Key::from_u64(u64::MAX)));
    }
}
