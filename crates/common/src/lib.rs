//! # tsb-common
//!
//! Shared vocabulary types for the Time-Split B-tree (TSB-tree) workspace, a
//! reproduction of Lomet & Salzberg, *Access Methods for Multiversion Data*,
//! SIGMOD 1989.
//!
//! This crate deliberately has no dependencies. It defines:
//!
//! * [`Key`], [`KeyBound`], and [`KeyRange`] — the key dimension of the
//!   key × time rectangles every TSB-tree node spans,
//! * [`Timestamp`], [`TimeBound`], [`TimeRange`], and [`LogicalClock`] — the
//!   time dimension (the paper assumes a *rollback* database stamped with
//!   transaction commit times),
//! * [`Version`], [`TsState`], and [`TxnId`] — a single record version as
//!   stored in data nodes (committed versions carry a commit timestamp;
//!   uncommitted versions carry only the transaction id, which is what lets
//!   them be erased on abort and never migrated to the historical store),
//! * [`TsbError`] / [`TsbResult`] — the workspace error type,
//! * [`TsbConfig`] and the split-policy parameter types,
//! * [`encode`] — the hand-rolled binary encoding helpers used by the precise
//!   page layouts in `tsb-storage`, `tsb-core`, and `tsb-wobt`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod config;
pub mod encode;
pub mod error;
pub mod key;
pub mod record;
pub mod time;

pub use config::{CostParams, FsyncPolicy, SplitPolicyKind, SplitTimeChoice, TsbConfig, WalMode};
pub use error::{TsbError, TsbResult};
pub use key::{Key, KeyBound, KeyRange, KEY_INLINE_CAP};
pub use record::{TsState, TxnId, Version, VersionOrder};
pub use time::{LogicalClock, TimeBound, TimeRange, Timestamp};
