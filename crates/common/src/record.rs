//! Record versions as stored in TSB-tree (and WOBT) data nodes.
//!
//! An *update* in a multiversion, non-deletion database is the insertion of a
//! new version with the same key (§2.1). A version is therefore identified by
//! `(key, timestamp)`. Versions written by transactions that have not yet
//! committed carry no timestamp — only the transaction id (§4) — which is
//! exactly what allows them to be erased on abort and guarantees they are
//! never migrated to the historical database during a time split.

use std::fmt;

use crate::key::Key;
use crate::time::Timestamp;

/// Identifier of a (writer) transaction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TxnId(pub u64);

impl TxnId {
    /// Creates a transaction id.
    pub const fn new(v: u64) -> Self {
        TxnId(v)
    }

    /// The raw value.
    pub const fn value(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

/// The timestamp state of a version: committed (with the commit time of the
/// writing transaction) or still uncommitted (identified by the writer).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TsState {
    /// Committed at the given transaction commit time.
    Committed(Timestamp),
    /// Written by a transaction that has not committed yet.
    Uncommitted(TxnId),
}

impl TsState {
    /// The commit timestamp, if committed.
    pub fn commit_time(&self) -> Option<Timestamp> {
        match self {
            TsState::Committed(t) => Some(*t),
            TsState::Uncommitted(_) => None,
        }
    }

    /// Whether the version is committed.
    pub fn is_committed(&self) -> bool {
        matches!(self, TsState::Committed(_))
    }

    /// Whether the version is uncommitted.
    pub fn is_uncommitted(&self) -> bool {
        matches!(self, TsState::Uncommitted(_))
    }

    /// The writer transaction id, if uncommitted.
    pub fn txn_id(&self) -> Option<TxnId> {
        match self {
            TsState::Committed(_) => None,
            TsState::Uncommitted(id) => Some(*id),
        }
    }
}

impl fmt::Display for TsState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsState::Committed(t) => write!(f, "T={t}"),
            TsState::Uncommitted(id) => write!(f, "uncommitted({id})"),
        }
    }
}

/// Ordering key used *within a data node*: committed versions order by commit
/// time; uncommitted versions sort after every committed version (they are
/// "newer than now"), tie-broken by transaction id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum VersionOrder {
    /// Sort position of a committed version.
    Committed(Timestamp),
    /// Sort position of an uncommitted version.
    Uncommitted(TxnId),
}

impl From<TsState> for VersionOrder {
    fn from(s: TsState) -> Self {
        match s {
            TsState::Committed(t) => VersionOrder::Committed(t),
            TsState::Uncommitted(id) => VersionOrder::Uncommitted(id),
        }
    }
}

/// A single record version.
///
/// `value = None` encodes a **tombstone**: the record was logically deleted
/// at `state`'s time. The paper's database is non-deleting, but a usable
/// library needs logical deletion of *current* data; the tombstone itself is
/// retained in history, so the non-deletion property (no information is ever
/// lost) is preserved. This is documented as an extension in DESIGN.md.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Version {
    /// The record key.
    pub key: Key,
    /// Commit timestamp or writer transaction id.
    pub state: TsState,
    /// The record payload; `None` is a tombstone.
    pub value: Option<Vec<u8>>,
}

impl Version {
    /// Creates a committed version.
    pub fn committed(key: impl Into<Key>, ts: Timestamp, value: impl Into<Vec<u8>>) -> Self {
        Version {
            key: key.into(),
            state: TsState::Committed(ts),
            value: Some(value.into()),
        }
    }

    /// Creates a committed tombstone (logical delete).
    pub fn tombstone(key: impl Into<Key>, ts: Timestamp) -> Self {
        Version {
            key: key.into(),
            state: TsState::Committed(ts),
            value: None,
        }
    }

    /// Creates an uncommitted version.
    pub fn uncommitted(key: impl Into<Key>, txn: TxnId, value: impl Into<Vec<u8>>) -> Self {
        Version {
            key: key.into(),
            state: TsState::Uncommitted(txn),
            value: Some(value.into()),
        }
    }

    /// Creates an uncommitted tombstone.
    pub fn uncommitted_tombstone(key: impl Into<Key>, txn: TxnId) -> Self {
        Version {
            key: key.into(),
            state: TsState::Uncommitted(txn),
            value: None,
        }
    }

    /// Whether the version is a tombstone.
    pub fn is_tombstone(&self) -> bool {
        self.value.is_none()
    }

    /// The commit timestamp, if committed.
    pub fn commit_time(&self) -> Option<Timestamp> {
        self.state.commit_time()
    }

    /// The sort position of this version within its key's history.
    pub fn order(&self) -> VersionOrder {
        self.state.into()
    }

    /// The intra-node sort key `(key, order)`, borrowed — comparing two
    /// sort keys never clones or allocates.
    pub fn sort_key(&self) -> (&Key, VersionOrder) {
        (&self.key, self.order())
    }

    /// Compares two versions by their intra-node sort order
    /// `(key, version order)` without cloning either.
    pub fn sort_cmp(&self, other: &Version) -> std::cmp::Ordering {
        self.key
            .cmp(&other.key)
            .then_with(|| self.order().cmp(&other.order()))
    }

    /// Approximate in-memory / on-page size of the version (used by split
    /// policies and by space accounting before encoding).
    pub fn payload_len(&self) -> usize {
        self.value.as_ref().map_or(0, Vec::len)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.value {
            Some(v) => write!(f, "{} {} ({} bytes)", self.key, self.state, v.len()),
            None => write!(f, "{} {} <tombstone>", self.key, self.state),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_constructors() {
        let v = Version::committed(50u64, Timestamp(3), b"Joe".to_vec());
        assert_eq!(v.commit_time(), Some(Timestamp(3)));
        assert!(!v.is_tombstone());
        assert_eq!(v.payload_len(), 3);

        let t = Version::tombstone(50u64, Timestamp(9));
        assert!(t.is_tombstone());
        assert_eq!(t.payload_len(), 0);

        let u = Version::uncommitted(60u64, TxnId(7), b"Pete".to_vec());
        assert!(u.state.is_uncommitted());
        assert_eq!(u.state.txn_id(), Some(TxnId(7)));
        assert_eq!(u.commit_time(), None);
    }

    #[test]
    fn uncommitted_sorts_after_committed() {
        let committed_late = VersionOrder::Committed(Timestamp::MAX);
        let uncommitted = VersionOrder::Uncommitted(TxnId(1));
        assert!(committed_late < uncommitted);

        let a = Version::committed(1u64, Timestamp(5), b"a".to_vec());
        let b = Version::uncommitted(1u64, TxnId(0), b"b".to_vec());
        assert!(a.sort_key() < b.sort_key());
    }

    #[test]
    fn display_forms() {
        let v = Version::committed(50u64, Timestamp(3), b"Joe".to_vec());
        assert_eq!(format!("{v}"), "50 T=3 (3 bytes)");
        let t = Version::tombstone(50u64, Timestamp(4));
        assert!(format!("{t}").contains("tombstone"));
        let u = Version::uncommitted(60u64, TxnId(7), b"x".to_vec());
        assert!(format!("{u}").contains("uncommitted(txn7)"));
    }
}
