//! Timestamps, time bounds, time ranges, and the logical clock.
//!
//! The paper assumes a *rollback database* ([SnAh], [McKe]): every committed
//! version is stamped with the **commit time** of the transaction that wrote
//! it, and values are *stepwise constant* between updates (Figure 1). The
//! absolute scale of timestamps is irrelevant to the structure; what matters
//! is that commit timestamps are monotonically non-decreasing. We therefore
//! use an abstract `u64` logical timestamp issued by [`LogicalClock`].
//!
//! A [`TimeRange`] is the half-open time interval `[lo, hi)` spanned by a
//! TSB-tree node or index entry; current nodes have `hi = +∞`
//! ([`TimeBound::Infinity`]).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A logical timestamp (transaction commit time).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The smallest timestamp; the initial root's time range starts here.
    pub const ZERO: Timestamp = Timestamp(0);
    /// The largest representable timestamp.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Creates a timestamp from a raw value.
    pub const fn new(v: u64) -> Self {
        Timestamp(v)
    }

    /// The raw value.
    pub const fn value(&self) -> u64 {
        self.0
    }

    /// The next timestamp (saturating).
    pub const fn next(&self) -> Timestamp {
        Timestamp(self.0.saturating_add(1))
    }

    /// The previous timestamp (saturating).
    pub const fn prev(&self) -> Timestamp {
        Timestamp(self.0.saturating_sub(1))
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T={}", self.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Timestamp {
    fn from(v: u64) -> Self {
        Timestamp(v)
    }
}

/// An upper bound on a time range: either a finite timestamp (exclusive) or
/// `+∞` (the node is *current*: it still receives updates).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TimeBound {
    /// Finite, exclusive upper bound.
    Finite(Timestamp),
    /// The range is open-ended: it covers all times from `lo` onwards.
    Infinity,
}

impl TimeBound {
    /// Returns true if `t < self`.
    pub fn is_above(&self, t: Timestamp) -> bool {
        match self {
            TimeBound::Finite(b) => t < *b,
            TimeBound::Infinity => true,
        }
    }

    /// The finite bound, if any.
    pub fn as_finite(&self) -> Option<Timestamp> {
        match self {
            TimeBound::Finite(t) => Some(*t),
            TimeBound::Infinity => None,
        }
    }

    /// Whether the bound is `+∞`.
    pub fn is_infinite(&self) -> bool {
        matches!(self, TimeBound::Infinity)
    }

    /// `a <= b` where `+∞` is the greatest element.
    pub fn le(a: &TimeBound, b: &TimeBound) -> bool {
        match (a, b) {
            (TimeBound::Infinity, TimeBound::Infinity) => true,
            (TimeBound::Infinity, TimeBound::Finite(_)) => false,
            (TimeBound::Finite(_), TimeBound::Infinity) => true,
            (TimeBound::Finite(x), TimeBound::Finite(y)) => x <= y,
        }
    }
}

impl PartialOrd for TimeBound {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimeBound {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (TimeBound::Infinity, TimeBound::Infinity) => Ordering::Equal,
            (TimeBound::Infinity, TimeBound::Finite(_)) => Ordering::Greater,
            (TimeBound::Finite(_), TimeBound::Infinity) => Ordering::Less,
            (TimeBound::Finite(a), TimeBound::Finite(b)) => a.cmp(b),
        }
    }
}

impl fmt::Display for TimeBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeBound::Finite(t) => write!(f, "{t}"),
            TimeBound::Infinity => write!(f, "+inf"),
        }
    }
}

/// A half-open time interval `[lo, hi)`.
///
/// Current (magnetic-disk) nodes span `[lo, +∞)`; historical nodes produced
/// by a time split at `T` span `[lo, T)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimeRange {
    /// Inclusive lower bound.
    pub lo: Timestamp,
    /// Exclusive upper bound (possibly `+∞`).
    pub hi: TimeBound,
}

impl TimeRange {
    /// The full time axis `[0, +∞)`.
    pub fn full() -> Self {
        TimeRange {
            lo: Timestamp::ZERO,
            hi: TimeBound::Infinity,
        }
    }

    /// Creates `[lo, hi)`.
    pub fn new(lo: Timestamp, hi: TimeBound) -> Self {
        TimeRange { lo, hi }
    }

    /// Creates the open-ended range `[lo, +∞)` of a current node.
    pub fn from(lo: Timestamp) -> Self {
        TimeRange {
            lo,
            hi: TimeBound::Infinity,
        }
    }

    /// Creates a bounded range `[lo, hi)`.
    pub fn bounded(lo: Timestamp, hi: Timestamp) -> Self {
        TimeRange {
            lo,
            hi: TimeBound::Finite(hi),
        }
    }

    /// Whether the range contains time `t`.
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.lo && self.hi.is_above(t)
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        match self.hi {
            TimeBound::Finite(h) => self.lo >= h,
            TimeBound::Infinity => false,
        }
    }

    /// Whether the range is open-ended (`hi = +∞`), i.e. refers to a current
    /// node.
    pub fn is_current(&self) -> bool {
        self.hi.is_infinite()
    }

    /// Whether two ranges overlap.
    pub fn overlaps(&self, other: &TimeRange) -> bool {
        let a_below_d = other.hi.is_above(self.lo);
        let c_below_b = self.hi.is_above(other.lo);
        a_below_d && c_below_b && !self.is_empty() && !other.is_empty()
    }

    /// Whether `other` is entirely contained in `self`.
    pub fn contains_range(&self, other: &TimeRange) -> bool {
        if other.is_empty() {
            return true;
        }
        self.lo <= other.lo && TimeBound::le(&other.hi, &self.hi)
    }

    /// Splits the range at `t`, producing `[lo, t)` and `[t, hi)`.
    ///
    /// Returns `None` if `t` does not lie strictly inside the range.
    pub fn split_at(&self, t: Timestamp) -> Option<(TimeRange, TimeRange)> {
        if t <= self.lo || !self.hi.is_above(t) {
            return None;
        }
        Some((TimeRange::bounded(self.lo, t), TimeRange::new(t, self.hi)))
    }

    /// The intersection of two ranges (possibly empty).
    pub fn intersection(&self, other: &TimeRange) -> TimeRange {
        let lo = self.lo.max(other.lo);
        let hi = if TimeBound::le(&self.hi, &other.hi) {
            self.hi
        } else {
            other.hi
        };
        TimeRange { lo, hi }
    }
}

impl fmt::Display for TimeRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

/// A monotonic logical clock issuing commit timestamps.
///
/// The clock is shared by the tree and its transaction manager; `tick()`
/// returns a strictly increasing timestamp. The clock is thread-safe so that
/// read-only transactions (§4.1) can take a start timestamp without any
/// coordination with writers.
#[derive(Debug)]
pub struct LogicalClock {
    next: AtomicU64,
}

impl LogicalClock {
    /// Creates a clock whose first tick returns `start`.
    pub fn starting_at(start: Timestamp) -> Self {
        LogicalClock {
            next: AtomicU64::new(start.0.max(1)),
        }
    }

    /// Creates a clock whose first tick returns `T=1`.
    pub fn new() -> Self {
        Self::starting_at(Timestamp(1))
    }

    /// Returns the next timestamp and advances the clock.
    pub fn tick(&self) -> Timestamp {
        Timestamp(self.next.fetch_add(1, Ordering::SeqCst))
    }

    /// Returns the timestamp the next `tick()` would produce, without
    /// advancing. Used as "the current time" for WOBT-style splits.
    pub fn now(&self) -> Timestamp {
        Timestamp(self.next.load(Ordering::SeqCst))
    }

    /// Advances the clock so that the next tick is at least `t`.
    ///
    /// Used when reopening a tree whose stored data already contains
    /// timestamps up to `t - 1`.
    pub fn advance_to(&self, t: Timestamp) {
        let mut cur = self.next.load(Ordering::SeqCst);
        while cur < t.0 {
            match self
                .next
                .compare_exchange(cur, t.0, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

impl Default for LogicalClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_basics() {
        let t = Timestamp::new(5);
        assert_eq!(t.value(), 5);
        assert_eq!(t.next(), Timestamp(6));
        assert_eq!(t.prev(), Timestamp(4));
        assert_eq!(Timestamp::ZERO.prev(), Timestamp::ZERO);
        assert_eq!(Timestamp::MAX.next(), Timestamp::MAX);
        assert_eq!(format!("{t}"), "5");
        assert_eq!(format!("{t:?}"), "T=5");
    }

    #[test]
    fn time_bound_ordering() {
        let a = TimeBound::Finite(Timestamp(3));
        let b = TimeBound::Finite(Timestamp(9));
        let inf = TimeBound::Infinity;
        assert!(a < b && b < inf);
        assert!(TimeBound::le(&a, &a));
        assert!(!TimeBound::le(&inf, &b));
        assert_eq!(inf.as_finite(), None);
        assert_eq!(a.as_finite(), Some(Timestamp(3)));
    }

    #[test]
    fn time_range_contains_and_split() {
        let r = TimeRange::bounded(Timestamp(2), Timestamp(10));
        assert!(r.contains(Timestamp(2)));
        assert!(r.contains(Timestamp(9)));
        assert!(!r.contains(Timestamp(10)));
        assert!(!r.contains(Timestamp(1)));

        let (old, new) = r.split_at(Timestamp(5)).unwrap();
        assert_eq!(old, TimeRange::bounded(Timestamp(2), Timestamp(5)));
        assert_eq!(new, TimeRange::bounded(Timestamp(5), Timestamp(10)));
        assert!(r.split_at(Timestamp(2)).is_none());
        assert!(r.split_at(Timestamp(10)).is_none());

        let cur = TimeRange::from(Timestamp(3));
        assert!(cur.is_current());
        assert!(cur.contains(Timestamp::MAX));
        let (h, c) = cur.split_at(Timestamp(7)).unwrap();
        assert!(!h.is_current());
        assert!(c.is_current());
    }

    #[test]
    fn time_range_overlap_intersection() {
        let a = TimeRange::bounded(Timestamp(0), Timestamp(5));
        let b = TimeRange::bounded(Timestamp(4), Timestamp(9));
        let c = TimeRange::bounded(Timestamp(5), Timestamp(9));
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(
            a.intersection(&b),
            TimeRange::bounded(Timestamp(4), Timestamp(5))
        );
        assert!(a.intersection(&c).is_empty());
        assert!(TimeRange::full().contains_range(&a));
        assert!(!a.contains_range(&TimeRange::full()));
    }

    #[test]
    fn clock_is_monotonic() {
        let c = LogicalClock::new();
        let t1 = c.tick();
        let t2 = c.tick();
        let t3 = c.tick();
        assert!(t1 < t2 && t2 < t3);
        assert_eq!(t1, Timestamp(1));
        assert_eq!(c.now(), Timestamp(4));
        c.advance_to(Timestamp(100));
        assert_eq!(c.tick(), Timestamp(100));
        // advance_to never goes backwards
        c.advance_to(Timestamp(5));
        assert_eq!(c.tick(), Timestamp(101));
    }
}
