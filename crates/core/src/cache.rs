//! The decoded-node cache: `NodeAddr -> Arc<Node>`.
//!
//! The buffer pool caches page *images*; before this layer existed every
//! logical node access still paid a full `Node::decode` of that image — and
//! every `write_current` a full `Node::encode` — even when the page was
//! resident. The paper's access-cost argument (§2.2, §2.5) counts a search
//! as one root-to-leaf path of node accesses; this cache makes a warm
//! access what the model says it is: a hash lookup handing out a shared,
//! already-decoded node.
//!
//! Design points:
//!
//! * **Both devices.** Current pages and immutable historical (WORM) nodes
//!   share one cache, keyed by [`NodeAddr`]. Historical nodes never change,
//!   so cached copies are valid forever; current entries are replaced by
//!   every [`insert_dirty`](NodeCache::insert_dirty) on their page.
//! * **Write-back of nodes, not bytes.** A current-node write installs the
//!   decoded node marked dirty; the encode is deferred until the entry is
//!   evicted or the tree flushes. Repeated rewrites of a hot leaf (the
//!   common insert pattern) therefore encode once, not once per insert.
//! * **No I/O in this module.** The cache returns evicted dirty nodes to
//!   the caller ([`TsbTree`](crate::TsbTree)), which owns the buffer pool
//!   and performs the encode + page write. This keeps the storage boundary
//!   clean: `tsb-storage` moves bytes, `tsb-core` decides what they mean.
//!
//! Interior mutability (a mutex around the map + LRU list) lets reads keep
//! taking `&self`, matching the lock-free read-only transaction story of
//! §4.1 at this layer of the reproduction.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use tsb_storage::{LruList, PageId};

use crate::node::{Node, NodeAddr};

struct CacheEntry {
    node: Arc<Node>,
    /// Dirty entries are current nodes whose newest image exists only here;
    /// they are encoded into the buffer pool on eviction or flush.
    /// Historical entries are never dirty.
    dirty: bool,
}

struct Inner {
    entries: HashMap<NodeAddr, CacheEntry>,
    lru: LruList<NodeAddr>,
}

/// A fixed-capacity LRU cache of decoded nodes spanning both devices.
pub(crate) struct NodeCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

/// Dirty nodes displaced by an insertion; the caller must encode and write
/// each to its page.
pub(crate) type Evicted = Vec<(PageId, Arc<Node>)>;

impl std::fmt::Debug for NodeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeCache")
            .field("capacity", &self.capacity)
            .field("resident", &self.len())
            .finish()
    }
}

impl NodeCache {
    /// Creates a cache holding at most `capacity` decoded nodes.
    pub(crate) fn new(capacity: usize) -> Self {
        NodeCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                lru: LruList::new(),
            }),
        }
    }

    /// Number of cached nodes.
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Returns the cached node at `addr`, marking it most recently used.
    pub(crate) fn get(&self, addr: NodeAddr) -> Option<Arc<Node>> {
        let mut inner = self.inner.lock();
        let node = Arc::clone(&inner.entries.get(&addr)?.node);
        inner.lru.touch(addr);
        Some(node)
    }

    /// Caches a node freshly decoded from its device image.
    #[must_use = "evicted dirty nodes must be written back"]
    pub(crate) fn insert_clean(&self, addr: NodeAddr, node: Arc<Node>) -> Evicted {
        self.insert(addr, node, false)
    }

    /// Installs the newest version of a current node, superseding the page
    /// image until eviction/flush re-encodes it.
    #[must_use = "evicted dirty nodes must be written back"]
    pub(crate) fn insert_dirty(&self, page: PageId, node: Arc<Node>) -> Evicted {
        self.insert(NodeAddr::Current(page), node, true)
    }

    fn insert(&self, addr: NodeAddr, node: Arc<Node>, dirty: bool) -> Evicted {
        let mut inner = self.inner.lock();
        let previous = inner.entries.insert(addr, CacheEntry { node, dirty });
        debug_assert!(
            dirty || previous.is_none_or(|e| !e.dirty),
            "insert_clean would replace the dirty node at {addr}, losing its deferred encode"
        );
        inner.lru.touch(addr);
        let mut evicted = Vec::new();
        while inner.entries.len() > self.capacity {
            let victim = inner
                .lru
                .pop_lru()
                .expect("cache over capacity implies a nonempty LRU list");
            let entry = inner
                .entries
                .remove(&victim)
                .expect("LRU list tracks exactly the cached addresses");
            if entry.dirty {
                let page = victim.as_page().expect("only current nodes are ever dirty");
                evicted.push((page, entry.node));
            }
        }
        evicted
    }

    /// Invalidates one address (page freed, node superseded out of band).
    /// Any dirty state is dropped — the caller decides whether the page
    /// image is still meaningful.
    pub(crate) fn discard(&self, addr: NodeAddr) {
        let mut inner = self.inner.lock();
        inner.entries.remove(&addr);
        inner.lru.remove(&addr);
    }

    /// Drops every cached node. The caller must have flushed dirty entries
    /// first (see [`TsbTree::drop_caches`](crate::TsbTree::drop_caches)).
    pub(crate) fn clear(&self) {
        let mut inner = self.inner.lock();
        debug_assert!(
            inner.entries.values().all(|e| !e.dirty),
            "clearing a node cache with dirty entries loses writes"
        );
        inner.entries.clear();
        inner.lru.clear();
    }

    /// Flushes one entry's dirty state: if `addr` is cached and dirty,
    /// marks it clean and returns the node for write-back. Keeps every
    /// other deferred encode deferred (single-address invalidation must
    /// not act as a full flush).
    #[must_use = "a returned dirty node must be written back"]
    pub(crate) fn take_dirty_at(&self, addr: NodeAddr) -> Option<(PageId, Arc<Node>)> {
        let mut inner = self.inner.lock();
        let entry = inner.entries.get_mut(&addr)?;
        if !entry.dirty {
            return None;
        }
        entry.dirty = false;
        let page = addr.as_page().expect("only current nodes are ever dirty");
        Some((page, Arc::clone(&entry.node)))
    }

    /// Removes and returns every dirty node, in ascending `PageId` order
    /// (deterministic write traces); the entries stay cached, now clean.
    pub(crate) fn take_dirty(&self) -> Evicted {
        let mut inner = self.inner.lock();
        let mut dirty: Evicted = inner
            .entries
            .iter_mut()
            .filter(|(_, e)| e.dirty)
            .map(|(addr, e)| {
                e.dirty = false;
                let page = addr.as_page().expect("only current nodes are ever dirty");
                (page, Arc::clone(&e.node))
            })
            .collect();
        dirty.sort_by_key(|(page, _)| *page);
        dirty
    }

    /// Whether `addr` is cached and dirty (test/diagnostic helper).
    #[cfg(test)]
    pub(crate) fn is_dirty(&self, addr: NodeAddr) -> bool {
        self.inner
            .lock()
            .entries
            .get(&addr)
            .map(|e| e.dirty)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::DataNode;

    fn node() -> Arc<Node> {
        Arc::new(Node::Data(DataNode::initial_root()))
    }

    #[test]
    fn hit_returns_the_shared_node() {
        let cache = NodeCache::new(4);
        let addr = NodeAddr::Current(PageId(1));
        assert!(cache.get(addr).is_none());
        let n = node();
        assert!(cache.insert_clean(addr, Arc::clone(&n)).is_empty());
        let got = cache.get(addr).unwrap();
        assert!(Arc::ptr_eq(&got, &n));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eviction_surfaces_only_dirty_nodes() {
        let cache = NodeCache::new(2);
        let d1 = cache.insert_dirty(PageId(1), node());
        let d2 = cache.insert_clean(NodeAddr::Current(PageId(2)), node());
        assert!(d1.is_empty() && d2.is_empty());
        // Third insert evicts page 1 (the LRU entry), which is dirty.
        let evicted = cache.insert_clean(NodeAddr::Current(PageId(3)), node());
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, PageId(1));
        // Fourth insert evicts page 2, which is clean: nothing to write.
        let evicted = cache.insert_clean(NodeAddr::Current(PageId(4)), node());
        assert!(evicted.is_empty());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn take_dirty_is_sorted_and_marks_clean() {
        let cache = NodeCache::new(8);
        for page in [5u64, 1, 3] {
            let _ = cache.insert_dirty(PageId(page), node());
        }
        let _ = cache.insert_clean(NodeAddr::Current(PageId(2)), node());
        let dirty = cache.take_dirty();
        let pages: Vec<u64> = dirty.iter().map(|(p, _)| p.0).collect();
        assert_eq!(pages, vec![1, 3, 5]);
        assert!(cache.take_dirty().is_empty(), "entries are clean now");
        assert_eq!(cache.len(), 4, "take_dirty does not evict");
        assert!(!cache.is_dirty(NodeAddr::Current(PageId(5))));
    }

    #[test]
    fn take_dirty_at_flushes_only_the_target() {
        let cache = NodeCache::new(8);
        let _ = cache.insert_dirty(PageId(1), node());
        let _ = cache.insert_dirty(PageId(2), node());
        let (page, _) = cache.take_dirty_at(NodeAddr::Current(PageId(1))).unwrap();
        assert_eq!(page, PageId(1));
        assert!(!cache.is_dirty(NodeAddr::Current(PageId(1))));
        assert!(
            cache.is_dirty(NodeAddr::Current(PageId(2))),
            "other deferred encodes stay deferred"
        );
        assert!(cache.take_dirty_at(NodeAddr::Current(PageId(1))).is_none());
        assert!(cache.take_dirty_at(NodeAddr::Current(PageId(99))).is_none());
    }

    #[test]
    fn discard_invalidates_without_writeback() {
        let cache = NodeCache::new(4);
        let addr = NodeAddr::Current(PageId(9));
        let _ = cache.insert_dirty(PageId(9), node());
        assert!(cache.is_dirty(addr));
        cache.discard(addr);
        assert!(cache.get(addr).is_none());
        assert!(cache.take_dirty().is_empty());
    }

    #[test]
    fn rewriting_a_page_replaces_its_entry() {
        let cache = NodeCache::new(4);
        let addr = NodeAddr::Current(PageId(1));
        let first = node();
        let second = node();
        let _ = cache.insert_clean(addr, Arc::clone(&first));
        let _ = cache.insert_dirty(PageId(1), Arc::clone(&second));
        assert_eq!(cache.len(), 1);
        assert!(Arc::ptr_eq(&cache.get(addr).unwrap(), &second));
        assert!(cache.is_dirty(addr));
    }
}
