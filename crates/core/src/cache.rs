//! The decoded-node cache: `NodeAddr -> Arc<Node>`.
//!
//! The buffer pool caches page *images*; before this layer existed every
//! logical node access still paid a full `Node::decode` of that image — and
//! every `write_current` a full `Node::encode` — even when the page was
//! resident. The paper's access-cost argument (§2.2, §2.5) counts a search
//! as one root-to-leaf path of node accesses; this cache makes a warm
//! access what the model says it is: a hash lookup handing out a shared,
//! already-decoded node.
//!
//! Design points:
//!
//! * **Both devices.** Current pages and immutable historical (WORM) nodes
//!   share one cache, keyed by [`NodeAddr`]. Historical nodes never change,
//!   so cached copies are valid forever; current entries are replaced by
//!   every [`insert_dirty`](NodeCache::insert_dirty) on their page.
//! * **Write-back of nodes, not bytes.** A current-node write installs the
//!   decoded node marked dirty; the encode is deferred until the tree
//!   flushes. Repeated rewrites of a hot leaf (the common insert pattern)
//!   therefore encode once, not once per insert. Dirty entries are
//!   **pinned**: eviction skips them, because a dirty entry is the sole
//!   copy of its node's newest state, and removing it before its encode
//!   reaches the buffer pool would let a concurrent reader decode a stale
//!   page image (the shard may temporarily exceed its capacity by the
//!   writer's dirty working set between flushes).
//! * **No I/O in this module.** The cache hands dirty nodes back through
//!   [`dirty_entries`](NodeCache::dirty_entries) /
//!   [`dirty_at`](NodeCache::dirty_at) to the caller
//!   ([`TsbTree`](crate::TsbTree)), which owns the buffer pool, performs
//!   the encode + page write, and confirms per entry with
//!   [`mark_clean`](NodeCache::mark_clean). This keeps the storage
//!   boundary clean: `tsb-storage` moves bytes, `tsb-core` decides what
//!   they mean.
//! * **Lock-sharded for concurrent readers.** A warm concurrent read
//!   ([`crate::ConcurrentTsb`]) touches nothing but this cache and the
//!   atomic [`tsb_storage::IoStats`] counters, so a single global mutex
//!   would serialize every reader on every node access. The cache is
//!   therefore split into [`SHARD_COUNT`] independent shards (hash of the
//!   address picks the shard), each with its own mutex, map, and LRU list;
//!   readers on disjoint paths proceed in parallel. A hit holds its shard
//!   latch only for the hash lookup and LRU touch — never across I/O,
//!   decode, or another node. Eviction is per-shard (each shard holds
//!   `capacity / SHARD_COUNT` entries), which approximates global LRU the
//!   same way any sharded cache does. [`NodeCache::new`] keeps a single
//!   shard — exact LRU, used by tests that assert eviction order;
//!   [`NodeCache::sharded`] is what [`TsbTree`](crate::TsbTree) uses.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use parking_lot::Mutex;

use tsb_storage::{LruList, PageId};

use crate::node::{Node, NodeAddr};

/// Shards used by [`NodeCache::sharded`]. Sixteen keeps the chance of two
/// concurrent descents colliding on a shard low while the per-shard
/// capacity stays large enough for exact-LRU behaviour not to matter.
pub(crate) const SHARD_COUNT: usize = 16;

struct CacheEntry {
    node: Arc<Node>,
    /// Dirty entries are current nodes whose newest image exists only here;
    /// they are encoded into the buffer pool when the tree flushes (and
    /// are pinned against eviction until then). Historical entries are
    /// never dirty.
    dirty: bool,
}

struct Shard {
    entries: HashMap<NodeAddr, CacheEntry>,
    lru: LruList<NodeAddr>,
    /// Recency order over the *dirty* entries only. Dirty entries are
    /// pinned (not evictable), so eviction bounds `entries.len() -
    /// dirty_lru.len()` — the clean residency — by the shard capacity;
    /// the writer drains this list's LRU end through
    /// [`NodeCache::dirty_overflow_victim`] to bound the dirty residency
    /// too.
    dirty_lru: LruList<NodeAddr>,
    /// Bumped by every content-changing operation on this shard
    /// ([`NodeCache::insert_dirty`], [`NodeCache::discard`], `clear`). A
    /// reader's miss→decode→fill window ([`NodeCache::begin_fill`] /
    /// [`NodeCache::complete_fill`]) validates against it: a fill that
    /// raced a content change must not install its (possibly stale)
    /// decode as the canonical cached node.
    stamp: u64,
}

impl Shard {
    /// The dirty-overflow drain step shared by
    /// [`NodeCache::dirty_overflow_victim`] and
    /// [`NodeCache::any_dirty_overflow_victim`]: while more than
    /// `capacity` entries are dirty, offer the least recently written one
    /// for write-back. Peek, don't pop — the victim leaves the dirty set
    /// only in [`NodeCache::mark_clean`], after the caller's write-back
    /// succeeded, so an errored write-back leaves the accounting intact
    /// and the same victim is offered again. A dirty-LRU address with no
    /// cache entry violates the shard invariant; the orphan is shed and
    /// the drain continues rather than letting it wedge overflow control.
    fn dirty_overflow_victim(&mut self, capacity: usize) -> Option<(PageId, Arc<Node>)> {
        while self.dirty_lru.len() > capacity {
            let victim = *self.dirty_lru.peek_lru()?;
            let Some(entry) = self.entries.get(&victim) else {
                debug_assert!(false, "dirty-LRU victim {victim} has no cache entry");
                self.dirty_lru.remove(&victim);
                continue;
            };
            let node = Arc::clone(&entry.node);
            let page = victim.as_page().expect("only current nodes are ever dirty");
            return Some((page, node));
        }
        None
    }
}

/// A fixed-capacity LRU cache of decoded nodes spanning both devices,
/// lock-sharded for concurrent readers.
pub(crate) struct NodeCache {
    /// Maximum entries per shard.
    shard_capacity: usize,
    shards: Vec<Mutex<Shard>>,
}

impl std::fmt::Debug for NodeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeCache")
            .field("shards", &self.shards.len())
            .field("capacity", &(self.shard_capacity * self.shards.len()))
            .field("resident", &self.len())
            .finish()
    }
}

impl NodeCache {
    /// Creates a single-shard cache holding at most `capacity` decoded
    /// nodes, with exact global LRU eviction (tests that assert eviction
    /// order use this; the tree itself uses [`Self::sharded`]).
    #[cfg(test)]
    pub(crate) fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, 1)
    }

    /// Creates a cache of [`SHARD_COUNT`] shards holding at most `capacity`
    /// decoded nodes in total.
    pub(crate) fn sharded(capacity: usize) -> Self {
        Self::with_shards(capacity, SHARD_COUNT)
    }

    fn with_shards(capacity: usize, shards: usize) -> Self {
        // Every shard must hold at least one entry; small capacities
        // collapse to fewer shards rather than growing beyond the target.
        // Floor division keeps the aggregate clean residency at or below
        // the configured capacity (the clamp guarantees a quotient ≥ 1).
        let shards = shards.clamp(1, capacity.max(1));
        let shard_capacity = capacity.max(1) / shards;
        NodeCache {
            shard_capacity,
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        lru: LruList::new(),
                        dirty_lru: LruList::new(),
                        stamp: 0,
                    })
                })
                .collect(),
        }
    }

    fn shard(&self, addr: &NodeAddr) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        addr.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Number of cached nodes.
    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// Returns the cached node at `addr`, marking it most recently used.
    /// (The tree's read path uses [`Self::begin_fill`] /
    /// [`Self::complete_fill`] instead, which combine the lookup with a
    /// stamp-validated fill window.)
    #[cfg(test)]
    pub(crate) fn get(&self, addr: NodeAddr) -> Option<Arc<Node>> {
        let mut shard = self.shard(&addr).lock();
        let node = Arc::clone(&shard.entries.get(&addr)?.node);
        shard.lru.touch(addr);
        Some(node)
    }

    /// Opens a fill window for `addr`: returns the resident node on a hit
    /// (`Ok`), or the shard's content stamp on a miss (`Err`) for the
    /// caller to pass back through [`Self::complete_fill`] after decoding.
    pub(crate) fn begin_fill(&self, addr: NodeAddr) -> Result<Arc<Node>, u64> {
        let mut shard = self.shard(&addr).lock();
        match shard.entries.get(&addr) {
            Some(entry) => {
                let node = Arc::clone(&entry.node);
                shard.lru.touch(addr);
                Ok(node)
            }
            None => Err(shard.stamp),
        }
    }

    /// Completes a fill opened by [`Self::begin_fill`], returning the
    /// canonical node for the caller to use.
    ///
    /// A fill races: between the miss and this call, the writer may have
    /// installed a newer dirty version of the same address and that entry
    /// may even have been written back and evicted again — the caller's
    /// decode would then be stale, and caching it would poison every later
    /// read (including the writer's own read-modify-write). Two guards
    /// close the window: a resident entry always wins, and a shard whose
    /// content stamp moved since `begin_fill` refuses the install (the
    /// caller still gets *its* decode back, which is a legal answer for a
    /// read that began before the racing write installed — it just never
    /// becomes canonical).
    pub(crate) fn complete_fill(&self, addr: NodeAddr, node: Arc<Node>, stamp: u64) -> Arc<Node> {
        let mut shard = self.shard(&addr).lock();
        if let Some(existing) = shard.entries.get(&addr) {
            let existing = Arc::clone(&existing.node);
            shard.lru.touch(addr);
            return existing;
        }
        if shard.stamp != stamp {
            return node;
        }
        shard.entries.insert(
            addr,
            CacheEntry {
                node: Arc::clone(&node),
                dirty: false,
            },
        );
        shard.lru.touch(addr);
        self.evict_clean_overflow(&mut shard);
        node
    }

    /// Caches an *immutable* node (a historical WORM append, whose address
    /// can never hold different content) without a fill window. Also used
    /// by tests. The resident entry wins if one exists.
    pub(crate) fn insert_clean(&self, addr: NodeAddr, node: Arc<Node>) -> Arc<Node> {
        let stamp = match self.begin_fill(addr) {
            Ok(existing) => return existing,
            Err(stamp) => stamp,
        };
        self.complete_fill(addr, node, stamp)
    }

    /// Installs the newest version of a current node, superseding the page
    /// image until a flush or overflow write-back re-encodes it. The entry
    /// is pinned resident (and dirty) until then. Writer-only: callers
    /// serialize mutations.
    pub(crate) fn insert_dirty(&self, page: PageId, node: Arc<Node>) {
        let addr = NodeAddr::Current(page);
        let mut shard = self.shard(&addr).lock();
        shard.stamp += 1;
        shard.entries.insert(addr, CacheEntry { node, dirty: true });
        shard.dirty_lru.touch(addr);
        shard.lru.touch(addr);
        self.evict_clean_overflow(&mut shard);
    }

    /// Writer-side dirty residency control. If `addr`'s shard holds more
    /// dirty entries than its capacity, returns the least recently written
    /// one for write-back. The entry **stays resident and stays dirty**
    /// until the caller has installed its encode in the buffer pool and
    /// calls [`Self::mark_clean`] — marking it clean (and therefore
    /// evictable) any earlier would reopen the stale-decode window this
    /// cache pins dirty entries to avoid. Single-writer only: the caller's
    /// serialization guarantees nobody re-dirties the entry in between.
    pub(crate) fn dirty_overflow_victim(&self, addr: NodeAddr) -> Option<(PageId, Arc<Node>)> {
        self.shard(&addr)
            .lock()
            .dirty_overflow_victim(self.shard_capacity)
    }

    /// [`Self::dirty_overflow_victim`] across every shard: returns an
    /// overflow victim from *any* shard holding more dirty entries than its
    /// capacity, or `None` when all shards fit. Used by the durable write
    /// path, which defers overflow write-back to the end of the mutation
    /// (after the WAL commit fence) and therefore cannot rely on knowing
    /// which shard the overflowing page hashed to. The same
    /// peek/write/confirm protocol applies: the victim stays resident and
    /// dirty until [`Self::mark_clean`].
    pub(crate) fn any_dirty_overflow_victim(&self) -> Option<(PageId, Arc<Node>)> {
        // One shard coming up empty (fits, or inconsistent) must not end
        // the whole drain — every later shard still gets its turn.
        self.shards
            .iter()
            .find_map(|shard| shard.lock().dirty_overflow_victim(self.shard_capacity))
    }

    /// Marks `addr` clean after its newest encode reached the buffer pool
    /// (the second half of [`Self::dirty_overflow_victim`]).
    pub(crate) fn mark_clean(&self, addr: NodeAddr) {
        let mut shard = self.shard(&addr).lock();
        if let Some(entry) = shard.entries.get_mut(&addr) {
            entry.dirty = false;
        }
        shard.dirty_lru.remove(&addr);
    }

    /// Evicts clean entries until the shard's clean residency fits its
    /// capacity. Dirty entries are skipped: a dirty entry is the *sole*
    /// copy of its node's newest state, and removing it from the cache
    /// before its encode reaches the buffer pool would open a window in
    /// which a concurrent reader misses here and decodes a stale (or
    /// still-empty) page image — a torn read on a content-only path the
    /// structure epoch does not cover. Dirty entries stay pinned until an
    /// explicit flush ([`Self::dirty_entries`] + [`Self::mark_clean`],
    /// always writer-serialized) marks them clean; the shard may
    /// temporarily exceed its capacity by the writer's dirty working set.
    /// This also keeps the read path free of page I/O entirely.
    fn evict_clean_overflow(&self, shard: &mut Shard) {
        let mut pinned_dirty = Vec::new();
        while shard.entries.len().saturating_sub(shard.dirty_lru.len()) > self.shard_capacity {
            let Some(victim) = shard.lru.pop_lru() else {
                break;
            };
            if shard.entries.get(&victim).is_some_and(|e| e.dirty) {
                pinned_dirty.push(victim);
            } else {
                shard.entries.remove(&victim);
            }
        }
        // Pinned dirty entries rejoin the recency order as most recently
        // used: the next eviction scan finds clean victims first, so
        // repeated inserts do not rescan the dirty set.
        for addr in pinned_dirty {
            shard.lru.touch(addr);
        }
    }

    /// Invalidates one address (page freed, node superseded out of band).
    /// Any dirty state is dropped — the caller decides whether the page
    /// image is still meaningful.
    pub(crate) fn discard(&self, addr: NodeAddr) {
        let mut shard = self.shard(&addr).lock();
        shard.stamp += 1;
        shard.entries.remove(&addr);
        shard.lru.remove(&addr);
        shard.dirty_lru.remove(&addr);
    }

    /// Drops every cached node. The caller must have flushed dirty entries
    /// first (see [`TsbTree::drop_caches`](crate::TsbTree::drop_caches)).
    pub(crate) fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            debug_assert!(
                shard.entries.values().all(|e| !e.dirty),
                "clearing a node cache with dirty entries loses writes"
            );
            shard.stamp += 1;
            shard.entries.clear();
            shard.lru.clear();
            shard.dirty_lru.clear();
        }
    }

    /// Returns `addr`'s node if it is cached and dirty, *without* changing
    /// any state. The caller writes the encode to the buffer pool and then
    /// confirms with [`Self::mark_clean`] — the same peek/write/confirm
    /// protocol as [`Self::dirty_overflow_victim`], so the entry stays
    /// pinned (dirty, unevictable) until its image is durably in the pool
    /// and a concurrent reader can never evict-then-refill it from a stale
    /// page image.
    pub(crate) fn dirty_at(&self, addr: NodeAddr) -> Option<(PageId, Arc<Node>)> {
        let shard = self.shard(&addr).lock();
        let entry = shard.entries.get(&addr)?;
        if !entry.dirty {
            return None;
        }
        let node = Arc::clone(&entry.node);
        let page = addr.as_page().expect("only current nodes are ever dirty");
        Some((page, node))
    }

    /// Returns every dirty node in ascending `PageId` order (deterministic
    /// write traces) *without changing any state* — the flush protocol
    /// writes each encode to the buffer pool and then confirms per entry
    /// with [`Self::mark_clean`]. Flipping everything clean up front would
    /// unpin not-yet-written entries, and a concurrent reader could evict
    /// one and refill it from its stale pre-flush page image.
    pub(crate) fn dirty_entries(&self) -> Vec<(PageId, Arc<Node>)> {
        let mut dirty: Vec<(PageId, Arc<Node>)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock();
            dirty.extend(
                shard
                    .entries
                    .iter()
                    .filter(|(_, e)| e.dirty)
                    .map(|(addr, e)| {
                        let page = addr.as_page().expect("only current nodes are ever dirty");
                        (page, Arc::clone(&e.node))
                    }),
            );
        }
        dirty.sort_by_key(|(page, _)| *page);
        dirty
    }

    /// Whether `addr` is cached and dirty (test/diagnostic helper).
    #[cfg(test)]
    pub(crate) fn is_dirty(&self, addr: NodeAddr) -> bool {
        self.shard(&addr)
            .lock()
            .entries
            .get(&addr)
            .map(|e| e.dirty)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::DataNode;

    fn node() -> Arc<Node> {
        Arc::new(Node::Data(DataNode::initial_root()))
    }

    /// The flush protocol as the tree drives it: peek the dirty set, then
    /// confirm each entry (here without the pool write in between).
    fn flush_all(cache: &NodeCache) -> Vec<PageId> {
        let dirty = cache.dirty_entries();
        let pages: Vec<PageId> = dirty.iter().map(|(p, _)| *p).collect();
        for page in &pages {
            cache.mark_clean(NodeAddr::Current(*page));
        }
        pages
    }

    #[test]
    fn hit_returns_the_shared_node() {
        let cache = NodeCache::new(4);
        let addr = NodeAddr::Current(PageId(1));
        assert!(cache.get(addr).is_none());
        let n = node();
        cache.insert_clean(addr, Arc::clone(&n));
        let got = cache.get(addr).unwrap();
        assert!(Arc::ptr_eq(&got, &n));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eviction_skips_pinned_dirty_entries() {
        let cache = NodeCache::new(2);
        cache.insert_dirty(PageId(1), node());
        cache.insert_clean(NodeAddr::Current(PageId(2)), node());
        cache.insert_clean(NodeAddr::Current(PageId(3)), node());
        cache.insert_clean(NodeAddr::Current(PageId(4)), node());
        // Dirty page 1 is pinned (it rides along outside the capacity);
        // the clean overflow evicted the least recent clean entry.
        assert!(cache.get(NodeAddr::Current(PageId(1))).is_some());
        assert!(cache.get(NodeAddr::Current(PageId(2))).is_none());
        assert!(cache.get(NodeAddr::Current(PageId(3))).is_some());
        assert!(cache.get(NodeAddr::Current(PageId(4))).is_some());
        assert!(cache.is_dirty(NodeAddr::Current(PageId(1))));
        assert_eq!(cache.len(), 3, "capacity 2 clean + 1 pinned dirty");
        // Once flushed (clean), the entry becomes evictable again.
        let flushed = flush_all(&cache);
        assert_eq!(flushed, vec![PageId(1)]);
        cache.insert_clean(NodeAddr::Current(PageId(5)), node());
        cache.insert_clean(NodeAddr::Current(PageId(6)), node());
        assert_eq!(cache.len(), 2, "clean entries respect the capacity");
    }

    #[test]
    fn dirty_entries_is_sorted_and_mark_clean_confirms() {
        let cache = NodeCache::new(8);
        for page in [5u64, 1, 3] {
            cache.insert_dirty(PageId(page), node());
        }
        cache.insert_clean(NodeAddr::Current(PageId(2)), node());
        // Peeking does not change state: the entries stay dirty (pinned)
        // until each write-back is confirmed.
        let dirty = cache.dirty_entries();
        let pages: Vec<u64> = dirty.iter().map(|(p, _)| p.0).collect();
        assert_eq!(pages, vec![1, 3, 5]);
        assert!(cache.is_dirty(NodeAddr::Current(PageId(5))));
        let flushed = flush_all(&cache);
        assert_eq!(flushed.len(), 3);
        assert!(cache.dirty_entries().is_empty(), "entries are clean now");
        assert_eq!(cache.len(), 4, "flushing does not evict");
        assert!(!cache.is_dirty(NodeAddr::Current(PageId(5))));
    }

    #[test]
    fn dirty_at_peeks_only_the_target() {
        let cache = NodeCache::new(8);
        cache.insert_dirty(PageId(1), node());
        cache.insert_dirty(PageId(2), node());
        let (page, _) = cache.dirty_at(NodeAddr::Current(PageId(1))).unwrap();
        assert_eq!(page, PageId(1));
        assert!(
            cache.is_dirty(NodeAddr::Current(PageId(1))),
            "peeking keeps the entry pinned until mark_clean"
        );
        cache.mark_clean(NodeAddr::Current(PageId(1)));
        assert!(!cache.is_dirty(NodeAddr::Current(PageId(1))));
        assert!(
            cache.is_dirty(NodeAddr::Current(PageId(2))),
            "other deferred encodes stay deferred"
        );
        assert!(cache.dirty_at(NodeAddr::Current(PageId(1))).is_none());
        assert!(cache.dirty_at(NodeAddr::Current(PageId(99))).is_none());
    }

    #[test]
    fn discard_invalidates_without_writeback() {
        let cache = NodeCache::new(4);
        let addr = NodeAddr::Current(PageId(9));
        cache.insert_dirty(PageId(9), node());
        assert!(cache.is_dirty(addr));
        cache.discard(addr);
        assert!(cache.get(addr).is_none());
        assert!(cache.dirty_entries().is_empty());
    }

    #[test]
    fn rewriting_a_page_replaces_its_entry() {
        let cache = NodeCache::new(4);
        let addr = NodeAddr::Current(PageId(1));
        let first = node();
        let second = node();
        cache.insert_clean(addr, Arc::clone(&first));
        cache.insert_dirty(PageId(1), Arc::clone(&second));
        assert_eq!(cache.len(), 1);
        assert!(Arc::ptr_eq(&cache.get(addr).unwrap(), &second));
        assert!(cache.is_dirty(addr));
    }

    #[test]
    fn dirty_overflow_victim_drains_lru_dirty_without_unpinning() {
        let cache = NodeCache::new(2);
        for page in [1u64, 2, 3, 4] {
            cache.insert_dirty(PageId(page), node());
        }
        // 4 dirty > capacity 2: the victim is the least recently written.
        let (page, _) = cache
            .dirty_overflow_victim(NodeAddr::Current(PageId(1)))
            .unwrap();
        assert_eq!(page, PageId(1));
        // Still resident and dirty until the caller confirms the
        // write-back — the stale-decode window never opens.
        assert!(cache.is_dirty(NodeAddr::Current(PageId(1))));
        cache.mark_clean(NodeAddr::Current(PageId(1)));
        assert!(!cache.is_dirty(NodeAddr::Current(PageId(1))));
        assert!(
            cache.get(NodeAddr::Current(PageId(1))).is_some(),
            "write-back does not evict"
        );
        // The flushed entry is no longer part of the dirty set.
        assert_eq!(cache.dirty_entries().len(), 3);
        assert_eq!(flush_all(&cache).len(), 3);
        assert!(cache
            .dirty_overflow_victim(NodeAddr::Current(PageId(1)))
            .is_none());
    }

    #[test]
    fn a_fill_that_raced_a_write_is_not_cached() {
        let cache = NodeCache::new(4);
        let addr = NodeAddr::Current(PageId(1));
        let stamp = cache.begin_fill(addr).unwrap_err();
        // While the "reader" decodes, the writer installs v2, which is
        // flushed and then leaves the cache entirely.
        let v2 = node();
        cache.insert_dirty(PageId(1), Arc::clone(&v2));
        flush_all(&cache);
        cache.discard(addr);
        // The stale fill is handed back to its caller but refused as the
        // canonical cached node — caching it would hide v2 forever.
        let stale = node();
        let returned = cache.complete_fill(addr, Arc::clone(&stale), stamp);
        assert!(Arc::ptr_eq(&returned, &stale));
        assert!(
            cache.get(addr).is_none(),
            "a raced fill must not become canonical"
        );
        // A fresh fill with a current stamp installs normally.
        let stamp = cache.begin_fill(addr).unwrap_err();
        let fresh = node();
        cache.complete_fill(addr, Arc::clone(&fresh), stamp);
        assert!(Arc::ptr_eq(&cache.get(addr).unwrap(), &fresh));
    }

    #[test]
    fn racing_clean_fill_never_displaces_a_dirty_entry() {
        // A reader's miss-decode-fill can interleave with the writer
        // installing a newer dirty version of the same page. The stale
        // fill must lose: the dirty entry (the sole copy of the newest
        // state) stays resident, stays dirty, and is what the fill
        // returns.
        let cache = NodeCache::new(4);
        let addr = NodeAddr::Current(PageId(1));
        let newer = node();
        cache.insert_dirty(PageId(1), Arc::clone(&newer));
        let stale = node();
        let resident = cache.insert_clean(addr, Arc::clone(&stale));
        assert!(Arc::ptr_eq(&resident, &newer), "resident entry wins");
        assert!(Arc::ptr_eq(&cache.get(addr).unwrap(), &newer));
        assert!(cache.is_dirty(addr), "deferred encode is preserved");
        assert_eq!(
            cache.dirty_entries().len(),
            1,
            "the newest state still flushes"
        );

        // Racing fills between two readers agree on one canonical handle.
        let first = cache.insert_clean(NodeAddr::Current(PageId(2)), node());
        let second = cache.insert_clean(NodeAddr::Current(PageId(2)), node());
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn sharded_capacity_never_exceeds_the_configured_total() {
        // Floor division: 100 entries over 16 shards must bound the clean
        // residency by 100, not round it up per shard.
        let cache = NodeCache::sharded(100);
        for page in 0..10_000u64 {
            cache.insert_clean(NodeAddr::Current(PageId(page)), node());
        }
        assert!(
            cache.len() <= 100,
            "resident {} > configured 100",
            cache.len()
        );
    }

    #[test]
    fn sharded_cache_round_trips_across_shards() {
        let cache = NodeCache::sharded(256);
        for page in 0..100u64 {
            cache.insert_dirty(PageId(page), node());
        }
        assert_eq!(cache.len(), 100);
        for page in 0..100u64 {
            assert!(cache.get(NodeAddr::Current(PageId(page))).is_some());
        }
        // dirty_entries spans every shard, globally page-sorted.
        let dirty = cache.dirty_entries();
        let pages: Vec<u64> = dirty.iter().map(|(p, _)| p.0).collect();
        assert_eq!(pages, (0..100u64).collect::<Vec<_>>());
        flush_all(&cache);
        cache.clear();
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn sharded_eviction_bounds_clean_entries_and_pins_dirty_ones() {
        // Clean inserts respect the capacity across shards.
        let cache = NodeCache::sharded(32);
        for page in 0..1000u64 {
            cache.insert_clean(NodeAddr::Current(PageId(page)), node());
        }
        assert!(cache.len() <= 32);

        // Dirty inserts are pinned until flushed — nothing may be lost.
        let cache = NodeCache::sharded(32);
        for page in 0..1000u64 {
            cache.insert_dirty(PageId(page), node());
        }
        assert_eq!(cache.len(), 1000, "dirty entries are pinned resident");
        assert_eq!(flush_all(&cache).len(), 1000, "and all flushable");
        // Flushed clean, the overflow drains as new inserts evict.
        for page in 1000..2000u64 {
            cache.insert_clean(NodeAddr::Current(PageId(page)), node());
        }
        assert!(cache.len() < 1000 + 32);
    }

    #[test]
    fn tiny_capacity_collapses_shards() {
        // capacity 2 with 16 requested shards must still hold 2 entries.
        let cache = NodeCache::with_shards(2, 16);
        cache.insert_clean(NodeAddr::Current(PageId(1)), node());
        cache.insert_clean(NodeAddr::Current(PageId(2)), node());
        assert!(cache.len() <= 2);
        assert!(cache.len() >= 1);
    }
}
