//! A `Send + Sync` TSB-tree engine: one writer, many concurrent readers.
//!
//! The paper's central operational promise is that historical data, once
//! migrated to the write-once store, is *immutable* — so as-of lookups,
//! range snapshots, and version histories can be served while the current
//! database keeps absorbing inserts (§4.1's lock-free read-only
//! transactions). [`ConcurrentTsb`] realizes that promise in-process with a
//! **single-writer / many-reader** architecture:
//!
//! * **Writes serialize** through one writer lock and run the ordinary
//!   insert / split / migration path of [`TsbTree`]. There is never more
//!   than one mutation in flight. On a durable engine the lock covers only
//!   the in-memory mutation and WAL buffer append — the commit fsync runs
//!   on a background group-commit thread and the writer parks for it
//!   *outside* the lock, so device syncs overlap the next mutation.
//! * **Readers never take the writer lock.** They descend the tree through
//!   the shared decoded-node cache: historical (WORM) nodes are immutable
//!   and served lock-free forever; current pages are read under the short
//!   internal latches of the node cache and buffer pool (a hash-map lookup
//!   each), never held across I/O or across more than one node.
//! * **Structural changes are fenced by a seqlock epoch.** Content-only
//!   leaf rewrites are invisible to a reader pinned at a past timestamp
//!   (the new version has a later commit time, and leaf replacement is a
//!   single atomic `Arc` swap in the node cache). But a split or a
//!   migration rewrites *several* nodes — parent and children — and a
//!   descent overlapping it could observe a torn multi-node state. The
//!   writer therefore marks the tree's structure epoch odd for the span of
//!   each structural change; readers sample the epoch before and after a
//!   descent and retry if it moved (see [`TsbTree`]'s `structure_seq`).
//!   Retries are rare — most inserts never split — and bounded: a reader
//!   that keeps losing the race falls back to taking the writer lock once,
//!   which guarantees a quiescent tree.
//! * **A timestamp fence orders reads behind writes.** `last_installed()`
//!   is the commit time of the newest *fully installed* write: it advances
//!   only after the mutation (including any splits it triggered) has
//!   completely finished. [`ConcurrentTsb::begin_snapshot`] pins readers to
//!   the fence, so a snapshot's as-of time is always ≤ the last fully
//!   installed write and never observes a half-applied one.
//!
//! The engine is a thin layer: all tree logic stays in [`TsbTree`], whose
//! single-threaded API (`&mut self` mutations) keeps working unchanged and
//! enforces the same single-writer invariant through the borrow checker
//! instead of a lock.
//!
//! ```
//! use tsb_core::ConcurrentTsb;
//! use tsb_common::{Key, TsbConfig};
//!
//! let db = tsb_core::TsbOptions::in_memory().config(TsbConfig::default()).open_concurrent().unwrap();
//! let t1 = db.insert("acct-1", b"balance=100".to_vec()).unwrap();
//!
//! // Readers are cheap clones of the handle; move them into threads.
//! let reader = db.clone();
//! let handle = std::thread::spawn(move || {
//!     reader.get_as_of(&Key::from("acct-1"), t1).unwrap()
//! });
//! db.insert("acct-1", b"balance=250".to_vec()).unwrap();
//! assert_eq!(handle.join().unwrap().unwrap(), b"balance=100".to_vec());
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use tsb_common::{Key, KeyRange, TimeRange, Timestamp, TsbConfig, TsbResult, TxnId, Version};
use tsb_storage::{IoStats, Lsn, MagneticStore, SpaceSnapshot, Wal, WormStore};

use crate::tree::TsbTree;

/// Optimistic attempts before a reader gives up racing the writer and
/// takes the writer lock for one guaranteed-quiescent pass.
const READ_RETRY_LIMIT: usize = 64;

struct Shared {
    tree: TsbTree,
    /// The single-writer pipeline: every mutation holds this for its whole
    /// duration, so at most one mutation is ever in flight — the invariant
    /// the `&self` write path of [`TsbTree`] requires.
    writer: Mutex<()>,
    /// Commit time of the newest fully installed write (the epoch fence).
    /// Stored only after the mutation — splits, migration, root growth,
    /// metadata — has completely finished.
    fence: AtomicU64,
}

/// A thread-safe TSB-tree engine: cheaply cloneable handle, single-writer /
/// many-reader.
///
/// Writes (`insert`, `delete`, transactions, `flush`) serialize through an
/// internal writer lock. Reads (`get_as_of`, `scan_as_of`,
/// `history_between`, snapshots, …) run concurrently with the writer and
/// with each other: lock-free against immutable historical nodes, short
/// shared latches on current pages, with a structure-epoch retry protecting
/// descents from torn multi-node states. See the [module docs](self) for
/// the full protocol.
///
/// `ConcurrentTsb` is `Send + Sync + Clone`; clones share one tree.
#[derive(Clone)]
pub struct ConcurrentTsb {
    inner: Arc<Shared>,
}

// Compile-time proof of the thread-safety contract.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ConcurrentTsb>();
    assert_send_sync::<ConcurrentSnapshot>();
};

impl std::fmt::Debug for ConcurrentTsb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentTsb")
            .field("tree", &self.inner.tree)
            .field("last_installed", &self.last_installed())
            .finish()
    }
}

impl ConcurrentTsb {
    // ----- construction ---------------------------------------------------

    /// Wraps an existing tree. The tree's current state is taken as the
    /// last fully installed write (the fence starts at `now - 1`).
    pub fn from_tree(tree: TsbTree) -> Self {
        let fence = tree.now().prev().value();
        ConcurrentTsb {
            inner: Arc::new(Shared {
                tree,
                writer: Mutex::new(()),
                fence: AtomicU64::new(fence),
            }),
        }
    }

    /// Creates a fresh concurrent engine over in-memory stores.
    #[deprecated(
        since = "0.1.0",
        note = "use `TsbOptions::in_memory().config(cfg).open_concurrent()`"
    )]
    #[allow(deprecated)]
    pub fn new_in_memory(cfg: TsbConfig) -> TsbResult<Self> {
        Ok(Self::from_tree(TsbTree::new_in_memory(cfg)?))
    }

    /// Creates a fresh concurrent engine over the provided stores (see
    /// [`TsbTree::create`]).
    pub fn create(
        magnetic: Arc<MagneticStore>,
        worm: Arc<WormStore>,
        cfg: TsbConfig,
    ) -> TsbResult<Self> {
        Ok(Self::from_tree(TsbTree::create(magnetic, worm, cfg)?))
    }

    /// Reopens (or creates) an engine over the provided stores (see
    /// [`TsbTree::open`]).
    pub fn open(
        magnetic: Arc<MagneticStore>,
        worm: Arc<WormStore>,
        cfg: TsbConfig,
    ) -> TsbResult<Self> {
        Ok(Self::from_tree(TsbTree::open(magnetic, worm, cfg)?))
    }

    /// Creates a fresh **durable** engine: mutations are redo-logged before
    /// they may dirty a page (see [`TsbTree::create_durable`]).
    ///
    /// Durability composes with the single-writer pipeline as **pipelined
    /// group commit**: writers queue on the writer lock, each appends its
    /// records to the WAL buffer while holding it, then releases the lock
    /// and parks on the WAL's durable-LSN watermark — the fsync itself runs
    /// on a dedicated group-commit thread, so one drain acknowledges every
    /// commit appended while the previous sync was in flight.
    /// `cfg.fsync_policy` decides which commits wait:
    /// [`tsb_common::FsyncPolicy::Always`] parks every commit until its own
    /// LSN is durable, `EveryN(n)` parks only the commit that closes each
    /// group of `n`, `Os` never parks and leaves flushing to the operating
    /// system. The E12 experiment measures the resulting
    /// throughput/durability trade.
    pub fn create_durable(
        magnetic: Arc<MagneticStore>,
        worm: Arc<WormStore>,
        wal: Wal,
        cfg: TsbConfig,
    ) -> TsbResult<Self> {
        Ok(Self::from_tree(TsbTree::create_durable(
            magnetic, worm, wal, cfg,
        )?))
    }

    /// Opens (or creates) a durable engine rooted at directory `dir`,
    /// running crash-consistent recovery when the directory holds a
    /// previous session's state (see [`TsbTree::open_durable`]).
    #[deprecated(
        since = "0.1.0",
        note = "use `TsbOptions::durable(dir).config(cfg).open_concurrent()`"
    )]
    #[allow(deprecated)]
    pub fn open_durable(dir: impl AsRef<std::path::Path>, cfg: TsbConfig) -> TsbResult<Self> {
        Ok(Self::from_tree(TsbTree::open_durable(dir, cfg)?))
    }

    /// Unwraps the engine back into the single-threaded tree, if this is
    /// the last handle. Fails (returning `self`) while clones or snapshots
    /// are still alive.
    pub fn try_into_tree(self) -> Result<TsbTree, Self> {
        match Arc::try_unwrap(self.inner) {
            Ok(shared) => Ok(shared.tree),
            Err(inner) => Err(ConcurrentTsb { inner }),
        }
    }

    // ----- the single-writer pipeline ------------------------------------

    /// Runs `f` while holding the writer lock and advances the fence to
    /// `f`'s commit timestamp once the mutation has fully installed.
    ///
    /// On a durable engine the writer lock covers only the in-memory
    /// mutation and the WAL buffer append; the fsync that makes the commit
    /// durable runs on the group-commit thread, and this writer parks on
    /// the durable-LSN watermark *after* releasing the lock — so the next
    /// writer's mutation overlaps this one's device sync.
    fn write_op<T>(
        &self,
        f: impl FnOnce(&TsbTree) -> TsbResult<T>,
        commit_ts: impl FnOnce(&T) -> Option<Timestamp>,
    ) -> TsbResult<T> {
        let (out, wait) = self.write_op_deferred(f, commit_ts)?;
        if let Some(lsn) = wait {
            self.inner.tree.wait_durable_lsn(lsn)?;
        }
        Ok(out)
    }

    /// The deferred half of [`Self::write_op`]: runs the mutation and
    /// returns the durable-wait LSN instead of parking on it. The caller
    /// owns the wait — the mutation is installed in memory and appended to
    /// the WAL buffer, but must not be *acknowledged* (to a network client,
    /// say) before [`Self::wait_durable`] returns for the LSN.
    fn write_op_deferred<T>(
        &self,
        f: impl FnOnce(&TsbTree) -> TsbResult<T>,
        commit_ts: impl FnOnce(&T) -> Option<Timestamp>,
    ) -> TsbResult<(T, Option<Lsn>)> {
        let _writer = self.lock_writer_timed();
        let out = f(&self.inner.tree)?;
        if let Some(ts) = commit_ts(&out) {
            // Single writer, but insert_at may replay an old timestamp:
            // the fence never regresses.
            self.inner.fence.fetch_max(ts.value(), Ordering::Release);
        }
        // The pending-wait slot is single-entry and the next writer
        // overwrites it, so it must be claimed before the lock drops.
        let wait = self.inner.tree.take_pending_durable_wait();
        Ok((out, wait))
    }

    /// Acquires the writer lock, charging any blocked time to the
    /// `writer_lock_wait` counters — the E14 "how serialized are writers"
    /// metric. The uncontended fast path costs one `try_lock`.
    fn lock_writer_timed(&self) -> parking_lot::MutexGuard<'_, ()> {
        if let Some(guard) = self.inner.writer.try_lock() {
            return guard;
        }
        let start = std::time::Instant::now();
        let guard = self.inner.writer.lock();
        self.inner
            .tree
            .io_stats()
            .record_writer_lock_wait(start.elapsed().as_nanos() as u64);
        guard
    }

    // ----- sharded-engine plumbing (crate-internal) ----------------------

    /// The underlying tree, for the sharded engine's two-phase fence
    /// protocol. Mutating tree calls require the writer lock
    /// ([`Self::lock_writer`]).
    pub(crate) fn tree(&self) -> &TsbTree {
        &self.inner.tree
    }

    /// Acquires this shard's writer lock for an externally driven mutation
    /// (the sharded engine's cross-shard commit holds every participant's
    /// lock for the span of the protocol).
    pub(crate) fn lock_writer(&self) -> parking_lot::MutexGuard<'_, ()> {
        self.lock_writer_timed()
    }

    /// Advances the install fence to at least `ts`. Caller must hold the
    /// writer lock: the fence may only move when no mutation is mid-install.
    pub(crate) fn advance_fence(&self, ts: Timestamp) {
        self.inner.fence.fetch_max(ts.value(), Ordering::Release);
    }

    /// Pins this shard's install fence at `ts` or later, so a snapshot
    /// pinned at `ts` reads a state this shard has caught up to. Sound
    /// because commit timestamps are ticked *under* the shard writer lock:
    /// holding it here proves no mutation with a timestamp ≤ `ts` is
    /// mid-install on this shard.
    pub(crate) fn pin_fence_at_least(&self, ts: Timestamp) {
        if self.inner.fence.load(Ordering::Acquire) >= ts.value() {
            return;
        }
        let _writer = self.lock_writer_timed();
        self.inner.fence.fetch_max(ts.value(), Ordering::Release);
    }

    /// Inserts a new version of `key`, returning its commit timestamp.
    pub fn insert(&self, key: impl Into<Key>, value: Vec<u8>) -> TsbResult<Timestamp> {
        self.write_op(|t| t.insert_shared(key, value), |ts| Some(*ts))
    }

    // ----- deferred-durability writes -------------------------------------
    //
    // The `*_deferred` variants are the server-facing batch interface: they
    // run the mutation but return the pending durable-wait LSN instead of
    // parking on it. A caller draining a pipelined connection executes a
    // whole burst of writes back-to-back, then parks **once** on the
    // maximum returned LSN — the durable watermark is monotonic, so when
    // the max LSN is durable every earlier commit in the burst is too, and
    // all of them may be acknowledged. `None` means the engine (or this
    // particular op) has no durability obligation and may be acknowledged
    // immediately.

    /// [`Self::insert`] without the durability wait; see the section
    /// comment. Returns the commit timestamp and the LSN to pass to
    /// [`Self::wait_durable`] before acknowledging.
    pub fn insert_deferred(
        &self,
        key: impl Into<Key>,
        value: Vec<u8>,
    ) -> TsbResult<(Timestamp, Option<Lsn>)> {
        self.write_op_deferred(|t| t.insert_shared(key, value), |ts| Some(*ts))
    }

    /// [`Self::delete`] without the durability wait.
    pub fn delete_deferred(&self, key: impl Into<Key>) -> TsbResult<(Timestamp, Option<Lsn>)> {
        self.write_op_deferred(|t| t.delete_shared(key), |ts| Some(*ts))
    }

    /// [`Self::commit_txn`] without the durability wait.
    pub fn commit_txn_deferred(&self, txn: TxnId) -> TsbResult<(Timestamp, Option<Lsn>)> {
        self.write_op_deferred(|t| t.commit_txn_shared(txn), |ts| Some(*ts))
    }

    /// Parks until the durable-LSN watermark covers `lsn`; returns
    /// immediately for LSNs already durable. Completes the contract of the
    /// `*_deferred` writes. Only call with LSNs those methods returned:
    /// they hand out `Some` exactly when the policy schedules a sync that
    /// will advance the watermark past the LSN (never under `Os`, whose
    /// watermark moves only at checkpoints).
    pub fn wait_durable(&self, lsn: Lsn) -> TsbResult<()> {
        self.inner.tree.wait_durable_lsn(lsn)
    }

    /// Inserts a new version of `key` at an explicit timestamp (see
    /// [`TsbTree::insert_at`]).
    ///
    /// Unlike the single-threaded replay API, the timestamp must lie
    /// *above* [`Self::last_installed`]: writing at or below the fence
    /// would rewrite history that snapshots pinned there are entitled to
    /// treat as immutable.
    pub fn insert_at(&self, key: impl Into<Key>, value: Vec<u8>, ts: Timestamp) -> TsbResult<()> {
        self.write_op(
            |t| {
                self.check_above_fence(ts)?;
                t.insert_at_shared(key, value, ts)
            },
            |_| Some(ts),
        )
    }

    /// Logically deletes `key`, returning the tombstone's commit timestamp.
    pub fn delete(&self, key: impl Into<Key>) -> TsbResult<Timestamp> {
        self.write_op(|t| t.delete_shared(key), |ts| Some(*ts))
    }

    /// Logically deletes `key` at an explicit timestamp. The timestamp
    /// must lie above [`Self::last_installed`] (see [`Self::insert_at`]).
    pub fn delete_at(&self, key: impl Into<Key>, ts: Timestamp) -> TsbResult<()> {
        self.write_op(
            |t| {
                self.check_above_fence(ts)?;
                t.delete_at_shared(key, ts)
            },
            |_| Some(ts),
        )
    }

    /// Rejects explicit timestamps that would mutate already-installed
    /// history out from under fence-pinned readers. Called with the writer
    /// lock held, so the fence cannot advance concurrently.
    fn check_above_fence(&self, ts: Timestamp) -> TsbResult<()> {
        let fence = self.last_installed();
        if ts <= fence {
            return Err(tsb_common::TsbError::config(format!(
                "explicit timestamp {ts} is not above the install fence {fence}; \
                 writing there would rewrite history under pinned snapshots"
            )));
        }
        Ok(())
    }

    /// Begins a writer transaction (see [`TsbTree::begin_txn`]).
    pub fn begin_txn(&self) -> TxnId {
        let _writer = self.inner.writer.lock();
        self.inner.tree.begin_txn_shared()
    }

    /// Writes `key = value` within transaction `txn`.
    pub fn txn_insert(&self, txn: TxnId, key: impl Into<Key>, value: Vec<u8>) -> TsbResult<()> {
        self.write_op(|t| t.txn_insert_shared(txn, key, value), |_| None)
    }

    /// Logically deletes `key` within transaction `txn`.
    pub fn txn_delete(&self, txn: TxnId, key: impl Into<Key>) -> TsbResult<()> {
        self.write_op(|t| t.txn_delete_shared(txn, key), |_| None)
    }

    /// Reads `key` from inside transaction `txn` (its own uncommitted write
    /// if present). Serialized with the writer pipeline because it must
    /// observe pending state.
    pub fn txn_get(&self, txn: TxnId, key: &Key) -> TsbResult<Option<Vec<u8>>> {
        let _writer = self.inner.writer.lock();
        self.inner.tree.txn_get(txn, key)
    }

    /// Commits `txn`; all of its writes become visible at the returned
    /// timestamp (and the fence advances to it).
    pub fn commit_txn(&self, txn: TxnId) -> TsbResult<Timestamp> {
        self.write_op(|t| t.commit_txn_shared(txn), |ts| Some(*ts))
    }

    /// Aborts `txn`, erasing its uncommitted versions.
    pub fn abort_txn(&self, txn: TxnId) -> TsbResult<()> {
        self.write_op(|t| t.abort_txn_shared(txn), |_| None)
    }

    /// Flushes dirty nodes, pages, metadata, and both devices. On a
    /// durable engine this is a checkpoint: it fences the redo log so the
    /// next recovery replays nothing that precedes it.
    pub fn flush(&self) -> TsbResult<()> {
        self.write_op(|t| t.flush_shared(), |_| None)
    }

    /// Synonym for [`Self::flush`] under its durability name.
    pub fn checkpoint(&self) -> TsbResult<()> {
        self.flush()
    }

    /// See [`TsbTree::last_durable_commit`]: the replay cut of a recovered
    /// engine, `None` if this engine was not produced by recovery.
    pub fn last_durable_commit(&self) -> Option<Timestamp> {
        self.inner.tree.last_durable_commit()
    }

    /// Whether the engine redo-logs its mutations (see
    /// [`TsbTree::is_durable`]).
    pub fn is_durable(&self) -> bool {
        self.inner.tree.is_durable()
    }

    /// Runs `f` on the underlying tree with the writer pipeline stalled —
    /// a guaranteed-quiescent view. Intended for verification, statistics,
    /// and measurement harnesses, not hot paths.
    pub fn quiesced<R>(&self, f: impl FnOnce(&TsbTree) -> R) -> R {
        let _writer = self.inner.writer.lock();
        f(&self.inner.tree)
    }

    /// Verifies the structural invariants of the whole tree (quiescent).
    pub fn verify(&self) -> TsbResult<()> {
        self.quiesced(|t| t.verify())
    }

    /// Checks that every cached decoded node equals its device image
    /// (quiescent).
    pub fn verify_cache_coherence(&self) -> TsbResult<()> {
        self.quiesced(|t| t.verify_cache_coherence())
    }

    // ----- concurrent reads ----------------------------------------------

    /// Runs a read-only tree operation with seqlock validation: the
    /// operation is retried if a structural change (split / migration /
    /// root growth) overlapped it; after [`READ_RETRY_LIMIT`] lost races it
    /// runs once under the writer lock.
    fn read_consistent<T>(&self, op: impl Fn(&TsbTree) -> TsbResult<T>) -> TsbResult<T> {
        let tree = &self.inner.tree;
        for _ in 0..READ_RETRY_LIMIT {
            let before = tree.structure_epoch();
            if before % 2 == 1 {
                // A structural change is in flight right now; don't even
                // start the descent.
                std::thread::yield_now();
                continue;
            }
            let result = op(tree);
            if tree.structure_epoch() == before {
                return result;
            }
            // The structure moved under the descent: the result (even an
            // error) may reflect a torn view. Retry.
        }
        let _quiesce = self.inner.writer.lock();
        op(tree)
    }

    /// The newest committed value of `key` (see [`TsbTree::get_current`]).
    pub fn get_current(&self, key: &Key) -> TsbResult<Option<Vec<u8>>> {
        self.read_consistent(|t| t.get_current(key))
    }

    /// The value of `key` as of time `ts` (see [`TsbTree::get_as_of`]).
    pub fn get_as_of(&self, key: &Key, ts: Timestamp) -> TsbResult<Option<Vec<u8>>> {
        self.read_consistent(|t| t.get_as_of(key, ts))
    }

    /// The full version record governing `(key, ts)`.
    pub fn get_version_as_of(&self, key: &Key, ts: Timestamp) -> TsbResult<Option<Version>> {
        self.read_consistent(|t| t.get_version_as_of(key, ts))
    }

    /// Whether `key` currently exists.
    pub fn contains_key(&self, key: &Key) -> TsbResult<bool> {
        self.read_consistent(|t| t.contains_key(key))
    }

    /// Every `(key, value)` in `range` as of `ts`, in key order.
    pub fn scan_as_of(&self, range: &KeyRange, ts: Timestamp) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        self.read_consistent(|t| t.scan_as_of(range, ts))
    }

    /// Every key currently alive in `range` with its newest value.
    pub fn scan_current(&self, range: &KeyRange) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        self.read_consistent(|t| t.scan_current(range))
    }

    /// A full-database snapshot as of `ts`.
    pub fn snapshot_at(&self, ts: Timestamp) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        self.read_consistent(|t| t.snapshot_at(ts))
    }

    /// Number of keys alive in `range` as of `ts`.
    pub fn count_as_of(&self, range: &KeyRange, ts: Timestamp) -> TsbResult<usize> {
        self.read_consistent(|t| t.count_as_of(range, ts))
    }

    /// Every committed version of `key`, oldest first.
    pub fn versions(&self, key: &Key) -> TsbResult<Vec<Version>> {
        self.read_consistent(|t| t.versions(key))
    }

    /// Number of committed versions stored for `key`.
    pub fn version_count(&self, key: &Key) -> TsbResult<usize> {
        self.read_consistent(|t| t.version_count(key))
    }

    /// Every committed version of `key` in `window`, oldest first.
    pub fn history_between(&self, key: &Key, window: TimeRange) -> TsbResult<Vec<Version>> {
        self.read_consistent(|t| t.history_between(key, window))
    }

    /// Every committed version in the `keys` × `window` rectangle.
    pub fn scan_versions(&self, keys: &KeyRange, window: TimeRange) -> TsbResult<Vec<Version>> {
        self.read_consistent(|t| t.scan_versions(keys, window))
    }

    /// The keys in `keys` that changed during `window`.
    pub fn changed_keys_between(&self, keys: &KeyRange, window: TimeRange) -> TsbResult<Vec<Key>> {
        self.read_consistent(|t| t.changed_keys_between(keys, window))
    }

    // ----- snapshots and the fence ---------------------------------------

    /// The commit time of the newest fully installed write. Reads pinned at
    /// or before this timestamp are stable: no in-flight mutation can
    /// change their answer.
    pub fn last_installed(&self) -> Timestamp {
        Timestamp(self.inner.fence.load(Ordering::Acquire))
    }

    /// Begins a lock-free read-only transaction pinned to the last fully
    /// installed write (§4.1). The snapshot owns a handle to the engine, so
    /// it can outlive this reference and move across threads.
    pub fn begin_snapshot(&self) -> ConcurrentSnapshot {
        ConcurrentSnapshot {
            db: self.clone(),
            ts: self.last_installed(),
        }
    }

    /// A read-only view pinned to an explicit past timestamp. Stability is
    /// only guaranteed for `ts ≤ last_installed()`.
    pub fn snapshot_as_of(&self, ts: Timestamp) -> ConcurrentSnapshot {
        ConcurrentSnapshot {
            db: self.clone(),
            ts,
        }
    }

    // ----- passthroughs ---------------------------------------------------

    /// The tree configuration.
    pub fn config(&self) -> &TsbConfig {
        self.inner.tree.config()
    }

    /// The shared I/O statistics counters (atomic; safe to snapshot from
    /// any thread).
    pub fn io_stats(&self) -> &Arc<IoStats> {
        self.inner.tree.io_stats()
    }

    /// The current logical time (next commit timestamp). May be ahead of
    /// [`Self::last_installed`] while a write is in flight.
    pub fn now(&self) -> Timestamp {
        self.inner.tree.now()
    }

    /// Space currently occupied on the two devices.
    pub fn space(&self) -> SpaceSnapshot {
        self.inner.tree.space()
    }

    /// The storage cost `CS = SpaceM·CM + SpaceO·CO` of the current state.
    pub fn storage_cost(&self) -> f64 {
        self.inner.tree.storage_cost()
    }
}

/// An owning, thread-safe read-only view of the database pinned to a fixed
/// timestamp — the concurrent counterpart of [`crate::SnapshotReader`].
///
/// Because the pinned time is at or before the engine's install fence (when
/// obtained via [`ConcurrentTsb::begin_snapshot`]) and historical versions
/// are never mutated, every query on a snapshot returns the same answer no
/// matter how many writes commit concurrently — dump it before, during, and
/// after a write storm and the version set is identical.
#[derive(Clone, Debug)]
pub struct ConcurrentSnapshot {
    db: ConcurrentTsb,
    ts: Timestamp,
}

impl ConcurrentSnapshot {
    /// The snapshot's pinned read timestamp.
    pub fn timestamp(&self) -> Timestamp {
        self.ts
    }

    /// Reads a key as of the snapshot time.
    pub fn get(&self, key: &Key) -> TsbResult<Option<Vec<u8>>> {
        self.db.get_as_of(key, self.ts)
    }

    /// Scans a key range as of the snapshot time.
    pub fn scan(&self, range: &KeyRange) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        self.db.scan_as_of(range, self.ts)
    }

    /// Dumps the entire database as of the snapshot time (the lock-free
    /// backup/unload the paper highlights).
    pub fn dump(&self) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        self.db.snapshot_at(self.ts)
    }

    /// Number of keys alive in `range` at the snapshot time.
    pub fn count(&self, range: &KeyRange) -> TsbResult<usize> {
        self.db.count_as_of(range, self.ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn engine() -> ConcurrentTsb {
        crate::TsbOptions::in_memory()
            .config(TsbConfig::small_pages())
            .open_concurrent()
            .unwrap()
    }

    #[test]
    fn single_threaded_semantics_match_the_tree() {
        let db = engine();
        let t1 = db.insert(1u64, b"a".to_vec()).unwrap();
        let t2 = db.insert(1u64, b"b".to_vec()).unwrap();
        db.delete(1u64).unwrap();
        assert!(db.get_current(&Key::from_u64(1)).unwrap().is_none());
        assert_eq!(db.get_as_of(&Key::from_u64(1), t1).unwrap().unwrap(), b"a");
        assert_eq!(db.get_as_of(&Key::from_u64(1), t2).unwrap().unwrap(), b"b");
        assert_eq!(db.versions(&Key::from_u64(1)).unwrap().len(), 3);
        db.verify().unwrap();
    }

    #[test]
    fn fence_tracks_fully_installed_writes() {
        let db = engine();
        assert_eq!(db.last_installed(), Timestamp::ZERO);
        let ts = db.insert(7u64, b"x".to_vec()).unwrap();
        assert_eq!(db.last_installed(), ts);
        let snap = db.begin_snapshot();
        assert_eq!(snap.timestamp(), ts);
        // Later writes never move an existing snapshot.
        db.insert(7u64, b"y".to_vec()).unwrap();
        assert_eq!(snap.get(&Key::from_u64(7)).unwrap().unwrap(), b"x");
        assert!(db.last_installed() > ts);
    }

    #[test]
    fn transactions_commit_atomically_through_the_writer_pipeline() {
        let db = engine();
        let txn = db.begin_txn();
        db.txn_insert(txn, 1u64, b"one".to_vec()).unwrap();
        db.txn_insert(txn, 2u64, b"two".to_vec()).unwrap();
        assert!(db.get_current(&Key::from_u64(1)).unwrap().is_none());
        assert_eq!(db.txn_get(txn, &Key::from_u64(1)).unwrap().unwrap(), b"one");
        let ts = db.commit_txn(txn).unwrap();
        assert_eq!(db.last_installed(), ts);
        assert_eq!(db.get_current(&Key::from_u64(1)).unwrap().unwrap(), b"one");
        assert_eq!(db.get_current(&Key::from_u64(2)).unwrap().unwrap(), b"two");
    }

    #[test]
    fn concurrent_readers_see_consistent_prefixes() {
        let db = engine();
        for i in 0..50u64 {
            db.insert(i, format!("seed-{i}").into_bytes()).unwrap();
        }
        let stop_at = 3_000u64;
        let writer = {
            let db = db.clone();
            thread::spawn(move || {
                for i in 0..stop_at {
                    db.insert(i % 50, format!("gen-{i}").into_bytes()).unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|r| {
                let db = db.clone();
                thread::spawn(move || {
                    for i in 0..500u64 {
                        let ts = db.last_installed();
                        let key = Key::from_u64((r * 131 + i) % 50);
                        // Pinned at the fence, a value must exist for every
                        // seeded key.
                        let got = db.get_as_of(&key, ts).unwrap();
                        assert!(got.is_some(), "key {key} missing at fence {ts}");
                        let rows = db.snapshot_at(ts).unwrap();
                        assert_eq!(rows.len(), 50, "snapshot at {ts} lost keys");
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
        writer.join().unwrap();
        db.verify().unwrap();
        db.verify_cache_coherence().unwrap();
    }

    #[test]
    fn explicit_timestamps_below_the_fence_are_rejected() {
        let db = engine();
        let ts = db.insert(1u64, b"x".to_vec()).unwrap();
        // Writing at or below the fence would rewrite pinned history.
        assert!(db.insert_at(2u64, b"y".to_vec(), ts).is_err());
        assert!(db.delete_at(1u64, ts).is_err());
        assert!(db.insert_at(2u64, b"y".to_vec(), ts.prev()).is_err());
        // Above the fence is the ordinary replay path.
        db.insert_at(2u64, b"y".to_vec(), ts.next()).unwrap();
        assert_eq!(db.last_installed(), ts.next());
        assert_eq!(db.get_current(&Key::from_u64(2)).unwrap().unwrap(), b"y");
    }

    #[test]
    fn committed_transactions_are_atomic_to_concurrent_readers() {
        let db = engine();
        let keys: Vec<u64> = (0..8).collect();
        let txn = db.begin_txn();
        for k in &keys {
            db.txn_insert(txn, *k, vec![0]).unwrap();
        }
        db.commit_txn(txn).unwrap();

        let rounds = 200u8;
        thread::scope(|s| {
            {
                let db = db.clone();
                let keys = keys.clone();
                s.spawn(move || {
                    for round in 1..=rounds {
                        let txn = db.begin_txn();
                        for k in &keys {
                            db.txn_insert(txn, *k, vec![round]).unwrap();
                        }
                        db.commit_txn(txn).unwrap();
                    }
                });
            }
            for _ in 0..2 {
                let db = db.clone();
                let keys = keys.clone();
                s.spawn(move || loop {
                    let rows = db.scan_current(&tsb_common::KeyRange::full()).unwrap();
                    assert_eq!(rows.len(), keys.len(), "commit lost keys mid-flight");
                    let generation = rows[0].1.clone();
                    for (key, value) in &rows {
                        assert_eq!(
                            value, &generation,
                            "torn commit visible: key {key} is from another generation"
                        );
                    }
                    if generation == vec![rounds] {
                        break;
                    }
                });
            }
        });
    }

    #[test]
    fn try_into_tree_round_trips() {
        let db = engine();
        db.insert(1u64, b"v".to_vec()).unwrap();
        let clone = db.clone();
        let db = db.try_into_tree().unwrap_err(); // clone still alive
        drop(clone);
        let tree = db.try_into_tree().unwrap();
        assert_eq!(
            tree.get_current(&Key::from_u64(1)).unwrap().unwrap(),
            b"v".to_vec()
        );
    }
}
