//! [`EngineHandle`] — the one object-safe surface every engine flavour
//! serves through.
//!
//! The crate grew three engines with near-identical surfaces but distinct
//! concrete types: [`ConcurrentTsb`] (single writer, one log),
//! [`ShardedTsb`] (N-way partitioned, per-shard logs under a global
//! clock), and [`ReplicaEngine`] (read-only, fed by WAL shipping). The
//! server dispatch loop, the workload drivers, and the oracle-equivalence
//! tests all want to be written once against *an engine*, not three
//! times — this trait is that seam.
//!
//! Design notes:
//!
//! * **Object-safe by construction**: keys are concrete [`Key`] values
//!   (callers convert once at the edge), so `Arc<dyn EngineHandle>` works
//!   as a server/driver field.
//! * **Durability positions are [`ShardLsn`]s** — `(shard, lsn)` pairs.
//!   Unsharded engines are the one-shard case: shard index 0. That makes
//!   the deferred-ack plumbing (`insert_deferred` → `wait_durable`)
//!   uniform without erasing which log a position lives in.
//! * **Write verbs are fallible everywhere**, even those infallible on a
//!   concrete engine (`begin_txn`), because a replica answers every one
//!   of them with [`TsbError::ReadOnly`] — the single error code the
//!   wire protocol surfaces so clients know to redirect to the primary.
//! * **Replication is part of the surface**: [`EngineHandle::role`],
//!   [`EngineHandle::replica_status`] and
//!   [`EngineHandle::replication_source`] let the server expose
//!   role/status verbs and serve `subscribe` without downcasting.

use std::sync::Arc;

use tsb_common::{
    Key, KeyRange, TimeRange, Timestamp, TsbConfig, TsbError, TsbResult, TxnId, Version,
};
use tsb_storage::{IoSnapshot, Lsn};

use crate::concurrent::ConcurrentTsb;
use crate::replica::{ReplicaEngine, ReplicaStatus, ReplicationSource};
use crate::sharded::{ShardLsn, ShardedTsb};

/// What an engine is in a replication topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineRole {
    /// Accepts writes; may serve a replication stream.
    Primary,
    /// Read-only; applies a shipped stream. Writes fail with
    /// [`TsbError::ReadOnly`].
    Replica,
}

impl EngineRole {
    /// Stable lowercase name (wire `role` verb, logs, reports).
    pub fn name(self) -> &'static str {
        match self {
            EngineRole::Primary => "primary",
            EngineRole::Replica => "replica",
        }
    }
}

/// The unified engine surface: reads, writes, transactions, durability,
/// and replication introspection. See the module docs for the design
/// rules; see each concrete engine for semantics.
pub trait EngineHandle: Send + Sync {
    /// This engine's replication role.
    fn role(&self) -> EngineRole;

    /// Number of independent logs (shards); 1 for unsharded engines.
    fn shard_count(&self) -> usize;

    // ----- writes ---------------------------------------------------------

    /// Inserts (or updates) `key`, returning the commit timestamp and the
    /// log position to pass to [`Self::wait_durable`] for a durable ack
    /// (`None` when the engine is not durable).
    fn insert_deferred(&self, key: Key, value: Vec<u8>)
        -> TsbResult<(Timestamp, Option<ShardLsn>)>;

    /// Logically deletes `key` (non-deletion: history is preserved).
    fn delete_deferred(&self, key: Key) -> TsbResult<(Timestamp, Option<ShardLsn>)>;

    /// Blocks until `pos` is durable on its shard's log.
    fn wait_durable(&self, pos: ShardLsn) -> TsbResult<()>;

    /// Starts a multi-key transaction.
    fn begin_txn(&self) -> TsbResult<TxnId>;

    /// Adds an insert to `txn` (uncommitted: invisible, timestampless).
    fn txn_insert(&self, txn: TxnId, key: Key, value: Vec<u8>) -> TsbResult<()>;

    /// Adds a logical delete to `txn`.
    fn txn_delete(&self, txn: TxnId, key: Key) -> TsbResult<()>;

    /// Reads `key` as seen by `txn` (its own writes included).
    fn txn_get(&self, txn: TxnId, key: &Key) -> TsbResult<Option<Vec<u8>>>;

    /// Commits `txn`, stamping every write with one commit timestamp.
    fn commit_txn_deferred(&self, txn: TxnId) -> TsbResult<(Timestamp, Option<ShardLsn>)>;

    /// Aborts `txn`, erasing its uncommitted versions.
    fn abort_txn(&self, txn: TxnId) -> TsbResult<()>;

    /// Flushes and fences the log(s). On a replica: [`TsbError::ReadOnly`]
    /// (a replica never writes fences of its own).
    fn checkpoint(&self) -> TsbResult<()>;

    // ----- reads ----------------------------------------------------------

    /// The newest committed value for `key`.
    fn get_current(&self, key: &Key) -> TsbResult<Option<Vec<u8>>>;

    /// The value for `key` as of `ts`.
    fn get_as_of(&self, key: &Key, ts: Timestamp) -> TsbResult<Option<Vec<u8>>>;

    /// Range scan as of `ts`.
    fn scan_as_of(&self, range: &KeyRange, ts: Timestamp) -> TsbResult<Vec<(Key, Vec<u8>)>>;

    /// Range scan over current state.
    fn scan_current(&self, range: &KeyRange) -> TsbResult<Vec<(Key, Vec<u8>)>>;

    /// The versions of `key` committed inside `window`.
    fn history_between(&self, key: &Key, window: TimeRange) -> TsbResult<Vec<Version>>;

    /// The newest commit timestamp reads may observe (the install fence;
    /// on a replica, the applied fence).
    fn last_installed(&self) -> Timestamp;

    /// Newest commit known durable (`None` when not durable / nothing
    /// committed yet).
    fn last_durable_commit(&self) -> Option<Timestamp>;

    /// The newest durable position in this engine's log, on the LSN axis
    /// replication ships. 0 when there is no single durable log to speak
    /// of (in-memory engines, sharded engines with per-shard logs). On a
    /// replica: the applied fence LSN — the prefix a promotion right now
    /// would preserve.
    ///
    /// This is the number promotion tooling must compare a replica's
    /// `applied_lsn` against: the replica's own lag counters are relative
    /// to the durable watermark it *last polled*, so they can read zero
    /// while the primary already holds newer durable records that never
    /// shipped.
    fn durable_lsn(&self) -> Lsn {
        0
    }

    // ----- introspection --------------------------------------------------

    /// Runs the structural invariant checker.
    fn verify(&self) -> TsbResult<()>;

    /// The engine configuration.
    fn config(&self) -> &TsbConfig;

    /// A snapshot of the engine's I/O counters.
    fn io_snapshot(&self) -> IoSnapshot;

    /// Replication progress when this engine is a replica; `None` on a
    /// primary.
    fn replica_status(&self) -> Option<ReplicaStatus> {
        None
    }

    /// A replication source for streaming this engine's log to replicas.
    /// Errors unless this is a durable, single-log primary.
    fn replication_source(&self) -> TsbResult<ReplicationSource> {
        Err(TsbError::config(
            "this engine cannot serve a replication stream",
        ))
    }
}

// ---------------------------------------------------------------------------
// ConcurrentTsb: the one-shard case (shard index 0)
// ---------------------------------------------------------------------------

impl EngineHandle for ConcurrentTsb {
    fn role(&self) -> EngineRole {
        EngineRole::Primary
    }

    fn shard_count(&self) -> usize {
        1
    }

    fn insert_deferred(
        &self,
        key: Key,
        value: Vec<u8>,
    ) -> TsbResult<(Timestamp, Option<ShardLsn>)> {
        let (ts, lsn) = ConcurrentTsb::insert_deferred(self, key, value)?;
        Ok((ts, lsn.map(|l| (0, l))))
    }

    fn delete_deferred(&self, key: Key) -> TsbResult<(Timestamp, Option<ShardLsn>)> {
        let (ts, lsn) = ConcurrentTsb::delete_deferred(self, key)?;
        Ok((ts, lsn.map(|l| (0, l))))
    }

    fn wait_durable(&self, (_, lsn): ShardLsn) -> TsbResult<()> {
        ConcurrentTsb::wait_durable(self, lsn)
    }

    fn begin_txn(&self) -> TsbResult<TxnId> {
        Ok(ConcurrentTsb::begin_txn(self))
    }

    fn txn_insert(&self, txn: TxnId, key: Key, value: Vec<u8>) -> TsbResult<()> {
        ConcurrentTsb::txn_insert(self, txn, key, value)
    }

    fn txn_delete(&self, txn: TxnId, key: Key) -> TsbResult<()> {
        ConcurrentTsb::txn_delete(self, txn, key)
    }

    fn txn_get(&self, txn: TxnId, key: &Key) -> TsbResult<Option<Vec<u8>>> {
        ConcurrentTsb::txn_get(self, txn, key)
    }

    fn commit_txn_deferred(&self, txn: TxnId) -> TsbResult<(Timestamp, Option<ShardLsn>)> {
        let (ts, lsn) = ConcurrentTsb::commit_txn_deferred(self, txn)?;
        Ok((ts, lsn.map(|l| (0, l))))
    }

    fn abort_txn(&self, txn: TxnId) -> TsbResult<()> {
        ConcurrentTsb::abort_txn(self, txn)
    }

    fn checkpoint(&self) -> TsbResult<()> {
        ConcurrentTsb::checkpoint(self)
    }

    fn get_current(&self, key: &Key) -> TsbResult<Option<Vec<u8>>> {
        ConcurrentTsb::get_current(self, key)
    }

    fn get_as_of(&self, key: &Key, ts: Timestamp) -> TsbResult<Option<Vec<u8>>> {
        ConcurrentTsb::get_as_of(self, key, ts)
    }

    fn scan_as_of(&self, range: &KeyRange, ts: Timestamp) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        ConcurrentTsb::scan_as_of(self, range, ts)
    }

    fn scan_current(&self, range: &KeyRange) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        ConcurrentTsb::scan_current(self, range)
    }

    fn history_between(&self, key: &Key, window: TimeRange) -> TsbResult<Vec<Version>> {
        ConcurrentTsb::history_between(self, key, window)
    }

    fn last_installed(&self) -> Timestamp {
        ConcurrentTsb::last_installed(self)
    }

    fn last_durable_commit(&self) -> Option<Timestamp> {
        ConcurrentTsb::last_durable_commit(self)
    }

    fn durable_lsn(&self) -> Lsn {
        self.tree()
            .wal_handle()
            .map(|w| w.durable_lsn())
            .unwrap_or(0)
    }

    fn verify(&self) -> TsbResult<()> {
        ConcurrentTsb::verify(self)
    }

    fn config(&self) -> &TsbConfig {
        ConcurrentTsb::config(self)
    }

    fn io_snapshot(&self) -> IoSnapshot {
        self.io_stats().snapshot()
    }

    fn replication_source(&self) -> TsbResult<ReplicationSource> {
        ReplicationSource::new(self)
    }
}

// ---------------------------------------------------------------------------
// ShardedTsb
// ---------------------------------------------------------------------------

impl EngineHandle for ShardedTsb {
    fn role(&self) -> EngineRole {
        EngineRole::Primary
    }

    fn shard_count(&self) -> usize {
        ShardedTsb::shard_count(self)
    }

    fn insert_deferred(
        &self,
        key: Key,
        value: Vec<u8>,
    ) -> TsbResult<(Timestamp, Option<ShardLsn>)> {
        ShardedTsb::insert_deferred(self, key, value)
    }

    fn delete_deferred(&self, key: Key) -> TsbResult<(Timestamp, Option<ShardLsn>)> {
        ShardedTsb::delete_deferred(self, key)
    }

    fn wait_durable(&self, pos: ShardLsn) -> TsbResult<()> {
        ShardedTsb::wait_durable(self, pos)
    }

    fn begin_txn(&self) -> TsbResult<TxnId> {
        Ok(ShardedTsb::begin_txn(self))
    }

    fn txn_insert(&self, txn: TxnId, key: Key, value: Vec<u8>) -> TsbResult<()> {
        ShardedTsb::txn_insert(self, txn, key, value)
    }

    fn txn_delete(&self, txn: TxnId, key: Key) -> TsbResult<()> {
        ShardedTsb::txn_delete(self, txn, key)
    }

    fn txn_get(&self, txn: TxnId, key: &Key) -> TsbResult<Option<Vec<u8>>> {
        ShardedTsb::txn_get(self, txn, key)
    }

    fn commit_txn_deferred(&self, txn: TxnId) -> TsbResult<(Timestamp, Option<ShardLsn>)> {
        ShardedTsb::commit_txn_deferred(self, txn)
    }

    fn abort_txn(&self, txn: TxnId) -> TsbResult<()> {
        ShardedTsb::abort_txn(self, txn)
    }

    fn checkpoint(&self) -> TsbResult<()> {
        ShardedTsb::checkpoint(self)
    }

    fn get_current(&self, key: &Key) -> TsbResult<Option<Vec<u8>>> {
        ShardedTsb::get_current(self, key)
    }

    fn get_as_of(&self, key: &Key, ts: Timestamp) -> TsbResult<Option<Vec<u8>>> {
        ShardedTsb::get_as_of(self, key, ts)
    }

    fn scan_as_of(&self, range: &KeyRange, ts: Timestamp) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        ShardedTsb::scan_as_of(self, range, ts)
    }

    fn scan_current(&self, range: &KeyRange) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        ShardedTsb::scan_current(self, range)
    }

    fn history_between(&self, key: &Key, window: TimeRange) -> TsbResult<Vec<Version>> {
        ShardedTsb::history_between(self, key, window)
    }

    fn last_installed(&self) -> Timestamp {
        ShardedTsb::last_installed(self)
    }

    fn last_durable_commit(&self) -> Option<Timestamp> {
        ShardedTsb::last_durable_commit(self)
    }

    fn durable_lsn(&self) -> Lsn {
        // Each shard numbers its own log, so a cross-shard maximum would
        // compare unrelated axes. Promotion tooling only ever reads this
        // off a single-shard primary (the only configuration that can
        // feed a replica — see `replication_source`); report 0 otherwise.
        if self.shard_count() == 1 {
            self.shards()[0].durable_lsn()
        } else {
            0
        }
    }

    fn verify(&self) -> TsbResult<()> {
        ShardedTsb::verify(self)
    }

    fn config(&self) -> &TsbConfig {
        ShardedTsb::config(self)
    }

    fn io_snapshot(&self) -> IoSnapshot {
        ShardedTsb::io_snapshot(self)
    }

    fn replication_source(&self) -> TsbResult<ReplicationSource> {
        // Replication streams one log; a multi-shard engine has N plus
        // two-phase fences across them, which the replica apply protocol
        // deliberately rejects.
        if self.shard_count() != 1 {
            return Err(TsbError::config(
                "replication requires a single-shard primary (run with --shards 1)",
            ));
        }
        ReplicationSource::new(&self.shards()[0])
    }
}

// ---------------------------------------------------------------------------
// ReplicaEngine: reads delegate, writes refuse
// ---------------------------------------------------------------------------

/// Every write verb on a replica fails with this.
fn read_only<T>() -> TsbResult<T> {
    Err(TsbError::ReadOnly)
}

impl EngineHandle for ReplicaEngine {
    fn role(&self) -> EngineRole {
        EngineRole::Replica
    }

    fn shard_count(&self) -> usize {
        1
    }

    fn insert_deferred(&self, _: Key, _: Vec<u8>) -> TsbResult<(Timestamp, Option<ShardLsn>)> {
        read_only()
    }

    fn delete_deferred(&self, _: Key) -> TsbResult<(Timestamp, Option<ShardLsn>)> {
        read_only()
    }

    fn wait_durable(&self, _: ShardLsn) -> TsbResult<()> {
        read_only()
    }

    fn begin_txn(&self) -> TsbResult<TxnId> {
        read_only()
    }

    fn txn_insert(&self, _: TxnId, _: Key, _: Vec<u8>) -> TsbResult<()> {
        read_only()
    }

    fn txn_delete(&self, _: TxnId, _: Key) -> TsbResult<()> {
        read_only()
    }

    fn txn_get(&self, _: TxnId, _: &Key) -> TsbResult<Option<Vec<u8>>> {
        read_only()
    }

    fn commit_txn_deferred(&self, _: TxnId) -> TsbResult<(Timestamp, Option<ShardLsn>)> {
        read_only()
    }

    fn abort_txn(&self, _: TxnId) -> TsbResult<()> {
        read_only()
    }

    fn checkpoint(&self) -> TsbResult<()> {
        read_only()
    }

    fn get_current(&self, key: &Key) -> TsbResult<Option<Vec<u8>>> {
        ReplicaEngine::get_current(self, key)
    }

    fn get_as_of(&self, key: &Key, ts: Timestamp) -> TsbResult<Option<Vec<u8>>> {
        ReplicaEngine::get_as_of(self, key, ts)
    }

    fn scan_as_of(&self, range: &KeyRange, ts: Timestamp) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        ReplicaEngine::scan_as_of(self, range, ts)
    }

    fn scan_current(&self, range: &KeyRange) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        ReplicaEngine::scan_current(self, range)
    }

    fn history_between(&self, key: &Key, window: TimeRange) -> TsbResult<Vec<Version>> {
        ReplicaEngine::history_between(self, key, window)
    }

    fn last_installed(&self) -> Timestamp {
        ReplicaEngine::last_installed(self)
    }

    fn last_durable_commit(&self) -> Option<Timestamp> {
        // The applied fence *is* the replica's durable prefix: nothing is
        // installed before the local log is synced through it.
        let ts = ReplicaEngine::last_installed(self);
        (ts != Timestamp(0)).then_some(ts)
    }

    fn durable_lsn(&self) -> Lsn {
        self.status().applied_lsn
    }

    fn verify(&self) -> TsbResult<()> {
        ReplicaEngine::verify(self)
    }

    fn config(&self) -> &TsbConfig {
        ReplicaEngine::config(self)
    }

    fn io_snapshot(&self) -> IoSnapshot {
        ReplicaEngine::io_snapshot(self)
    }

    fn replica_status(&self) -> Option<ReplicaStatus> {
        Some(self.status())
    }

    fn replication_source(&self) -> TsbResult<ReplicationSource> {
        Err(TsbError::config(
            "cascading replication is not supported: subscribe to the primary",
        ))
    }
}

impl<E: EngineHandle + ?Sized> EngineHandle for Arc<E> {
    fn role(&self) -> EngineRole {
        (**self).role()
    }
    fn shard_count(&self) -> usize {
        (**self).shard_count()
    }
    fn insert_deferred(
        &self,
        key: Key,
        value: Vec<u8>,
    ) -> TsbResult<(Timestamp, Option<ShardLsn>)> {
        (**self).insert_deferred(key, value)
    }
    fn delete_deferred(&self, key: Key) -> TsbResult<(Timestamp, Option<ShardLsn>)> {
        (**self).delete_deferred(key)
    }
    fn wait_durable(&self, pos: ShardLsn) -> TsbResult<()> {
        (**self).wait_durable(pos)
    }
    fn begin_txn(&self) -> TsbResult<TxnId> {
        (**self).begin_txn()
    }
    fn txn_insert(&self, txn: TxnId, key: Key, value: Vec<u8>) -> TsbResult<()> {
        (**self).txn_insert(txn, key, value)
    }
    fn txn_delete(&self, txn: TxnId, key: Key) -> TsbResult<()> {
        (**self).txn_delete(txn, key)
    }
    fn txn_get(&self, txn: TxnId, key: &Key) -> TsbResult<Option<Vec<u8>>> {
        (**self).txn_get(txn, key)
    }
    fn commit_txn_deferred(&self, txn: TxnId) -> TsbResult<(Timestamp, Option<ShardLsn>)> {
        (**self).commit_txn_deferred(txn)
    }
    fn abort_txn(&self, txn: TxnId) -> TsbResult<()> {
        (**self).abort_txn(txn)
    }
    fn checkpoint(&self) -> TsbResult<()> {
        (**self).checkpoint()
    }
    fn get_current(&self, key: &Key) -> TsbResult<Option<Vec<u8>>> {
        (**self).get_current(key)
    }
    fn get_as_of(&self, key: &Key, ts: Timestamp) -> TsbResult<Option<Vec<u8>>> {
        (**self).get_as_of(key, ts)
    }
    fn scan_as_of(&self, range: &KeyRange, ts: Timestamp) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        (**self).scan_as_of(range, ts)
    }
    fn scan_current(&self, range: &KeyRange) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        (**self).scan_current(range)
    }
    fn history_between(&self, key: &Key, window: TimeRange) -> TsbResult<Vec<Version>> {
        (**self).history_between(key, window)
    }
    fn last_installed(&self) -> Timestamp {
        (**self).last_installed()
    }
    fn last_durable_commit(&self) -> Option<Timestamp> {
        (**self).last_durable_commit()
    }
    fn durable_lsn(&self) -> Lsn {
        (**self).durable_lsn()
    }
    fn verify(&self) -> TsbResult<()> {
        (**self).verify()
    }
    fn config(&self) -> &TsbConfig {
        (**self).config()
    }
    fn io_snapshot(&self) -> IoSnapshot {
        (**self).io_snapshot()
    }
    fn replica_status(&self) -> Option<ReplicaStatus> {
        (**self).replica_status()
    }
    fn replication_source(&self) -> TsbResult<ReplicationSource> {
        (**self).replication_source()
    }
}
