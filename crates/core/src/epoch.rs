//! The promotion epoch: a tiny fsynced counter that fences off stale
//! primaries after a failover.
//!
//! Every data directory carries an epoch. A directory that predates this
//! file (all pre-failover deployments) is implicitly at epoch
//! [`INITIAL_EPOCH`]. Promoting a replica bumps the epoch and persists it
//! *before* the new primary accepts writes; the epoch is echoed in the
//! `Role` reply and checked on every `Subscribe`, so a demoted former
//! primary — whose directory still holds the old epoch — is rejected with
//! `StaleEpoch` instead of silently shipping from (or applying onto) a
//! diverged history. The old primary's only way back in is a re-bootstrap
//! (`--replica-of` the new primary), which installs a fresh base and
//! adopts the new epoch.
//!
//! Durability follows the WAL's rename discipline: the value is written to
//! a temp file, fsynced, renamed over [`EPOCH_FILE`], and the parent
//! directory is fsynced so a crash cannot resurrect the old epoch.

use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

use tsb_common::{TsbError, TsbResult};

/// File name of the persisted epoch inside a data directory.
pub const EPOCH_FILE: &str = "tsb.epoch";

/// The epoch of a directory that has never been through a promotion.
pub const INITIAL_EPOCH: u64 = 1;

const MAGIC: &[u8; 8] = b"TSBEPOCH";

/// Reads the directory's promotion epoch. A missing file is
/// [`INITIAL_EPOCH`] (pre-failover directories never wrote one); a present
/// but unreadable file is corruption, not a silent reset — resetting would
/// un-fence a stale primary.
pub fn read_epoch(dir: impl AsRef<Path>) -> TsbResult<u64> {
    let path = dir.as_ref().join(EPOCH_FILE);
    let mut file = match File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(INITIAL_EPOCH),
        Err(e) => return Err(e.into()),
    };
    let mut buf = Vec::new();
    file.read_to_end(&mut buf)?;
    if buf.len() != 16 || &buf[..8] != MAGIC {
        return Err(TsbError::corruption(format!(
            "epoch file {} is malformed ({} bytes)",
            path.display(),
            buf.len()
        )));
    }
    let epoch = u64::from_le_bytes(buf[8..16].try_into().unwrap());
    if epoch == 0 {
        return Err(TsbError::corruption(
            "epoch file holds the reserved epoch 0",
        ));
    }
    Ok(epoch)
}

/// Persists `epoch` durably: temp file + fsync + rename + parent-dir
/// fsync. Refuses to move the epoch backwards — the fence must be
/// monotone or a resurrected old primary could re-fence the new one.
pub fn persist_epoch(dir: impl AsRef<Path>, epoch: u64) -> TsbResult<()> {
    let dir = dir.as_ref();
    if epoch == 0 {
        return Err(TsbError::config("epoch 0 is reserved"));
    }
    let current = read_epoch(dir)?;
    if epoch < current {
        return Err(TsbError::config(format!(
            "refusing to lower the promotion epoch from {current} to {epoch}"
        )));
    }
    std::fs::create_dir_all(dir)?;
    let tmp = dir.join(format!("{EPOCH_FILE}.tmp"));
    let mut file = File::create(&tmp)?;
    file.write_all(MAGIC)?;
    file.write_all(&epoch.to_le_bytes())?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, dir.join(EPOCH_FILE))?;
    File::open(dir)?.sync_all()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new() -> TempDir {
            use std::sync::atomic::{AtomicU64, Ordering};
            static N: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "tsb-epoch-{}-{}",
                std::process::id(),
                N.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn missing_file_is_initial_epoch() {
        let dir = TempDir::new();
        assert_eq!(read_epoch(&dir.0).unwrap(), INITIAL_EPOCH);
    }

    #[test]
    fn round_trips_and_is_monotone() {
        let dir = TempDir::new();
        persist_epoch(&dir.0, 3).unwrap();
        assert_eq!(read_epoch(&dir.0).unwrap(), 3);
        persist_epoch(&dir.0, 3).unwrap();
        persist_epoch(&dir.0, 7).unwrap();
        assert_eq!(read_epoch(&dir.0).unwrap(), 7);
        assert!(persist_epoch(&dir.0, 2).is_err(), "epoch must not regress");
        assert_eq!(read_epoch(&dir.0).unwrap(), 7);
    }

    #[test]
    fn zero_and_garbage_are_rejected() {
        let dir = TempDir::new();
        assert!(persist_epoch(&dir.0, 0).is_err());
        std::fs::write(dir.0.join(EPOCH_FILE), b"nonsense").unwrap();
        assert!(
            read_epoch(&dir.0).is_err(),
            "garbage must not read as an epoch"
        );
    }
}
