//! # tsb-core — the Time-Split B-tree
//!
//! A reproduction of **Lomet & Salzberg, "Access Methods for Multiversion
//! Data", SIGMOD 1989**: a single integrated index over a versioned,
//! timestamped database with a non-deletion policy, in which
//!
//! * the **current database** (newest versions) lives on an erasable,
//!   random-access store ([`tsb_storage::MagneticStore`]), and
//! * the **historical database** (superseded versions) is consolidated and
//!   appended to a write-once store ([`tsb_storage::WormStore`]),
//!
//! with data migrating incrementally from the former to the latter, one node
//! at a time, whenever a node is *time split*.
//!
//! ## What the crate provides
//!
//! * [`TsbTree`] — the index itself: point lookups (current and as-of-time),
//!   range scans and snapshots at any past time, per-record version
//!   histories, inserts/updates/logical deletes, and incremental migration
//!   driven by configurable split policies ([`tsb_common::SplitPolicyKind`],
//!   [`tsb_common::SplitTimeChoice`]).
//! * [`SnapshotReader`] — lock-free read-only transactions pinned to a start
//!   timestamp (§4.1), plus writer transactions whose uncommitted versions
//!   carry no timestamp, are never migrated, and are erased on abort (§4).
//! * [`ConcurrentTsb`] — a `Send + Sync` single-writer / many-reader engine:
//!   serialized writes, lock-free concurrent reads against immutable
//!   historical nodes with seqlock-validated descents, and owning
//!   [`ConcurrentSnapshot`] readers pinned behind an install fence (see
//!   [`concurrent`]).
//! * [`ShardedTsb`] — an N-way hash-partitioned engine: independent
//!   per-shard WALs, group-commit pipelines, and checkpoint cadences under
//!   one global commit clock, with fence-pinned cross-shard snapshots and
//!   two-phase-fence cross-shard transactions (see [`sharded`]).
//! * [`SecondaryIndex`] — `<timestamp, secondary key, primary key>` indexes,
//!   themselves TSB-trees (§3.6).
//! * **Durability** — [`TsbTree::open_durable`] / [`TsbTree::recover`] /
//!   [`TsbTree::checkpoint`]: a write-ahead redo log
//!   ([`tsb_storage::Wal`]) makes the erasable current database
//!   crash-consistent (the WORM side is durable by hardware). Every
//!   mutation's page images are logged before they may dirty a page, a
//!   commit fence ends each mutation, checkpoints fence replay, and
//!   recovery replays the log, erases in-flight transactions, and
//!   verifies before serving. [`ConcurrentTsb`] layers group commit
//!   ([`tsb_common::FsyncPolicy`]) on top.
//! * [`TreeStats`] / [`TsbTree::verify`] — the measurements the paper's
//!   evaluation plan calls for (total space, current-database space,
//!   redundancy) and a full structural invariant checker.
//!
//! ## Quick start
//!
//! ```
//! use tsb_common::{Key, KeyRange, TsbConfig};
//! use tsb_core::TsbTree;
//!
//! let mut tree = tsb_core::TsbOptions::in_memory().config(TsbConfig::default()).open_tree().unwrap();
//!
//! // A tiny account history (Figure 1's stepwise-constant data).
//! let t_open = tree.insert("acct-42", b"balance=100".to_vec()).unwrap();
//! let t_deposit = tree.insert("acct-42", b"balance=250".to_vec()).unwrap();
//!
//! // Current state.
//! assert_eq!(tree.get_current(&Key::from("acct-42")).unwrap().unwrap(), b"balance=250".to_vec());
//! // The balance as of any moment between the two transactions is the
//! // earlier one.
//! assert_eq!(tree.get_as_of(&Key::from("acct-42"), t_open).unwrap().unwrap(), b"balance=100".to_vec());
//! // Full history of the record.
//! assert_eq!(tree.versions(&Key::from("acct-42")).unwrap().len(), 2);
//! // Snapshot of the whole database at a past time, without locks.
//! let snapshot = tree.snapshot_at(t_deposit).unwrap();
//! assert_eq!(snapshot.len(), 1);
//! let _ = (t_open, KeyRange::full());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod concurrent;
pub mod engine;
pub mod epoch;
pub mod node;
pub mod options;
pub mod replica;
pub mod secondary;
pub mod sharded;
pub mod split;
pub mod stats;
pub mod tree;
pub mod txn;
pub mod verify;

pub use concurrent::{ConcurrentSnapshot, ConcurrentTsb};
pub use engine::{EngineHandle, EngineRole};
pub use node::{
    DataComposition, DataNode, IndexComposition, IndexEntry, IndexNode, Node, NodeAddr,
};
pub use options::TsbOptions;
pub use replica::{ReplicaBase, ReplicaEngine, ReplicaStatus, ReplicationSource, ShippedBatch};
pub use secondary::{composite_key, split_composite_key, SecondaryIndex};
pub use sharded::{ShardLsn, ShardedSnapshot, ShardedTsb};
pub use split::SplitPlan;
pub use stats::TreeStats;
pub use tree::TsbTree;
pub use txn::SnapshotReader;

// Re-export the shared vocabulary so that downstream users only need this
// crate for typical use.
pub use tsb_common::{
    CostParams, FsyncPolicy, Key, KeyBound, KeyRange, SplitPolicyKind, SplitTimeChoice, TimeBound,
    TimeRange, Timestamp, TsState, TsbConfig, TsbError, TsbResult, TxnId, Version,
};
// Durability vocabulary: the log handed to `create_durable` and the fault
// plumbing the recovery test matrix drives.
pub use tsb_storage::{CrashPoint, FaultInjector, Lsn, PageId, Wal};
