//! Node addresses spanning the two devices.
//!
//! A TSB-tree node lives either on the erasable current store (a magnetic
//! page, rewritable in place) or on the write-once historical store (a
//! consolidated byte string addressed by offset + length, §3.4). Index
//! entries carry a [`NodeAddr`] so one index structure spans both devices —
//! "a single unified index enables retrieval from both the historical and
//! the current database" (§1).

use std::fmt;

use tsb_common::encode::{ByteReader, ByteWriter};
use tsb_common::{TsbError, TsbResult};
use tsb_storage::{HistAddr, PageId};

/// The location of a TSB-tree node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum NodeAddr {
    /// A current node: a page on the erasable magnetic store.
    Current(PageId),
    /// A historical node: an immutable record on the WORM store.
    Historical(HistAddr),
}

impl NodeAddr {
    /// Whether this address points at the current (erasable) store.
    pub fn is_current(&self) -> bool {
        matches!(self, NodeAddr::Current(_))
    }

    /// Whether this address points at the historical (write-once) store.
    pub fn is_historical(&self) -> bool {
        matches!(self, NodeAddr::Historical(_))
    }

    /// The page id, if current.
    pub fn as_page(&self) -> Option<PageId> {
        match self {
            NodeAddr::Current(p) => Some(*p),
            NodeAddr::Historical(_) => None,
        }
    }

    /// The historical address, if historical.
    pub fn as_hist(&self) -> Option<HistAddr> {
        match self {
            NodeAddr::Current(_) => None,
            NodeAddr::Historical(h) => Some(*h),
        }
    }

    /// Encodes the address (tag byte + payload).
    pub fn encode(&self, w: &mut ByteWriter) {
        match self {
            NodeAddr::Current(p) => {
                w.put_u8(0);
                w.put_u64(p.0);
            }
            NodeAddr::Historical(h) => {
                w.put_u8(1);
                h.encode(w);
            }
        }
    }

    /// Decodes an address.
    pub fn decode(r: &mut ByteReader<'_>) -> TsbResult<Self> {
        match r.get_u8()? {
            0 => Ok(NodeAddr::Current(PageId(r.get_u64()?))),
            1 => Ok(NodeAddr::Historical(HistAddr::decode(r)?)),
            t => Err(TsbError::corruption(format!("invalid node-addr tag {t}"))),
        }
    }

    /// Maximum encoded size of an address in bytes.
    pub const fn max_encoded_size() -> usize {
        1 + HistAddr::encoded_size()
    }
}

impl fmt::Display for NodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeAddr::Current(p) => write!(f, "{p}"),
            NodeAddr::Historical(h) => write!(f, "{h}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_both_variants() {
        let cases = [
            NodeAddr::Current(PageId(42)),
            NodeAddr::Historical(HistAddr::new(1024, 300)),
        ];
        for addr in cases {
            let mut w = ByteWriter::new();
            addr.encode(&mut w);
            assert!(w.len() <= NodeAddr::max_encoded_size());
            let mut r = ByteReader::new(w.as_slice());
            assert_eq!(NodeAddr::decode(&mut r).unwrap(), addr);
        }
    }

    #[test]
    fn accessors() {
        let c = NodeAddr::Current(PageId(1));
        let h = NodeAddr::Historical(HistAddr::new(0, 5));
        assert!(c.is_current() && !c.is_historical());
        assert!(h.is_historical() && !h.is_current());
        assert_eq!(c.as_page(), Some(PageId(1)));
        assert_eq!(c.as_hist(), None);
        assert_eq!(h.as_hist(), Some(HistAddr::new(0, 5)));
        assert_eq!(h.as_page(), None);
        assert_eq!(c.to_string(), "page:1");
        assert_eq!(h.to_string(), "worm:0+5");
    }

    #[test]
    fn bad_tag_is_corruption() {
        let mut r = ByteReader::new(&[7]);
        assert!(matches!(
            NodeAddr::decode(&mut r),
            Err(TsbError::Corruption(_))
        ));
    }
}
