//! Data (leaf) nodes.
//!
//! A data node holds record versions for a rectangle of the key × time
//! plane: a key range (§3.5's *key range*) crossed with a time range. The
//! current node for a key range has an open-ended time range and lives on
//! the magnetic store; historical nodes produced by time splits have a
//! closed time range and live on the WORM store.
//!
//! Unlike the WOBT (which must keep entries in insertion order because its
//! sectors are write-once), TSB-tree current nodes live on an erasable
//! device, so entries are maintained sorted by `(key, version order)`; that
//! is what makes "normal" B+-tree-style key splits possible (§3, §5).
//!
//! One wrinkle inherited from the time-split rule (§3.1, rule 3): a data
//! node's entries may include a version whose commit time is *earlier* than
//! the node's time-range start — the copy of the version that was valid at
//! the split time. [`DataNode::validate`] checks exactly that shape.

use tsb_common::encode::{size, ByteReader, ByteWriter};
use tsb_common::{
    Key, KeyRange, TimeRange, Timestamp, TsState, TsbError, TsbResult, TxnId, Version, VersionOrder,
};

/// Node type tag burned into the first byte of every encoded node.
pub const DATA_NODE_TAG: u8 = 1;

/// A leaf node holding record versions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DataNode {
    /// The key range this node is responsible for.
    pub key_range: KeyRange,
    /// The time range this node is responsible for (`hi = +∞` ⇔ current).
    pub time_range: TimeRange,
    /// Versions sorted by `(key, version order)`.
    entries: Vec<Version>,
}

/// Summary of what a full data node contains, used by the split policy
/// (§3.2: "the kind of split used depends on what is in the node").
#[derive(Clone, Debug, PartialEq)]
pub struct DataComposition {
    /// Total number of entries.
    pub total_entries: usize,
    /// Number of distinct keys.
    pub distinct_keys: usize,
    /// Entries that are the newest committed version of their key and not a
    /// tombstone (the node's share of the *current database*).
    pub live_entries: usize,
    /// Committed entries superseded by a newer version (or tombstones):
    /// candidates for migration to the historical store.
    pub historical_entries: usize,
    /// Uncommitted entries (never migrated, erasable).
    pub uncommitted_entries: usize,
    /// Encoded bytes of all entries.
    pub entry_bytes: usize,
    /// Encoded bytes of the live + uncommitted entries only.
    pub live_entry_bytes: usize,
    /// Commit time of the newest version that *superseded* an older version
    /// of the same key (i.e. the last genuine update, as opposed to a fresh
    /// insert). `None` if every key has a single version.
    pub last_update_time: Option<Timestamp>,
    /// Median of the distinct commit timestamps present.
    pub median_commit_time: Option<Timestamp>,
    /// Smallest commit timestamp present.
    pub min_commit_time: Option<Timestamp>,
    /// Largest commit timestamp present.
    pub max_commit_time: Option<Timestamp>,
}

impl DataComposition {
    /// Fraction of committed entries that are live, in `[0, 1]`.
    /// Returns 1.0 for an empty node.
    pub fn live_fraction(&self) -> f64 {
        let committed = self.live_entries + self.historical_entries;
        if committed == 0 {
            1.0
        } else {
            self.live_entries as f64 / committed as f64
        }
    }
}

impl DataNode {
    /// Creates an empty data node covering `key_range` × `time_range`.
    pub fn new(key_range: KeyRange, time_range: TimeRange) -> Self {
        DataNode {
            key_range,
            time_range,
            entries: Vec::new(),
        }
    }

    /// Creates the initial root data node covering the whole plane.
    pub fn initial_root() -> Self {
        DataNode::new(KeyRange::full(), TimeRange::full())
    }

    /// Creates a node from pre-sorted entries (used by splits). The entries
    /// are re-sorted defensively.
    pub fn from_entries(
        key_range: KeyRange,
        time_range: TimeRange,
        mut entries: Vec<Version>,
    ) -> Self {
        entries.sort_by(Version::sort_cmp);
        DataNode {
            key_range,
            time_range,
            entries,
        }
    }

    /// The entries, sorted by `(key, version order)`.
    pub fn entries(&self) -> &[Version] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the node holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the node is a current node (open-ended time range).
    pub fn is_current(&self) -> bool {
        self.time_range.is_current()
    }

    /// Binary search for `(key, order)` with a fully borrowed comparator:
    /// no probe ever clones the search key or an entry's key.
    fn position_of(&self, key: &Key, order: VersionOrder) -> Result<usize, usize> {
        self.entries
            .binary_search_by(|e| e.key.cmp(key).then_with(|| e.order().cmp(&order)))
    }

    /// Inserts (or replaces) a version. Replacement happens when an entry
    /// with the same `(key, state)` already exists — e.g. a transaction
    /// overwriting its own uncommitted write.
    ///
    /// Returns an error if the key lies outside the node's key range (that
    /// would indicate a routing bug in the caller).
    pub fn insert(&mut self, version: Version) -> TsbResult<()> {
        if !self.key_range.contains(&version.key) {
            return Err(TsbError::internal(format!(
                "key {} routed to node with key range {}",
                version.key, self.key_range
            )));
        }
        match self.position_of(&version.key, version.order()) {
            Ok(pos) => self.entries[pos] = version,
            Err(pos) => self.entries.insert(pos, version),
        }
        Ok(())
    }

    /// Removes the uncommitted version of `key` written by `txn`, if any.
    pub fn remove_uncommitted(&mut self, key: &Key, txn: TxnId) -> Option<Version> {
        match self.position_of(key, VersionOrder::Uncommitted(txn)) {
            Ok(pos) => Some(self.entries.remove(pos)),
            Err(_) => None,
        }
    }

    /// The uncommitted version of `key`, if any (written by any transaction —
    /// there is at most one, because writers conflict on uncommitted keys).
    pub fn find_uncommitted(&self, key: &Key) -> Option<&Version> {
        self.versions_of(key).find(|e| e.state.is_uncommitted())
    }

    /// All versions of `key` in this node, in version order. The key's
    /// contiguous group is located by two binary searches up front, so the
    /// returned iterator borrows only the node — the probe key is neither
    /// cloned nor captured.
    pub fn versions_of(&self, key: &Key) -> impl Iterator<Item = &Version> + '_ {
        let start = self.entries.partition_point(|e| e.key < *key);
        let end = self.entries.partition_point(|e| e.key <= *key);
        self.entries[start..end].iter()
    }

    /// The version of `key` governing time `ts`: the committed version with
    /// the largest commit time ≤ `ts`. Uncommitted versions are invisible.
    pub fn find_as_of(&self, key: &Key, ts: Timestamp) -> Option<&Version> {
        self.versions_of(key)
            .filter(|v| v.commit_time().map(|t| t <= ts).unwrap_or(false))
            .last()
    }

    /// The newest committed version of `key` (which may be a tombstone).
    pub fn find_latest_committed(&self, key: &Key) -> Option<&Version> {
        self.versions_of(key)
            .filter(|v| v.state.is_committed())
            .last()
    }

    /// The distinct keys present, in order.
    pub fn distinct_keys(&self) -> Vec<Key> {
        let mut keys: Vec<Key> = Vec::new();
        for e in &self.entries {
            if keys.last() != Some(&e.key) {
                keys.push(e.key.clone());
            }
        }
        keys
    }

    /// Summarizes the node contents for the split policy.
    pub fn composition(&self) -> DataComposition {
        let mut distinct_keys = 0usize;
        let mut live = 0usize;
        let mut historical = 0usize;
        let mut uncommitted = 0usize;
        let mut live_bytes = 0usize;
        let mut last_update: Option<Timestamp> = None;
        let mut commit_times: Vec<Timestamp> = Vec::new();

        let mut i = 0;
        while i < self.entries.len() {
            let key = &self.entries[i].key;
            distinct_keys += 1;
            let group_end = self.entries[i..]
                .iter()
                .position(|e| e.key != *key)
                .map(|p| i + p)
                .unwrap_or(self.entries.len());
            let group = &self.entries[i..group_end];

            // Newest committed version in the group, if any.
            let latest_committed_idx = group.iter().rposition(|e| e.state.is_committed());
            let mut versions_seen = 0usize;
            for (j, e) in group.iter().enumerate() {
                match e.state {
                    TsState::Committed(t) => {
                        commit_times.push(t);
                        versions_seen += 1;
                        let is_latest = Some(j) == latest_committed_idx;
                        if is_latest && !e.is_tombstone() {
                            live += 1;
                            live_bytes += size::version(e);
                        } else {
                            historical += 1;
                        }
                        // A version that supersedes an earlier one is an "update".
                        if versions_seen > 1 {
                            last_update = Some(last_update.map_or(t, |cur| cur.max(t)));
                        }
                    }
                    TsState::Uncommitted(_) => {
                        uncommitted += 1;
                        live_bytes += size::version(e);
                    }
                }
            }
            i = group_end;
        }

        commit_times.sort();
        commit_times.dedup();
        let median = if commit_times.is_empty() {
            None
        } else {
            Some(commit_times[commit_times.len() / 2])
        };

        DataComposition {
            total_entries: self.entries.len(),
            distinct_keys,
            live_entries: live,
            historical_entries: historical,
            uncommitted_entries: uncommitted,
            entry_bytes: self.entries.iter().map(size::version).sum(),
            live_entry_bytes: live_bytes,
            last_update_time: last_update,
            median_commit_time: median,
            min_commit_time: commit_times.first().copied(),
            max_commit_time: commit_times.last().copied(),
        }
    }

    /// Encoded size of the node in bytes.
    pub fn encoded_size(&self) -> usize {
        // tag + entry count + key range + time range + entries
        1 + 4
            + size::key_range(&self.key_range)
            + size::time_range(&self.time_range)
            + self.entries.iter().map(size::version).sum::<usize>()
    }

    /// Encodes the node.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(self.encoded_size());
        w.put_u8(DATA_NODE_TAG);
        w.put_u32(self.entries.len() as u32);
        w.put_key_range(&self.key_range);
        w.put_time_range(&self.time_range);
        for e in &self.entries {
            w.put_version(e);
        }
        debug_assert_eq!(w.len(), self.encoded_size());
        w.into_vec()
    }

    /// Decodes a node previously produced by [`Self::encode`].
    pub fn decode(bytes: &[u8]) -> TsbResult<Self> {
        let mut r = ByteReader::new(bytes);
        let tag = r.get_u8()?;
        if tag != DATA_NODE_TAG {
            return Err(TsbError::corruption(format!(
                "expected data node tag {DATA_NODE_TAG}, found {tag}"
            )));
        }
        let count = r.get_u32()? as usize;
        let key_range = r.get_key_range()?;
        let time_range = r.get_time_range()?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            entries.push(r.get_version()?);
        }
        Ok(DataNode {
            key_range,
            time_range,
            entries,
        })
    }

    /// Checks the node's internal invariants:
    ///
    /// * entries are sorted by `(key, version order)` and unique,
    /// * every key lies in the node's key range,
    /// * every commit time is below the time range's upper bound,
    /// * at most one version per key has a commit time below the time range's
    ///   lower bound, and it is that key's earliest version in the node (the
    ///   rule-3 duplicate of the version valid at the split time),
    /// * historical (closed time range) nodes contain no uncommitted entries.
    pub fn validate(&self) -> TsbResult<()> {
        for w in self.entries.windows(2) {
            if w[0].sort_key() >= w[1].sort_key() {
                return Err(TsbError::invariant(format!(
                    "data node entries out of order: {} then {}",
                    w[0], w[1]
                )));
            }
        }
        let mut earlier_than_lo_per_key: Option<(&Key, usize)> = None;
        for (idx, e) in self.entries.iter().enumerate() {
            if !self.key_range.contains(&e.key) {
                return Err(TsbError::invariant(format!(
                    "entry {} outside node key range {}",
                    e, self.key_range
                )));
            }
            if let Some(t) = e.commit_time() {
                if !self.time_range.hi.is_above(t) {
                    return Err(TsbError::invariant(format!(
                        "entry {} at or beyond node time-range end {}",
                        e, self.time_range
                    )));
                }
                if t < self.time_range.lo {
                    // Must be the earliest version of its key in this node.
                    let first_of_key = self
                        .entries
                        .iter()
                        .position(|o| o.key == e.key)
                        .unwrap_or(idx);
                    if first_of_key != idx {
                        return Err(TsbError::invariant(format!(
                            "entry {} predates node time range {} but is not its key's earliest entry",
                            e, self.time_range
                        )));
                    }
                    if let Some((k, _)) = earlier_than_lo_per_key {
                        if k == &e.key {
                            return Err(TsbError::invariant(format!(
                                "key {} has two entries before the node time range start",
                                e.key
                            )));
                        }
                    }
                    earlier_than_lo_per_key = Some((&e.key, idx));
                }
            } else if !self.is_current() {
                return Err(TsbError::invariant(format!(
                    "historical node contains uncommitted entry {e}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(key: u64, ts: u64, val: &str) -> Version {
        Version::committed(key, Timestamp(ts), val.as_bytes().to_vec())
    }

    fn sample_node() -> DataNode {
        let mut n = DataNode::initial_root();
        n.insert(v(50, 1, "Joe")).unwrap();
        n.insert(v(60, 2, "Pete")).unwrap();
        n.insert(v(60, 4, "Pete v2")).unwrap();
        n.insert(v(70, 3, "Mary")).unwrap();
        n.insert(Version::uncommitted(80u64, TxnId(9), b"Sue".to_vec()))
            .unwrap();
        n
    }

    #[test]
    fn entries_stay_sorted_and_replace_on_same_state() {
        let n = sample_node();
        let keys: Vec<_> = n.entries().iter().map(|e| e.key.clone()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        n.validate().unwrap();

        // Same (key, state) replaces.
        let mut n = sample_node();
        n.insert(v(60, 4, "Pete rewritten")).unwrap();
        assert_eq!(n.len(), 5);
        assert_eq!(
            n.find_as_of(&Key::from_u64(60), Timestamp(9))
                .unwrap()
                .value,
            Some(b"Pete rewritten".to_vec())
        );
    }

    #[test]
    fn out_of_range_key_is_rejected() {
        let mut n = DataNode::new(
            KeyRange::bounded(Key::from_u64(10), Key::from_u64(20)),
            TimeRange::full(),
        );
        assert!(n.insert(v(25, 1, "x")).is_err());
        assert!(n.insert(v(15, 1, "ok")).is_ok());
    }

    #[test]
    fn as_of_semantics_are_stepwise_constant() {
        let n = sample_node();
        let k = Key::from_u64(60);
        // Before the first version: not present.
        assert!(n.find_as_of(&k, Timestamp(1)).is_none());
        // Between versions: the earlier version governs (Figure 1).
        assert_eq!(
            n.find_as_of(&k, Timestamp(3)).unwrap().value,
            Some(b"Pete".to_vec())
        );
        // At and after the update.
        assert_eq!(
            n.find_as_of(&k, Timestamp(4)).unwrap().value,
            Some(b"Pete v2".to_vec())
        );
        assert_eq!(
            n.find_as_of(&k, Timestamp(100)).unwrap().value,
            Some(b"Pete v2".to_vec())
        );
    }

    #[test]
    fn uncommitted_versions_are_invisible_to_reads_but_findable() {
        let n = sample_node();
        let k = Key::from_u64(80);
        assert!(n.find_as_of(&k, Timestamp(100)).is_none());
        assert!(n.find_latest_committed(&k).is_none());
        assert!(n.find_uncommitted(&k).is_some());
        assert_eq!(
            n.find_uncommitted(&k).unwrap().state.txn_id(),
            Some(TxnId(9))
        );
    }

    #[test]
    fn remove_uncommitted_only_removes_the_right_entry() {
        let mut n = sample_node();
        assert!(n.remove_uncommitted(&Key::from_u64(80), TxnId(1)).is_none());
        let removed = n.remove_uncommitted(&Key::from_u64(80), TxnId(9)).unwrap();
        assert_eq!(removed.key, Key::from_u64(80));
        assert_eq!(n.len(), 4);
        n.validate().unwrap();
    }

    #[test]
    fn composition_reflects_live_vs_historical() {
        let n = sample_node();
        let c = n.composition();
        assert_eq!(c.total_entries, 5);
        assert_eq!(c.distinct_keys, 4);
        assert_eq!(c.live_entries, 3); // 50, 60@4, 70
        assert_eq!(c.historical_entries, 1); // 60@2
        assert_eq!(c.uncommitted_entries, 1);
        assert_eq!(c.last_update_time, Some(Timestamp(4)));
        assert_eq!(c.min_commit_time, Some(Timestamp(1)));
        assert_eq!(c.max_commit_time, Some(Timestamp(4)));
        assert!(c.live_fraction() > 0.7 && c.live_fraction() < 0.8);

        // A tombstone as the latest version means the key is not live.
        let mut n = DataNode::initial_root();
        n.insert(v(1, 1, "a")).unwrap();
        n.insert(Version::tombstone(1u64, Timestamp(2))).unwrap();
        let c = n.composition();
        assert_eq!(c.live_entries, 0);
        assert_eq!(c.historical_entries, 2);
        assert_eq!(c.last_update_time, Some(Timestamp(2)));
    }

    #[test]
    fn empty_node_composition() {
        let n = DataNode::initial_root();
        let c = n.composition();
        assert_eq!(c.total_entries, 0);
        assert_eq!(c.live_fraction(), 1.0);
        assert_eq!(c.median_commit_time, None);
        assert!(n.is_empty());
    }

    #[test]
    fn encode_decode_round_trip() {
        let n = sample_node();
        let bytes = n.encode();
        assert_eq!(bytes.len(), n.encoded_size());
        let decoded = DataNode::decode(&bytes).unwrap();
        assert_eq!(decoded, n);

        // Wrong tag is rejected.
        let mut bad = bytes.clone();
        bad[0] = 99;
        assert!(DataNode::decode(&bad).is_err());
        // Truncation is rejected.
        assert!(DataNode::decode(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn validate_catches_rule3_violations() {
        // An entry before the time-range start must be its key's earliest
        // entry; two such entries for one key are invalid.
        let node = DataNode::from_entries(
            KeyRange::full(),
            TimeRange::from(Timestamp(10)),
            vec![v(1, 3, "a"), v(1, 5, "b"), v(1, 12, "c")],
        );
        assert!(node.validate().is_err());

        // A single pre-split entry per key is the legal rule-3 duplicate.
        let node = DataNode::from_entries(
            KeyRange::full(),
            TimeRange::from(Timestamp(10)),
            vec![v(1, 5, "b"), v(1, 12, "c"), v(2, 11, "d")],
        );
        node.validate().unwrap();
    }

    #[test]
    fn validate_catches_time_range_end_violation_and_uncommitted_in_historical() {
        let node = DataNode::from_entries(
            KeyRange::full(),
            TimeRange::bounded(Timestamp(0), Timestamp(5)),
            vec![v(1, 7, "late")],
        );
        assert!(node.validate().is_err());

        let node = DataNode::from_entries(
            KeyRange::full(),
            TimeRange::bounded(Timestamp(0), Timestamp(5)),
            vec![Version::uncommitted(1u64, TxnId(1), b"x".to_vec())],
        );
        assert!(node.validate().is_err());
    }

    #[test]
    fn versions_of_iterates_only_that_key() {
        let n = sample_node();
        let versions: Vec<_> = n.versions_of(&Key::from_u64(60)).collect();
        assert_eq!(versions.len(), 2);
        assert!(versions.iter().all(|e| e.key == Key::from_u64(60)));
        assert_eq!(n.versions_of(&Key::from_u64(99)).count(), 0);
        assert_eq!(n.distinct_keys().len(), 4);
    }
}
