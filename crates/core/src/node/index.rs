//! Index nodes.
//!
//! An index entry refers to a lower-level node that "spans a keyspace
//! interval as well as a time interval" (§3.5). The paper stores entries as
//! `(key, timestamp, pointer)` triples and derives the spanned rectangle
//! implicitly from neighbouring entries; we store the rectangle explicitly
//! (see DESIGN.md), which makes the split rules and the search invariant —
//! *for any point of the node's rectangle exactly one child entry contains
//! it* — direct to implement and to verify.
//!
//! Index entries referencing **historical** children may stick out of the
//! node's own key range: the Index Node Keyspace Split Rule (item 4) copies
//! entries whose key range strictly contains the split value into both new
//! nodes, which is what makes the TSB-tree a DAG rather than a tree. Entries
//! referencing **current** children always lie inside the node's rectangle.

use tsb_common::encode::{size, ByteReader, ByteWriter};
use tsb_common::{Key, KeyRange, TimeRange, Timestamp, TsbError, TsbResult};

use super::addr::NodeAddr;

/// Node type tag burned into the first byte of every encoded node.
pub const INDEX_NODE_TAG: u8 = 2;

/// One child reference: the child's key × time rectangle plus its address.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IndexEntry {
    /// Key range spanned by the child.
    pub key_range: KeyRange,
    /// Time range spanned by the child (`hi = +∞` ⇔ the child is current).
    pub time_range: TimeRange,
    /// Where the child lives.
    pub child: NodeAddr,
}

impl IndexEntry {
    /// Creates an entry.
    pub fn new(key_range: KeyRange, time_range: TimeRange, child: NodeAddr) -> Self {
        IndexEntry {
            key_range,
            time_range,
            child,
        }
    }

    /// Whether the entry's rectangle contains the point `(key, ts)`.
    pub fn contains(&self, key: &Key, ts: Timestamp) -> bool {
        self.key_range.contains(key) && self.time_range.contains(ts)
    }

    /// Whether the entry's rectangle overlaps `key_range × time_range`.
    pub fn overlaps(&self, key_range: &KeyRange, time_range: &TimeRange) -> bool {
        self.key_range.overlaps(key_range) && self.time_range.overlaps(time_range)
    }

    /// Whether the entry references a current (erasable) child.
    pub fn is_current(&self) -> bool {
        self.child.is_current()
    }

    /// Encoded size in bytes.
    pub fn encoded_size(&self) -> usize {
        size::key_range(&self.key_range) + size::time_range(&self.time_range) + {
            let mut w = ByteWriter::new();
            self.child.encode(&mut w);
            w.len()
        }
    }

    /// Encodes the entry.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_key_range(&self.key_range);
        w.put_time_range(&self.time_range);
        self.child.encode(w);
    }

    /// Decodes an entry.
    pub fn decode(r: &mut ByteReader<'_>) -> TsbResult<Self> {
        let key_range = r.get_key_range()?;
        let time_range = r.get_time_range()?;
        let child = NodeAddr::decode(r)?;
        Ok(IndexEntry {
            key_range,
            time_range,
            child,
        })
    }
}

/// An index node: a rectangle of the key × time plane plus the child entries
/// that tile it.
///
/// # Partition invariant (routing layout)
///
/// Entries are stored in two regions inside one vector, maintained
/// incrementally by [`IndexNode::insert`] / [`IndexNode::replace_child`]
/// rather than rebuilt per descent:
///
/// * `entries[..current_start]` — the **historical region**: entries with a
///   closed time range, sorted by `(key_range.lo, time_range.lo)`;
/// * `entries[current_start..]` — the **current region**: entries with an
///   open-ended time range, sorted by `key_range.lo`.
///
/// Current entries all extend to `+∞` in time, so any two of them overlap
/// in the time projection; pairwise rectangle disjointness therefore forces
/// their *key ranges* to be pairwise disjoint. That makes the current
/// region binary-searchable by key alone: only the entry whose
/// `key_range.lo` is the greatest lower bound `<= key` can contain the key.
/// A `ts == Timestamp::MAX` descent — every insert, current lookup, and
/// transaction commit — is thus O(log fanout) with zero allocations, where
/// it used to be an O(fanout) linear scan. Past-time descents binary-search
/// the current region first, then seek into the historical region at the
/// `(key, ts)` partition point and scan only entries that could contain
/// the probe. [`IndexNode::validate`] checks the region layout alongside
/// the geometric invariants, and `find_child` cross-checks the partitioned
/// answer against the linear reference scan under `debug_assertions`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IndexNode {
    /// Key range this node is responsible for.
    pub key_range: KeyRange,
    /// Time range this node is responsible for.
    pub time_range: TimeRange,
    /// Child entries, laid out per the partition invariant above.
    entries: Vec<IndexEntry>,
    /// Boundary between the historical and current regions.
    current_start: usize,
}

/// Summary of an index node's contents used when deciding how to split it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexComposition {
    /// Total entries.
    pub total_entries: usize,
    /// Entries referencing current children.
    pub current_entries: usize,
    /// Entries referencing historical children.
    pub historical_entries: usize,
    /// The earliest `time_range.lo` among entries referencing current
    /// children, if any — the largest usable local time-split point
    /// (see §3.5 / Figure 8).
    pub min_current_start: Option<Timestamp>,
    /// Number of distinct `key_range.lo` values strictly greater than the
    /// node's own lower key bound — candidate key-split values.
    pub key_split_candidates: usize,
}

/// Region sort order: `(key_range.lo, time_range.lo)`, fully borrowed.
fn region_cmp(a: &IndexEntry, b: &IndexEntry) -> std::cmp::Ordering {
    a.key_range
        .lo
        .cmp(&b.key_range.lo)
        .then_with(|| a.time_range.lo.cmp(&b.time_range.lo))
}

impl IndexNode {
    /// Creates an empty index node covering `key_range` × `time_range`.
    pub fn new(key_range: KeyRange, time_range: TimeRange) -> Self {
        IndexNode {
            key_range,
            time_range,
            entries: Vec::new(),
            current_start: 0,
        }
    }

    /// Creates an index node from entries (re-partitioned and re-sorted
    /// defensively into the historical-then-current region layout).
    pub fn from_entries(
        key_range: KeyRange,
        time_range: TimeRange,
        entries: Vec<IndexEntry>,
    ) -> Self {
        let (mut historical, mut current): (Vec<_>, Vec<_>) = entries
            .into_iter()
            .partition(|e| !e.time_range.is_current());
        historical.sort_by(region_cmp);
        current.sort_by(region_cmp);
        let current_start = historical.len();
        historical.extend(current);
        IndexNode {
            key_range,
            time_range,
            entries: historical,
            current_start,
        }
    }

    /// The entries: the historical region (sorted by `(key lo, time lo)`)
    /// followed by the current region (sorted by `key lo`).
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// The historical-region entries (closed time ranges), sorted by
    /// `(key_range.lo, time_range.lo)`.
    pub fn historical_region(&self) -> &[IndexEntry] {
        &self.entries[..self.current_start]
    }

    /// The current-region entries (open time ranges), sorted by
    /// `key_range.lo`; their key ranges are pairwise disjoint in any valid
    /// node.
    pub fn current_region(&self) -> &[IndexEntry] {
        &self.entries[self.current_start..]
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether this node is current (open-ended time range).
    pub fn is_current(&self) -> bool {
        self.time_range.is_current()
    }

    /// Adds an entry, keeping the region partition and per-region sort
    /// order (incremental maintenance — no rebuild, no key clones).
    pub fn insert(&mut self, entry: IndexEntry) {
        let (region_lo, region_hi) = if entry.time_range.is_current() {
            (self.current_start, self.entries.len())
        } else {
            (0, self.current_start)
        };
        let offset = self.entries[region_lo..region_hi]
            .partition_point(|e| region_cmp(e, &entry) != std::cmp::Ordering::Greater);
        if !entry.time_range.is_current() {
            self.current_start += 1;
        }
        self.entries.insert(region_lo + offset, entry);
    }

    /// Removes the entry referencing `child` (there is at most one within a
    /// single index node), returning it.
    pub fn remove_child(&mut self, child: &NodeAddr) -> Option<IndexEntry> {
        let pos = self.entries.iter().position(|e| e.child == *child)?;
        if pos < self.current_start {
            self.current_start -= 1;
        }
        Some(self.entries.remove(pos))
    }

    /// The entry referencing `child`, if present.
    pub fn find_child_entry(&self, child: &NodeAddr) -> Option<&IndexEntry> {
        self.entries.iter().find(|e| e.child == *child)
    }

    /// Replaces the entry referencing `old_child` with `replacements`
    /// (2 for a plain split, 3 for a time-then-key split). Returns an error
    /// if the old child is not present.
    pub fn replace_child(
        &mut self,
        old_child: &NodeAddr,
        replacements: Vec<IndexEntry>,
    ) -> TsbResult<()> {
        if self.remove_child(old_child).is_none() {
            return Err(TsbError::internal(format!(
                "index node has no entry for child {old_child}"
            )));
        }
        for e in replacements {
            self.insert(e);
        }
        Ok(())
    }

    /// The unique entry whose rectangle contains `(key, ts)`.
    ///
    /// Returns `None` only if the point lies outside every entry — which for
    /// a well-formed node means the point is outside the node's own
    /// rectangle (or in the empty-root corner case).
    ///
    /// Routing is O(log fanout) over the region layout (see the type-level
    /// docs): the current region is binary-searched by `key`, and — for
    /// past timestamps — the historical region is entered at the
    /// `(key, ts)` partition point. Under `debug_assertions` the result is
    /// cross-checked against [`Self::find_child_linear`].
    pub fn find_child(&self, key: &Key, ts: Timestamp) -> Option<&IndexEntry> {
        let found = self.find_child_partitioned(key, ts);
        debug_assert_eq!(
            found.map(|e| e.child),
            self.find_child_linear(key, ts).map(|e| e.child),
            "partitioned routing diverged from the linear reference scan \
             for (key {key}, ts {ts}) in node {} x {}",
            self.key_range,
            self.time_range,
        );
        found
    }

    fn find_child_partitioned(&self, key: &Key, ts: Timestamp) -> Option<&IndexEntry> {
        // Current region: key ranges are pairwise disjoint and sorted by
        // lower bound, so the only candidate is the predecessor of the
        // first entry whose lower bound exceeds the probe key.
        let current = self.current_region();
        let p = current.partition_point(|e| e.key_range.lo <= *key);
        if p > 0 {
            let e = &current[p - 1];
            if e.contains(key, ts) {
                return Some(e);
            }
        }
        // Open time ranges contain MAX, closed ones never do — so a MAX
        // probe (every insert / current lookup / commit) ends here.
        if ts == Timestamp::MAX {
            return None;
        }
        // Historical region: entries are sorted by (key lo, time lo), so
        // every entry at or past the (key, ts) partition point either
        // starts above the probe key or starts (in time) after the probe
        // instant — neither can contain the point. Seek there and scan
        // backwards; the first containing entry is unique by disjointness.
        let historical = self.historical_region();
        let p = historical.partition_point(|e| (&e.key_range.lo, e.time_range.lo) <= (key, ts));
        historical[..p].iter().rev().find(|e| e.contains(key, ts))
    }

    /// Reference implementation of [`Self::find_child`]: a linear scan over
    /// every entry. Kept for the property tests and benchmarks that check
    /// and measure the partitioned routing against it.
    pub fn find_child_linear(&self, key: &Key, ts: Timestamp) -> Option<&IndexEntry> {
        self.entries.iter().find(|e| e.contains(key, ts))
    }

    /// All entries whose key range contains `key` (any time), used by
    /// version-history queries.
    pub fn children_containing_key(&self, key: &Key) -> Vec<&IndexEntry> {
        self.entries
            .iter()
            .filter(|e| e.key_range.contains(key))
            .collect()
    }

    /// The current-region entries whose key ranges overlap `range`, as a
    /// contiguous slice located by two binary searches.
    ///
    /// The current region is sorted by `key_range.lo` with pairwise
    /// disjoint key ranges, so the overlapping entries form one run: it
    /// ends at the first entry whose lower bound is at or past the query's
    /// upper bound, and it starts either at the first entry whose lower
    /// bound is inside the query or one earlier (the unique predecessor
    /// that can span the query's lower bound). Range scans and snapshots
    /// route through this instead of filtering every entry — and at
    /// `ts == MAX` they skip the historical region entirely, so a
    /// current-time scan's per-node cost no longer grows with migrated
    /// history.
    pub fn current_children_overlapping(&self, range: &KeyRange) -> &[IndexEntry] {
        let current = self.current_region();
        let end = current.partition_point(|e| range.hi.is_above(&e.key_range.lo));
        let mut start = current[..end].partition_point(|e| e.key_range.lo <= range.lo);
        if start > 0 && current[start - 1].key_range.overlaps(range) {
            start -= 1;
        }
        &current[start.min(end)..end]
    }

    /// All entries overlapping the query rectangle, used by range scans and
    /// snapshots.
    pub fn children_overlapping(
        &self,
        key_range: &KeyRange,
        time_range: &TimeRange,
    ) -> Vec<&IndexEntry> {
        self.entries
            .iter()
            .filter(|e| e.overlaps(key_range, time_range))
            .collect()
    }

    /// Summarizes the node for split decisions.
    pub fn composition(&self) -> IndexComposition {
        let current = self.entries.iter().filter(|e| e.is_current()).count();
        let min_current_start = self
            .entries
            .iter()
            .filter(|e| e.is_current())
            .map(|e| e.time_range.lo)
            .min();
        let mut candidates: Vec<&Key> = self
            .entries
            .iter()
            .map(|e| &e.key_range.lo)
            .filter(|k| **k > self.key_range.lo)
            .collect();
        candidates.sort();
        candidates.dedup();
        IndexComposition {
            total_entries: self.entries.len(),
            current_entries: current,
            historical_entries: self.entries.len() - current,
            min_current_start,
            key_split_candidates: candidates.len(),
        }
    }

    /// Encoded size in bytes.
    pub fn encoded_size(&self) -> usize {
        1 + 4
            + size::key_range(&self.key_range)
            + size::time_range(&self.time_range)
            + self
                .entries
                .iter()
                .map(IndexEntry::encoded_size)
                .sum::<usize>()
    }

    /// Encodes the node.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(self.encoded_size());
        w.put_u8(INDEX_NODE_TAG);
        w.put_u32(self.entries.len() as u32);
        w.put_key_range(&self.key_range);
        w.put_time_range(&self.time_range);
        for e in &self.entries {
            e.encode(&mut w);
        }
        debug_assert_eq!(w.len(), self.encoded_size());
        w.into_vec()
    }

    /// Decodes a node previously produced by [`Self::encode`].
    pub fn decode(bytes: &[u8]) -> TsbResult<Self> {
        let mut r = ByteReader::new(bytes);
        let tag = r.get_u8()?;
        if tag != INDEX_NODE_TAG {
            return Err(TsbError::corruption(format!(
                "expected index node tag {INDEX_NODE_TAG}, found {tag}"
            )));
        }
        let count = r.get_u32()? as usize;
        let key_range = r.get_key_range()?;
        let time_range = r.get_time_range()?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            entries.push(IndexEntry::decode(&mut r)?);
        }
        // Re-partitioning is a stable identity on the encoded (already
        // partitioned) order, so decode(encode(n)) == n.
        Ok(IndexNode::from_entries(key_range, time_range, entries))
    }

    /// Checks the node's internal invariants:
    ///
    /// * the region partition holds: historical entries (closed time
    ///   ranges) before `current_start` sorted by `(key lo, time lo)`,
    ///   current entries (open time ranges) after it sorted by `key lo`,
    /// * entries referencing current children lie inside the node rectangle
    ///   and have open-ended time ranges,
    /// * entry rectangles are pairwise disjoint,
    /// * every point of the node's rectangle is covered by some entry
    ///   (checked at the corner points of the rectangle subdivision induced
    ///   by the entries — sufficient because all rectangles are axis-aligned
    ///   half-open boxes).
    pub fn validate(&self) -> TsbResult<()> {
        if self.current_start > self.entries.len() {
            return Err(TsbError::invariant(format!(
                "index region boundary {} past entry count {}",
                self.current_start,
                self.entries.len()
            )));
        }
        for (i, e) in self.entries.iter().enumerate() {
            let in_current_region = i >= self.current_start;
            if e.time_range.is_current() != in_current_region {
                return Err(TsbError::invariant(format!(
                    "entry for child {} ({} x {}) is in the wrong index region",
                    e.child, e.key_range, e.time_range
                )));
            }
        }
        for region in [self.historical_region(), self.current_region()] {
            for w in region.windows(2) {
                if region_cmp(&w[0], &w[1]) == std::cmp::Ordering::Greater {
                    return Err(TsbError::invariant(format!(
                        "index region out of order: {} x {} before {} x {}",
                        w[0].key_range, w[0].time_range, w[1].key_range, w[1].time_range
                    )));
                }
            }
        }
        for e in &self.entries {
            if e.key_range.is_empty() || e.time_range.is_empty() {
                return Err(TsbError::invariant(format!(
                    "index entry with empty rectangle: {} x {}",
                    e.key_range, e.time_range
                )));
            }
            if e.is_current() != e.time_range.is_current() {
                return Err(TsbError::invariant(format!(
                    "entry for child {} has mismatched device/time-range: {} x {}",
                    e.child, e.key_range, e.time_range
                )));
            }
            if e.is_current()
                && (!self.key_range.contains_range(&e.key_range)
                    || !self.time_range.contains_range(&e.time_range))
            {
                return Err(TsbError::invariant(format!(
                    "current child {} rectangle {} x {} outside node rectangle {} x {}",
                    e.child, e.key_range, e.time_range, self.key_range, self.time_range
                )));
            }
        }
        // Pairwise disjointness.
        for i in 0..self.entries.len() {
            for j in (i + 1)..self.entries.len() {
                let a = &self.entries[i];
                let b = &self.entries[j];
                if a.overlaps(&b.key_range, &b.time_range) {
                    return Err(TsbError::invariant(format!(
                        "index entries overlap: {} x {} ({}) and {} x {} ({})",
                        a.key_range, a.time_range, a.child, b.key_range, b.time_range, b.child
                    )));
                }
            }
        }
        // Coverage: every corner point of the induced grid that lies inside
        // the node rectangle must be inside some entry.
        if self.entries.is_empty() {
            return Ok(());
        }
        let mut key_points: Vec<Key> = vec![self.key_range.lo.clone()];
        let mut time_points: Vec<Timestamp> = vec![self.time_range.lo];
        for e in &self.entries {
            if self.key_range.contains(&e.key_range.lo) {
                key_points.push(e.key_range.lo.clone());
            }
            if let Some(hi) = e.key_range.hi.as_finite() {
                if self.key_range.contains(hi) {
                    key_points.push(hi.clone());
                }
            }
            if self.time_range.contains(e.time_range.lo) {
                time_points.push(e.time_range.lo);
            }
            if let Some(hi) = e.time_range.hi.as_finite() {
                if self.time_range.contains(hi) {
                    time_points.push(hi);
                }
            }
        }
        key_points.sort();
        key_points.dedup();
        time_points.sort();
        time_points.dedup();
        for k in &key_points {
            for t in &time_points {
                if self.find_child(k, *t).is_none() {
                    return Err(TsbError::invariant(format!(
                        "point (key {k}, time {t}) inside node rectangle {} x {} is not covered by any entry",
                        self.key_range, self.time_range
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsb_storage::{HistAddr, PageId};

    fn kr(lo: u64, hi: Option<u64>) -> KeyRange {
        match hi {
            Some(h) => KeyRange::bounded(Key::from_u64(lo), Key::from_u64(h)),
            None => KeyRange::new(Key::from_u64(lo), tsb_common::KeyBound::PlusInfinity),
        }
    }

    fn cur(page: u64, key: KeyRange, from: u64) -> IndexEntry {
        IndexEntry::new(
            key,
            TimeRange::from(Timestamp(from)),
            NodeAddr::Current(PageId(page)),
        )
    }

    fn hist(off: u64, key: KeyRange, lo: u64, hi: u64) -> IndexEntry {
        IndexEntry::new(
            key,
            TimeRange::bounded(Timestamp(lo), Timestamp(hi)),
            NodeAddr::Historical(HistAddr::new(off, 100)),
        )
    }

    /// Index node shaped like the paper's Figure 7 end state: a historical
    /// child spanning the whole key range before T=4, plus two current
    /// children after a key split at 100.
    fn figure_like_node() -> IndexNode {
        let full = KeyRange::new(Key::MIN, tsb_common::KeyBound::PlusInfinity);
        IndexNode::from_entries(
            full.clone(),
            TimeRange::full(),
            vec![
                hist(0, full, 0, 4),
                cur(1, kr(0, Some(100)).into_full_lo(), 4),
                cur(2, kr(100, None), 4),
            ],
        )
    }

    trait IntoFullLo {
        fn into_full_lo(self) -> KeyRange;
    }
    impl IntoFullLo for KeyRange {
        // Helper: replace the lower bound with -inf (for the leftmost child).
        fn into_full_lo(self) -> KeyRange {
            KeyRange::new(Key::MIN, self.hi)
        }
    }

    #[test]
    fn find_child_routes_by_key_and_time() {
        let n = figure_like_node();
        n.validate().unwrap();
        // Old times route to the historical child regardless of key.
        assert!(n
            .find_child(&Key::from_u64(500), Timestamp(2))
            .unwrap()
            .child
            .is_historical());
        // Recent times route by key.
        assert_eq!(
            n.find_child(&Key::from_u64(50), Timestamp(9))
                .unwrap()
                .child,
            NodeAddr::Current(PageId(1))
        );
        assert_eq!(
            n.find_child(&Key::from_u64(150), Timestamp(9))
                .unwrap()
                .child,
            NodeAddr::Current(PageId(2))
        );
    }

    #[test]
    fn children_queries() {
        let n = figure_like_node();
        let for_key = n.children_containing_key(&Key::from_u64(150));
        assert_eq!(for_key.len(), 2); // historical + right current child
        let overlap = n.children_overlapping(
            &KeyRange::bounded(Key::from_u64(0), Key::from_u64(10)),
            &TimeRange::from(Timestamp(0)),
        );
        assert_eq!(overlap.len(), 2); // historical + left current child
        let slice = n.children_overlapping(
            &KeyRange::full(),
            &TimeRange::bounded(Timestamp(0), Timestamp(1)),
        );
        assert_eq!(slice.len(), 1);
    }

    #[test]
    fn replace_child_swaps_entries() {
        let mut n = figure_like_node();
        let old = NodeAddr::Current(PageId(2));
        n.replace_child(
            &old,
            vec![hist(64, kr(100, None), 4, 9), cur(2, kr(100, None), 9)],
        )
        .unwrap();
        assert_eq!(n.len(), 4);
        n.validate().unwrap();
        assert!(n
            .replace_child(&NodeAddr::Current(PageId(99)), vec![])
            .is_err());
    }

    #[test]
    fn composition_counts() {
        let n = figure_like_node();
        let c = n.composition();
        assert_eq!(c.total_entries, 3);
        assert_eq!(c.current_entries, 2);
        assert_eq!(c.historical_entries, 1);
        assert_eq!(c.min_current_start, Some(Timestamp(4)));
        assert_eq!(c.key_split_candidates, 1); // key 100
    }

    #[test]
    fn validate_rejects_overlap_and_gaps() {
        let full = KeyRange::full();
        // Overlapping current children.
        let n = IndexNode::from_entries(
            full.clone(),
            TimeRange::full(),
            vec![
                cur(1, kr(0, Some(100)).into_full_lo(), 0),
                cur(2, kr(50, None), 0),
            ],
        );
        assert!(n.validate().is_err());

        // Gap: nothing covers keys >= 100.
        let n = IndexNode::from_entries(
            full.clone(),
            TimeRange::full(),
            vec![cur(1, kr(0, Some(100)).into_full_lo(), 0)],
        );
        assert!(n.validate().is_err());

        // Current child marked with a finite time range is inconsistent.
        let n = IndexNode::from_entries(
            full,
            TimeRange::full(),
            vec![IndexEntry::new(
                KeyRange::full(),
                TimeRange::bounded(Timestamp(0), Timestamp(5)),
                NodeAddr::Current(PageId(1)),
            )],
        );
        assert!(n.validate().is_err());
    }

    #[test]
    fn historical_entries_may_stick_out_of_the_node_key_range() {
        // After an index keyspace split at 100, the left node owns keys
        // [-inf, 100) but may carry a historical entry spanning [50, 150).
        let left = IndexNode::from_entries(
            KeyRange::new(Key::MIN, tsb_common::KeyBound::Finite(Key::from_u64(100))),
            TimeRange::full(),
            vec![
                hist(0, kr(50, Some(150)), 0, 4),
                hist(
                    64,
                    KeyRange::new(Key::MIN, tsb_common::KeyBound::Finite(Key::from_u64(50))),
                    0,
                    4,
                ),
                cur(
                    1,
                    KeyRange::new(Key::MIN, tsb_common::KeyBound::Finite(Key::from_u64(100))),
                    4,
                ),
            ],
        );
        left.validate().unwrap();
    }

    #[test]
    fn encode_decode_round_trip() {
        let n = figure_like_node();
        let bytes = n.encode();
        assert_eq!(bytes.len(), n.encoded_size());
        let decoded = IndexNode::decode(&bytes).unwrap();
        assert_eq!(decoded, n);
        let mut bad = bytes.clone();
        bad[0] = 77;
        assert!(IndexNode::decode(&bad).is_err());
        assert!(IndexNode::decode(&bytes[..10]).is_err());
    }

    #[test]
    fn empty_index_node_is_valid_and_has_no_child() {
        let n = IndexNode::new(KeyRange::full(), TimeRange::full());
        n.validate().unwrap();
        assert!(n.find_child(&Key::from_u64(1), Timestamp(1)).is_none());
        assert!(n.is_empty());
    }
}
