//! TSB-tree nodes: addresses, data (leaf) nodes, and index nodes.
//!
//! Every node spans a rectangle of the key × time plane. A node whose time
//! range is open-ended (`hi = +∞`) is *current* and lives on the erasable
//! magnetic store; a node with a closed time range is *historical*,
//! immutable, and lives on the WORM store.

pub mod addr;
pub mod data;
pub mod index;

pub use addr::NodeAddr;
pub use data::{DataComposition, DataNode, DATA_NODE_TAG};
pub use index::{IndexComposition, IndexEntry, IndexNode, INDEX_NODE_TAG};

use tsb_common::{TsbError, TsbResult};

/// A decoded node of either kind.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Node {
    /// A leaf node holding record versions.
    Data(DataNode),
    /// An internal node holding child rectangles.
    Index(IndexNode),
}

impl Node {
    /// Decodes a node, dispatching on the type tag in the first byte.
    pub fn decode(bytes: &[u8]) -> TsbResult<Self> {
        match bytes.first() {
            Some(&DATA_NODE_TAG) => Ok(Node::Data(DataNode::decode(bytes)?)),
            Some(&INDEX_NODE_TAG) => Ok(Node::Index(IndexNode::decode(bytes)?)),
            Some(&t) => Err(TsbError::corruption(format!("unknown node tag {t}"))),
            None => Err(TsbError::corruption("empty node image")),
        }
    }

    /// Encodes the node.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Node::Data(n) => n.encode(),
            Node::Index(n) => n.encode(),
        }
    }

    /// Encoded size in bytes.
    pub fn encoded_size(&self) -> usize {
        match self {
            Node::Data(n) => n.encoded_size(),
            Node::Index(n) => n.encoded_size(),
        }
    }

    /// The data node, if this is a leaf.
    pub fn as_data(&self) -> Option<&DataNode> {
        match self {
            Node::Data(n) => Some(n),
            Node::Index(_) => None,
        }
    }

    /// The index node, if this is an internal node.
    pub fn as_index(&self) -> Option<&IndexNode> {
        match self {
            Node::Data(_) => None,
            Node::Index(n) => Some(n),
        }
    }

    /// Runs the node-local invariant checks.
    pub fn validate(&self) -> TsbResult<()> {
        match self {
            Node::Data(n) => n.validate(),
            Node::Index(n) => n.validate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsb_common::{KeyRange, TimeRange, Timestamp, Version};

    #[test]
    fn dispatching_decode() {
        let mut data = DataNode::initial_root();
        data.insert(Version::committed(1u64, Timestamp(1), b"x".to_vec()))
            .unwrap();
        let index = IndexNode::new(KeyRange::full(), TimeRange::full());

        let d = Node::Data(data.clone());
        let i = Node::Index(index.clone());
        assert_eq!(Node::decode(&d.encode()).unwrap(), d);
        assert_eq!(Node::decode(&i.encode()).unwrap(), i);
        assert_eq!(d.encoded_size(), data.encoded_size());
        assert_eq!(i.encoded_size(), index.encoded_size());
        assert!(d.as_data().is_some() && d.as_index().is_none());
        assert!(i.as_index().is_some() && i.as_data().is_none());
        d.validate().unwrap();
        i.validate().unwrap();

        assert!(Node::decode(&[]).is_err());
        assert!(Node::decode(&[9, 9, 9]).is_err());
    }
}
