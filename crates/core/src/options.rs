//! [`TsbOptions`] — the one front door for opening an engine.
//!
//! The crate accumulated a constructor per (engine flavour × backing ×
//! knob) combination: `new_in_memory(cfg)`, `open_durable(dir, cfg)`,
//! `open_durable(dir, shards, cfg)`, each threading the same
//! [`TsbConfig`] flags by hand. This builder replaces that proliferation
//! with a single chain that names each decision once:
//!
//! ```no_run
//! use tsb_common::{FsyncPolicy, WalMode};
//! use tsb_core::TsbOptions;
//!
//! // A durable, 4-way sharded engine with per-commit fsync.
//! let db = TsbOptions::durable("/var/lib/tsb")
//!     .fsync(FsyncPolicy::Always)
//!     .wal_mode(WalMode::Hybrid)
//!     .shards(4)
//!     .open()?;
//! # let _ = db; Ok::<(), tsb_core::TsbError>(())
//! ```
//!
//! Terminal methods pick the engine flavour:
//!
//! * [`TsbOptions::open`] — a [`ShardedTsb`] (the most general primary;
//!   one shard is the common case and costs nothing extra).
//! * [`TsbOptions::open_concurrent`] — a [`ConcurrentTsb`] when a
//!   concrete single-log engine is wanted (e.g. to serve replication).
//! * [`TsbOptions::open_tree`] — a bare single-threaded [`TsbTree`].
//! * [`TsbOptions::open_replica`] — a [`ReplicaEngine`] awaiting (or
//!   recovering) a shipped log at the directory.
//!
//! The per-flavour constructors (`ConcurrentTsb::open_durable` and
//! friends) remain as deprecated thin wrappers for one release.

use std::path::PathBuf;

use tsb_common::{FsyncPolicy, TsbConfig, TsbError, TsbResult, WalMode};

use crate::concurrent::ConcurrentTsb;
use crate::replica::ReplicaEngine;
use crate::sharded::ShardedTsb;
use crate::tree::TsbTree;

/// Builder for every way of opening an engine; see the module docs.
#[derive(Clone, Debug)]
pub struct TsbOptions {
    dir: Option<PathBuf>,
    cfg: TsbConfig,
    shards: usize,
}

impl TsbOptions {
    /// Starts options for an in-memory (non-durable) engine.
    pub fn in_memory() -> TsbOptions {
        TsbOptions {
            dir: None,
            cfg: TsbConfig::default(),
            shards: 1,
        }
    }

    /// Starts options for a durable engine rooted at `dir` (created on
    /// first open, recovered on reopen).
    pub fn durable(dir: impl Into<PathBuf>) -> TsbOptions {
        TsbOptions {
            dir: Some(dir.into()),
            cfg: TsbConfig::default(),
            shards: 1,
        }
    }

    /// Replaces the whole configuration (for knobs without a dedicated
    /// builder method, e.g. split policies).
    pub fn config(mut self, cfg: TsbConfig) -> TsbOptions {
        self.cfg = cfg;
        self
    }

    /// Sets the commit fsync policy (durable engines only; ignored
    /// in memory).
    pub fn fsync(mut self, policy: FsyncPolicy) -> TsbOptions {
        self.cfg = self.cfg.with_fsync_policy(policy);
        self
    }

    /// Sets the redo-log mode (full images vs. first-touch images +
    /// deltas).
    pub fn wal_mode(mut self, mode: WalMode) -> TsbOptions {
        self.cfg = self.cfg.with_wal_mode(mode);
        self
    }

    /// Swaps in the small-page test configuration (tiny nodes so splits
    /// happen early), preserving any fsync/WAL-mode choices already made.
    pub fn small_pages(mut self) -> TsbOptions {
        self.cfg = TsbConfig::small_pages()
            .with_fsync_policy(self.cfg.fsync_policy)
            .with_wal_mode(self.cfg.wal_mode);
        self
    }

    /// Sets the shard count for [`Self::open`] (default 1). The
    /// single-engine terminals refuse counts above 1.
    pub fn shards(mut self, shards: usize) -> TsbOptions {
        self.shards = shards;
        self
    }

    fn require_single(&self, what: &str) -> TsbResult<()> {
        if self.shards != 1 {
            return Err(TsbError::config(format!(
                "{what} is a single-shard engine but {} shards were requested \
                 (use .open() for a sharded engine)",
                self.shards
            )));
        }
        Ok(())
    }

    /// Opens a [`ShardedTsb`] primary with these options (one shard
    /// unless [`Self::shards`] said otherwise).
    pub fn open(self) -> TsbResult<ShardedTsb> {
        #[allow(deprecated)] // the wrappers live on; this is their one caller
        match &self.dir {
            Some(dir) => ShardedTsb::open_durable(dir, self.shards, self.cfg),
            None => ShardedTsb::new_in_memory(self.shards, self.cfg),
        }
    }

    /// Opens a [`ConcurrentTsb`] primary (single log; required for
    /// serving replication).
    pub fn open_concurrent(self) -> TsbResult<ConcurrentTsb> {
        self.require_single("ConcurrentTsb")?;
        #[allow(deprecated)]
        match &self.dir {
            Some(dir) => ConcurrentTsb::open_durable(dir, self.cfg),
            None => ConcurrentTsb::new_in_memory(self.cfg),
        }
    }

    /// Opens a bare single-threaded [`TsbTree`].
    pub fn open_tree(self) -> TsbResult<TsbTree> {
        self.require_single("TsbTree")?;
        #[allow(deprecated)]
        match &self.dir {
            Some(dir) => TsbTree::open_durable(dir, self.cfg),
            None => TsbTree::new_in_memory(self.cfg),
        }
    }

    /// Opens a [`ReplicaEngine`] at the directory: recovers a local log
    /// copy if one is usable, else starts empty awaiting a base image
    /// from a primary. Durable only (a replica *is* its local log copy).
    pub fn open_replica(self) -> TsbResult<ReplicaEngine> {
        self.require_single("ReplicaEngine")?;
        let Some(dir) = self.dir else {
            return Err(TsbError::config(
                "a replica needs a directory: use TsbOptions::durable(dir)",
            ));
        };
        ReplicaEngine::open(dir, self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsb_common::Key;

    #[test]
    fn builder_opens_each_flavour() {
        let tree = TsbOptions::in_memory().small_pages().open_tree().unwrap();
        assert_eq!(tree.config().page_size, TsbConfig::small_pages().page_size);

        let db = TsbOptions::in_memory().open_concurrent().unwrap();
        db.insert(Key::from_u64(1), b"x".to_vec()).unwrap();

        let sharded = TsbOptions::in_memory().shards(4).open().unwrap();
        assert_eq!(sharded.shard_count(), 4);

        assert!(TsbOptions::in_memory().shards(2).open_concurrent().is_err());
        assert!(TsbOptions::in_memory().open_replica().is_err());
    }

    #[test]
    fn small_pages_preserves_durability_knobs() {
        let opts = TsbOptions::in_memory()
            .fsync(FsyncPolicy::Os)
            .wal_mode(WalMode::ImagesOnly)
            .small_pages();
        assert_eq!(opts.cfg.fsync_policy, FsyncPolicy::Os);
        assert_eq!(opts.cfg.wal_mode, WalMode::ImagesOnly);
        assert_eq!(opts.cfg.page_size, TsbConfig::small_pages().page_size);
    }
}
