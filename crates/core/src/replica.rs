//! WAL shipping: a primary streams its redo log to read-only replicas.
//!
//! The Time-Split B-tree's redo log is *physical* — page images on first
//! touch per checkpoint interval, logical page deltas after, and commit /
//! checkpoint fences carrying the tree metadata. That makes it a complete
//! replication stream for free: a replica that keeps a byte-faithful local
//! copy of the primary's log and repeats history through the newest
//! shipped fence holds exactly the primary's durable state at that fence.
//! This module is the two ends of that stream:
//!
//! * [`ReplicationSource`] — the primary side. Wraps a durable
//!   [`ConcurrentTsb`]; [`ReplicationSource::poll`] tails the log file
//!   (via [`tsb_storage::WalTailer`]) up to the **durable** watermark —
//!   a replica must never apply a record the primary could still lose —
//!   and ships each batch together with the WORM bytes the batch's fences
//!   reference. [`ReplicationSource::base`] captures a consistent full
//!   image (checkpoint fence + every magnetic page + the WORM prefix) for
//!   bootstrapping a new replica or re-basing one that a checkpoint's log
//!   reset left behind.
//! * [`ReplicaEngine`] — the replica side. Appends shipped record bodies
//!   to a local log (primary LSNs preserved, so restart is ordinary redo
//!   recovery), stages page state in an in-memory overlay, and **installs
//!   only at commit fences**, after the local log is fsynced through the
//!   fence. Reads are served from an inner [`ConcurrentTsb`] whose install
//!   fence is pinned at the newest applied commit — so snapshots and as-of
//!   reads on the replica obey exactly the primary's fence-pinned read
//!   rule, at the replica's applied prefix.
//!
//! ## The apply protocol (and why each step is ordered)
//!
//! For each shipped batch:
//!
//! 1. **WORM first.** The batch's historical bytes are appended and
//!    synced before any log record that references them — the same
//!    history-before-fence rule the primary's WAL pre-sync hook enforces.
//! 2. **Records append to the local log and stage in an overlay.** Page
//!    images replace the staged entry; deltas apply to it (falling back to
//!    the fenced overlay, then the device image, for pages whose
//!    first-touch image predates this replica's log — the device equals
//!    the state at the last installed fence, so it is a valid delta base).
//! 3. **A commit fence folds the staging area into the fenced overlay.**
//!    Only fenced state may ever reach the device: records after the last
//!    fence may yet be discarded by the primary (a failed mutation's
//!    phantom deltas superseded by a checkpoint reset).
//! 4. **At batch end: fsync the local log, then install.** Installing a
//!    fence before the local log is durable through it could leave a
//!    restart's device holding page content its log never mentions.
//!    Install happens under the engine's writer lock with the structure
//!    epoch marked in flight, so concurrent readers retry instead of
//!    seeing a torn multi-page state; the read fence advances to the
//!    fence's commit timestamp last.
//! 5. **A primary checkpoint record is applied inline**: staging is
//!    discarded (phantom rule above), pending fences install, the devices
//!    are flushed and synced to exactly the checkpointed state, and only
//!    then is the checkpoint appended (and synced) locally — making it a
//!    sound base for the replica's own restart recovery, which replays
//!    from the newest local checkpoint assuming the device equals it.
//!
//! The replica never writes records of its own: no purge fences, no local
//! checkpoints (either would collide with the primary's LSN namespace).
//! Its local log only grows; when the primary's checkpoint reset discards
//! records the replica never fetched, [`ShippedBatch::needs_rebase`] tells
//! it to wipe and re-bootstrap from a fresh base image.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use tsb_common::{Key, KeyRange, TimeRange, Timestamp, TsbConfig, TsbError, TsbResult, Version};
use tsb_storage::{
    FaultInjector, IoSnapshot, Lsn, MagneticStore, PageId, TailPoll, Wal, WalRecord, WalTailer,
    WormStore,
};

use crate::concurrent::{ConcurrentSnapshot, ConcurrentTsb};
use crate::node::NodeAddr;
use crate::tree::{ReplayPage, TsbTree, MAGNETIC_FILE, WAL_FILE, WORM_FILE};

/// Marker file present while a base image install is in progress. A
/// restart that finds it wipes the half-installed state and waits for a
/// fresh base.
const INSTALLING_MARKER: &str = "replica.installing";

/// A consistent full image of a primary, for bootstrapping (or re-basing)
/// a replica: the checkpoint fence's exact logged body plus everything it
/// describes. Captured under the primary's writer lock by
/// [`ReplicationSource::base`]; installed by
/// [`ReplicaEngine::install_base`].
pub struct ReplicaBase {
    /// LSN of the checkpoint fence — the replica's first local record and
    /// its resume cursor.
    pub checkpoint_lsn: Lsn,
    /// The checkpoint record's encoded body, byte-identical to the
    /// primary's log (the replica seeds its local log with it, preserving
    /// the primary's LSN chain).
    pub checkpoint: Vec<u8>,
    /// Every allocated magnetic page and its device image, ascending id.
    pub pages: Vec<(PageId, Vec<u8>)>,
    /// The whole WORM device (padded to sectors, as on the primary).
    pub worm: Vec<u8>,
    /// The primary's page size; the replica refuses a mismatched config.
    pub page_size: usize,
    /// The primary's WORM sector size; likewise checked.
    pub worm_sector_size: usize,
}

/// One poll's worth of shipped log: record bodies in LSN order, the WORM
/// bytes the batch's fences reference, and the primary's durable
/// watermark (for lag accounting).
pub struct ShippedBatch {
    /// The subscriber's cursor predates the primary's oldest retained
    /// record (a checkpoint reset discarded the gap): the replica must
    /// wipe and re-bootstrap from a fresh [`ReplicaBase`]. When set, the
    /// other fields carry no records.
    pub needs_rebase: bool,
    /// The primary's durable-LSN watermark at poll time (the shipping
    /// limit: nothing past it is ever shipped).
    pub durable_lsn: Lsn,
    /// Device offset at which [`Self::worm`] starts (the subscriber's
    /// WORM length as reported in the poll).
    pub worm_start: u64,
    /// WORM bytes `[worm_start, worm_start + worm.len())` — whole sectors,
    /// covering every fence in the batch.
    pub worm: Vec<u8>,
    /// Encoded record bodies (`lsn | kind | payload`), contiguous LSNs.
    pub records: Vec<Vec<u8>>,
}

/// A point-in-time view of a replica's replication progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// Whether the replica holds an installed base and serves reads.
    pub serving: bool,
    /// LSN of the newest installed fence (0 before the first install).
    pub applied_lsn: Lsn,
    /// LSN of the newest record in the replica's local log copy — received
    /// and durable locally, but possibly past the newest installed fence.
    /// This is the freshness signal promotion tooling compares across
    /// replicas: promotion recovers to the newest *fence* at or below it.
    pub received_lsn: Lsn,
    /// The primary's durable watermark as of the newest poll (0 before
    /// the first).
    pub source_durable_lsn: Lsn,
    /// `source_durable_lsn − applied_lsn`: the full applied-vs-durable LSN
    /// delta (LSNs are densely assigned, so this is also a record count).
    pub lag_records: u64,
    /// `source_durable_lsn − received_lsn`: records durable on the primary
    /// that have not reached this replica's local log yet (ship lag). The
    /// remainder of `lag_records` is received-but-unapplied.
    pub ship_lag_records: u64,
    /// Milliseconds since the replica last made progress (applied a fence
    /// or confirmed it was caught up); 0 when not lagging.
    pub lag_ms: u64,
}

// ---------------------------------------------------------------------------
// Primary side
// ---------------------------------------------------------------------------

/// The primary end of the replication stream: tails a durable
/// [`ConcurrentTsb`]'s log and captures base images. Cheap to construct;
/// safe to use concurrently with the primary's writers (polls never take
/// the writer lock — only [`Self::base`] does, briefly).
pub struct ReplicationSource {
    db: ConcurrentTsb,
    tailer: Mutex<WalTailer>,
}

impl ReplicationSource {
    /// Wraps a durable engine. Fails on an in-memory (non-WAL) engine —
    /// there is no log to ship.
    pub fn new(db: &ConcurrentTsb) -> TsbResult<ReplicationSource> {
        let wal = db.tree().wal_handle().ok_or_else(|| {
            TsbError::config("replication requires a durable (WAL-attached) primary")
        })?;
        Ok(ReplicationSource {
            db: db.clone(),
            tailer: Mutex::new(WalTailer::new(wal.path())),
        })
    }

    /// The primary's durable-LSN watermark (the shipping limit).
    pub fn durable_lsn(&self) -> Lsn {
        self.db
            .tree()
            .wal_handle()
            .map(|w| w.durable_lsn())
            .unwrap_or(0)
    }

    /// Returns the records after `after_lsn` (up to the durable
    /// watermark, capped near `max_bytes`) plus the WORM bytes the
    /// batch's fences reference beyond the subscriber's `worm_have`
    /// length. An empty batch means the subscriber is caught up.
    pub fn poll(
        &self,
        after_lsn: Lsn,
        worm_have: u64,
        max_bytes: usize,
    ) -> TsbResult<ShippedBatch> {
        let tree = self.db.tree();
        let durable = self.durable_lsn();
        let poll = self.tailer.lock().poll(after_lsn, durable, max_bytes)?;
        match poll {
            TailPoll::NeedsRebase => Ok(ShippedBatch {
                needs_rebase: true,
                durable_lsn: durable,
                worm_start: worm_have,
                worm: Vec::new(),
                records: Vec::new(),
            }),
            TailPoll::Batch(records) => {
                // Ship history through the newest fence in the batch: a
                // fence's `worm_len` is the device length its commit
                // depends on, and fences only become durable after the
                // pre-sync hook made that prefix stable — so the read
                // below cannot race an unsynced append.
                let mut target = worm_have;
                for body in &records {
                    let (_, record) = WalRecord::decode_body(body)?;
                    let fence_worm = match record {
                        WalRecord::Commit { worm_len, .. }
                        | WalRecord::Checkpoint { worm_len, .. }
                        | WalRecord::Prepare { worm_len, .. } => worm_len,
                        _ => 0,
                    };
                    target = target.max(fence_worm);
                }
                let worm = if target > worm_have {
                    tree.worm
                        .read_raw(worm_have, (target - worm_have) as usize)?
                } else {
                    Vec::new()
                };
                Ok(ShippedBatch {
                    needs_rebase: false,
                    durable_lsn: durable,
                    worm_start: worm_have,
                    worm,
                    records,
                })
            }
        }
    }

    /// Captures a consistent base image under the primary's writer lock:
    /// checkpoints (so the log is exactly `[Checkpoint]` and the devices
    /// equal the checkpointed state) and snapshots pages + WORM + the
    /// checkpoint body. Expensive and briefly write-blocking; used only to
    /// bootstrap or re-base a replica.
    pub fn base(&self) -> TsbResult<ReplicaBase> {
        let _writer = self.db.lock_writer();
        self.db.tree().capture_replication_base()
    }
}

// ---------------------------------------------------------------------------
// Replica side
// ---------------------------------------------------------------------------

/// A pending fence: the newest shipped commit (or checkpoint) whose state
/// is staged but not yet installed.
struct FenceInstall {
    lsn: Lsn,
    root: NodeAddr,
    clock_next: Timestamp,
    next_txn: u64,
}

/// The apply-side state, serialized by the apply mutex (one applier —
/// the subscription runner — at a time; readers never touch it).
struct ApplyState {
    db: ConcurrentTsb,
    /// Page states from records after the newest seen fence. May yet be
    /// discarded (phantoms); never reaches the device.
    staged: HashMap<PageId, ReplayPage>,
    /// Page states as of the newest seen fence, awaiting install.
    fenced: HashMap<PageId, ReplayPage>,
    /// `(root, next txn id)` of the newest seen fence — what a shipped
    /// commit with elided metadata inherits.
    chain: (NodeAddr, u64),
    /// The newest seen, not-yet-installed commit fence (only the newest
    /// matters: installs fold).
    pending: Option<FenceInstall>,
    /// LSN of the newest record in the local log: the resume cursor.
    last_lsn: Lsn,
    /// LSN of the newest installed fence.
    applied_lsn: Lsn,
}

struct ReplicaInner {
    dir: PathBuf,
    cfg: TsbConfig,
    /// The serving engine; `None` until a base is installed. Readers
    /// clone the handle out under a short read lock — they never contend
    /// with the applier's mutex.
    serving: RwLock<Option<ConcurrentTsb>>,
    apply: Mutex<Option<ApplyState>>,
    applied_lsn: AtomicU64,
    source_durable: AtomicU64,
    /// When the replica last made progress (install or caught-up poll).
    last_progress: Mutex<Instant>,
    /// Re-wired into the stores after every reopen / base install.
    injector: Mutex<Option<Arc<FaultInjector>>>,
}

/// A read-only replica engine fed by WAL shipping. Cloning is cheap
/// (shared state); all clones are the same replica.
///
/// Reads mirror [`ConcurrentTsb`]'s read surface and are fence-pinned at
/// the newest **applied** fence: [`Self::begin_snapshot`] /
/// [`Self::last_installed`] never expose state past the applied durable
/// prefix. Writes are refused with [`TsbError::ReadOnly`] (see
/// [`crate::EngineHandle`]).
#[derive(Clone)]
pub struct ReplicaEngine {
    inner: Arc<ReplicaInner>,
}

impl ReplicaEngine {
    /// Opens the replica state at `dir`: recovers from the local log copy
    /// if one is usable (crash-consistent, exactly like primary recovery
    /// but fence-faithful — see `TsbTree::open_durable_replica`), or
    /// starts empty awaiting a base image. A half-installed base (marker
    /// file present) is wiped.
    pub fn open(dir: impl AsRef<Path>, cfg: TsbConfig) -> TsbResult<ReplicaEngine> {
        cfg.validate()?;
        let engine = ReplicaEngine {
            inner: Arc::new(ReplicaInner {
                dir: dir.as_ref().to_path_buf(),
                cfg,
                serving: RwLock::new(None),
                apply: Mutex::new(None),
                applied_lsn: AtomicU64::new(0),
                source_durable: AtomicU64::new(0),
                last_progress: Mutex::new(Instant::now()),
                injector: Mutex::new(None),
            }),
        };
        engine.reopen()?;
        Ok(engine)
    }

    /// The replica's directory.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// The replica's configuration.
    pub fn config(&self) -> &TsbConfig {
        &self.inner.cfg
    }

    /// Whether a base is installed and reads are being served.
    pub fn is_serving(&self) -> bool {
        self.inner.serving.read().is_some()
    }

    /// Whether the replica needs a [`ReplicaBase`] before it can apply
    /// records (fresh directory, wiped half-install, or after a rebase
    /// signal).
    pub fn needs_base(&self) -> bool {
        !self.is_serving()
    }

    /// The resume cursor: LSN of the newest record in the local log, to
    /// pass as `after_lsn` to [`ReplicationSource::poll`] (directly or
    /// over the wire). `None` when a base is needed first.
    pub fn resume_lsn(&self) -> Option<Lsn> {
        self.inner.apply.lock().as_ref().map(|st| st.last_lsn)
    }

    /// The local WORM device length, to report as `worm_have` when
    /// polling. 0 when not serving.
    pub fn worm_have(&self) -> u64 {
        self.inner
            .apply
            .lock()
            .as_ref()
            .map(|st| st.db.tree().worm.device_bytes())
            .unwrap_or(0)
    }

    /// Replication progress, for the `replica_status` verb and lag
    /// accounting.
    pub fn status(&self) -> ReplicaStatus {
        let serving = self.is_serving();
        let applied_lsn = self.inner.applied_lsn.load(Ordering::Acquire);
        let received_lsn = self
            .inner
            .apply
            .lock()
            .as_ref()
            .map(|st| st.last_lsn)
            .unwrap_or(applied_lsn);
        let source_durable_lsn = self.inner.source_durable.load(Ordering::Acquire);
        let lag_records = source_durable_lsn.saturating_sub(applied_lsn);
        let ship_lag_records = source_durable_lsn.saturating_sub(received_lsn);
        let lag_ms = if lag_records == 0 && serving {
            0
        } else {
            self.inner.last_progress.lock().elapsed().as_millis() as u64
        };
        ReplicaStatus {
            serving,
            applied_lsn,
            received_lsn,
            source_durable_lsn,
            lag_records,
            ship_lag_records,
            lag_ms,
        }
    }

    /// Releases the replica's hold on its directory for promotion: drops
    /// the serving engine and the apply overlay (discarding staged
    /// post-fence state — exactly what primary recovery would discard
    /// anyway). After this the directory can be reopened as a primary with
    /// [`crate::TsbOptions::open_concurrent`], whose recovery cuts at the
    /// newest durable commit fence. The replica stops serving; this handle
    /// is only good for [`Self::reopen`] afterwards.
    pub fn close(&self) {
        let mut apply = self.inner.apply.lock();
        *self.inner.serving.write() = None;
        *apply = None;
        self.inner.applied_lsn.store(0, Ordering::Release);
    }

    /// Wires `injector` into every device the replica writes, for crash
    /// tests. Survives [`Self::reopen`] and [`Self::install_base`] (the
    /// stores are rebuilt; the injector is re-attached).
    pub fn set_fault_injector(&self, injector: &Arc<FaultInjector>) {
        *self.inner.injector.lock() = Some(Arc::clone(injector));
        if let Some(db) = self.inner.serving.read().as_ref() {
            db.tree().set_fault_injector(injector);
        }
    }

    /// Drops the in-memory state and re-recovers from the local disk
    /// state — the in-process equivalent of killing and restarting the
    /// replica. Returns whether the replica is serving afterwards.
    pub fn reopen(&self) -> TsbResult<bool> {
        let mut apply = self.inner.apply.lock();
        *self.inner.serving.write() = None;
        *apply = None;
        self.inner.applied_lsn.store(0, Ordering::Release);

        let marker = self.inner.dir.join(INSTALLING_MARKER);
        if marker.exists() {
            // A base install died part-way: none of the files are
            // trustworthy. Wipe and wait for a fresh base.
            for f in [MAGNETIC_FILE, WORM_FILE, WAL_FILE] {
                let path = self.inner.dir.join(f);
                if path.exists() {
                    std::fs::remove_file(&path)?;
                }
            }
            std::fs::remove_file(&marker)?;
            return Ok(false);
        }
        let Some(rec) = TsbTree::open_durable_replica(&self.inner.dir, self.inner.cfg.clone())?
        else {
            return Ok(false);
        };
        if let Some(injector) = self.inner.injector.lock().as_ref() {
            rec.tree.set_fault_injector(injector);
        }
        let db = ConcurrentTsb::from_tree(rec.tree);
        let (root, _, next_txn) = rec.cut_state;
        let mut st = ApplyState {
            db: db.clone(),
            staged: HashMap::new(),
            fenced: HashMap::new(),
            chain: (root, next_txn),
            pending: None,
            last_lsn: rec.last_lsn,
            applied_lsn: rec.applied_lsn,
        };
        // Re-seed the staging area with the un-fenced tail: shipped
        // records whose fence has not arrived yet. Their fence (or a
        // checkpoint discarding them) comes through the stream.
        for record in rec.tail {
            match record {
                WalRecord::PageImage { page, bytes } => {
                    st.staged.insert(page, ReplayPage::Raw(bytes));
                }
                WalRecord::PageDelta { page, op } => {
                    if let std::collections::hash_map::Entry::Vacant(e) = st.staged.entry(page) {
                        // Fenced overlay is empty right after recovery;
                        // the device equals the cut fence state — a valid
                        // delta base.
                        e.insert(ReplayPage::Raw(st.db.tree().replica_read_page(page)?));
                    }
                    st.staged
                        .get_mut(&page)
                        .expect("entry just ensured")
                        .apply(&op)?;
                }
                _ => {
                    return Err(TsbError::corruption(
                        "replica log tail holds a fence record past the recovery cut",
                    ))
                }
            }
        }
        self.inner
            .applied_lsn
            .store(st.applied_lsn, Ordering::Release);
        *self.inner.last_progress.lock() = Instant::now();
        *apply = Some(st);
        *self.inner.serving.write() = Some(db);
        Ok(true)
    }

    /// Installs a base image: wipes any existing local state (under a
    /// crash marker, so a death mid-install is detected and re-wiped) and
    /// lays down the shipped pages, WORM prefix, and checkpoint fence,
    /// then recovers from the result exactly as a restart would.
    pub fn install_base(&self, base: &ReplicaBase) -> TsbResult<()> {
        if base.page_size != self.inner.cfg.page_size {
            return Err(TsbError::config(format!(
                "primary page size {} does not match replica config page size {}",
                base.page_size, self.inner.cfg.page_size
            )));
        }
        if base.worm_sector_size != self.inner.cfg.worm_sector_size {
            return Err(TsbError::config(format!(
                "primary WORM sector size {} does not match replica config sector size {}",
                base.worm_sector_size, self.inner.cfg.worm_sector_size
            )));
        }
        {
            let mut apply = self.inner.apply.lock();
            *self.inner.serving.write() = None;
            *apply = None;
            self.inner.applied_lsn.store(0, Ordering::Release);

            std::fs::create_dir_all(&self.inner.dir)?;
            let marker = self.inner.dir.join(INSTALLING_MARKER);
            {
                let f = std::fs::File::create(&marker)?;
                f.sync_all()?;
            }
            for f in [MAGNETIC_FILE, WORM_FILE, WAL_FILE] {
                let path = self.inner.dir.join(f);
                if path.exists() {
                    std::fs::remove_file(&path)?;
                }
            }
            let stats = Arc::new(tsb_storage::IoStats::new());
            let magnetic = MagneticStore::open_file(
                self.inner.dir.join(MAGNETIC_FILE),
                self.inner.cfg.page_size,
                Arc::clone(&stats),
            )?;
            for (page, bytes) in &base.pages {
                magnetic.restore(*page, bytes)?;
            }
            magnetic.sync()?;
            let worm = WormStore::open_file(
                self.inner.dir.join(WORM_FILE),
                self.inner.cfg.worm_sector_size,
                Arc::clone(&stats),
            )?;
            worm.restore_tail(0, &base.worm)?;
            worm.sync()?;
            let wal = Wal::create(
                self.inner.dir.join(WAL_FILE),
                self.inner.cfg.fsync_policy,
                stats,
            )?;
            wal.append_shipped(&base.checkpoint)?;
            wal.sync()?;
            drop(wal);
            std::fs::remove_file(&marker)?;
        }
        if !self.reopen()? {
            return Err(TsbError::internal(
                "freshly installed replica base did not recover to a serving state",
            ));
        }
        Ok(())
    }

    /// Applies one shipped batch per the module-level protocol. On error
    /// the in-memory apply state may be part-way through the batch; the
    /// caller should [`Self::reopen`] (crash-equivalent local recovery)
    /// before retrying — exactly what the subscription runner does.
    pub fn apply_batch(&self, batch: &ShippedBatch) -> TsbResult<()> {
        if batch.needs_rebase {
            return Err(TsbError::config(
                "the primary no longer retains this replica's resume point; \
                 install a fresh base image",
            ));
        }
        let mut guard = self.inner.apply.lock();
        let st = guard.as_mut().ok_or_else(|| {
            TsbError::config("replica is not serving yet (install a base image first)")
        })?;
        // Publish the primary's watermark *before* applying: a status read
        // mid-batch may then over-report lag, never under-report it. Even
        // so, lag zero only means "applied everything the primary had
        // durable as of this batch" — promotion tooling that must lose
        // nothing compares `applied_lsn` against the primary's own
        // `durable_lsn` instead (see `EngineHandle::durable_lsn`).
        let durable = self.inner.source_durable.load(Ordering::Acquire);
        self.inner
            .source_durable
            .store(durable.max(batch.durable_lsn), Ordering::Release);
        let db = st.db.clone();
        let tree = db.tree();
        let wal = tree
            .wal_handle()
            .ok_or_else(|| TsbError::internal("replica tree has no local log"))?;

        // 1. History first (see module docs).
        if !batch.worm.is_empty() {
            let have = tree.worm.device_bytes();
            if batch.worm_start > have {
                return Err(TsbError::corruption(format!(
                    "shipped WORM bytes start at {} but the replica device holds {have}",
                    batch.worm_start
                )));
            }
            let skip = (have - batch.worm_start) as usize;
            if skip < batch.worm.len() {
                tree.worm.restore_tail(have, &batch.worm[skip..])?;
                tree.worm.sync()?;
            }
        }

        // 2. Records in order: append locally, stage, fold at fences.
        for body in &batch.records {
            let (lsn, record) = WalRecord::decode_body(body)?;
            if lsn <= st.last_lsn {
                // Reconnect overlap: already in the local log.
                continue;
            }
            match record {
                WalRecord::PageImage { page, bytes } => {
                    wal.append_shipped(body)?;
                    st.staged.insert(page, ReplayPage::Raw(bytes));
                }
                WalRecord::PageDelta { page, op } => {
                    wal.append_shipped(body)?;
                    if let std::collections::hash_map::Entry::Vacant(e) = st.staged.entry(page) {
                        let base = match st.fenced.get(&page) {
                            Some(ReplayPage::Raw(b)) => b.clone(),
                            Some(ReplayPage::Decoded(n)) => n.encode(),
                            // First touch predates this replica's log:
                            // the device equals the last installed fence.
                            None => tree.replica_read_page(page)?,
                        };
                        e.insert(ReplayPage::Raw(base));
                    }
                    st.staged
                        .get_mut(&page)
                        .expect("entry just ensured")
                        .apply(&op)?;
                }
                WalRecord::Commit { ts, meta, .. } => {
                    wal.append_shipped(body)?;
                    let ts = Timestamp(ts);
                    let (root, clock_next, next_txn) = if meta.is_empty() {
                        (st.chain.0, ts.next(), st.chain.1)
                    } else {
                        TsbTree::decode_meta(&meta)?
                    };
                    st.chain = (root, next_txn);
                    let staged: Vec<(PageId, ReplayPage)> = st.staged.drain().collect();
                    for (page, state) in staged {
                        st.fenced.insert(page, state);
                    }
                    st.pending = Some(FenceInstall {
                        lsn,
                        root,
                        clock_next,
                        next_txn,
                    });
                }
                WalRecord::Checkpoint { meta, .. } => {
                    // Phantom discard: un-fenced records describe state
                    // the primary's log reset threw away.
                    st.staged.clear();
                    // Sound local recovery base: earlier records durable
                    // in the local log, then the devices flushed + synced
                    // to exactly the checkpointed state, then the record.
                    wal.sync()?;
                    let (root, clock_next, next_txn) = TsbTree::decode_meta(&meta)?;
                    st.chain = (root, next_txn);
                    Self::install(
                        &db,
                        st,
                        FenceInstall {
                            lsn,
                            root,
                            clock_next,
                            next_txn,
                        },
                    )?;
                    tree.replica_sync_devices()?;
                    wal.append_shipped(body)?;
                    wal.sync()?;
                    st.pending = None;
                }
                WalRecord::Prepare { .. } | WalRecord::Decision { .. } => {
                    return Err(TsbError::config(
                        "replication of a sharded (two-phase-commit) primary is not supported",
                    ));
                }
            }
            st.last_lsn = lsn;
        }

        // 3. Local durability, then the batch's newest fence installs.
        wal.sync()?;
        if let Some(fence) = st.pending.take() {
            Self::install(&db, st, fence)?;
        }
        self.inner
            .applied_lsn
            .store(st.applied_lsn, Ordering::Release);
        *self.inner.last_progress.lock() = Instant::now();
        Ok(())
    }

    /// Installs the fenced overlay and a fence's metadata under the
    /// writer lock, then advances the read fence to the fence's commit
    /// timestamp. The structure epoch is marked in flight so concurrent
    /// readers retry around the multi-page install.
    fn install(db: &ConcurrentTsb, st: &mut ApplyState, fence: FenceInstall) -> TsbResult<()> {
        let tree = db.tree();
        {
            let _writer = db.lock_writer();
            tree.check_not_poisoned()?;
            tree.note_structural_write();
            let result = (|| -> TsbResult<()> {
                let fenced: Vec<(PageId, ReplayPage)> = st.fenced.drain().collect();
                for (page, state) in fenced {
                    tree.replica_install_page(page, &state.into_bytes())?;
                }
                tree.replica_install_meta(fence.root, fence.clock_next, fence.next_txn)
            })();
            tree.settle_structure();
            result?;
        }
        db.advance_fence(fence.clock_next.prev());
        st.applied_lsn = fence.lsn;
        Ok(())
    }

    /// The serving engine, or the not-serving error every read maps to.
    fn serving_db(&self) -> TsbResult<ConcurrentTsb> {
        self.inner.serving.read().clone().ok_or_else(|| {
            TsbError::config("replica is not serving yet (awaiting a base image from the primary)")
        })
    }

    // ----- read surface (fence-pinned at the applied prefix) --------------

    /// The newest committed value for `key` at the applied fence.
    pub fn get_current(&self, key: &Key) -> TsbResult<Option<Vec<u8>>> {
        self.serving_db()?.get_current(key)
    }

    /// The value for `key` as of `ts` (capped at the applied fence).
    pub fn get_as_of(&self, key: &Key, ts: Timestamp) -> TsbResult<Option<Vec<u8>>> {
        self.serving_db()?.get_as_of(key, ts)
    }

    /// The full version for `key` as of `ts`.
    pub fn get_version_as_of(&self, key: &Key, ts: Timestamp) -> TsbResult<Option<Version>> {
        self.serving_db()?.get_version_as_of(key, ts)
    }

    /// Whether `key` has a live (non-deleted) value at the applied fence.
    pub fn contains_key(&self, key: &Key) -> TsbResult<bool> {
        self.serving_db()?.contains_key(key)
    }

    /// Range scan as of `ts`.
    pub fn scan_as_of(&self, range: &KeyRange, ts: Timestamp) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        self.serving_db()?.scan_as_of(range, ts)
    }

    /// Range scan at the applied fence.
    pub fn scan_current(&self, range: &KeyRange) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        self.serving_db()?.scan_current(range)
    }

    /// Whole-database snapshot as of `ts`.
    pub fn snapshot_at(&self, ts: Timestamp) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        self.serving_db()?.snapshot_at(ts)
    }

    /// Count of live keys in `range` as of `ts`.
    pub fn count_as_of(&self, range: &KeyRange, ts: Timestamp) -> TsbResult<usize> {
        self.serving_db()?.count_as_of(range, ts)
    }

    /// Every version of `key`, oldest first.
    pub fn versions(&self, key: &Key) -> TsbResult<Vec<Version>> {
        self.serving_db()?.versions(key)
    }

    /// Number of versions of `key`.
    pub fn version_count(&self, key: &Key) -> TsbResult<usize> {
        self.serving_db()?.version_count(key)
    }

    /// The versions of `key` committed inside `window`.
    pub fn history_between(&self, key: &Key, window: TimeRange) -> TsbResult<Vec<Version>> {
        self.serving_db()?.history_between(key, window)
    }

    /// The versions of every key in `keys` committed inside `window`.
    pub fn scan_versions(&self, keys: &KeyRange, window: TimeRange) -> TsbResult<Vec<Version>> {
        self.serving_db()?.scan_versions(keys, window)
    }

    /// Keys in `keys` with at least one commit inside `window`.
    pub fn changed_keys_between(&self, keys: &KeyRange, window: TimeRange) -> TsbResult<Vec<Key>> {
        self.serving_db()?.changed_keys_between(keys, window)
    }

    /// The applied fence: the newest commit timestamp reads may observe.
    /// [`Timestamp::ZERO`]-adjacent before the first install or while
    /// awaiting a base.
    pub fn last_installed(&self) -> Timestamp {
        self.inner
            .serving
            .read()
            .as_ref()
            .map(|db| db.last_installed())
            .unwrap_or(Timestamp(0))
    }

    /// A snapshot pinned at the applied fence (the replica's equivalent of
    /// the primary's fence-pinned snapshot rule). Errors while awaiting a
    /// base.
    pub fn begin_snapshot(&self) -> TsbResult<ConcurrentSnapshot> {
        Ok(self.serving_db()?.begin_snapshot())
    }

    /// A snapshot pinned at `ts` (≤ the applied fence).
    pub fn snapshot_as_of(&self, ts: Timestamp) -> TsbResult<ConcurrentSnapshot> {
        Ok(self.serving_db()?.snapshot_as_of(ts))
    }

    /// Runs the structural verifier on the serving tree.
    pub fn verify(&self) -> TsbResult<()> {
        self.serving_db()?.verify()
    }

    /// Merged I/O counters of the serving stores (zeroes while awaiting a
    /// base).
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.inner
            .serving
            .read()
            .as_ref()
            .map(|db| db.io_stats().snapshot())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsb_common::FsyncPolicy;

    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "tsb-replica-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn cfg() -> TsbConfig {
        TsbConfig::small_pages().with_fsync_policy(FsyncPolicy::Always)
    }

    fn sync_until_caught_up(source: &ReplicationSource, replica: &ReplicaEngine) -> TsbResult<()> {
        loop {
            if replica.needs_base() {
                replica.install_base(&source.base()?)?;
            }
            let batch = source.poll(
                replica.resume_lsn().expect("serving"),
                replica.worm_have(),
                tsb_storage::DEFAULT_BATCH_BYTES,
            )?;
            if batch.needs_rebase {
                replica.install_base(&source.base()?)?;
                continue;
            }
            if batch.records.is_empty() {
                return Ok(());
            }
            replica.apply_batch(&batch)?;
        }
    }

    fn assert_replica_matches(primary: &ConcurrentTsb, replica: &ReplicaEngine) {
        let range = KeyRange::full();
        let p = primary.scan_current(&range).unwrap();
        let r = replica.scan_current(&range).unwrap();
        assert_eq!(p, r, "replica diverges from primary at the applied fence");
        assert_eq!(primary.last_installed(), replica.last_installed());
    }

    #[test]
    fn base_then_stream_converges_and_serves_as_of_reads() {
        let pdir = TempDir::new("src-a");
        let rdir = TempDir::new("dst-a");
        let primary = crate::TsbOptions::durable(&pdir.0)
            .config(cfg())
            .open_concurrent()
            .unwrap();
        let mut stamps = Vec::new();
        for i in 0..40u64 {
            let ts = primary
                .insert(Key::from_u64(i % 8), format!("v{i}").into_bytes())
                .unwrap();
            stamps.push((i % 8, ts, format!("v{i}").into_bytes()));
        }
        let source = ReplicationSource::new(&primary).unwrap();
        let replica = ReplicaEngine::open(&rdir.0, cfg()).unwrap();
        assert!(replica.needs_base());
        assert!(replica.get_current(&Key::from_u64(0)).is_err());

        sync_until_caught_up(&source, &replica).unwrap();
        assert_replica_matches(&primary, &replica);

        // Incremental: more writes stream without a new base.
        for i in 40..80u64 {
            primary
                .insert(Key::from_u64(i % 8), format!("v{i}").into_bytes())
                .unwrap();
        }
        sync_until_caught_up(&source, &replica).unwrap();
        assert_replica_matches(&primary, &replica);

        // As-of reads against historical stamps answer exactly as the
        // primary does (history migrated to the WORM shipped too).
        for (k, ts, v) in &stamps {
            assert_eq!(
                replica.get_as_of(&Key::from_u64(*k), *ts).unwrap().as_ref(),
                Some(v),
                "as-of read diverged at ts {ts:?}"
            );
        }
        let status = replica.status();
        assert!(status.serving);
        assert_eq!(status.lag_records, 0);
    }

    #[test]
    fn replica_restart_resumes_from_its_local_log() {
        let pdir = TempDir::new("src-b");
        let rdir = TempDir::new("dst-b");
        let primary = crate::TsbOptions::durable(&pdir.0)
            .config(cfg())
            .open_concurrent()
            .unwrap();
        let source = ReplicationSource::new(&primary).unwrap();
        let replica = ReplicaEngine::open(&rdir.0, cfg()).unwrap();
        for i in 0..30u64 {
            primary
                .insert(Key::from_u64(i), format!("a{i}").into_bytes())
                .unwrap();
        }
        sync_until_caught_up(&source, &replica).unwrap();
        let resume = replica.resume_lsn().unwrap();
        drop(replica);

        // Restart: recovery from the local log copy, no new base needed.
        let replica = ReplicaEngine::open(&rdir.0, cfg()).unwrap();
        assert!(replica.is_serving());
        assert_eq!(replica.resume_lsn(), Some(resume));
        assert_replica_matches(&primary, &replica);

        for i in 0..30u64 {
            primary
                .insert(Key::from_u64(i), format!("b{i}").into_bytes())
                .unwrap();
        }
        sync_until_caught_up(&source, &replica).unwrap();
        assert_replica_matches(&primary, &replica);
    }

    #[test]
    fn primary_checkpoint_applies_in_place_when_caught_up_and_rebases_when_behind() {
        let pdir = TempDir::new("src-c");
        let rdir = TempDir::new("dst-c");
        let primary = crate::TsbOptions::durable(&pdir.0)
            .config(cfg())
            .open_concurrent()
            .unwrap();
        let source = ReplicationSource::new(&primary).unwrap();
        let replica = ReplicaEngine::open(&rdir.0, cfg()).unwrap();
        for i in 0..20u64 {
            primary.insert(Key::from_u64(i), b"one".to_vec()).unwrap();
        }
        sync_until_caught_up(&source, &replica).unwrap();

        // Caught up: the checkpoint record streams and applies in place.
        primary.checkpoint().unwrap();
        sync_until_caught_up(&source, &replica).unwrap();
        assert_replica_matches(&primary, &replica);

        // Behind a reset: writes + checkpoint while the replica is not
        // polling discard its resume point → rebase from a fresh base.
        for i in 20..40u64 {
            primary.insert(Key::from_u64(i), b"two".to_vec()).unwrap();
        }
        primary.checkpoint().unwrap();
        let batch = source
            .poll(
                replica.resume_lsn().unwrap(),
                replica.worm_have(),
                tsb_storage::DEFAULT_BATCH_BYTES,
            )
            .unwrap();
        assert!(batch.needs_rebase, "a reset past the cursor must rebase");
        sync_until_caught_up(&source, &replica).unwrap();
        assert_replica_matches(&primary, &replica);
    }

    #[test]
    fn half_installed_base_is_wiped_on_open() {
        let pdir = TempDir::new("src-d");
        let rdir = TempDir::new("dst-d");
        let primary = crate::TsbOptions::durable(&pdir.0)
            .config(cfg())
            .open_concurrent()
            .unwrap();
        primary.insert(Key::from_u64(1), b"x".to_vec()).unwrap();
        let source = ReplicationSource::new(&primary).unwrap();
        let replica = ReplicaEngine::open(&rdir.0, cfg()).unwrap();
        sync_until_caught_up(&source, &replica).unwrap();
        drop(replica);

        // Simulate a death mid-install: the marker survives alongside
        // stale-looking files.
        std::fs::write(rdir.0.join(INSTALLING_MARKER), b"").unwrap();
        let replica = ReplicaEngine::open(&rdir.0, cfg()).unwrap();
        assert!(replica.needs_base(), "marker must force a re-base");
        sync_until_caught_up(&source, &replica).unwrap();
        assert_replica_matches(&primary, &replica);
    }

    #[test]
    fn transactions_stream_with_their_uncommitted_windows() {
        let pdir = TempDir::new("src-e");
        let rdir = TempDir::new("dst-e");
        let primary = crate::TsbOptions::durable(&pdir.0)
            .config(cfg())
            .open_concurrent()
            .unwrap();
        let source = ReplicationSource::new(&primary).unwrap();
        let replica = ReplicaEngine::open(&rdir.0, cfg()).unwrap();

        // An open transaction's uncommitted versions ship inside the
        // stream (they are page content); the replica must serve reads
        // that skip them, then surface the commit once fenced.
        let txn = primary.begin_txn();
        primary
            .txn_insert(txn, Key::from_u64(7), b"pending".to_vec())
            .unwrap();
        primary.insert(Key::from_u64(1), b"seen".to_vec()).unwrap();
        sync_until_caught_up(&source, &replica).unwrap();
        assert_eq!(replica.get_current(&Key::from_u64(7)).unwrap(), None);
        assert_eq!(
            replica.get_current(&Key::from_u64(1)).unwrap(),
            Some(b"seen".to_vec())
        );

        primary.commit_txn(txn).unwrap();
        sync_until_caught_up(&source, &replica).unwrap();
        assert_eq!(
            replica.get_current(&Key::from_u64(7)).unwrap(),
            Some(b"pending".to_vec())
        );
        assert_replica_matches(&primary, &replica);
    }
}
