//! Secondary indexes (§3.6).
//!
//! A secondary index is itself a Time-Split B-tree whose records have the
//! form `<timestamp, secondary key, primary key>`: each entry inherits the
//! timestamp of the primary record change that caused it, and the index
//! spans the historical and current databases exactly like the primary
//! index. "When splits occur to the primary data, secondary indexes do not
//! change" — the secondary index stores primary *keys*, never node
//! addresses, so this holds by construction.
//!
//! Entries are stored under an order-preserving composite key
//! `(secondary key, primary key)` so that all primary keys with a given
//! secondary value are contiguous and can be counted or listed "using only
//! the secondary time-split B-tree", as the paper points out for
//! `COUNT`-style queries.

use std::sync::Arc;

use tsb_common::{Key, KeyBound, KeyRange, Timestamp, TsbConfig, TsbError, TsbResult};
use tsb_storage::{IoStats, MagneticStore, WormStore};

use crate::tree::TsbTree;

/// Escapes a byte string so that concatenated escaped strings preserve the
/// lexicographic order of the tuple: `0x00` becomes `0x00 0xFF`, and the
/// component is terminated by `0x00 0x00`.
fn escape_component(out: &mut Vec<u8>, bytes: &[u8]) {
    for &b in bytes {
        out.push(b);
        if b == 0x00 {
            out.push(0xFF);
        }
    }
    out.push(0x00);
    out.push(0x00);
}

/// Decodes one escaped component, returning the component and the rest.
fn unescape_component(bytes: &[u8]) -> TsbResult<(Vec<u8>, &[u8])> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == 0x00 {
            if i + 1 >= bytes.len() {
                return Err(TsbError::corruption("truncated composite key"));
            }
            match bytes[i + 1] {
                0x00 => return Ok((out, &bytes[i + 2..])),
                0xFF => {
                    out.push(0x00);
                    i += 2;
                }
                other => {
                    return Err(TsbError::corruption(format!(
                        "invalid escape byte {other:#04x} in composite key"
                    )))
                }
            }
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    Err(TsbError::corruption("unterminated composite key component"))
}

/// Builds the composite key `(secondary, primary)`.
pub fn composite_key(secondary: &Key, primary: &Key) -> Key {
    let mut out = Vec::with_capacity(secondary.len() + primary.len() + 4);
    escape_component(&mut out, secondary.as_bytes());
    escape_component(&mut out, primary.as_bytes());
    Key::from_vec(out)
}

/// Splits a composite key back into `(secondary, primary)`.
pub fn split_composite_key(key: &Key) -> TsbResult<(Key, Key)> {
    let (secondary, rest) = unescape_component(key.as_bytes())?;
    let (primary, rest) = unescape_component(rest)?;
    if !rest.is_empty() {
        return Err(TsbError::corruption("trailing bytes after composite key"));
    }
    Ok((Key::from_vec(secondary), Key::from_vec(primary)))
}

/// The key range covering every composite key whose secondary component is
/// exactly `secondary`.
fn secondary_prefix_range(secondary: &Key) -> KeyRange {
    let mut lo = Vec::new();
    escape_component(&mut lo, secondary.as_bytes());
    // The upper bound is the prefix with its terminator bumped from
    // 0x00 0x00 to 0x00 0x01: no valid escaped component sorts between them.
    let mut hi = lo.clone();
    let last = hi.len() - 1;
    hi[last] = 0x01;
    KeyRange::new(Key::from_vec(lo), KeyBound::Finite(Key::from_vec(hi)))
}

/// A secondary index over some attribute of the primary records, implemented
/// as its own TSB-tree.
pub struct SecondaryIndex {
    tree: TsbTree,
}

impl std::fmt::Debug for SecondaryIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecondaryIndex")
            .field("tree", &self.tree)
            .finish()
    }
}

impl SecondaryIndex {
    /// Creates a secondary index with its own in-memory stores.
    pub fn new_in_memory(cfg: TsbConfig) -> TsbResult<Self> {
        Ok(SecondaryIndex {
            tree: crate::TsbOptions::in_memory().config(cfg).open_tree()?,
        })
    }

    /// Creates a secondary index over the provided stores.
    pub fn create(
        magnetic: Arc<MagneticStore>,
        worm: Arc<WormStore>,
        cfg: TsbConfig,
    ) -> TsbResult<Self> {
        Ok(SecondaryIndex {
            tree: TsbTree::create(magnetic, worm, cfg)?,
        })
    }

    /// The underlying TSB-tree (for statistics, verification, flushing).
    pub fn tree(&self) -> &TsbTree {
        &self.tree
    }

    /// Mutable access to the underlying tree.
    pub fn tree_mut(&mut self) -> &mut TsbTree {
        &mut self.tree
    }

    /// The shared I/O statistics of the index's stores.
    pub fn io_stats(&self) -> &Arc<IoStats> {
        self.tree.io_stats()
    }

    /// Records that `primary` acquired secondary value `secondary` at time
    /// `ts` (a record creation, or the "new side" of a secondary-field
    /// update). The entry inherits the primary record's timestamp.
    pub fn insert_entry(&mut self, secondary: &Key, primary: &Key, ts: Timestamp) -> TsbResult<()> {
        let key = composite_key(secondary, primary);
        self.tree.insert_at(key, Vec::new(), ts)
    }

    /// Records that `primary` ceased to have secondary value `secondary` at
    /// time `ts` (the "old side" of a secondary-field update, or a record
    /// deletion).
    pub fn remove_entry(&mut self, secondary: &Key, primary: &Key, ts: Timestamp) -> TsbResult<()> {
        let key = composite_key(secondary, primary);
        self.tree.delete_at(key, ts)
    }

    /// Records a change of the secondary attribute of `primary` from
    /// `old_secondary` to `new_secondary` at time `ts`. Either side may be
    /// `None` (record creation / deletion).
    pub fn record_change(
        &mut self,
        old_secondary: Option<&Key>,
        new_secondary: Option<&Key>,
        primary: &Key,
        ts: Timestamp,
    ) -> TsbResult<()> {
        if old_secondary == new_secondary {
            return Ok(());
        }
        if let Some(old) = old_secondary {
            self.remove_entry(old, primary, ts)?;
        }
        if let Some(new) = new_secondary {
            self.insert_entry(new, primary, ts)?;
        }
        Ok(())
    }

    /// The primary keys that had secondary value `secondary` as of time `ts`,
    /// in primary-key order.
    pub fn primaries_as_of(&self, secondary: &Key, ts: Timestamp) -> TsbResult<Vec<Key>> {
        let range = secondary_prefix_range(secondary);
        let rows = self.tree.scan_as_of(&range, ts)?;
        rows.iter()
            .map(|(composite, _)| split_composite_key(composite).map(|(_, primary)| primary))
            .collect()
    }

    /// The primary keys that currently have secondary value `secondary`.
    pub fn primaries_current(&self, secondary: &Key) -> TsbResult<Vec<Key>> {
        self.primaries_as_of(secondary, Timestamp::MAX)
    }

    /// How many records had secondary value `secondary` at time `ts` —
    /// answerable from the secondary index alone, as §3.6 notes.
    pub fn count_as_of(&self, secondary: &Key, ts: Timestamp) -> TsbResult<usize> {
        Ok(self.primaries_as_of(secondary, ts)?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composite_keys_round_trip_and_preserve_order() {
        let cases = [
            (Key::from("boston"), Key::from_u64(1)),
            (Key::from("boston"), Key::from_u64(2)),
            (Key::from("nashua"), Key::from_u64(1)),
            (
                Key::from_bytes(vec![0x00, 0x01]),
                Key::from_bytes(vec![0x00]),
            ),
            (Key::from_bytes(vec![0x00, 0x00, 0xFF]), Key::from("x")),
            (Key::MIN, Key::from("primary-only")),
        ];
        for (sec, pri) in &cases {
            let c = composite_key(sec, pri);
            let (s2, p2) = split_composite_key(&c).unwrap();
            assert_eq!(&s2, sec);
            assert_eq!(&p2, pri);
        }
        // Tuple order is preserved by the composite encoding.
        let mut composites: Vec<Key> = cases.iter().map(|(s, p)| composite_key(s, p)).collect();
        let mut by_tuple = cases.to_vec();
        by_tuple.sort_by(|a, b| (&a.0, &a.1).cmp(&(&b.0, &b.1)));
        composites.sort();
        let reencoded: Vec<Key> = by_tuple.iter().map(|(s, p)| composite_key(s, p)).collect();
        assert_eq!(composites, reencoded);

        assert!(split_composite_key(&Key::from("no terminator")).is_err());
    }

    #[test]
    fn prefix_range_covers_exactly_one_secondary_value() {
        let range = secondary_prefix_range(&Key::from("boston"));
        assert!(range.contains(&composite_key(&Key::from("boston"), &Key::from_u64(1))));
        assert!(range.contains(&composite_key(
            &Key::from("boston"),
            &Key::from_u64(u64::MAX)
        )));
        assert!(!range.contains(&composite_key(&Key::from("bostona"), &Key::from_u64(1))));
        assert!(!range.contains(&composite_key(&Key::from("bosto"), &Key::from_u64(1))));
        assert!(!range.contains(&composite_key(&Key::from("nashua"), &Key::from_u64(1))));
    }

    #[test]
    fn time_travel_queries_on_the_secondary_attribute() {
        let mut idx = SecondaryIndex::new_in_memory(TsbConfig::small_pages()).unwrap();
        let boston = Key::from("boston");
        let nashua = Key::from("nashua");

        // Employees 1..=3 start in Boston at t=10.
        for emp in 1..=3u64 {
            idx.record_change(None, Some(&boston), &Key::from_u64(emp), Timestamp(10))
                .unwrap();
        }
        // Employee 2 moves to Nashua at t=20.
        idx.record_change(
            Some(&boston),
            Some(&nashua),
            &Key::from_u64(2),
            Timestamp(20),
        )
        .unwrap();
        // Employee 3 leaves the company at t=30.
        idx.record_change(Some(&boston), None, &Key::from_u64(3), Timestamp(30))
            .unwrap();

        assert_eq!(idx.count_as_of(&boston, Timestamp(15)).unwrap(), 3);
        assert_eq!(idx.count_as_of(&boston, Timestamp(25)).unwrap(), 2);
        assert_eq!(idx.count_as_of(&boston, Timestamp(35)).unwrap(), 1);
        assert_eq!(idx.count_as_of(&nashua, Timestamp(15)).unwrap(), 0);
        assert_eq!(idx.count_as_of(&nashua, Timestamp(25)).unwrap(), 1);

        assert_eq!(
            idx.primaries_current(&boston).unwrap(),
            vec![Key::from_u64(1)]
        );
        assert_eq!(
            idx.primaries_as_of(&boston, Timestamp(12)).unwrap(),
            vec![Key::from_u64(1), Key::from_u64(2), Key::from_u64(3)]
        );
        // No-op change is accepted and changes nothing.
        idx.record_change(
            Some(&boston),
            Some(&boston),
            &Key::from_u64(1),
            Timestamp(40),
        )
        .unwrap();
        assert_eq!(idx.count_as_of(&boston, Timestamp(45)).unwrap(), 1);
        idx.tree().verify().unwrap();
    }

    #[test]
    fn secondary_index_survives_many_entries_and_splits() {
        let mut idx = SecondaryIndex::new_in_memory(TsbConfig::small_pages()).unwrap();
        let dept_names: Vec<Key> = (0..5).map(|d| Key::from(format!("dept-{d}"))).collect();
        let mut ts = 1u64;
        for emp in 0..200u64 {
            let dept = &dept_names[(emp % 5) as usize];
            idx.record_change(None, Some(dept), &Key::from_u64(emp), Timestamp(ts))
                .unwrap();
            ts += 1;
        }
        // Reassign half of the employees to dept-0.
        for emp in (0..200u64).filter(|e| e % 2 == 0) {
            let old = &dept_names[(emp % 5) as usize];
            if *old != dept_names[0] {
                idx.record_change(
                    Some(old),
                    Some(&dept_names[0]),
                    &Key::from_u64(emp),
                    Timestamp(ts),
                )
                .unwrap();
                ts += 1;
            }
        }
        let total: usize = dept_names
            .iter()
            .map(|d| idx.count_as_of(d, Timestamp(ts)).unwrap())
            .sum();
        assert_eq!(total, 200, "every employee is in exactly one department");
        // dept-0 now holds its original 40 plus 80 transferred employees.
        assert_eq!(idx.count_as_of(&dept_names[0], Timestamp(ts)).unwrap(), 120);
        idx.tree().verify().unwrap();
    }
}
