//! N-way keyspace partitioning under one global commit clock.
//!
//! [`ShardedTsb`] splits the keyspace across `N` independent
//! [`ConcurrentTsb`] shards by a stable hash of the key. Each shard owns a
//! complete single-writer engine — its own WAL, group-commit pipeline,
//! node cache, and checkpoint cadence — so `N` writers touching `N`
//! different shards append, fsync, and install completely independently:
//! the per-engine writer lock and commit fsync stop being a global
//! serialization point. What stays global is *time*: every shard stamps
//! its commits from one shared [`LogicalClock`], so commit timestamps form
//! a single total order across the whole keyspace and a snapshot pinned at
//! timestamp `T` means the same instant on every shard.
//!
//! ## Routing
//!
//! A key routes to shard `fnv1a64(key_bytes) % N`. The hash is a pure
//! function of the key bytes and the shard count — no routing table, no
//! rebalancing state — so the partition is trivially stable across reopen
//! as long as `N` is stable. `N` is therefore persisted in a
//! `shards.manifest` file at create time, and reopening with a different
//! `--shards` value is a hard error rather than a silent re-partition
//! (which would strand every key on the wrong shard).
//!
//! ## Snapshot consistency
//!
//! [`ShardedTsb::begin_snapshot`] pins the newest ticked timestamp `T` and
//! then raises every shard's install fence to at least `T`
//! ([`ConcurrentTsb`]'s `pin_fence_at_least`). Raising the fence takes the
//! shard's writer lock when the shard is behind — and because commit
//! timestamps are ticked *under* that lock, holding it proves no mutation
//! with a timestamp `≤ T` is still mid-install on that shard. After the
//! pin, reads at `T` are stable on every shard simultaneously: the
//! snapshot can never observe shard A after a commit and shard B before
//! it.
//!
//! ## Cross-shard transactions: the two-phase fence
//!
//! A transaction whose writes all land on one shard commits exactly like a
//! plain single-engine transaction — one commit record, zero cross-shard
//! coordination. A transaction straddling shards commits under a
//! **two-phase fence** (presumed abort):
//!
//! ```text
//!  lock writers of every participant (ascending shard order)
//!  T = clock.tick()
//!  phase 1:  each participant logs Prepare{T, txn, coordinator,
//!            participants} and force-syncs it
//!  decision: the coordinator (lowest participant index) logs
//!            Decision{T, participants} and force-syncs it
//!  phase 2:  each participant stamps its writes committed at T, logs its
//!            local Commit{T}, force-syncs it, advances its fence to T
//!  unlock
//! ```
//!
//! Because every participant's writer lock is held for the whole protocol,
//! no checkpoint can reset a participant's WAL mid-protocol and no
//! concurrent snapshot can pin between phase 2 stamps (the pin would block
//! on a participant's writer lock). Recovery resolves a surviving Prepare
//! whose transaction is still unstamped against the *coordinator's* log:
//! Decision present → roll forward (commit at `T`); absent → presumed
//! abort. The decision record is forced *before* any participant commit,
//! so a participant's commit can never be durable while the decision that
//! justifies it is not — a crash at any instant either aborts the
//! transaction on every shard or commits it on every shard, never a mix.
//! During a sharded reopen, shards are finished (checkpointed) in
//! **descending** index order: a coordinator has the lowest index among
//! its participants, so its decision record outlives every participant's
//! unresolved prepare even if the reopen itself crashes part-way.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use tsb_common::{
    Key, KeyRange, LogicalClock, TimeRange, Timestamp, TsbConfig, TsbError, TsbResult, TxnId,
    Version,
};
use tsb_storage::{CrashPoint, FaultInjector, IoSnapshot, Lsn};

use crate::concurrent::ConcurrentTsb;
use crate::tree::{StagedRecovery, TsbTree};

/// Name of the shard-count manifest inside a sharded data directory.
const MANIFEST_FILE: &str = "shards.manifest";
/// First line of the manifest; bumping the layout bumps the version.
const MANIFEST_MAGIC: &str = "tsb-sharded v1";
/// Upper bound on the shard count — far above any sensible value, it only
/// guards against a corrupt manifest or a typo'd `--shards`.
const MAX_SHARDS: usize = 256;

/// Identifies a deferred durability obligation on one shard: the shard
/// index and the WAL LSN to pass to [`ShardedTsb::wait_durable`] before
/// acknowledging the write.
pub type ShardLsn = (usize, Lsn);

/// FNV-1a 64-bit over the key bytes: the routing hash. Stable by
/// construction — it depends on nothing but the bytes.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A cross-shard transaction's bookkeeping: which participant shards it
/// touched and the shard-local transaction id begun on each.
struct GlobalTxnTable {
    /// Next global transaction id to hand out. Global ids live in their
    /// own namespace — they never reach a shard's transaction table.
    next: u64,
    /// Global id → per-shard local transaction id (lazily begun on the
    /// first write routed to that shard).
    active: HashMap<TxnId, Vec<Option<TxnId>>>,
}

struct ShardedInner {
    shards: Vec<ConcurrentTsb>,
    clock: Arc<LogicalClock>,
    txns: Mutex<GlobalTxnTable>,
    /// Injector consulted at the `TwoPcAck` window (after the decision is
    /// durable, before any participant has stamped its local commit).
    /// The per-shard write sites consult the same injector through each
    /// shard's devices; see [`ShardedTsb::set_fault_injector`].
    fault: Mutex<Option<Arc<FaultInjector>>>,
}

/// An `N`-shard TSB-tree engine under one global commit clock. Cheaply
/// cloneable handle; clones share the shards. See the [module docs](self)
/// for the routing, snapshot, and two-phase-fence protocols.
#[derive(Clone)]
pub struct ShardedTsb {
    inner: Arc<ShardedInner>,
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardedTsb>();
    assert_send_sync::<ShardedSnapshot>();
};

impl std::fmt::Debug for ShardedTsb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedTsb")
            .field("shards", &self.inner.shards.len())
            .field("now", &self.inner.clock.now())
            .finish()
    }
}

impl ShardedTsb {
    // ----- construction ---------------------------------------------------

    fn from_shards(shards: Vec<ConcurrentTsb>, clock: Arc<LogicalClock>) -> Self {
        debug_assert!(!shards.is_empty());
        ShardedTsb {
            inner: Arc::new(ShardedInner {
                shards,
                clock,
                txns: Mutex::new(GlobalTxnTable {
                    next: 0,
                    active: HashMap::new(),
                }),
                fault: Mutex::new(None),
            }),
        }
    }

    /// Wraps a single existing engine as a one-shard sharded engine — the
    /// `--shards 1` serving path, byte-identical on disk to the unsharded
    /// layout.
    pub fn single(db: ConcurrentTsb) -> Self {
        let clock = Arc::clone(&db.tree().clock);
        Self::from_shards(vec![db], clock)
    }

    /// Creates a fresh sharded engine over in-memory stores: `shards`
    /// independent engines stamping from one clock. No durability — the
    /// oracle-equivalence and routing tests use this.
    #[deprecated(
        since = "0.1.0",
        note = "use `TsbOptions::in_memory().config(cfg).shards(n).open()`"
    )]
    pub fn new_in_memory(shards: usize, cfg: TsbConfig) -> TsbResult<Self> {
        check_shard_count(shards)?;
        let clock = Arc::new(LogicalClock::new());
        let mut engines = Vec::with_capacity(shards);
        for _ in 0..shards {
            let tree = TsbTree::new_in_memory_with_clock(cfg.clone(), Arc::clone(&clock))?;
            engines.push(ConcurrentTsb::from_tree(tree));
        }
        Ok(Self::from_shards(engines, clock))
    }

    /// Opens (or creates) a durable sharded engine rooted at `dir`.
    ///
    /// * `shards == 1` with no manifest uses the flat single-engine layout
    ///   (`current.pages` / `history.worm` / `redo.wal` directly in `dir`),
    ///   so existing single-shard data directories keep working and a
    ///   1-shard engine is byte-identical to the unsharded one.
    /// * `shards > 1` writes a `shards.manifest` and lays each shard out in
    ///   its own `shard-NNN/` subdirectory with a completely independent
    ///   WAL, committer thread, and checkpoint cadence.
    /// * Reopening with a shard count that contradicts the manifest (or a
    ///   flat directory with `shards > 1`) is a hard error: the hash
    ///   partition is only stable while `N` is.
    ///
    /// Reopen re-derives the global clock as the maximum across every
    /// shard's recovered clock (each staged recovery only ever *advances*
    /// the shared clock), and resolves in-doubt two-phase prepares against
    /// the coordinator shard's decision record before any shard is
    /// checkpointed — see the [module docs](self).
    #[deprecated(
        since = "0.1.0",
        note = "use `TsbOptions::durable(dir).config(cfg).shards(n).open()`"
    )]
    pub fn open_durable(dir: impl AsRef<Path>, shards: usize, cfg: TsbConfig) -> TsbResult<Self> {
        check_shard_count(shards)?;
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let manifest = dir.join(MANIFEST_FILE);
        let persisted = match read_manifest(&manifest)? {
            Some(n) => {
                if n != shards {
                    return Err(TsbError::config(format!(
                        "directory {} was created with {n} shards; reopening with \
                         {shards} would re-partition every key onto the wrong shard",
                        dir.display()
                    )));
                }
                true
            }
            None => false,
        };
        if !persisted {
            let flat = dir.join("redo.wal").exists();
            if flat && shards != 1 {
                return Err(TsbError::config(format!(
                    "directory {} holds a flat single-shard database; reopening \
                     with {shards} shards would re-partition it",
                    dir.display()
                )));
            }
            if !flat && shards == 1 {
                // Fresh directory, one shard: keep the flat layout.
            } else if !flat {
                write_manifest(&manifest, shards)?;
            }
        }
        if shards == 1 && !persisted {
            #[allow(deprecated)]
            let db = ConcurrentTsb::open_durable(dir, cfg)?;
            return Ok(Self::single(db));
        }

        let clock = Arc::new(LogicalClock::new());
        let mut staged: Vec<StagedRecovery> = Vec::with_capacity(shards);
        for i in 0..shards {
            let shard_dir = dir.join(format!("shard-{i:03}"));
            staged.push(TsbTree::open_durable_staged(
                shard_dir,
                cfg.clone(),
                Arc::clone(&clock),
            )?);
        }
        // Resolve every shard's in-doubt prepares against the coordinator
        // shard's decision log *before* finishing (checkpointing) any
        // shard: a finish resets that shard's WAL, erasing the records the
        // other shards' resolutions depend on.
        let mut resolutions: Vec<(usize, TxnId, Timestamp, bool)> = Vec::new();
        for (i, shard) in staged.iter().enumerate() {
            for p in shard.in_doubt() {
                let coordinator = p.coordinator as usize;
                let commit = staged
                    .get(coordinator)
                    .map(|c| c.has_decision(p.ts))
                    .unwrap_or(false);
                resolutions.push((i, p.txn, p.ts, commit));
            }
        }
        for (i, txn, ts, commit) in resolutions {
            if commit {
                staged[i].commit_in_doubt(txn, ts)?;
            } else {
                staged[i].abort_in_doubt(txn)?;
            }
        }
        // Finish in descending shard order so every coordinator (lowest
        // index among its participants) is checkpointed last: if the
        // reopen crashes part-way, any participant still holding an
        // unresolved prepare can still find the decision on its
        // coordinator at the next reopen.
        let mut engines: Vec<Option<ConcurrentTsb>> = (0..shards).map(|_| None).collect();
        for i in (0..shards).rev() {
            let tree = staged
                .pop()
                .expect("one staged recovery per shard")
                .finish()?;
            engines[i] = Some(ConcurrentTsb::from_tree(tree));
        }
        let engines = engines
            .into_iter()
            .map(|e| e.expect("every shard finished"))
            .collect();
        Ok(Self::from_shards(engines, clock))
    }

    // ----- routing --------------------------------------------------------

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The shard `key` routes to: `fnv1a64(key_bytes) % N`. A pure
    /// function of the key bytes and the shard count — every key maps to
    /// exactly one shard, identically before and after reopen.
    pub fn shard_of(&self, key: &Key) -> usize {
        shard_of(key, self.inner.shards.len())
    }

    /// The per-shard engines, in shard order. Reads through a shard handle
    /// are safe (shards are complete engines); writes through one bypass
    /// only the routing, not the clock — but belong in tests and
    /// measurement harnesses, not application code.
    pub fn shards(&self) -> &[ConcurrentTsb] {
        &self.inner.shards
    }

    fn shard_for(&self, key: &Key) -> &ConcurrentTsb {
        &self.inner.shards[self.shard_of(key)]
    }

    // ----- single-key writes (zero cross-shard coordination) --------------

    /// Inserts a new version of `key` on its home shard, returning the
    /// commit timestamp (ticked from the global clock).
    pub fn insert(&self, key: impl Into<Key>, value: Vec<u8>) -> TsbResult<Timestamp> {
        let key = key.into();
        self.shard_for(&key).insert(key, value)
    }

    /// [`Self::insert`] without the durability wait: returns the commit
    /// timestamp and the `(shard, LSN)` to pass to [`Self::wait_durable`]
    /// before acknowledging. A pipelined caller batches writes, tracks the
    /// maximum LSN *per shard*, and parks once per shard.
    pub fn insert_deferred(
        &self,
        key: impl Into<Key>,
        value: Vec<u8>,
    ) -> TsbResult<(Timestamp, Option<ShardLsn>)> {
        let key = key.into();
        let shard = self.shard_of(&key);
        let (ts, lsn) = self.inner.shards[shard].insert_deferred(key, value)?;
        Ok((ts, lsn.map(|l| (shard, l))))
    }

    /// Logically deletes `key` on its home shard.
    pub fn delete(&self, key: impl Into<Key>) -> TsbResult<Timestamp> {
        let key = key.into();
        self.shard_for(&key).delete(key)
    }

    /// [`Self::delete`] without the durability wait.
    pub fn delete_deferred(&self, key: impl Into<Key>) -> TsbResult<(Timestamp, Option<ShardLsn>)> {
        let key = key.into();
        let shard = self.shard_of(&key);
        let (ts, lsn) = self.inner.shards[shard].delete_deferred(key)?;
        Ok((ts, lsn.map(|l| (shard, l))))
    }

    /// Parks until `shard`'s durable-LSN watermark covers `lsn`. Completes
    /// the contract of the `*_deferred` writes; watermarks are per-shard
    /// and independent.
    pub fn wait_durable(&self, (shard, lsn): ShardLsn) -> TsbResult<()> {
        self.inner.shards[shard].wait_durable(lsn)
    }

    // ----- transactions ---------------------------------------------------

    /// Begins a transaction that may write keys on any shard. The returned
    /// id lives in the sharded engine's own namespace; shard-local
    /// transactions are begun lazily as writes route to shards.
    pub fn begin_txn(&self) -> TxnId {
        let mut t = self.inner.txns.lock();
        t.next += 1;
        let id = TxnId::new(t.next);
        let slots = vec![None; self.inner.shards.len()];
        t.active.insert(id, slots);
        id
    }

    /// The shard-local transaction on `shard`, begun on first use.
    fn local_txn(&self, txn: TxnId, shard: usize) -> TsbResult<TxnId> {
        let mut t = self.inner.txns.lock();
        let slots = t
            .active
            .get_mut(&txn)
            .ok_or_else(|| TsbError::config(format!("unknown transaction {txn:?}")))?;
        if let Some(local) = slots[shard] {
            return Ok(local);
        }
        let local = self.inner.shards[shard].begin_txn();
        t.active
            .get_mut(&txn)
            .expect("checked above; begin_txn does not touch this table")[shard] = Some(local);
        Ok(local)
    }

    /// Writes `key = value` within transaction `txn` on the key's home
    /// shard.
    pub fn txn_insert(&self, txn: TxnId, key: impl Into<Key>, value: Vec<u8>) -> TsbResult<()> {
        let key = key.into();
        let shard = self.shard_of(&key);
        let local = self.local_txn(txn, shard)?;
        self.inner.shards[shard].txn_insert(local, key, value)
    }

    /// Logically deletes `key` within transaction `txn`.
    pub fn txn_delete(&self, txn: TxnId, key: impl Into<Key>) -> TsbResult<()> {
        let key = key.into();
        let shard = self.shard_of(&key);
        let local = self.local_txn(txn, shard)?;
        self.inner.shards[shard].txn_delete(local, key)
    }

    /// Reads `key` from inside `txn`: the transaction's own pending write
    /// when it touched the key's shard, the committed current value
    /// otherwise.
    pub fn txn_get(&self, txn: TxnId, key: &Key) -> TsbResult<Option<Vec<u8>>> {
        let shard = self.shard_of(key);
        let local = {
            let t = self.inner.txns.lock();
            let slots = t
                .active
                .get(&txn)
                .ok_or_else(|| TsbError::config(format!("unknown transaction {txn:?}")))?;
            slots[shard]
        };
        match local {
            Some(local) => self.inner.shards[shard].txn_get(local, key),
            None => self.inner.shards[shard].get_current(key),
        }
    }

    /// Takes a transaction's participant list out of the table: the
    /// `(shard, local txn)` pairs in ascending shard order.
    fn take_participants(&self, txn: TxnId) -> TsbResult<Vec<(usize, TxnId)>> {
        let mut t = self.inner.txns.lock();
        let slots = t
            .active
            .remove(&txn)
            .ok_or_else(|| TsbError::config(format!("unknown transaction {txn:?}")))?;
        Ok(slots
            .into_iter()
            .enumerate()
            .filter_map(|(i, local)| local.map(|l| (i, l)))
            .collect())
    }

    /// Commits `txn`; all of its writes across all shards become visible
    /// atomically at the returned timestamp. Single-shard transactions
    /// commit with zero coordination; cross-shard ones run the two-phase
    /// fence (see the [module docs](self)) and are fully durable on every
    /// participant before this returns.
    pub fn commit_txn(&self, txn: TxnId) -> TsbResult<Timestamp> {
        let (ts, wait) = self.commit_txn_deferred(txn)?;
        if let Some(lsn) = wait {
            self.wait_durable(lsn)?;
        }
        Ok(ts)
    }

    /// [`Self::commit_txn`] without the single-shard durability wait.
    /// Cross-shard commits force their records on every participant as
    /// part of the fence protocol, so they always return `None`.
    pub fn commit_txn_deferred(&self, txn: TxnId) -> TsbResult<(Timestamp, Option<ShardLsn>)> {
        let parts = self.take_participants(txn)?;
        match parts.as_slice() {
            // A transaction that never wrote: tick so the commit still has
            // a unique place in the global order, with nothing to install.
            [] => Ok((self.inner.clock.tick(), None)),
            [(shard, local)] => {
                let (ts, lsn) = self.inner.shards[*shard].commit_txn_deferred(*local)?;
                Ok((ts, lsn.map(|l| (*shard, l))))
            }
            _ => self.commit_cross_shard(&parts).map(|ts| (ts, None)),
        }
    }

    /// The two-phase fence. `parts` is ascending by shard index; locks are
    /// acquired in that order (a global order, so concurrent cross-shard
    /// commits cannot deadlock), and the lowest participant index is the
    /// coordinator.
    fn commit_cross_shard(&self, parts: &[(usize, TxnId)]) -> TsbResult<Timestamp> {
        let shards = &self.inner.shards;
        let _guards: Vec<_> = parts
            .iter()
            .map(|(i, _)| shards[*i].lock_writer())
            .collect();
        let ts = self.inner.clock.tick();
        let participant_ids: Vec<u32> = parts.iter().map(|(i, _)| *i as u32).collect();
        let coordinator = participant_ids[0];
        // Phase 1: a forced prepare on every participant. After this loop
        // the transaction's writes are replayable everywhere, but commit
        // is still revocable (presumed abort).
        for (i, local) in parts {
            shards[*i]
                .tree()
                .wal_prepare(ts, *local, coordinator, &participant_ids)?;
        }
        // The decision: one forced record on the coordinator. This is the
        // commit point — from here, recovery rolls forward.
        shards[parts[0].0]
            .tree()
            .wal_decision(ts, &participant_ids)?;
        // The in-doubt window: decision durable, no participant stamped.
        let injector = self.inner.fault.lock().clone();
        if let Some(inj) = &injector {
            inj.check(CrashPoint::TwoPcAck)?;
        }
        // Phase 2: stamp and force each participant's local commit while
        // still holding every lock. Forcing before release closes the
        // window where a participant's checkpoint could erase its own
        // prepare (and the coordinator's decision) while another
        // participant's commit is still volatile.
        for (i, local) in parts {
            let tree = shards[*i].tree();
            tree.commit_txn_at_shared(*local, ts)?;
            // The fence's policy wait is irrelevant: the force below
            // settles durability for this commit unconditionally.
            let _ = tree.take_pending_durable_wait();
            tree.wal_force_sync()?;
            shards[*i].advance_fence(ts);
        }
        Ok(ts)
    }

    /// Aborts `txn`, erasing its pending writes on every shard it touched.
    pub fn abort_txn(&self, txn: TxnId) -> TsbResult<()> {
        let parts = self.take_participants(txn)?;
        for (shard, local) in parts {
            self.inner.shards[shard].abort_txn(local)?;
        }
        Ok(())
    }

    // ----- reads ----------------------------------------------------------

    /// The newest committed value of `key`, from its home shard.
    pub fn get_current(&self, key: &Key) -> TsbResult<Option<Vec<u8>>> {
        self.shard_for(key).get_current(key)
    }

    /// The value of `key` as of `ts`, from its home shard.
    pub fn get_as_of(&self, key: &Key, ts: Timestamp) -> TsbResult<Option<Vec<u8>>> {
        self.shard_for(key).get_as_of(key, ts)
    }

    /// The full version record governing `(key, ts)`.
    pub fn get_version_as_of(&self, key: &Key, ts: Timestamp) -> TsbResult<Option<Version>> {
        self.shard_for(key).get_version_as_of(key, ts)
    }

    /// Whether `key` currently exists.
    pub fn contains_key(&self, key: &Key) -> TsbResult<bool> {
        self.shard_for(key).contains_key(key)
    }

    /// Every committed version of `key`, oldest first.
    pub fn versions(&self, key: &Key) -> TsbResult<Vec<Version>> {
        self.shard_for(key).versions(key)
    }

    /// Number of committed versions stored for `key`.
    pub fn version_count(&self, key: &Key) -> TsbResult<usize> {
        self.shard_for(key).version_count(key)
    }

    /// Every committed version of `key` in `window`, oldest first.
    pub fn history_between(&self, key: &Key, window: TimeRange) -> TsbResult<Vec<Version>> {
        self.shard_for(key).history_between(key, window)
    }

    /// Every `(key, value)` in `range` as of `ts`, merged across shards in
    /// key order.
    pub fn scan_as_of(&self, range: &KeyRange, ts: Timestamp) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        self.merge_rows(|s| s.scan_as_of(range, ts))
    }

    /// Every key currently alive in `range`, merged in key order.
    pub fn scan_current(&self, range: &KeyRange) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        self.merge_rows(|s| s.scan_current(range))
    }

    /// A full-database snapshot as of `ts`, merged in key order.
    pub fn snapshot_at(&self, ts: Timestamp) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        self.merge_rows(|s| s.snapshot_at(ts))
    }

    /// Number of keys alive in `range` as of `ts`, summed across shards.
    pub fn count_as_of(&self, range: &KeyRange, ts: Timestamp) -> TsbResult<usize> {
        let mut n = 0;
        for s in &self.inner.shards {
            n += s.count_as_of(range, ts)?;
        }
        Ok(n)
    }

    /// Every committed version in the `keys` × `window` rectangle, merged
    /// in (key, commit time) order.
    pub fn scan_versions(&self, keys: &KeyRange, window: TimeRange) -> TsbResult<Vec<Version>> {
        let mut out = Vec::new();
        for s in &self.inner.shards {
            out.extend(s.scan_versions(keys, window)?);
        }
        out.sort_by(|a, b| (&a.key, a.state.commit_time()).cmp(&(&b.key, b.state.commit_time())));
        Ok(out)
    }

    /// The keys in `keys` that changed during `window`, merged in key
    /// order.
    pub fn changed_keys_between(&self, keys: &KeyRange, window: TimeRange) -> TsbResult<Vec<Key>> {
        let mut out = Vec::new();
        for s in &self.inner.shards {
            out.extend(s.changed_keys_between(keys, window)?);
        }
        out.sort();
        Ok(out)
    }

    /// Runs a per-shard row query and merges the results in key order (the
    /// hash partition makes per-shard key sets disjoint, so a sort of the
    /// concatenation is a correct merge).
    fn merge_rows(
        &self,
        f: impl Fn(&ConcurrentTsb) -> TsbResult<Vec<(Key, Vec<u8>)>>,
    ) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        let mut out = Vec::new();
        for s in &self.inner.shards {
            out.extend(f(s)?);
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    // ----- snapshots and the fence ----------------------------------------

    /// The newest timestamp at which *every* shard is known fully
    /// installed (the minimum of the per-shard install fences). Reads
    /// pinned at or before it are stable on all shards without taking any
    /// lock.
    pub fn last_installed(&self) -> Timestamp {
        self.inner
            .shards
            .iter()
            .map(|s| s.last_installed())
            .min()
            .unwrap_or(Timestamp::ZERO)
    }

    /// Begins a read-only transaction pinned at one global fence
    /// timestamp, consistent across every shard: the newest ticked commit
    /// timestamp `T`, with every shard's install fence raised to at least
    /// `T` before the snapshot is handed out (see the [module docs](self)).
    /// Includes every write acknowledged before this call, on any shard.
    pub fn begin_snapshot(&self) -> ShardedSnapshot {
        let ts = self.inner.clock.now().prev();
        self.pin_all(ts);
        ShardedSnapshot {
            db: self.clone(),
            ts,
        }
    }

    /// A read-only view pinned at an explicit past timestamp, fence-pinned
    /// on every shard. Stability is only guaranteed for timestamps at or
    /// below the newest ticked commit time (later ones may still be
    /// assigned to in-flight writes).
    pub fn snapshot_as_of(&self, ts: Timestamp) -> ShardedSnapshot {
        self.pin_all(ts.min(self.inner.clock.now().prev()));
        ShardedSnapshot {
            db: self.clone(),
            ts,
        }
    }

    fn pin_all(&self, ts: Timestamp) {
        for s in &self.inner.shards {
            s.pin_fence_at_least(ts);
        }
    }

    // ----- maintenance and passthroughs -----------------------------------

    /// Checkpoints every shard: each fences its own redo log
    /// independently.
    pub fn checkpoint(&self) -> TsbResult<()> {
        for s in &self.inner.shards {
            s.checkpoint()?;
        }
        Ok(())
    }

    /// Verifies the structural invariants of every shard.
    pub fn verify(&self) -> TsbResult<()> {
        for s in &self.inner.shards {
            s.verify()?;
        }
        Ok(())
    }

    /// The newest durable commit timestamp across all shards (`None` if no
    /// shard was produced by recovery).
    pub fn last_durable_commit(&self) -> Option<Timestamp> {
        self.inner
            .shards
            .iter()
            .filter_map(|s| s.last_durable_commit())
            .max()
    }

    /// Whether the shards redo-log their mutations.
    pub fn is_durable(&self) -> bool {
        self.inner.shards.iter().all(|s| s.is_durable())
    }

    /// The current global logical time (next commit timestamp on any
    /// shard).
    pub fn now(&self) -> Timestamp {
        self.inner.clock.now()
    }

    /// The tree configuration (identical on every shard).
    pub fn config(&self) -> &TsbConfig {
        self.inner.shards[0].config()
    }

    /// One engine-wide view of the I/O counters: the sum of every shard's
    /// [`tsb_storage::IoStats`] snapshot.
    pub fn io_snapshot(&self) -> IoSnapshot {
        let mut merged = self.inner.shards[0].io_stats().snapshot();
        for s in &self.inner.shards[1..] {
            merged = merged.merge(&s.io_stats().snapshot());
        }
        merged
    }

    /// Wires `injector` into every write site of every shard — all three
    /// devices per shard plus the cross-shard `TwoPcAck` window — so one
    /// armed trigger can crash the engine anywhere in the sharded write or
    /// two-phase-fence path.
    pub fn set_fault_injector(&self, injector: Arc<FaultInjector>) {
        for s in &self.inner.shards {
            s.tree().set_fault_injector(&injector);
        }
        *self.inner.fault.lock() = Some(injector);
    }
}

impl From<ConcurrentTsb> for ShardedTsb {
    fn from(db: ConcurrentTsb) -> Self {
        ShardedTsb::single(db)
    }
}

/// The shard `key` routes to under an `n`-way partition — exposed for
/// tests that need the routing function without an engine.
pub fn shard_of(key: &Key, n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    (fnv1a64(key.as_bytes()) % n as u64) as usize
}

fn check_shard_count(shards: usize) -> TsbResult<()> {
    if shards == 0 || shards > MAX_SHARDS {
        return Err(TsbError::config(format!(
            "shard count must be in 1..={MAX_SHARDS}, got {shards}"
        )));
    }
    Ok(())
}

/// Reads the shard count from a manifest, `None` if the file is absent.
fn read_manifest(path: &Path) -> TsbResult<Option<usize>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut lines = text.lines();
    let magic = lines.next().unwrap_or_default();
    if magic != MANIFEST_MAGIC {
        return Err(TsbError::corruption(format!(
            "unrecognized shard manifest header {magic:?} in {}",
            path.display()
        )));
    }
    let count = lines
        .next()
        .and_then(|l| l.strip_prefix("shards "))
        .and_then(|n| n.parse::<usize>().ok())
        .ok_or_else(|| {
            TsbError::corruption(format!(
                "shard manifest {} has no shard count",
                path.display()
            ))
        })?;
    if count == 0 || count > MAX_SHARDS {
        return Err(TsbError::corruption(format!(
            "shard manifest {} names an impossible shard count {count}",
            path.display()
        )));
    }
    Ok(Some(count))
}

/// Writes the manifest durably: temp file, fsync, rename, directory
/// fsync — the count must never be lost or torn, or every key would route
/// to the wrong shard.
fn write_manifest(path: &Path, shards: usize) -> TsbResult<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        writeln!(f, "{MANIFEST_MAGIC}")?;
        writeln!(f, "shards {shards}")?;
        writeln!(f, "hash fnv1a64")?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// An owning, thread-safe read-only view of the sharded database pinned
/// to one global fence timestamp — every query answers as of the same
/// instant on every shard, no matter how many writes commit concurrently.
#[derive(Clone, Debug)]
pub struct ShardedSnapshot {
    db: ShardedTsb,
    ts: Timestamp,
}

impl ShardedSnapshot {
    /// The snapshot's pinned read timestamp.
    pub fn timestamp(&self) -> Timestamp {
        self.ts
    }

    /// Reads a key as of the snapshot time.
    pub fn get(&self, key: &Key) -> TsbResult<Option<Vec<u8>>> {
        self.db.get_as_of(key, self.ts)
    }

    /// Scans a key range as of the snapshot time, merged in key order.
    pub fn scan(&self, range: &KeyRange) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        self.db.scan_as_of(range, self.ts)
    }

    /// Dumps the entire database as of the snapshot time.
    pub fn dump(&self) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        self.db.snapshot_at(self.ts)
    }

    /// Number of keys alive in `range` at the snapshot time.
    pub fn count(&self, range: &KeyRange) -> TsbResult<usize> {
        self.db.count_as_of(range, self.ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(shards: usize) -> ShardedTsb {
        crate::TsbOptions::in_memory()
            .config(TsbConfig::small_pages())
            .shards(shards)
            .open()
            .unwrap()
    }

    #[test]
    fn routing_is_a_stable_total_partition() {
        for n in [1usize, 2, 4, 7] {
            for i in 0..500u64 {
                let key = Key::from_u64(i);
                let s = shard_of(&key, n);
                assert!(s < n);
                assert_eq!(s, shard_of(&key, n), "routing must be deterministic");
            }
        }
        // With a few shards every shard receives some keys.
        let n = 4;
        let mut seen = vec![false; n];
        for i in 0..500u64 {
            seen[shard_of(&Key::from_u64(i), n)] = true;
        }
        assert!(seen.iter().all(|s| *s), "a shard received no keys");
    }

    #[test]
    fn timestamps_are_globally_unique_and_monotonic() {
        let db = engine(4);
        let mut last = Timestamp::ZERO;
        for i in 0..200u64 {
            let ts = db.insert(i, format!("v{i}").into_bytes()).unwrap();
            assert!(ts > last, "global commit order must be total");
            last = ts;
        }
        assert_eq!(db.now(), last.next());
    }

    #[test]
    fn reads_route_and_merge() {
        let db = engine(4);
        for i in 0..100u64 {
            db.insert(i, format!("v{i}").into_bytes()).unwrap();
        }
        for i in 0..100u64 {
            assert_eq!(
                db.get_current(&Key::from_u64(i)).unwrap().unwrap(),
                format!("v{i}").into_bytes()
            );
        }
        let rows = db.scan_current(&KeyRange::full()).unwrap();
        assert_eq!(rows.len(), 100);
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0), "merged key order");
    }

    #[test]
    fn cross_shard_transactions_commit_atomically() {
        let db = engine(4);
        let txn = db.begin_txn();
        for i in 0..16u64 {
            db.txn_insert(txn, i, b"txn".to_vec()).unwrap();
        }
        // Nothing visible before commit, own writes visible inside.
        assert!(db.get_current(&Key::from_u64(3)).unwrap().is_none());
        assert_eq!(db.txn_get(txn, &Key::from_u64(3)).unwrap().unwrap(), b"txn");
        let ts = db.commit_txn(txn).unwrap();
        for i in 0..16u64 {
            let v = db
                .get_version_as_of(&Key::from_u64(i), ts)
                .unwrap()
                .expect("committed");
            assert_eq!(v.state.commit_time(), Some(ts), "one timestamp everywhere");
        }
        db.verify().unwrap();
    }

    #[test]
    fn aborted_cross_shard_transactions_vanish_everywhere() {
        let db = engine(3);
        let txn = db.begin_txn();
        for i in 0..12u64 {
            db.txn_insert(txn, i, b"gone".to_vec()).unwrap();
        }
        db.abort_txn(txn).unwrap();
        for i in 0..12u64 {
            assert!(db.get_current(&Key::from_u64(i)).unwrap().is_none());
        }
        db.verify().unwrap();
    }

    #[test]
    fn snapshots_pin_one_fence_across_shards() {
        let db = engine(4);
        for i in 0..40u64 {
            db.insert(i, b"before".to_vec()).unwrap();
        }
        let snap = db.begin_snapshot();
        // A snapshot taken after an acknowledged write includes it — on
        // every shard, not just the one that acknowledged last.
        assert_eq!(snap.count(&KeyRange::full()).unwrap(), 40);
        let txn = db.begin_txn();
        for i in 0..40u64 {
            db.txn_insert(txn, i, b"after".to_vec()).unwrap();
        }
        db.commit_txn(txn).unwrap();
        for (_, v) in snap.dump().unwrap() {
            assert_eq!(v, b"before".to_vec(), "snapshot saw a post-pin commit");
        }
    }

    #[test]
    fn empty_and_unknown_transactions() {
        let db = engine(2);
        let txn = db.begin_txn();
        db.commit_txn(txn).unwrap();
        assert!(db.commit_txn(txn).is_err(), "already committed");
        assert!(db.txn_insert(txn, 1u64, vec![]).is_err(), "txn is gone");
        assert!(db.abort_txn(TxnId::new(999)).is_err());
    }

    #[test]
    fn shard_count_bounds_are_enforced() {
        assert!(crate::TsbOptions::in_memory()
            .config(TsbConfig::small_pages())
            .shards(0)
            .open()
            .is_err());
        assert!(crate::TsbOptions::in_memory()
            .config(TsbConfig::small_pages())
            .shards(MAX_SHARDS + 1)
            .open()
            .is_err());
    }
}
