//! Data-node split mechanics (§3.1).
//!
//! Pure functions that partition a node's entries for the two kinds of data
//! node split:
//!
//! * **Key split** — "more like those in B+-trees since we need not keep the
//!   old node intact": entries with keys below the split value stay in the
//!   old node, the rest move to one new node. Used when the node is mostly
//!   live data.
//! * **Time split** — the TIME-SPLIT RULE: entries with commit time `< T` go
//!   to the (historical) node, entries `>= T` go to the (current) node, and
//!   for every key the version valid *at* `T` is duplicated into the current
//!   node so that any snapshot at or after `T` can be answered entirely from
//!   the current node. Uncommitted entries always stay current (§4); they
//!   are never migrated and can therefore always be erased.
//!
//! The split *policy* (which kind, which time) lives in
//! [`super::policy`] / [`super::time_choice`]; the orchestration that writes
//! nodes to devices lives in the tree insert path.

use tsb_common::{Key, Timestamp, Version};

/// The two halves of a key split: `(stay, move_right)`.
pub fn partition_by_key(entries: &[Version], split_key: &Key) -> (Vec<Version>, Vec<Version>) {
    let mut left = Vec::new();
    let mut right = Vec::new();
    for e in entries {
        if e.key < *split_key {
            left.push(e.clone());
        } else {
            right.push(e.clone());
        }
    }
    (left, right)
}

/// The result of applying the time-split rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimeSplitParts {
    /// Entries migrated to the historical node (commit time `< T`).
    pub historical: Vec<Version>,
    /// Entries kept in the current node (commit time `>= T`, the rule-3
    /// duplicates valid at `T`, and all uncommitted entries).
    pub current: Vec<Version>,
    /// Number of committed versions present in *both* halves — the
    /// redundancy introduced by this split.
    pub duplicated: usize,
}

/// Applies the paper's TIME-SPLIT RULE at `split_time`.
///
/// Tombstone versions are *not* duplicated into the current node: a key
/// whose governing version at `T` is a tombstone is simply absent from the
/// current node, which answers all queries at or after `T` identically
/// (documented extension; the tombstone itself is preserved in the
/// historical node).
pub fn partition_by_time(entries: &[Version], split_time: Timestamp) -> TimeSplitParts {
    let mut historical = Vec::new();
    let mut current = Vec::new();
    let mut duplicated = 0usize;

    let mut i = 0;
    while i < entries.len() {
        let key = &entries[i].key;
        let group_end = entries[i..]
            .iter()
            .position(|e| e.key != *key)
            .map(|p| i + p)
            .unwrap_or(entries.len());
        let group = &entries[i..group_end];

        // Rule 1 / 2: partition committed versions by the split time.
        for e in group {
            match e.commit_time() {
                Some(t) if t < split_time => historical.push(e.clone()),
                Some(_) => current.push(e.clone()),
                None => current.push(e.clone()), // uncommitted: always current
            }
        }
        // Rule 3: the version valid at `split_time` must be in the current
        // node. That is the committed version with the largest commit time
        // <= split_time (strictly: < split_time would already be historical;
        // == split_time is already current by rule 2).
        let valid_at_split = group
            .iter()
            .rfind(|e| e.commit_time().map(|t| t <= split_time).unwrap_or(false));
        if let Some(v) = valid_at_split {
            let t = v.commit_time().expect("filtered to committed");
            if t < split_time && !v.is_tombstone() {
                current.push(v.clone());
                duplicated += 1;
            }
        }
        i = group_end;
    }

    historical.sort_by(Version::sort_cmp);
    current.sort_by(Version::sort_cmp);
    TimeSplitParts {
        historical,
        current,
        duplicated,
    }
}

/// Chooses the key to split a data node at: the smallest distinct key whose
/// group boundary is at or past half of the node's entry bytes. Returns
/// `None` when the node holds fewer than two distinct keys (a key split
/// would be useless — §3.2's boundary condition).
///
/// `entries` must be sorted by `(key, version order)`, as they are inside a
/// [`crate::node::DataNode`].
pub fn choose_split_key(entries: &[Version]) -> Option<Key> {
    use tsb_common::encode::size;
    if entries.is_empty() {
        return None;
    }
    let total_bytes: usize = entries.iter().map(size::version).sum();
    let mut cumulative = 0usize;
    let mut split: Option<Key> = None;
    let mut i = 0;
    while i < entries.len() {
        let key = &entries[i].key;
        if i > 0 && cumulative * 2 >= total_bytes {
            split = Some(key.clone());
            break;
        }
        let group_end = entries[i..]
            .iter()
            .position(|e| e.key != *key)
            .map(|p| i + p)
            .unwrap_or(entries.len());
        cumulative += entries[i..group_end]
            .iter()
            .map(size::version)
            .sum::<usize>();
        i = group_end;
    }
    match split {
        Some(k) => Some(k),
        None => {
            // Fewer than two groups reached the halfway mark; fall back to
            // the last distinct key if there are at least two distinct keys.
            let first = &entries[0].key;
            let last = &entries[entries.len() - 1].key;
            if first == last {
                None
            } else {
                Some(last.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsb_common::TxnId;

    fn v(key: u64, ts: u64) -> Version {
        Version::committed(key, Timestamp(ts), format!("val-{key}-{ts}").into_bytes())
    }

    fn sorted(mut entries: Vec<Version>) -> Vec<Version> {
        entries.sort_by(Version::sort_cmp);
        entries
    }

    #[test]
    fn key_split_partitions_by_key_only() {
        let entries = sorted(vec![v(50, 1), v(60, 2), v(60, 4), v(70, 3), v(90, 6)]);
        let (left, right) = partition_by_key(&entries, &Key::from_u64(70));
        assert!(left.iter().all(|e| e.key < Key::from_u64(70)));
        assert!(right.iter().all(|e| e.key >= Key::from_u64(70)));
        assert_eq!(left.len(), 3);
        assert_eq!(right.len(), 2);
    }

    #[test]
    fn figure6_time_split_at_t4_has_no_redundancy() {
        // Figure 6: versions of key 60 at T=1 (Joe), T=2 (Pete), T=4 (Mary),
        // then 90 Alice at T=6 arrives. Splitting at T=4: Joe and Pete go to
        // the historical node; Mary (valid at 4, committed at 4) stays
        // current by rule 2 — no duplication.
        let entries = sorted(vec![v(60, 1), v(60, 2), v(60, 4), v(90, 6)]);
        let parts = partition_by_time(&entries, Timestamp(4));
        assert_eq!(parts.historical.len(), 2);
        assert_eq!(parts.current.len(), 2);
        assert_eq!(parts.duplicated, 0);
    }

    #[test]
    fn figure6_time_split_at_t5_duplicates_the_spanning_version() {
        // Splitting at T=5 instead: Mary (T=4) is historical by rule 1 but is
        // the version valid at T=5, so rule 3 copies it into the current
        // node as well.
        let entries = sorted(vec![v(60, 1), v(60, 2), v(60, 4), v(90, 6)]);
        let parts = partition_by_time(&entries, Timestamp(5));
        assert_eq!(parts.historical.len(), 3);
        assert_eq!(parts.current.len(), 2); // Mary duplicate + Alice
        assert_eq!(parts.duplicated, 1);
        // The duplicate really is the T=4 version of key 60.
        assert!(parts
            .current
            .iter()
            .any(|e| e.key == Key::from_u64(60) && e.commit_time() == Some(Timestamp(4))));
        assert!(parts
            .historical
            .iter()
            .any(|e| e.key == Key::from_u64(60) && e.commit_time() == Some(Timestamp(4))));
    }

    #[test]
    fn every_key_with_history_before_t_is_represented_in_the_current_node() {
        // Keys 1..5 each have a single version before T; all must be copied
        // into the current node so snapshots at/after T see them.
        let entries = sorted((1..=5).map(|k| v(k, k)).collect());
        let parts = partition_by_time(&entries, Timestamp(10));
        assert_eq!(parts.historical.len(), 5);
        assert_eq!(parts.current.len(), 5);
        assert_eq!(parts.duplicated, 5);
    }

    #[test]
    fn uncommitted_entries_always_stay_current() {
        let mut entries = sorted(vec![v(1, 1), v(1, 3)]);
        entries.push(Version::uncommitted(1u64, TxnId(7), b"pending".to_vec()));
        let parts = partition_by_time(&entries, Timestamp(5));
        assert!(parts.historical.iter().all(|e| e.state.is_committed()));
        assert!(parts.current.iter().any(|e| e.state.is_uncommitted()));
    }

    #[test]
    fn tombstones_are_not_duplicated_forward() {
        let entries = sorted(vec![
            v(1, 1),
            Version::tombstone(1u64, Timestamp(3)),
            v(2, 4),
        ]);
        let parts = partition_by_time(&entries, Timestamp(5));
        // Key 1's governing version at T=5 is a tombstone: not carried forward.
        assert!(parts.current.iter().all(|e| e.key != Key::from_u64(1)));
        // Key 2's version is duplicated (it is live at T).
        assert!(parts.current.iter().any(|e| e.key == Key::from_u64(2)));
        // Both of key 1's versions are preserved in history.
        assert_eq!(
            parts
                .historical
                .iter()
                .filter(|e| e.key == Key::from_u64(1))
                .count(),
            2
        );
    }

    #[test]
    fn split_key_choice_needs_two_distinct_keys() {
        let single_key = sorted(vec![v(5, 1), v(5, 2), v(5, 3)]);
        assert_eq!(choose_split_key(&single_key), None);
        assert_eq!(choose_split_key(&[]), None);

        let entries = sorted(vec![v(1, 1), v(2, 2), v(3, 3), v(4, 4)]);
        let k = choose_split_key(&entries).unwrap();
        assert!(k > Key::from_u64(1) && k <= Key::from_u64(4));
        // The chosen key must be an actual key (group boundary).
        assert!(entries.iter().any(|e| e.key == k));
    }

    #[test]
    fn split_key_is_byte_balanced() {
        // Key 1 has many versions; the split point should come right after it
        // rather than at the middle key by count.
        let mut entries: Vec<Version> = (1..=20).map(|t| v(1, t)).collect();
        entries.extend((2..=5).map(|k| v(k, 100 + k)));
        let entries = sorted(entries);
        let k = choose_split_key(&entries).unwrap();
        assert_eq!(k, Key::from_u64(2));
    }

    #[test]
    fn time_split_then_reassembled_covers_all_entries() {
        let entries = sorted(vec![v(1, 1), v(1, 5), v(2, 3), v(3, 8), v(4, 2)]);
        let parts = partition_by_time(&entries, Timestamp(5));
        // Every original entry appears in at least one half.
        for e in &entries {
            let in_hist = parts.historical.contains(e);
            let in_cur = parts.current.contains(e);
            assert!(in_hist || in_cur, "entry {e} lost by the split");
        }
        // Historical strictly below T, current at/above T except rule-3 copies.
        assert!(parts
            .historical
            .iter()
            .all(|e| e.commit_time().unwrap() < Timestamp(5)));
    }
}
