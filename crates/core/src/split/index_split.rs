//! Index-node split mechanics (§3.5).
//!
//! Index entries reference nodes that span a key range *and* a time range,
//! so splitting an index node needs rules analogous to the data-node rules:
//!
//! * **Keyspace split** (always possible): the paper's Index Node Keyspace
//!   Split Rule. The split value must be a key actually used as an entry's
//!   lower bound; entries whose key range lies entirely below the value go
//!   left, entirely at/above go right, and entries whose key range
//!   *strictly contains* the value — which are guaranteed to reference
//!   historical nodes — are **copied to both** (Figure 7). This is what
//!   makes the TSB-tree a DAG.
//! * **Local time split** (when possible): find a time `T` before which
//!   *every* reference is to a historical node; entries lying entirely
//!   before `T` migrate to a historical index node, entries spanning `T` are
//!   copied to both, and no entry referencing a current child may end up in
//!   the historical index node (current children can still split, which
//!   would require updating the — write-once — historical index node,
//!   Figure 9). When no such `T` exists the node must be keyspace split
//!   instead (and the blocking child can be marked for a time split at its
//!   next opportunity).

use tsb_common::{Key, Timestamp};

use crate::node::{IndexEntry, IndexNode};

/// Outcome of partitioning an index node's entries at a key value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexKeySplitParts {
    /// Entries for the left node (key ranges at or below the split value,
    /// plus duplicated straddlers).
    pub left: Vec<IndexEntry>,
    /// Entries for the right node.
    pub right: Vec<IndexEntry>,
    /// Number of entries copied into both halves (all of them reference
    /// historical nodes).
    pub duplicated: usize,
}

/// Applies the Index Node Keyspace Split Rule at `split_key`.
pub fn partition_index_by_key(entries: &[IndexEntry], split_key: &Key) -> IndexKeySplitParts {
    let mut left = Vec::new();
    let mut right = Vec::new();
    let mut duplicated = 0usize;
    for e in entries {
        if e.key_range.entirely_below(split_key) {
            left.push(e.clone());
        } else if e.key_range.entirely_at_or_above(split_key) {
            right.push(e.clone());
        } else {
            // Rule 4: the key range strictly contains the split value.
            debug_assert!(e.key_range.strictly_contains(split_key));
            left.push(e.clone());
            right.push(e.clone());
            duplicated += 1;
        }
    }
    IndexKeySplitParts {
        left,
        right,
        duplicated,
    }
}

/// Chooses the key value for an index keyspace split: the median among the
/// distinct entry lower bounds that lie strictly above the node's own lower
/// bound (rule 1: "the split value may be any key value actually used in an
/// index entry in the node"). Returns `None` when no such value exists.
pub fn choose_index_split_key(node: &IndexNode) -> Option<Key> {
    let mut candidates: Vec<&Key> = node
        .entries()
        .iter()
        .map(|e| &e.key_range.lo)
        .filter(|k| **k > node.key_range.lo)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    candidates.sort();
    candidates.dedup();
    Some(candidates[candidates.len() / 2].clone())
}

/// Finds the time `T` for a *local* index time split, if one exists:
/// the earliest start time among entries referencing current children.
///
/// `T` is usable only if it lies strictly after the node's own time-range
/// start and at least one entry lies entirely before it (otherwise nothing
/// would migrate). Returns `None` when the node cannot be locally time split
/// — the Figure 9 situation, where an old current child still holds data
/// from before every candidate time.
pub fn local_time_split_point(node: &IndexNode) -> Option<Timestamp> {
    let t = node
        .entries()
        .iter()
        .filter(|e| e.is_current())
        .map(|e| e.time_range.lo)
        .min()?;
    if t <= node.time_range.lo {
        return None;
    }
    // At least one entry must lie entirely before T for the split to migrate
    // anything.
    let migrates = node
        .entries()
        .iter()
        .any(|e| matches!(e.time_range.hi, tsb_common::TimeBound::Finite(h) if h <= t));
    if migrates {
        Some(t)
    } else {
        None
    }
}

/// Outcome of partitioning an index node's entries at a time value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexTimeSplitParts {
    /// Entries for the historical index node (time ranges intersecting
    /// `[node start, T)`).
    pub historical: Vec<IndexEntry>,
    /// Entries kept in the current index node (time ranges intersecting
    /// `[T, +∞)`).
    pub current: Vec<IndexEntry>,
    /// Entries present in both halves (they span `T`; all reference
    /// historical children).
    pub duplicated: usize,
}

/// Partitions index entries at time `T` for a local time split.
///
/// The caller must have obtained `T` from [`local_time_split_point`], which
/// guarantees that every entry intersecting `[.., T)` references a
/// historical child.
pub fn partition_index_by_time(
    entries: &[IndexEntry],
    split_time: Timestamp,
) -> IndexTimeSplitParts {
    let mut historical = Vec::new();
    let mut current = Vec::new();
    let mut duplicated = 0usize;
    for e in entries {
        let starts_before = e.time_range.lo < split_time;
        // The entry's half-open time range contains some time >= split_time
        // exactly when its upper bound is above split_time.
        let extends_at_or_past = match e.time_range.hi {
            tsb_common::TimeBound::Infinity => true,
            tsb_common::TimeBound::Finite(h) => h > split_time,
        };
        if starts_before {
            historical.push(e.clone());
        }
        if extends_at_or_past {
            current.push(e.clone());
        }
        if starts_before && extends_at_or_past {
            duplicated += 1;
        }
    }
    IndexTimeSplitParts {
        historical,
        current,
        duplicated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeAddr;
    use tsb_common::{KeyBound, KeyRange, TimeRange};
    use tsb_storage::{HistAddr, PageId};

    fn kr(lo: Option<u64>, hi: Option<u64>) -> KeyRange {
        let lo = lo.map(Key::from_u64).unwrap_or(Key::MIN);
        let hi = hi
            .map(|h| KeyBound::Finite(Key::from_u64(h)))
            .unwrap_or(KeyBound::PlusInfinity);
        KeyRange::new(lo, hi)
    }

    fn cur(page: u64, key: KeyRange, from: u64) -> IndexEntry {
        IndexEntry::new(
            key,
            TimeRange::from(Timestamp(from)),
            NodeAddr::Current(PageId(page)),
        )
    }

    fn hist(off: u64, key: KeyRange, lo: u64, hi: u64) -> IndexEntry {
        IndexEntry::new(
            key,
            TimeRange::bounded(Timestamp(lo), Timestamp(hi)),
            NodeAddr::Historical(HistAddr::new(off, 64)),
        )
    }

    /// The Figure 7 situation: a historical child spans keys [50, +inf)
    /// across old times because the key range was refined (time split, then
    /// key split) after it was written.
    fn figure7_node() -> IndexNode {
        IndexNode::from_entries(
            KeyRange::full(),
            TimeRange::full(),
            vec![
                hist(0, kr(None, Some(50)), 0, 8),  // old left part
                hist(64, kr(Some(50), None), 0, 7), // old right part (straddles 100)
                cur(1, kr(None, Some(50)), 8),
                cur(2, kr(Some(50), Some(100)), 7),
                cur(3, kr(Some(100), None), 7),
            ],
        )
    }

    #[test]
    fn keyspace_split_duplicates_only_straddling_historical_entries() {
        let node = figure7_node();
        node.validate().unwrap();
        let parts = partition_index_by_key(node.entries(), &Key::from_u64(100));
        assert_eq!(parts.duplicated, 1);
        // The duplicated entry is the historical [50, +inf) one.
        let dup: Vec<_> = parts
            .left
            .iter()
            .filter(|e| parts.right.contains(e))
            .collect();
        assert_eq!(dup.len(), 1);
        assert!(dup[0].child.is_historical());
        // Left gets everything ending at or below 100, right the rest.
        assert_eq!(parts.left.len(), 4);
        assert_eq!(parts.right.len(), 2);
    }

    #[test]
    fn split_key_must_be_an_entry_lower_bound() {
        let node = figure7_node();
        let k = choose_index_split_key(&node).unwrap();
        assert!(node.entries().iter().any(|e| e.key_range.lo == k));
        assert!(k > node.key_range.lo);

        // A node whose entries all share the node's own lower bound offers no
        // split value.
        let no_candidates = IndexNode::from_entries(
            KeyRange::full(),
            TimeRange::full(),
            vec![hist(0, kr(None, None), 0, 4), cur(1, kr(None, None), 4)],
        );
        assert_eq!(choose_index_split_key(&no_candidates), None);
    }

    #[test]
    fn local_time_split_point_exists_when_all_old_references_are_historical() {
        // Figure 8-like: a current child starting at T=4 and historical
        // children entirely before T=4.
        let node = IndexNode::from_entries(
            KeyRange::full(),
            TimeRange::full(),
            vec![
                hist(0, kr(None, None), 0, 4),
                cur(1, kr(None, Some(50)), 4),
                cur(2, kr(Some(50), None), 4),
            ],
        );
        assert_eq!(local_time_split_point(&node), Some(Timestamp(4)));
    }

    #[test]
    fn local_time_split_blocked_by_an_old_current_child() {
        // Figure 9-like: one current child still starts at time 0 — every
        // candidate T would strand a current reference in the historical
        // index node.
        let node = IndexNode::from_entries(
            KeyRange::full(),
            TimeRange::full(),
            vec![
                hist(0, kr(None, Some(50)), 0, 4),
                cur(1, kr(None, Some(50)), 4),
                cur(2, kr(Some(50), None), 0), // never time split
            ],
        );
        assert_eq!(local_time_split_point(&node), None);

        // A node that was itself just created by a time split at 4 cannot
        // split again at 4.
        let fresh = IndexNode::from_entries(
            KeyRange::full(),
            TimeRange::from(Timestamp(4)),
            vec![cur(1, kr(None, None), 4)],
        );
        assert_eq!(local_time_split_point(&fresh), None);
    }

    #[test]
    fn time_partition_keeps_current_references_out_of_the_historical_node() {
        let node = figure7_node();
        // min current start = 7
        let t = local_time_split_point(&node).unwrap();
        assert_eq!(t, Timestamp(7));
        let parts = partition_index_by_time(node.entries(), t);
        assert!(parts.historical.iter().all(|e| e.child.is_historical()));
        // Every current reference stays in the current node.
        assert_eq!(
            parts
                .current
                .iter()
                .filter(|e| e.child.is_current())
                .count(),
            3
        );
        // The historical entry [0, 8) spans T=7 and is duplicated.
        assert_eq!(parts.duplicated, 1);
        // Nothing is lost.
        for e in node.entries() {
            assert!(parts.historical.contains(e) || parts.current.contains(e));
        }
    }

    #[test]
    fn time_partition_boundary_cases() {
        // An entry ending exactly at T belongs only to the historical half.
        let e_end_at_t = hist(0, kr(None, None), 0, 5);
        // An entry starting exactly at T belongs only to the current half.
        let e_start_at_t = cur(1, kr(None, None), 5);
        let parts =
            partition_index_by_time(&[e_end_at_t.clone(), e_start_at_t.clone()], Timestamp(5));
        assert_eq!(parts.historical, vec![e_end_at_t]);
        assert_eq!(parts.current, vec![e_start_at_t]);
        assert_eq!(parts.duplicated, 0);
    }
}
