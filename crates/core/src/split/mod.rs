//! Node splitting: policy (key vs. time), split-time choice, and the pure
//! partitioning mechanics for data and index nodes.
//!
//! The TSB-tree's contribution over the WOBT is concentrated here (§3):
//! pure B+-tree-style key splits, time splits at a *chosen* time rather than
//! the current time, the TIME-SPLIT RULE that keeps the version valid at the
//! split time in the current node, the Index Node Keyspace Split Rule that
//! duplicates straddling historical references, and local index time splits
//! constrained to never place a current reference in a write-once index
//! node.
//!
//! The functions in these modules are pure (they operate on entry slices and
//! return partitions); the tree's insert path performs the device I/O.

pub mod data_split;
pub mod index_split;
pub mod policy;
pub mod time_choice;

pub use data_split::{choose_split_key, partition_by_key, partition_by_time, TimeSplitParts};
pub use index_split::{
    choose_index_split_key, local_time_split_point, partition_index_by_key,
    partition_index_by_time, IndexKeySplitParts, IndexTimeSplitParts,
};
pub use policy::{plan_data_split, SplitPlan};
pub use time_choice::choose_split_time;
