//! Deciding whether to split a full data node by key or by time (§3.2).
//!
//! The paper fixes two boundary conditions and leaves the interior to an
//! adjustable policy:
//!
//! * a node containing only insertions (every entry is current) must be
//!   **key split** — time splitting would migrate nothing and duplicate
//!   everything;
//! * a node containing only versions of a single record must be **time
//!   split** — there is no key to split on;
//! * in between, "the more out-of-date (historical) data is on a node, the
//!   more likely it is that time splitting should be used", and the choice
//!   may be driven by the cost function `CS = SpaceM·CM + SpaceO·CO`.
//!
//! [`plan_data_split`] applies the boundary conditions first and then the
//! configured [`SplitPolicyKind`].

use tsb_common::{
    Key, SplitPolicyKind, SplitTimeChoice, Timestamp, TsbConfig, TsbError, TsbResult,
};

use crate::node::DataNode;

use super::data_split::choose_split_key;
use super::time_choice::choose_split_time;

/// The plan for splitting a full data node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SplitPlan {
    /// Split the key space at `split_key`; both halves stay current.
    Key {
        /// Keys `>= split_key` move to the new right node.
        split_key: Key,
    },
    /// Split time at `split_time`; the older half migrates to the historical
    /// store. (The executor may follow up with a key split of the surviving
    /// current node if it still overflows — the WOBT's "split by key value
    /// and current time".)
    Time {
        /// The split time `T` of the TIME-SPLIT RULE.
        split_time: Timestamp,
    },
}

/// Chooses how to split `node`, which has overflowed its page.
///
/// `now` is the current logical time (used by WOBT-style current-time splits
/// and as the fallback split time). Returns an error only when neither kind
/// of split is possible, which means a single version is too large for a
/// page — callers reject such versions at the API boundary, so reaching the
/// error indicates a bug.
pub fn plan_data_split(
    node: &DataNode,
    cfg: &TsbConfig,
    now: Timestamp,
    page_capacity: usize,
) -> TsbResult<SplitPlan> {
    let comp = node.composition();
    let key_candidate = choose_split_key(node.entries());
    let time_choice = match cfg.split_policy {
        // The WOBT has no freedom: it always splits at the current time.
        SplitPolicyKind::WobtLike => SplitTimeChoice::CurrentTime,
        _ => cfg.split_time_choice,
    };
    let time_candidate = choose_split_time(time_choice, &comp, node.time_range.lo, now);

    match (key_candidate, time_candidate) {
        (None, None) => Err(TsbError::EntryTooLarge {
            entry_size: node.encoded_size(),
            capacity: page_capacity,
        }),
        // Boundary condition: nothing to migrate — key split is forced.
        (Some(k), None) => Ok(SplitPlan::Key { split_key: k }),
        // Boundary condition: single key — time split is forced.
        (None, Some(t)) => Ok(SplitPlan::Time { split_time: t }),
        (Some(split_key), Some(split_time)) => {
            // §3.2 boundary condition: "if only insertion has occurred in a
            // full node requiring splitting ... time splitting by itself is
            // useless. Key space splitting must be done." Every committed
            // entry being live means nothing would migrate — only the WOBT
            // emulation ignores this (the real WOBT has no choice but to
            // copy all current data forward).
            if comp.historical_entries == 0
                && !matches!(cfg.split_policy, SplitPolicyKind::WobtLike)
            {
                return Ok(SplitPlan::Key { split_key });
            }
            let plan = match cfg.split_policy {
                SplitPolicyKind::WobtLike | SplitPolicyKind::TimePreferring => {
                    SplitPlan::Time { split_time }
                }
                SplitPolicyKind::KeyPreferring | SplitPolicyKind::KeyOnly => {
                    SplitPlan::Key { split_key }
                }
                SplitPolicyKind::Threshold {
                    key_split_live_fraction,
                } => {
                    if comp.live_fraction() >= key_split_live_fraction {
                        SplitPlan::Key { split_key }
                    } else {
                        SplitPlan::Time { split_time }
                    }
                }
                SplitPolicyKind::CostBased => cost_based_plan(node, cfg, split_key, split_time),
            };
            Ok(plan)
        }
    }
}

/// Picks the split kind that adds the least storage cost under the
/// configured `CS = SpaceM·CM + SpaceO·CO` parameters.
///
/// * A key split allocates one more magnetic page: `ΔCS = CM · page_size`.
/// * A time split appends the migrated entries (rounded up to whole WORM
///   sectors) to the historical store: `ΔCS = CO · sectors · sector_size`.
///   The magnetic footprint is unchanged (the surviving current node keeps
///   its page).
fn cost_based_plan(
    node: &DataNode,
    cfg: &TsbConfig,
    split_key: Key,
    split_time: Timestamp,
) -> SplitPlan {
    use tsb_common::encode::size;
    let hist_bytes: usize = node
        .entries()
        .iter()
        .filter(|e| e.commit_time().map(|t| t < split_time).unwrap_or(false))
        .map(size::version)
        .sum();
    let hist_sectors = hist_bytes.div_ceil(cfg.worm_sector_size);
    let time_cost = cfg.cost.worm_cost_per_byte * (hist_sectors * cfg.worm_sector_size) as f64;
    let key_cost = cfg.cost.magnetic_cost_per_byte * cfg.page_size as f64;
    if time_cost <= key_cost {
        SplitPlan::Time { split_time }
    } else {
        SplitPlan::Key { split_key }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsb_common::{CostParams, KeyRange, TimeRange, Version};

    fn node_with(entries: Vec<Version>) -> DataNode {
        DataNode::from_entries(KeyRange::full(), TimeRange::full(), entries)
    }

    fn v(key: u64, ts: u64) -> Version {
        Version::committed(key, Timestamp(ts), vec![b'x'; 32])
    }

    fn insert_only_node() -> DataNode {
        node_with((1..=8).map(|k| v(k, k)).collect())
    }

    fn update_only_node() -> DataNode {
        node_with((1..=8).map(|t| v(42, t)).collect())
    }

    fn mixed_node() -> DataNode {
        // Keys 1..4, each updated twice: half the committed entries are
        // superseded.
        let mut entries = Vec::new();
        for k in 1..=4u64 {
            entries.push(v(k, k));
            entries.push(v(k, k + 10));
        }
        node_with(entries)
    }

    fn cfg(policy: SplitPolicyKind) -> TsbConfig {
        TsbConfig::small_pages().with_split_policy(policy)
    }

    #[test]
    fn insert_only_nodes_are_key_split_under_every_policy_except_wobt() {
        // Boundary condition from §3.2: with LastUpdate time choice there is
        // no admissible split time... except the fallback to "now". The
        // threshold policy still picks a key split because everything is live.
        for policy in [
            SplitPolicyKind::Threshold {
                key_split_live_fraction: 0.66,
            },
            SplitPolicyKind::KeyPreferring,
            SplitPolicyKind::KeyOnly,
        ] {
            let plan =
                plan_data_split(&insert_only_node(), &cfg(policy), Timestamp(100), 256).unwrap();
            assert!(matches!(plan, SplitPlan::Key { .. }), "{policy:?}");
        }
    }

    #[test]
    fn single_key_nodes_are_time_split_under_every_policy() {
        for policy in [
            SplitPolicyKind::Threshold {
                key_split_live_fraction: 0.66,
            },
            SplitPolicyKind::KeyPreferring,
            SplitPolicyKind::KeyOnly,
            SplitPolicyKind::TimePreferring,
            SplitPolicyKind::WobtLike,
            SplitPolicyKind::CostBased,
        ] {
            let plan =
                plan_data_split(&update_only_node(), &cfg(policy), Timestamp(100), 256).unwrap();
            assert!(matches!(plan, SplitPlan::Time { .. }), "{policy:?}");
        }
    }

    #[test]
    fn threshold_policy_splits_by_live_fraction() {
        // Mixed node: live fraction is 0.5.
        let node = mixed_node();
        let key_plan = plan_data_split(
            &node,
            &cfg(SplitPolicyKind::Threshold {
                key_split_live_fraction: 0.4,
            }),
            Timestamp(100),
            256,
        )
        .unwrap();
        assert!(matches!(key_plan, SplitPlan::Key { .. }));

        let time_plan = plan_data_split(
            &node,
            &cfg(SplitPolicyKind::Threshold {
                key_split_live_fraction: 0.9,
            }),
            Timestamp(100),
            256,
        )
        .unwrap();
        assert!(matches!(time_plan, SplitPlan::Time { .. }));
    }

    #[test]
    fn wobt_policy_time_splits_at_the_current_time() {
        let plan = plan_data_split(
            &mixed_node(),
            &cfg(SplitPolicyKind::WobtLike),
            Timestamp(99),
            256,
        )
        .unwrap();
        assert_eq!(
            plan,
            SplitPlan::Time {
                split_time: Timestamp(99)
            }
        );
        // Even an insert-only node gets a time split under the WOBT: all of
        // its current data will be duplicated (the waste §2.6 describes).
        let plan = plan_data_split(
            &insert_only_node(),
            &cfg(SplitPolicyKind::WobtLike),
            Timestamp(99),
            256,
        )
        .unwrap();
        assert!(matches!(plan, SplitPlan::Time { .. }));
    }

    #[test]
    fn last_update_choice_picks_the_last_update_time() {
        let config = cfg(SplitPolicyKind::TimePreferring)
            .with_split_time_choice(SplitTimeChoice::LastUpdate);
        let plan = plan_data_split(&mixed_node(), &config, Timestamp(100), 256).unwrap();
        assert_eq!(
            plan,
            SplitPlan::Time {
                split_time: Timestamp(14) // last update: key 4 updated at 14
            }
        );
    }

    #[test]
    fn cost_based_policy_follows_the_price_ratio() {
        // Expensive WORM storage relative to magnetic: prefer the key split.
        let mut expensive_worm = cfg(SplitPolicyKind::CostBased);
        expensive_worm.cost = CostParams {
            magnetic_cost_per_byte: 1.0,
            worm_cost_per_byte: 100.0,
            ..CostParams::default()
        };
        let plan = plan_data_split(&mixed_node(), &expensive_worm, Timestamp(100), 256).unwrap();
        assert!(matches!(plan, SplitPlan::Key { .. }));

        // Cheap WORM storage (the realistic case): prefer the time split.
        let mut cheap_worm = cfg(SplitPolicyKind::CostBased);
        cheap_worm.cost = CostParams {
            magnetic_cost_per_byte: 100.0,
            worm_cost_per_byte: 1.0,
            ..CostParams::default()
        };
        let plan = plan_data_split(&mixed_node(), &cheap_worm, Timestamp(100), 256).unwrap();
        assert!(matches!(plan, SplitPlan::Time { .. }));
    }

    #[test]
    fn impossible_split_is_an_error() {
        // A node holding a single uncommitted entry can be neither key split
        // (one key) nor time split (nothing committed).
        let node = node_with(vec![Version::uncommitted(
            1u64,
            tsb_common::TxnId(1),
            vec![0u8; 500],
        )]);
        let err = plan_data_split(&node, &cfg(SplitPolicyKind::default()), Timestamp(10), 256)
            .unwrap_err();
        assert!(matches!(err, TsbError::EntryTooLarge { .. }));
    }
}
