//! Choosing the split time for a time split (§3.3).
//!
//! The WOBT is forced to split at the *current* time because the old node
//! has already been burned to the optical disk. The TSB-tree's current nodes
//! are erasable, so "any convenient time more recent than the last time
//! split for the node can be chosen as the split value". The choice controls
//! redundancy (Figure 6): splitting at the time of the last update keeps
//! trailing insertions out of the historical node; pushing the split time
//! further back moves less data to the historical store at the price of
//! keeping historical data on the magnetic disk.

use tsb_common::{SplitTimeChoice, Timestamp};

use crate::node::DataComposition;

/// Picks the timestamp to use for a time split of a data node, or `None` if
/// no valid split time exists (e.g. the node holds only insertions that are
/// all newer than any admissible split point, or only uncommitted data).
///
/// A valid split time `T` must satisfy:
///
/// * `node_lo < T <= now` — more recent than the node's last time split and
///   not in the future;
/// * at least one committed entry has commit time `< T` — otherwise the
///   historical node would be empty and the split useless.
pub fn choose_split_time(
    choice: SplitTimeChoice,
    comp: &DataComposition,
    node_lo: Timestamp,
    now: Timestamp,
) -> Option<Timestamp> {
    let candidate = match choice {
        SplitTimeChoice::CurrentTime => Some(now),
        SplitTimeChoice::LastUpdate => comp.last_update_time,
        SplitTimeChoice::MedianVersion => comp.median_commit_time,
    };
    let validate = |t: Timestamp| -> Option<Timestamp> {
        if t <= node_lo || t > now {
            return None;
        }
        match comp.min_commit_time {
            Some(min) if min < t => Some(t),
            _ => None,
        }
    };
    match candidate.and_then(validate) {
        Some(t) => Some(t),
        None if choice != SplitTimeChoice::CurrentTime => {
            // Fall back to the WOBT behaviour when the preferred choice is
            // not admissible (e.g. LastUpdate on a node whose only update is
            // also its oldest committed entry).
            validate(now)
        }
        None => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comp(min: Option<u64>, median: Option<u64>, last_update: Option<u64>) -> DataComposition {
        DataComposition {
            total_entries: 4,
            distinct_keys: 2,
            live_entries: 2,
            historical_entries: 2,
            uncommitted_entries: 0,
            entry_bytes: 400,
            live_entry_bytes: 200,
            last_update_time: last_update.map(Timestamp),
            median_commit_time: median.map(Timestamp),
            min_commit_time: min.map(Timestamp),
            max_commit_time: median.map(|m| Timestamp(m + 10)),
        }
    }

    #[test]
    fn current_time_choice_requires_history_before_now() {
        let c = comp(Some(3), Some(5), Some(6));
        assert_eq!(
            choose_split_time(
                SplitTimeChoice::CurrentTime,
                &c,
                Timestamp(0),
                Timestamp(10)
            ),
            Some(Timestamp(10))
        );
        // Node freshly time-split at 10: now == node_lo, no valid time.
        assert_eq!(
            choose_split_time(
                SplitTimeChoice::CurrentTime,
                &c,
                Timestamp(10),
                Timestamp(10)
            ),
            None
        );
        // No committed history at all.
        let empty = comp(None, None, None);
        assert_eq!(
            choose_split_time(
                SplitTimeChoice::CurrentTime,
                &empty,
                Timestamp(0),
                Timestamp(10)
            ),
            None
        );
    }

    #[test]
    fn last_update_choice_uses_the_last_update_and_falls_back() {
        let c = comp(Some(1), Some(4), Some(6));
        assert_eq!(
            choose_split_time(SplitTimeChoice::LastUpdate, &c, Timestamp(0), Timestamp(10)),
            Some(Timestamp(6))
        );
        // All versions are fresh inserts: no updates, fall back to "now".
        let inserts_only = comp(Some(2), Some(4), None);
        assert_eq!(
            choose_split_time(
                SplitTimeChoice::LastUpdate,
                &inserts_only,
                Timestamp(0),
                Timestamp(10)
            ),
            Some(Timestamp(10))
        );
        // The single update is also the oldest entry: T must leave something
        // older than it; fall back to now.
        let degenerate = comp(Some(6), Some(6), Some(6));
        assert_eq!(
            choose_split_time(
                SplitTimeChoice::LastUpdate,
                &degenerate,
                Timestamp(0),
                Timestamp(10)
            ),
            Some(Timestamp(10))
        );
    }

    #[test]
    fn median_choice() {
        let c = comp(Some(1), Some(5), Some(8));
        assert_eq!(
            choose_split_time(
                SplitTimeChoice::MedianVersion,
                &c,
                Timestamp(0),
                Timestamp(10)
            ),
            Some(Timestamp(5))
        );
        // Median not above the node's start: fall back to now.
        assert_eq!(
            choose_split_time(
                SplitTimeChoice::MedianVersion,
                &c,
                Timestamp(5),
                Timestamp(10)
            ),
            Some(Timestamp(10))
        );
    }

    #[test]
    fn split_time_never_exceeds_now_or_precedes_node_start() {
        let c = comp(Some(1), Some(20), Some(15));
        // Median (20) is beyond "now" (10): falls back to now.
        assert_eq!(
            choose_split_time(
                SplitTimeChoice::MedianVersion,
                &c,
                Timestamp(0),
                Timestamp(10)
            ),
            Some(Timestamp(10))
        );
        for choice in [
            SplitTimeChoice::CurrentTime,
            SplitTimeChoice::LastUpdate,
            SplitTimeChoice::MedianVersion,
        ] {
            if let Some(t) = choose_split_time(choice, &c, Timestamp(3), Timestamp(10)) {
                assert!(t > Timestamp(3) && t <= Timestamp(10));
            }
        }
    }
}
