//! Tree-level statistics: exactly the quantities the paper's planned
//! evaluation names (§5) — total space use, space use in the current
//! database, and the amount of redundancy — plus node counts and WORM
//! utilization.

use std::collections::HashSet;
use std::fmt;

use tsb_common::{Timestamp, TsbResult};
use tsb_storage::SpaceSnapshot;

use crate::node::{Node, NodeAddr};
use crate::tree::TsbTree;

/// A full structural census of a TSB-tree.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeStats {
    /// Data nodes on the magnetic (current) store.
    pub current_data_nodes: usize,
    /// Index nodes on the magnetic store.
    pub current_index_nodes: usize,
    /// Data nodes on the WORM (historical) store.
    pub historical_data_nodes: usize,
    /// Index nodes on the WORM store.
    pub historical_index_nodes: usize,
    /// Committed version copies stored across all data nodes (each physical
    /// copy counted, including rule-3 duplicates).
    pub version_copies: usize,
    /// Distinct logical versions (unique `(key, commit time)` pairs).
    pub distinct_versions: usize,
    /// Redundant copies: `version_copies - distinct_versions`.
    pub redundant_copies: usize,
    /// Uncommitted versions currently resident.
    pub uncommitted_versions: usize,
    /// Live entries in current data nodes (the current database's records).
    pub live_versions: usize,
    /// Device space occupied.
    pub space: SpaceSnapshot,
    /// The storage cost `CS = SpaceM·CM + SpaceO·CO` under the tree's cost
    /// parameters.
    pub storage_cost: f64,
    /// Depth of the current-part search path (root to current leaves).
    pub depth: usize,
}

impl TreeStats {
    /// Redundancy ratio: redundant copies / distinct versions (0 when empty).
    pub fn redundancy_ratio(&self) -> f64 {
        if self.distinct_versions == 0 {
            0.0
        } else {
            self.redundant_copies as f64 / self.distinct_versions as f64
        }
    }

    /// Total nodes of any kind.
    pub fn total_nodes(&self) -> usize {
        self.current_data_nodes
            + self.current_index_nodes
            + self.historical_data_nodes
            + self.historical_index_nodes
    }
}

impl fmt::Display for TreeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "nodes: {} current data, {} current index, {} historical data, {} historical index (depth {})",
            self.current_data_nodes,
            self.current_index_nodes,
            self.historical_data_nodes,
            self.historical_index_nodes,
            self.depth
        )?;
        writeln!(
            f,
            "versions: {} copies of {} distinct ({} redundant, ratio {:.3}), {} live, {} uncommitted",
            self.version_copies,
            self.distinct_versions,
            self.redundant_copies,
            self.redundancy_ratio(),
            self.live_versions,
            self.uncommitted_versions
        )?;
        write!(
            f,
            "space: magnetic {} B, worm {} B, total {} B, cost {:.1}",
            self.space.magnetic_bytes,
            self.space.worm_bytes,
            self.space.total_bytes(),
            self.storage_cost
        )
    }
}

impl TsbTree {
    /// Walks the whole structure (current and historical parts, deduplicating
    /// DAG-shared historical nodes) and returns a census. Intended for
    /// experiments and tests, not hot paths.
    pub fn tree_stats(&self) -> TsbResult<TreeStats> {
        let mut visited: HashSet<NodeAddr> = HashSet::new();
        let mut stats = TreeStats {
            current_data_nodes: 0,
            current_index_nodes: 0,
            historical_data_nodes: 0,
            historical_index_nodes: 0,
            version_copies: 0,
            distinct_versions: 0,
            redundant_copies: 0,
            uncommitted_versions: 0,
            live_versions: 0,
            space: self.space(),
            storage_cost: self.storage_cost(),
            depth: 0,
        };
        let mut distinct: HashSet<(Vec<u8>, Timestamp)> = HashSet::new();
        self.census(self.current_root(), &mut visited, &mut distinct, &mut stats)?;
        stats.distinct_versions = distinct.len();
        stats.redundant_copies = stats.version_copies - stats.distinct_versions;
        stats.depth = self.current_depth()?;
        Ok(stats)
    }

    fn census(
        &self,
        addr: NodeAddr,
        visited: &mut HashSet<NodeAddr>,
        distinct: &mut HashSet<(Vec<u8>, Timestamp)>,
        stats: &mut TreeStats,
    ) -> TsbResult<()> {
        if !visited.insert(addr) {
            return Ok(());
        }
        match &*self.read_node(addr)? {
            Node::Data(data) => {
                if addr.is_current() {
                    stats.current_data_nodes += 1;
                    stats.live_versions += data.composition().live_entries;
                } else {
                    stats.historical_data_nodes += 1;
                }
                for v in data.entries() {
                    match v.commit_time() {
                        Some(t) => {
                            stats.version_copies += 1;
                            distinct.insert((v.key.as_bytes().to_vec(), t));
                        }
                        None => stats.uncommitted_versions += 1,
                    }
                }
            }
            Node::Index(index) => {
                if addr.is_current() {
                    stats.current_index_nodes += 1;
                } else {
                    stats.historical_index_nodes += 1;
                }
                for e in index.entries() {
                    self.census(e.child, visited, distinct, stats)?;
                }
            }
        }
        Ok(())
    }

    /// Depth of the current search path (1 for a tree whose root is a leaf).
    pub fn current_depth(&self) -> TsbResult<usize> {
        let mut addr = self.current_root();
        let mut depth = 1;
        loop {
            match &*self.read_node(addr)? {
                Node::Data(_) => return Ok(depth),
                Node::Index(ix) => {
                    let next = ix
                        .entries()
                        .iter()
                        .find(|e| e.is_current())
                        .map(|e| e.child);
                    match next {
                        Some(n) => {
                            addr = n;
                            depth += 1;
                        }
                        None => return Ok(depth),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsb_common::{SplitPolicyKind, TsbConfig};

    fn workload(policy: SplitPolicyKind, ops: u64, keys: u64) -> TsbTree {
        let cfg = TsbConfig::small_pages().with_split_policy(policy);
        let mut tree = crate::TsbOptions::in_memory()
            .config(cfg)
            .open_tree()
            .unwrap();
        for i in 0..ops {
            tree.insert(i % keys, format!("value-{i}").into_bytes())
                .unwrap();
        }
        tree
    }

    #[test]
    fn census_accounts_for_every_distinct_version() {
        let tree = workload(SplitPolicyKind::default(), 300, 30);
        let stats = tree.tree_stats().unwrap();
        // 300 inserts => 300 distinct logical versions, no losses.
        assert_eq!(stats.distinct_versions, 300);
        assert!(stats.version_copies >= stats.distinct_versions);
        assert_eq!(
            stats.redundant_copies,
            stats.version_copies - stats.distinct_versions
        );
        assert_eq!(stats.live_versions, 30);
        assert_eq!(stats.uncommitted_versions, 0);
        assert!(stats.depth >= 2);
        assert!(stats.total_nodes() >= 3);
        let text = stats.to_string();
        assert!(text.contains("versions:"));
        assert!(text.contains("space:"));
    }

    #[test]
    fn time_preferring_policy_produces_more_redundancy_than_key_preferring() {
        let time_tree = workload(SplitPolicyKind::TimePreferring, 400, 40);
        let key_tree = workload(SplitPolicyKind::KeyPreferring, 400, 40);
        let time_stats = time_tree.tree_stats().unwrap();
        let key_stats = key_tree.tree_stats().unwrap();
        // Time splits duplicate spanning versions; key splits never do
        // (key-preferring still time-splits the occasional single-key node,
        // so its redundancy is low but not necessarily zero).
        assert!(time_stats.redundant_copies >= key_stats.redundant_copies);
        // Key-preferring keeps (at least as much) data on the magnetic store.
        assert!(key_stats.space.magnetic_bytes >= time_stats.space.magnetic_bytes);
        // Time-preferring migrates more to the WORM store.
        assert!(time_stats.space.worm_bytes > 0);
        assert!(time_stats.space.worm_bytes >= key_stats.space.worm_bytes);
        assert!(
            time_stats.historical_data_nodes + time_stats.historical_index_nodes
                >= key_stats.historical_data_nodes + key_stats.historical_index_nodes
        );
    }

    #[test]
    fn key_only_policy_is_the_single_store_baseline() {
        // Few enough versions per key that every key's history fits in one
        // page: the key-only baseline then never needs the forced time split
        // and keeps everything on the magnetic store with zero redundancy.
        let tree = workload(SplitPolicyKind::KeyOnly, 300, 100);
        let stats = tree.tree_stats().unwrap();
        assert_eq!(stats.space.worm_bytes, 0);
        assert_eq!(stats.redundant_copies, 0);
        assert_eq!(stats.version_copies, 300);
        assert_eq!(
            stats.historical_data_nodes + stats.historical_index_nodes,
            0
        );
    }

    #[test]
    fn empty_tree_stats() {
        let tree = crate::TsbOptions::in_memory()
            .config(TsbConfig::small_pages())
            .open_tree()
            .unwrap();
        let stats = tree.tree_stats().unwrap();
        assert_eq!(stats.distinct_versions, 0);
        assert_eq!(stats.redundancy_ratio(), 0.0);
        assert_eq!(stats.current_data_nodes, 1);
        assert_eq!(stats.depth, 1);
    }
}
