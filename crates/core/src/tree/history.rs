//! Time-travel queries over key × time rectangles.
//!
//! The rectangle organisation of the TSB-tree makes "what happened to these
//! keys during this time interval" a first-class query: descend only into
//! children whose rectangle overlaps the query rectangle. This module adds
//! the temporal query surface beyond single points and single snapshots:
//!
//! * [`TsbTree::history_between`] — every version of one key committed in a
//!   time interval (an account statement for a quarter),
//! * [`TsbTree::scan_versions`] — every version of every key in a key range
//!   committed in a time interval (an audit log extract),
//! * [`TsbTree::changed_keys_between`] — the set of keys that changed in an
//!   interval (incremental backup / change data capture),
//! * [`TsbTree::version_count`] — number of committed versions stored for a
//!   key (diagnostics and tests).
//!
//! These are natural extensions of the paper's §2.5 query repertoire (they
//! are all answered by the same single index) and are exercised by the
//! examples and integration tests.

use std::collections::HashSet;

use tsb_common::{Key, KeyRange, TimeRange, Timestamp, TsbResult, Version};

use crate::node::{Node, NodeAddr};

use super::TsbTree;

impl TsbTree {
    /// Every committed version of `key` whose commit time lies in `window`,
    /// oldest first. Tombstones are included (they are part of the history).
    pub fn history_between(&self, key: &Key, window: TimeRange) -> TsbResult<Vec<Version>> {
        Ok(self
            .versions(key)?
            .into_iter()
            .filter(|v| v.commit_time().map(|t| window.contains(t)).unwrap_or(false))
            .collect())
    }

    /// Every committed version of every key in `keys` whose commit time lies
    /// in `window`, ordered by key and then commit time. Redundant copies
    /// created by time splits are reported once.
    pub fn scan_versions(&self, keys: &KeyRange, window: TimeRange) -> TsbResult<Vec<Version>> {
        let mut visited: HashSet<NodeAddr> = HashSet::new();
        let mut seen: HashSet<(Key, Timestamp)> = HashSet::new();
        let mut out: Vec<Version> = Vec::new();
        self.scan_versions_node(
            self.current_root(),
            keys,
            &window,
            &mut visited,
            &mut seen,
            &mut out,
        )?;
        out.sort_by(|a, b| {
            a.key.cmp(&b.key).then_with(|| {
                a.commit_time()
                    .unwrap_or(Timestamp::MAX)
                    .cmp(&b.commit_time().unwrap_or(Timestamp::MAX))
            })
        });
        Ok(out)
    }

    fn scan_versions_node(
        &self,
        addr: NodeAddr,
        keys: &KeyRange,
        window: &TimeRange,
        visited: &mut HashSet<NodeAddr>,
        seen: &mut HashSet<(Key, Timestamp)>,
        out: &mut Vec<Version>,
    ) -> TsbResult<()> {
        if !visited.insert(addr) {
            return Ok(());
        }
        match &*self.read_node(addr)? {
            Node::Data(data) => {
                for v in data.entries() {
                    let Some(t) = v.commit_time() else { continue };
                    if keys.contains(&v.key)
                        && window.contains(t)
                        && seen.insert((v.key.clone(), t))
                    {
                        out.push(v.clone());
                    }
                }
            }
            Node::Index(index) => {
                for entry in index.entries() {
                    // A version committed at time t can be stored in a node
                    // whose time range starts after t only as a rule-3
                    // duplicate, and that version is then also present in the
                    // node that owns time t — so overlap on the query window
                    // is a sufficient descent condition.
                    if entry.key_range.overlaps(keys) && entry.time_range.overlaps(window) {
                        self.scan_versions_node(entry.child, keys, window, visited, seen, out)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// The distinct keys in `keys` that had at least one committed change
    /// (insert, update, or delete) during `window`, in key order.
    pub fn changed_keys_between(&self, keys: &KeyRange, window: TimeRange) -> TsbResult<Vec<Key>> {
        let mut changed: Vec<Key> = self
            .scan_versions(keys, window)?
            .into_iter()
            .map(|v| v.key)
            .collect();
        changed.dedup();
        Ok(changed)
    }

    /// Number of committed versions stored for `key` (0 if never written).
    pub fn version_count(&self, key: &Key) -> TsbResult<usize> {
        Ok(self.versions(key)?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsb_common::{SplitPolicyKind, TsbConfig};

    /// 20 keys, 10 generations each; generation g of key k commits at
    /// timestamp g*20 + k + 1 (deterministic via insert_at).
    fn build() -> TsbTree {
        let cfg = TsbConfig::small_pages().with_split_policy(SplitPolicyKind::TimePreferring);
        let mut tree = crate::TsbOptions::in_memory()
            .config(cfg)
            .open_tree()
            .unwrap();
        for gen in 0..10u64 {
            for key in 0..20u64 {
                let ts = Timestamp(gen * 20 + key + 1);
                tree.insert_at(key, format!("k{key}-g{gen}").into_bytes(), ts)
                    .unwrap();
            }
        }
        tree.verify().unwrap();
        tree
    }

    #[test]
    fn history_between_clips_to_the_window() {
        let tree = build();
        let key = Key::from_u64(3);
        // Generations 2..=4 of key 3 commit at 44, 64, 84.
        let window = TimeRange::bounded(Timestamp(44), Timestamp(85));
        let history = tree.history_between(&key, window).unwrap();
        assert_eq!(history.len(), 3);
        assert_eq!(
            history
                .iter()
                .map(|v| v.commit_time().unwrap().value())
                .collect::<Vec<_>>(),
            vec![44, 64, 84]
        );
        // Empty window.
        assert!(tree
            .history_between(&key, TimeRange::bounded(Timestamp(45), Timestamp(46)))
            .unwrap()
            .is_empty());
        // Full window returns the whole history.
        assert_eq!(
            tree.history_between(&key, TimeRange::full()).unwrap().len(),
            10
        );
        assert_eq!(tree.version_count(&key).unwrap(), 10);
    }

    #[test]
    fn scan_versions_covers_the_rectangle_exactly() {
        let tree = build();
        let keys = KeyRange::bounded(Key::from_u64(5), Key::from_u64(8)); // keys 5,6,7
        let window = TimeRange::bounded(Timestamp(41), Timestamp(101)); // generations 2,3,4
        let versions = tree.scan_versions(&keys, window).unwrap();
        // 3 keys x 3 generations.
        assert_eq!(versions.len(), 9);
        for v in &versions {
            assert!(keys.contains(&v.key));
            assert!(window.contains(v.commit_time().unwrap()));
        }
        // Sorted by (key, time).
        let sorted = {
            let mut s = versions.clone();
            s.sort_by_key(|v| (v.key.clone(), v.commit_time().unwrap()));
            s
        };
        assert_eq!(versions, sorted);
        // No duplicates despite time-split redundancy in the structure.
        let mut seen = std::collections::HashSet::new();
        for v in &versions {
            assert!(seen.insert((v.key.clone(), v.commit_time().unwrap())));
        }
    }

    #[test]
    fn changed_keys_between_supports_incremental_backup() {
        let cfg = TsbConfig::small_pages();
        let mut tree = crate::TsbOptions::in_memory()
            .config(cfg)
            .open_tree()
            .unwrap();
        for key in 0..30u64 {
            tree.insert(key, b"initial".to_vec()).unwrap();
        }
        let checkpoint = tree.now();
        // Only keys 10..15 change after the checkpoint; key 12 is deleted.
        for key in 10..15u64 {
            tree.insert(key, b"changed".to_vec()).unwrap();
        }
        tree.delete(12u64).unwrap();
        let changed = tree
            .changed_keys_between(&KeyRange::full(), TimeRange::from(checkpoint))
            .unwrap();
        let changed: Vec<u64> = changed.iter().map(|k| k.as_u64().unwrap()).collect();
        assert_eq!(changed, vec![10, 11, 12, 13, 14]);
        // Nothing changed in an interval entirely in the future.
        assert!(tree
            .changed_keys_between(&KeyRange::full(), TimeRange::from(tree.now()))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn unknown_keys_and_empty_ranges_return_empty_results() {
        let tree = build();
        assert!(tree
            .history_between(&Key::from_u64(999), TimeRange::full())
            .unwrap()
            .is_empty());
        assert_eq!(tree.version_count(&Key::from_u64(999)).unwrap(), 0);
        let empty_range = KeyRange::bounded(Key::from_u64(5), Key::from_u64(5));
        assert!(tree
            .scan_versions(&empty_range, TimeRange::full())
            .unwrap()
            .is_empty());
    }
}
