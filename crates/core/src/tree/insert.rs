//! Insertion, update, logical deletion, and the split / migration machinery.
//!
//! An update in the multiversion database is the insertion of a new version
//! with the same key (§2.1); logical deletion is the insertion of a
//! tombstone version (extension — see DESIGN.md). New versions always land
//! in the *current* node responsible for their key. When a current node
//! overflows its page it is split according to the configured policy:
//!
//! * a **key split** partitions the node in place (the erasable store allows
//!   "normal" B+-tree splitting — §3, §5);
//! * a **time split** consolidates the older versions into a historical node
//!   appended to the WORM store and keeps the rest (plus the rule-3
//!   duplicates) in the same magnetic page — this is the *incremental
//!   migration*, "one node at a time" (§3.1).
//!
//! Splits post replacement index entries to the parent, which may overflow
//! and split in turn (index key splits or local index time splits, §3.5).
//! When the root splits, a new root is created above it.

use tsb_common::encode::size;
use tsb_common::{Key, KeyRange, TimeRange, Timestamp, TsbError, TsbResult, Version};
use tsb_storage::{PageId, PageOp};

use crate::node::{DataNode, IndexEntry, IndexNode, Node, NodeAddr};
use crate::split::{
    choose_index_split_key, choose_split_key, local_time_split_point, partition_by_key,
    partition_by_time, partition_index_by_key, partition_index_by_time, plan_data_split, SplitPlan,
};

use super::TsbTree;

/// What a recursive insertion reports to its parent.
pub(crate) enum InsertOutcome {
    /// The child absorbed the change.
    Fit,
    /// The child split; the parent must replace its entry for the child with
    /// these entries.
    Split(Vec<IndexEntry>),
}

impl TsbTree {
    /// Inserts a new version of `key` with the next commit timestamp,
    /// returning that timestamp. If the key already exists this records an
    /// update (the old version remains readable as of its own time).
    pub fn insert(&mut self, key: impl Into<Key>, value: Vec<u8>) -> TsbResult<Timestamp> {
        let result = self.insert_shared(key, value);
        self.settle_durability(result)
    }

    /// [`Self::insert`] against `&self`, for callers that serialize writers
    /// externally ([`crate::ConcurrentTsb`]).
    pub(crate) fn insert_shared(
        &self,
        key: impl Into<Key>,
        value: Vec<u8>,
    ) -> TsbResult<Timestamp> {
        let ts = self.clock.tick();
        self.insert_version(Version::committed(key, ts, value))?;
        Ok(ts)
    }

    /// Inserts a new version of `key` with an explicit commit timestamp.
    ///
    /// The timestamp must not be older than any timestamp already issued;
    /// the internal clock is advanced past `ts`. Used by secondary indexes
    /// (which inherit the primary record's timestamp, §3.6) and by loaders
    /// replaying a history.
    pub fn insert_at(
        &mut self,
        key: impl Into<Key>,
        value: Vec<u8>,
        ts: Timestamp,
    ) -> TsbResult<()> {
        let result = self.insert_at_shared(key, value, ts);
        self.settle_durability(result)
    }

    /// [`Self::insert_at`] against `&self` (externally serialized writers).
    pub(crate) fn insert_at_shared(
        &self,
        key: impl Into<Key>,
        value: Vec<u8>,
        ts: Timestamp,
    ) -> TsbResult<()> {
        if ts == Timestamp::ZERO {
            return Err(TsbError::config("timestamp 0 is reserved"));
        }
        self.clock.advance_to(ts.next());
        self.insert_version(Version::committed(key, ts, value))
    }

    /// Logically deletes `key` by inserting a tombstone version with the next
    /// commit timestamp. History remains readable; only reads at or after
    /// the returned timestamp observe the deletion.
    pub fn delete(&mut self, key: impl Into<Key>) -> TsbResult<Timestamp> {
        let result = self.delete_shared(key);
        self.settle_durability(result)
    }

    /// [`Self::delete`] against `&self` (externally serialized writers).
    pub(crate) fn delete_shared(&self, key: impl Into<Key>) -> TsbResult<Timestamp> {
        let ts = self.clock.tick();
        self.insert_version(Version::tombstone(key, ts))?;
        Ok(ts)
    }

    /// Logically deletes `key` at an explicit timestamp (see [`Self::insert_at`]).
    pub fn delete_at(&mut self, key: impl Into<Key>, ts: Timestamp) -> TsbResult<()> {
        let result = self.delete_at_shared(key, ts);
        self.settle_durability(result)
    }

    /// [`Self::delete_at`] against `&self` (externally serialized writers).
    pub(crate) fn delete_at_shared(&self, key: impl Into<Key>, ts: Timestamp) -> TsbResult<()> {
        if ts == Timestamp::ZERO {
            return Err(TsbError::config("timestamp 0 is reserved"));
        }
        self.clock.advance_to(ts.next());
        self.insert_version(Version::tombstone(key, ts))
    }

    /// Inserts a fully formed version (committed or uncommitted) into the
    /// current node responsible for its key, splitting as needed. When the
    /// insertion splits nodes, the structure epoch is odd from the first
    /// structural write until this method returns (success or error), so
    /// optimistic concurrent readers know to retry.
    ///
    /// On a durable tree the mutation ends with a WAL commit fence
    /// ([`TsbTree::wal_commit`]): all of its page images precede the fence
    /// in the log, so recovery either replays the mutation completely or
    /// discards it completely.
    pub(crate) fn insert_version(&self, version: Version) -> TsbResult<()> {
        let fence_ts = version.state.commit_time();
        let result = self
            .insert_version_inner(version)
            .and_then(|()| self.wal_commit(fence_ts.unwrap_or_else(|| self.clock.now().prev())));
        if result.is_err() {
            // A recoverable failure (no structural write landed) may still
            // have logged pending split deltas; disown them so the next
            // fence supersedes them instead of making them replayable.
            self.quarantine_pending_deltas();
        }
        self.settle_structure_after(result.is_err());
        result
    }

    fn insert_version_inner(&self, version: Version) -> TsbResult<()> {
        self.check_not_poisoned()?;
        self.check_entry_size(&version)?;
        let root = self.current_root();
        match self.insert_into(root, version)? {
            InsertOutcome::Fit => Ok(()),
            InsertOutcome::Split(entries) => self.grow_new_root(entries),
        }
    }

    /// Rejects versions that could never fit in a node even after splitting.
    fn check_entry_size(&self, version: &Version) -> TsbResult<()> {
        if version.key.len() > self.cfg.max_key_len {
            return Err(TsbError::KeyTooLarge {
                len: version.key.len(),
                max: self.cfg.max_key_len,
            });
        }
        // Splitting can always isolate a single entry into its own node, so
        // the hard requirement is that one entry plus the worst-case data
        // node header (whose key-range bounds are at most `max_key_len`
        // long) fits in a page.
        let header = 1 + 4 + (4 + self.cfg.max_key_len) + (1 + 4 + self.cfg.max_key_len) + 8 + 9;
        let budget = self.page_capacity().saturating_sub(header);
        let entry = size::version(version);
        if entry > budget {
            return Err(TsbError::EntryTooLarge {
                entry_size: entry,
                capacity: budget,
            });
        }
        Ok(())
    }

    /// Recursive insertion. `addr` must reference a current node (new data
    /// is never routed to the write-once historical store).
    ///
    /// Nodes are read through the decoded-node cache and cloned only on the
    /// actual write path: the leaf absorbing the version, and each ancestor
    /// whose child actually split.
    fn insert_into(&self, addr: NodeAddr, version: Version) -> TsbResult<InsertOutcome> {
        let page = addr.as_page().ok_or_else(|| {
            TsbError::internal("insertion routed to a historical (write-once) node")
        })?;
        let node = self.read_node(addr)?;
        match &*node {
            Node::Data(data) => {
                // The whole mutation is this one version landing in this
                // one leaf — exactly what a logical redo delta can say in
                // tens of bytes. Built only when the WAL will consume it
                // (the clone prices one version, not the page).
                let ops = if self.logs_deltas() {
                    vec![PageOp::InsertVersion(version.clone())]
                } else {
                    Vec::new()
                };
                let mut data = data.clone();
                data.insert(version)?;
                if data.encoded_size() <= self.split_threshold() {
                    self.write_current_delta(page, Node::Data(data), ops)?;
                    Ok(InsertOutcome::Fit)
                } else {
                    // The split's own deltas describe partitions of the
                    // *post-insert* node, so the insert must be in the log
                    // first (as a pending delta of the in-flight state).
                    if self.pending_ops_allowed(page) {
                        self.wal_append_ops(page, ops)?;
                    }
                    let entries = self.split_data_node(data, page, false)?;
                    Ok(InsertOutcome::Split(entries))
                }
            }
            Node::Index(index) => {
                // New versions are routed as of "the end of time": the
                // current child for this key. Only the child address (a
                // `Copy` word pair) leaves the borrow — the entry's key
                // ranges are never cloned on the descent.
                let child = index
                    .find_child(&version.key, Timestamp::MAX)
                    .map(|e| e.child)
                    .ok_or_else(|| {
                        TsbError::corruption(format!(
                            "index node {} x {} has no child for key {} at +inf",
                            index.key_range, index.time_range, version.key
                        ))
                    })?;
                match self.insert_into(child, version)? {
                    InsertOutcome::Fit => Ok(InsertOutcome::Fit),
                    InsertOutcome::Split(replacements) => {
                        let mut index = index.clone();
                        // A child replacement is a content edit of this
                        // index page: one compact delta instead of
                        // re-imaging the whole (typically fullest) node.
                        let ops = if self.logs_deltas() {
                            vec![PageOp::IndexReplaceChild {
                                payload: super::encode_replace_child(&child, &replacements),
                            }]
                        } else {
                            Vec::new()
                        };
                        index.replace_child(&child, replacements)?;
                        if index.encoded_size() <= self.split_threshold() {
                            self.write_current_delta(page, Node::Index(index), ops)?;
                            Ok(InsertOutcome::Fit)
                        } else {
                            if self.pending_ops_allowed(page) {
                                self.wal_append_ops(page, ops)?;
                            }
                            let entries = self.split_index_node(index, page, false)?;
                            Ok(InsertOutcome::Split(entries))
                        }
                    }
                }
            }
        }
    }

    /// Creates a new root index node above the split pieces of the old root.
    fn grow_new_root(&self, entries: Vec<IndexEntry>) -> TsbResult<()> {
        let page = self.allocate_page()?;
        // The epoch goes odd at the first structural *write* — after every
        // fallible pure step (planning, allocation) — so an error that
        // wrote nothing stays a recoverable per-operation error instead of
        // poisoning the tree. Same pattern in every execute_* split path.
        self.note_structural_write();
        let root = IndexNode::from_entries(KeyRange::full(), TimeRange::full(), entries);
        self.write_current(page, Node::Index(root))?;
        self.set_root(NodeAddr::Current(page))
    }

    // ----- data node splits ----------------------------------------------

    /// Splits an overflowing data node held in memory, writing the resulting
    /// nodes to their devices and returning the index entries the parent
    /// should adopt in place of its entry for `page`.
    ///
    /// `forbid_time` breaks potential non-termination when a time split
    /// failed to shrink the node (every entry was duplicated forward).
    pub(crate) fn split_data_node(
        &self,
        node: DataNode,
        page: PageId,
        forbid_time: bool,
    ) -> TsbResult<Vec<IndexEntry>> {
        let now = self.clock.now();
        let mut plan = plan_data_split(&node, &self.cfg, now, self.page_capacity())?;

        // A child that blocked a local index time split is marked to prefer a
        // time split at its next opportunity (§3.5's optimization). Policies
        // that never migrate by design (the key-only baseline and the
        // key-preferring policy) ignore the marking.
        let policy_migrates = !matches!(
            self.cfg.split_policy,
            tsb_common::SplitPolicyKind::KeyOnly | tsb_common::SplitPolicyKind::KeyPreferring
        );
        let marked = self.marked_for_time_split.lock().contains(&page);
        if marked {
            if policy_migrates {
                if let SplitPlan::Key { .. } = plan {
                    let comp = node.composition();
                    // Honouring the mark only makes sense when the node has
                    // something historical to migrate — a node of pure
                    // insertions is the paper's "time splitting is useless"
                    // boundary case even when marked.
                    if comp.historical_entries > 0 {
                        if let Some(t) = crate::split::choose_split_time(
                            self.cfg.split_time_choice,
                            &comp,
                            node.time_range.lo,
                            now,
                        ) {
                            plan = SplitPlan::Time { split_time: t };
                        }
                    }
                }
            }
            self.marked_for_time_split.lock().remove(&page);
        }
        if forbid_time {
            if let SplitPlan::Time { .. } = plan {
                if let Some(split_key) = choose_split_key(node.entries()) {
                    plan = SplitPlan::Key { split_key };
                }
            }
        }

        match plan {
            SplitPlan::Key { split_key } => self.execute_data_key_split(node, page, split_key),
            SplitPlan::Time { split_time } => self.execute_data_time_split(node, page, split_time),
        }
    }

    /// Pure key split: the old page keeps the low half, a new page gets the
    /// high half. The replacement index entries inherit the node's time
    /// range (Figure 5: "the timestamp in the new index entry is the same as
    /// the timestamp of the previous index entry").
    fn execute_data_key_split(
        &self,
        node: DataNode,
        page: PageId,
        split_key: Key,
    ) -> TsbResult<Vec<IndexEntry>> {
        if !node.key_range.strictly_contains(&split_key) {
            return Err(TsbError::internal(format!(
                "split key {split_key} outside node key range {}",
                node.key_range
            )));
        }
        let (left_entries, right_entries) = partition_by_key(node.entries(), &split_key);
        let (left_range, right_range) = node
            .key_range
            .split_at(&split_key)
            .ok_or_else(|| TsbError::internal("key range refused to split"))?;
        let left = DataNode::from_entries(left_range, node.time_range, left_entries);
        let right = DataNode::from_entries(right_range, node.time_range, right_entries);
        let right_page = self.allocate_page()?;
        self.note_structural_write();

        // The old page keeps the low half: derivable from its logged state,
        // so a delta suffices. The new page has no logged base (fresh or
        // recycled), so its op is moot — first touch logs the full image.
        let mut out = Vec::new();
        out.extend(self.place_data_node(
            left,
            page,
            Some(PageOp::DataKeySplit {
                split_key: split_key.clone(),
                keep_low: true,
            }),
        )?);
        out.extend(self.place_data_node(
            right,
            right_page,
            Some(PageOp::DataKeySplit {
                split_key,
                keep_low: false,
            }),
        )?);
        Ok(out)
    }

    /// Time split at `split_time`: the older versions are consolidated into a
    /// historical node appended to the WORM store; the newer versions (and
    /// the rule-3 duplicates) stay in the same magnetic page.
    fn execute_data_time_split(
        &self,
        node: DataNode,
        page: PageId,
        split_time: Timestamp,
    ) -> TsbResult<Vec<IndexEntry>> {
        let parts = partition_by_time(node.entries(), split_time);
        if parts.historical.is_empty() {
            // Nothing to migrate; fall back to a key split to make progress.
            return match choose_split_key(node.entries()) {
                Some(k) => self.execute_data_key_split(node, page, k),
                None => Err(TsbError::internal(
                    "time split selected but nothing migrates and no key split is possible",
                )),
            };
        }
        let shrank = parts.current.len() < node.len();

        let hist_tr = TimeRange::bounded(node.time_range.lo, split_time);
        let hist_node = DataNode::from_entries(node.key_range.clone(), hist_tr, parts.historical);
        self.note_structural_write();
        let hist_addr = self.append_historical(Node::Data(hist_node))?;
        let hist_entry = IndexEntry::new(
            node.key_range.clone(),
            hist_tr,
            NodeAddr::Historical(hist_addr),
        );

        let current = DataNode::from_entries(
            node.key_range.clone(),
            TimeRange::new(split_time, node.time_range.hi),
            parts.current,
        );

        // The survivor is a pure partition of the (already logged) overflowing
        // node: one tiny delta carries the whole rewrite.
        let op = PageOp::DataTimeSplit { split_time };
        let mut out = vec![hist_entry];
        if current.encoded_size() <= self.split_threshold() {
            self.write_current_delta(page, Node::Data(current), vec![op])?;
            out.push(IndexEntry::new(
                node.key_range,
                TimeRange::new(split_time, node.time_range.hi),
                NodeAddr::Current(page),
            ));
        } else {
            // Still too big (lots of live data): follow with a further split
            // of the surviving current node — the WOBT's "split by key value
            // and current time" corresponds to this path. The follow-up
            // split's deltas partition the *survivor*, so the time split
            // goes into the log first as a pending delta.
            if self.pending_ops_allowed(page) {
                self.wal_append_ops(page, vec![op])?;
            }
            out.extend(self.split_data_node(current, page, !shrank)?);
        }
        Ok(out)
    }

    /// Writes a data node to `page`, splitting it further if it does not
    /// fit. `op` is the logical delta describing how the node was derived
    /// from the page's previous (logged) state, when it was; pages with no
    /// logged base ignore it and log a full image on first touch.
    fn place_data_node(
        &self,
        node: DataNode,
        page: PageId,
        op: Option<PageOp>,
    ) -> TsbResult<Vec<IndexEntry>> {
        if node.encoded_size() <= self.split_threshold() {
            let entry = IndexEntry::new(
                node.key_range.clone(),
                node.time_range,
                NodeAddr::Current(page),
            );
            self.write_current_delta(page, Node::Data(node), op.into_iter().collect())?;
            Ok(vec![entry])
        } else {
            if let Some(op) = op {
                if self.pending_ops_allowed(page) {
                    self.wal_append_ops(page, vec![op])?;
                }
            }
            self.split_data_node(node, page, false)
        }
    }

    // ----- index node splits ---------------------------------------------

    /// Splits an overflowing index node, returning the replacement entries
    /// for its parent.
    pub(crate) fn split_index_node(
        &self,
        node: IndexNode,
        page: PageId,
        forbid_time: bool,
    ) -> TsbResult<Vec<IndexEntry>> {
        let comp = node.composition();
        let time_point = if forbid_time {
            None
        } else {
            local_time_split_point(&node)
        };
        let key_candidate = choose_index_split_key(&node);

        // Prefer a local time split when most references are already
        // historical (mirroring the data-node heuristic), or when a key
        // split is impossible.
        let use_time = match (time_point, &key_candidate) {
            (Some(_), None) => true,
            (Some(_), Some(_)) => comp.historical_entries * 2 >= comp.total_entries,
            (None, _) => false,
        };

        if use_time {
            let t = time_point.expect("checked above");
            return self.execute_index_time_split(node, page, t);
        }

        match key_candidate {
            Some(split_key) => {
                if time_point.is_none() && self.cfg.mark_recalcitrant_children {
                    self.mark_blocking_children(&node);
                }
                self.execute_index_key_split(node, page, split_key)
            }
            None => match time_point {
                Some(t) => self.execute_index_time_split(node, page, t),
                None => Err(TsbError::internal(
                    "index node can be neither key split nor time split",
                )),
            },
        }
    }

    /// Marks the current children whose old start times block a local index
    /// time split (Figure 9) so that they prefer a time split next time.
    fn mark_blocking_children(&self, node: &IndexNode) {
        let min_start = node
            .entries()
            .iter()
            .filter(|e| e.is_current())
            .map(|e| e.time_range.lo)
            .min();
        if let Some(min_start) = min_start {
            let mut marked = self.marked_for_time_split.lock();
            for e in node.entries() {
                if e.is_current() && e.time_range.lo == min_start {
                    if let Some(p) = e.child.as_page() {
                        marked.insert(p);
                    }
                }
            }
        }
    }

    /// Index keyspace split (§3.5 rule set): straddling historical entries
    /// are copied to both halves; the replacement entries inherit the node's
    /// time range.
    fn execute_index_key_split(
        &self,
        node: IndexNode,
        page: PageId,
        split_key: Key,
    ) -> TsbResult<Vec<IndexEntry>> {
        if !node.key_range.strictly_contains(&split_key) {
            return Err(TsbError::internal(format!(
                "index split key {split_key} outside node key range {}",
                node.key_range
            )));
        }
        let parts = partition_index_by_key(node.entries(), &split_key);
        let (left_range, right_range) = node
            .key_range
            .split_at(&split_key)
            .ok_or_else(|| TsbError::internal("index key range refused to split"))?;
        let left = IndexNode::from_entries(left_range, node.time_range, parts.left);
        let right = IndexNode::from_entries(right_range, node.time_range, parts.right);
        let right_page = self.allocate_page()?;
        self.note_structural_write();

        let mut out = Vec::new();
        out.extend(self.place_index_node(
            left,
            page,
            Some(PageOp::IndexKeySplit {
                split_key: split_key.clone(),
                keep_low: true,
            }),
        )?);
        out.extend(self.place_index_node(
            right,
            right_page,
            Some(PageOp::IndexKeySplit {
                split_key,
                keep_low: false,
            }),
        )?);
        Ok(out)
    }

    /// Local index time split (§3.5): entries lying entirely before `t`
    /// migrate into a historical index node; no current reference may end up
    /// there (guaranteed by the choice of `t`).
    fn execute_index_time_split(
        &self,
        node: IndexNode,
        page: PageId,
        t: Timestamp,
    ) -> TsbResult<Vec<IndexEntry>> {
        let parts = partition_index_by_time(node.entries(), t);
        if parts.historical.is_empty() {
            return Err(TsbError::internal(
                "index time split selected but nothing migrates",
            ));
        }
        if parts.historical.iter().any(|e| e.child.is_current()) {
            return Err(TsbError::internal(
                "index time split would place a current reference on the write-once store",
            ));
        }
        let shrank = parts.current.len() < node.len();

        let hist_tr = TimeRange::bounded(node.time_range.lo, t);
        let hist = IndexNode::from_entries(node.key_range.clone(), hist_tr, parts.historical);
        self.note_structural_write();
        let hist_addr = self.append_historical(Node::Index(hist))?;
        let hist_entry = IndexEntry::new(
            node.key_range.clone(),
            hist_tr,
            NodeAddr::Historical(hist_addr),
        );

        let current = IndexNode::from_entries(
            node.key_range.clone(),
            TimeRange::new(t, node.time_range.hi),
            parts.current,
        );

        let op = PageOp::IndexTimeSplit { split_time: t };
        let mut out = vec![hist_entry];
        if current.encoded_size() <= self.split_threshold() {
            self.write_current_delta(page, Node::Index(current), vec![op])?;
            out.push(IndexEntry::new(
                node.key_range,
                TimeRange::new(t, node.time_range.hi),
                NodeAddr::Current(page),
            ));
        } else {
            if self.pending_ops_allowed(page) {
                self.wal_append_ops(page, vec![op])?;
            }
            out.extend(self.split_index_node(current, page, !shrank)?);
        }
        Ok(out)
    }

    /// Writes an index node to `page`, splitting further if needed. `op`
    /// as in [`Self::place_data_node`].
    fn place_index_node(
        &self,
        node: IndexNode,
        page: PageId,
        op: Option<PageOp>,
    ) -> TsbResult<Vec<IndexEntry>> {
        if node.encoded_size() <= self.split_threshold() {
            let entry = IndexEntry::new(
                node.key_range.clone(),
                node.time_range,
                NodeAddr::Current(page),
            );
            self.write_current_delta(page, Node::Index(node), op.into_iter().collect())?;
            Ok(vec![entry])
        } else {
            if let Some(op) = op {
                if self.pending_ops_allowed(page) {
                    self.wal_append_ops(page, vec![op])?;
                }
            }
            self.split_index_node(node, page, false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsb_common::{SplitPolicyKind, SplitTimeChoice, TsbConfig};

    fn small_tree(policy: SplitPolicyKind) -> TsbTree {
        let cfg = TsbConfig::small_pages().with_split_policy(policy);
        crate::TsbOptions::in_memory()
            .config(cfg)
            .open_tree()
            .unwrap()
    }

    #[test]
    fn insert_and_read_back_many_keys_across_splits() {
        let mut tree = small_tree(SplitPolicyKind::default());
        for i in 0..200u64 {
            tree.insert(i, format!("value-{i}").into_bytes()).unwrap();
        }
        for i in 0..200u64 {
            assert_eq!(
                tree.get_current(&Key::from_u64(i)).unwrap().unwrap(),
                format!("value-{i}").into_bytes(),
                "key {i}"
            );
        }
        // Splits definitely happened: more than one page is allocated.
        assert!(tree.magnetic.allocated_pages() > 2);
    }

    #[test]
    fn updates_preserve_history_across_time_splits() {
        let mut tree = small_tree(SplitPolicyKind::TimePreferring);
        let mut stamps = Vec::new();
        for round in 0..30u64 {
            let ts = tree.insert(7u64, format!("v{round}").into_bytes()).unwrap();
            stamps.push((ts, round));
        }
        // Every historical version is still reachable as of its own time.
        for (ts, round) in &stamps {
            assert_eq!(
                tree.get_as_of(&Key::from_u64(7), *ts).unwrap().unwrap(),
                format!("v{round}").into_bytes()
            );
        }
        // The repeated updates forced migration to the historical store.
        assert!(tree.worm.sectors_allocated() > 0);
    }

    #[test]
    fn deletes_are_visible_only_from_their_timestamp() {
        let mut tree = small_tree(SplitPolicyKind::default());
        let t1 = tree.insert(5u64, b"alive".to_vec()).unwrap();
        let t2 = tree.delete(5u64).unwrap();
        assert!(tree.get_current(&Key::from_u64(5)).unwrap().is_none());
        assert_eq!(
            tree.get_as_of(&Key::from_u64(5), t1).unwrap().unwrap(),
            b"alive".to_vec()
        );
        assert!(tree.get_as_of(&Key::from_u64(5), t2).unwrap().is_none());
    }

    #[test]
    fn insert_at_supports_replayed_timestamps() {
        let mut tree = small_tree(SplitPolicyKind::default());
        tree.insert_at(1u64, b"a".to_vec(), Timestamp(10)).unwrap();
        tree.insert_at(1u64, b"b".to_vec(), Timestamp(20)).unwrap();
        assert_eq!(
            tree.get_as_of(&Key::from_u64(1), Timestamp(15))
                .unwrap()
                .unwrap(),
            b"a".to_vec()
        );
        // The clock has moved past the replayed timestamps.
        assert!(tree.now() > Timestamp(20));
        assert!(tree
            .insert_at(2u64, b"x".to_vec(), Timestamp::ZERO)
            .is_err());
    }

    #[test]
    fn oversized_entries_are_rejected_up_front() {
        let mut tree = small_tree(SplitPolicyKind::default());
        let huge = vec![0u8; 10_000];
        assert!(matches!(
            tree.insert(1u64, huge),
            Err(TsbError::EntryTooLarge { .. })
        ));
        let long_key = vec![b'k'; 500];
        assert!(matches!(
            tree.insert(long_key, b"v".to_vec()),
            Err(TsbError::KeyTooLarge { .. })
        ));
    }

    #[test]
    fn every_policy_sustains_a_mixed_workload() {
        for policy in [
            SplitPolicyKind::WobtLike,
            SplitPolicyKind::KeyPreferring,
            SplitPolicyKind::TimePreferring,
            SplitPolicyKind::KeyOnly,
            SplitPolicyKind::CostBased,
            SplitPolicyKind::Threshold {
                key_split_live_fraction: 0.6,
            },
        ] {
            let mut tree = small_tree(policy);
            for i in 0..150u64 {
                let key = i % 25; // 6 versions per key on average
                tree.insert(key, format!("{policy:?}-{i}").into_bytes())
                    .unwrap();
            }
            for key in 0..25u64 {
                assert!(
                    tree.get_current(&Key::from_u64(key)).unwrap().is_some(),
                    "{policy:?} lost key {key}"
                );
            }
            tree.verify().unwrap_or_else(|e| panic!("{policy:?}: {e}"));
        }
    }

    #[test]
    fn last_update_split_time_choice_workload() {
        let cfg = TsbConfig::small_pages()
            .with_split_policy(SplitPolicyKind::TimePreferring)
            .with_split_time_choice(SplitTimeChoice::LastUpdate);
        let mut tree = crate::TsbOptions::in_memory()
            .config(cfg)
            .open_tree()
            .unwrap();
        for i in 0..120u64 {
            tree.insert(i % 10, format!("v{i}").into_bytes()).unwrap();
        }
        tree.verify().unwrap();
        assert!(tree.worm.sectors_allocated() > 0);
    }
}
