//! The Time-Split B-tree proper: tree handle, node I/O over the two devices,
//! and the on-disk metadata page.
//!
//! Sub-modules implement the operations:
//!
//! * [`search`](crate::tree) — point lookups (current and as-of),
//! * [`scan`](crate::tree) — range scans, snapshots, version histories,
//! * [`insert`](crate::tree) — insertion, update, logical deletion, and the
//!   split/migration machinery.
//!
//! Transactions live in [`crate::txn`], secondary indexes in
//! [`crate::secondary`], statistics in [`crate::stats`], and the structural
//! verifier in [`crate::verify`].

pub mod history;
pub mod insert;
pub mod scan;
pub mod search;

use std::collections::{HashMap, HashSet, VecDeque};
use std::ops::Deref;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use tsb_common::encode::{ByteReader, ByteWriter};
use tsb_common::{
    Key, LogicalClock, Timestamp, TsbConfig, TsbError, TsbResult, TxnId, Version, WalMode,
};
use tsb_storage::{
    BufferPool, CostModel, FaultInjector, HistAddr, IoStats, Lsn, MagneticStore, PageId, PageOp,
    SpaceSnapshot, Wal, WalPageTable, WalRecord, WalScan, WormStore,
};

use crate::cache::NodeCache;
use crate::node::{DataNode, IndexEntry, IndexNode, Node, NodeAddr};
use crate::txn::TxnTable;

const META_MAGIC: u64 = 0x5453_4254_5245_4531; // "TSBTREE1"

/// File names used by [`TsbTree::open_durable`] inside its directory
/// (`pub(crate)` so the replica engine can wipe a half-installed base).
pub(crate) const MAGNETIC_FILE: &str = "current.pages";
pub(crate) const WORM_FILE: &str = "history.worm";
pub(crate) const WAL_FILE: &str = "redo.wal";

/// The durability state of a WAL-attached tree.
///
/// Present on trees opened through [`TsbTree::create_durable`] /
/// [`TsbTree::open_durable`] / [`TsbTree::recover`]; absent (and
/// zero-cost) on plain in-memory or file-backed trees. See the
/// [`tsb_storage::wal`] module docs for the log format and the fence /
/// commit-cut protocol this drives.
pub(crate) struct Durability {
    /// The redo log. Appends happen *before* the node cache may hold the
    /// corresponding node dirty (WAL-before-page).
    wal: Arc<Wal>,
    /// Dirty-page table backing the WAL-before-page barrier at every
    /// write-back site (shared with the buffer pool, which runs the
    /// flushed-LSN rule through it before any device page write).
    pages: Arc<WalPageTable>,
    /// WORM device length known to be on stable storage (shared with the
    /// WAL's pre-sync hook). No commit record may become *durable* while
    /// it references history past this mark, or the commit could outlive
    /// the history it points at; the WAL's pre-sync hook restores the
    /// invariant at exactly the moments commits become durable — before
    /// every log fsync (policy-triggered, flushed-LSN barrier, or
    /// checkpoint) — instead of charging every migrating commit an eager
    /// WORM fsync under `Os`/`EveryN`.
    worm_synced: Arc<AtomicU64>,
    /// The `(root, next txn id)` carried by the newest fence record whose
    /// metadata was written out in full. A commit whose state is fully
    /// predictable from it — same root, same txn counter, clock following
    /// the commit timestamp — elides its metadata payload (recovery
    /// re-derives it), shaving a third off the steady-state commit record.
    /// `None` until the current log generation holds a full-meta fence.
    last_fence: Mutex<Option<(NodeAddr, u64)>>,
    /// Pages that received mid-split *pending* deltas
    /// ([`TsbTree::wal_append_ops`]) during the current mutation. Cleared
    /// at the commit fence (success: the split's later records composed
    /// with them); on failure they move to [`Self::needs_reimage`] — the
    /// deltas are then *phantoms*, describing state the mutation rolled
    /// back.
    pending_delta_pages: Mutex<HashSet<PageId>>,
    /// Pages whose newest logged records are phantom deltas from a failed
    /// (but non-poisoning) mutation. The next commit fence must supersede
    /// each with a full image of the page's true state *before* the fence
    /// makes the phantoms replayable — otherwise recovery would apply a
    /// change the caller was told failed.
    needs_reimage: Mutex<HashSet<PageId>>,
    /// The durable-LSN wait deferred by the newest commit fence: set by
    /// [`TsbTree::wal_commit`] when the fsync policy wants the commit
    /// acknowledged only once durable. Single-writer wrappers consume and
    /// wait inline ([`TsbTree::settle_durability`]); the concurrent engine
    /// takes it while still holding its writer lock and parks *after*
    /// releasing it (early lock release).
    pending_wait: Mutex<Option<Lsn>>,
    /// Fence-LSN → commit-timestamp bookkeeping against the WAL's durable
    /// watermark: what [`TsbTree::last_durable_commit`] reports on live
    /// durable trees.
    acks: Mutex<CommitAcks>,
}

/// Maps the WAL's durable-LSN watermark back to commit timestamps: which
/// commits are on stable storage right now.
#[derive(Default)]
struct CommitAcks {
    /// Appended commit fences not yet settled, oldest first.
    pending: VecDeque<(Lsn, Timestamp)>,
    /// The newest commit timestamp whose fence the watermark covers.
    durable_ts: Option<Timestamp>,
}

impl CommitAcks {
    /// Bounds `pending` under `Os` (nothing waits, so only checkpoints
    /// drain it): past the cap, a new fence coalesces into the newest
    /// entry, under-reporting the overwritten commit's durability until
    /// the newer fence syncs — the safe direction.
    const CAP: usize = 4096;

    /// Registers an appended commit fence.
    fn push(&mut self, lsn: Lsn, ts: Timestamp) {
        if self.pending.len() >= Self::CAP {
            if let Some(back) = self.pending.back_mut() {
                *back = (lsn, ts);
                return;
            }
        }
        self.pending.push_back((lsn, ts));
    }

    /// Marks every fence at or below `durable_lsn` durable.
    fn settle(&mut self, durable_lsn: Lsn) {
        while matches!(self.pending.front(), Some((lsn, _)) if *lsn <= durable_lsn) {
            let (_, ts) = self.pending.pop_front().expect("front was just checked");
            self.durable_ts = Some(self.durable_ts.map_or(ts, |prev| prev.max(ts)));
        }
    }
}

/// A two-phase-commit prepare that survived recovery's replay with its
/// transaction still unstamped: the writes exist in the tree as
/// uncommitted versions, and only the coordinator shard's decision record
/// says whether they commit at `ts` or roll back (presumed abort).
#[derive(Clone, Debug)]
pub(crate) struct InDoubtTxn {
    /// The global commit timestamp reserved for the transaction.
    pub(crate) ts: Timestamp,
    /// The participant-local transaction id whose writes are prepared.
    pub(crate) txn: TxnId,
    /// Shard index of the coordinator (where the decision was logged).
    pub(crate) coordinator: u32,
}

/// A recovered (or freshly created) durable tree whose in-doubt two-phase
/// prepares have not yet been resolved, and whose final
/// purge/reclaim/verify/checkpoint pass has not yet run.
///
/// Produced by [`TsbTree::open_durable_staged`] /
/// [`TsbTree::recover_staged`]. The sharded engine opens every shard
/// staged, resolves each shard's [`Self::in_doubt`] list against the
/// *coordinator* shard's [`Self::has_decision`], and only then calls
/// [`Self::finish`] on each — so a crash mid-2PC never commits a
/// cross-shard transaction partially. Single-shard callers use
/// [`Self::resolve_locally`].
pub(crate) struct StagedRecovery {
    tree: TsbTree,
    /// Prepares awaiting a commit/abort decision, in log order.
    in_doubt: Vec<InDoubtTxn>,
    /// Commit timestamps of every intact decision record in this tree's
    /// own log (it was a coordinator for those transactions).
    decisions: HashSet<u64>,
    /// Whether the deferred recovery tail (purge, reclaim, verify,
    /// checkpoint) must run in [`Self::finish`]; `false` for trees that
    /// were freshly created rather than recovered.
    needs_finish: bool,
}

impl StagedRecovery {
    /// Wraps a freshly created tree: nothing in doubt, nothing to finish.
    fn fresh(tree: TsbTree) -> Self {
        StagedRecovery {
            tree,
            in_doubt: Vec::new(),
            decisions: HashSet::new(),
            needs_finish: false,
        }
    }

    /// The prepares that survived replay unresolved, in log order.
    pub(crate) fn in_doubt(&self) -> &[InDoubtTxn] {
        &self.in_doubt
    }

    /// Whether this tree's own log holds the coordinator decision for the
    /// transaction committed at `ts`.
    pub(crate) fn has_decision(&self, ts: Timestamp) -> bool {
        self.decisions.contains(&ts.value())
    }

    /// Rolls an in-doubt prepare forward: stamps its surviving writes as
    /// committed at `ts` and fences the stamping with a commit record.
    pub(crate) fn commit_in_doubt(&mut self, txn: TxnId, ts: Timestamp) -> TsbResult<()> {
        self.tree.resolve_in_doubt_commit(txn, ts)?;
        self.tree.recovered_to = Some(self.tree.recovered_to.map_or(ts, |r| r.max(ts)));
        Ok(())
    }

    /// Rolls an in-doubt prepare back. The erasure itself is performed by
    /// [`Self::finish`]'s purge pass (recovery's implicit abort erases all
    /// remaining uncommitted versions); this records the decision only.
    pub(crate) fn abort_in_doubt(&mut self, _txn: TxnId) -> TsbResult<()> {
        Ok(())
    }

    /// Runs the deferred recovery tail — purge of uncommitted versions,
    /// free-list reclamation, verification, and the fencing checkpoint —
    /// and returns the serving-ready tree. Every in-doubt prepare must
    /// have been decided first: the purge erases whatever was not rolled
    /// forward.
    pub(crate) fn finish(self) -> TsbResult<TsbTree> {
        let tree = self.tree;
        if self.needs_finish {
            tree.purge_uncommitted()?;
            tree.reclaim_unreachable_pages()?;
            tree.verify()?;
            tree.flush_shared()?;
        }
        Ok(tree)
    }

    /// Resolves in-doubt prepares against this tree's *own* decision
    /// records and finishes: the single-shard path, where coordinator and
    /// participant are the same log. (A participant shard's directory
    /// opened standalone presumes abort for prepares whose decision lives
    /// on another shard — open sharded directories through the sharded
    /// engine.)
    pub(crate) fn resolve_locally(mut self) -> TsbResult<TsbTree> {
        let pending: Vec<InDoubtTxn> = self.in_doubt.drain(..).collect();
        for p in pending {
            if self.decisions.contains(&p.ts.value()) {
                self.commit_in_doubt(p.txn, p.ts)?;
            } else {
                self.abort_in_doubt(p.txn)?;
            }
        }
        self.finish()
    }
}

/// A replication replica's crash-consistent reopen, produced by
/// [`TsbTree::open_durable_replica`].
///
/// A replica keeps a byte-faithful local copy of the primary's log
/// (shipped record bodies appended via [`Wal::append_shipped`], primary
/// LSNs preserved), so its restart is ordinary redo recovery — with three
/// deliberate departures from [`TsbTree::recover_staged`]'s tail:
///
/// * **No purge.** Uncommitted versions surviving at the cut fence belong
///   to primary transactions that are still in flight *on the primary*;
///   later shipped records will stamp or erase them. Erasing them here
///   would diverge from the stream.
/// * **No local checkpoint.** A replica never appends records of its own —
///   its log is a pure copy, and a locally minted checkpoint would collide
///   with the primary's LSN namespace. The local log only ever grows (it
///   is re-based wholesale when the primary's generation outruns it).
/// * **The un-fenced tail is kept.** Records past the cut are shipped
///   state whose commit fence has not arrived yet; they re-seed the apply
///   overlay instead of being discarded.
pub(crate) struct ReplicaRecovery {
    /// The recovered tree, serving-ready at the cut fence.
    pub(crate) tree: TsbTree,
    /// LSN of the cut fence record — the applied watermark at reopen.
    pub(crate) applied_lsn: Lsn,
    /// LSN of the newest record in the local log (≥ `applied_lsn`): the
    /// resume cursor for the subscription to the primary.
    pub(crate) last_lsn: Lsn,
    /// Records after the cut fence, in LSN order — shipped but not yet
    /// fenced; they re-seed the apply overlay's staging area.
    pub(crate) tail: Vec<WalRecord>,
    /// The cut fence's `(root, clock-next, next-txn)`, seeding the
    /// metadata-elision chain for subsequently shipped commits.
    pub(crate) cut_state: (NodeAddr, Timestamp, u64),
}

/// A page being rebuilt by recovery's replay: the newest logged image,
/// decoded lazily — only when a delta actually has to be applied, so
/// pages whose last record is an image (structural rewrites, ImagesOnly
/// mode) are restored without a decode/encode round trip.
///
/// Also the unit of a replication replica's *apply overlay*
/// ([`crate::replica::ReplicaEngine`]): shipped page records accumulate
/// here between commit fences and are installed onto the device only when
/// their fence arrives.
pub(crate) enum ReplayPage {
    /// The image bytes as logged; no delta has touched them yet.
    Raw(Vec<u8>),
    /// The decoded node with at least one delta applied.
    Decoded(Node),
}

impl ReplayPage {
    /// Re-applies one logged delta, decoding the base image on first use.
    ///
    /// Content ops replay as slot assignments; structural ops re-run the
    /// same pure partition functions the forward split path ran, against
    /// the identical node state the log has rebuilt, so they land on the
    /// identical outcome.
    pub(crate) fn apply(&mut self, op: &PageOp) -> TsbResult<()> {
        if let ReplayPage::Raw(bytes) = self {
            *self = ReplayPage::Decoded(Node::decode(bytes)?);
        }
        let ReplayPage::Decoded(node) = self else {
            unreachable!("Raw was just decoded");
        };
        fn data_op(node: &mut Node) -> TsbResult<&mut DataNode> {
            match node {
                Node::Data(data) => Ok(data),
                Node::Index(_) => Err(TsbError::corruption("WAL data delta targets an index node")),
            }
        }
        fn index_op(node: &mut Node) -> TsbResult<&mut IndexNode> {
            match node {
                Node::Index(index) => Ok(index),
                Node::Data(_) => Err(TsbError::corruption("WAL index delta targets a data node")),
            }
        }
        match op {
            PageOp::InsertVersion(version) => data_op(node)?.insert(version.clone()),
            PageOp::RemoveUncommitted { key, txn } => {
                data_op(node)?.remove_uncommitted(key, *txn);
                Ok(())
            }
            PageOp::DataTimeSplit { split_time } => {
                let data = data_op(node)?;
                let parts = crate::split::partition_by_time(data.entries(), *split_time);
                *data = DataNode::from_entries(
                    data.key_range.clone(),
                    tsb_common::TimeRange::new(*split_time, data.time_range.hi),
                    parts.current,
                );
                Ok(())
            }
            PageOp::DataKeySplit {
                split_key,
                keep_low,
            } => {
                let data = data_op(node)?;
                let (left, right) = crate::split::partition_by_key(data.entries(), split_key);
                let (left_range, right_range) =
                    data.key_range.split_at(split_key).ok_or_else(|| {
                        TsbError::corruption("WAL key-split delta outside the node key range")
                    })?;
                *data = if *keep_low {
                    DataNode::from_entries(left_range, data.time_range, left)
                } else {
                    DataNode::from_entries(right_range, data.time_range, right)
                };
                Ok(())
            }
            PageOp::IndexTimeSplit { split_time } => {
                let index = index_op(node)?;
                let parts = crate::split::partition_index_by_time(index.entries(), *split_time);
                *index = IndexNode::from_entries(
                    index.key_range.clone(),
                    tsb_common::TimeRange::new(*split_time, index.time_range.hi),
                    parts.current,
                );
                Ok(())
            }
            PageOp::IndexKeySplit {
                split_key,
                keep_low,
            } => {
                let index = index_op(node)?;
                let parts = crate::split::partition_index_by_key(index.entries(), split_key);
                let (left_range, right_range) =
                    index.key_range.split_at(split_key).ok_or_else(|| {
                        TsbError::corruption("WAL index key-split delta outside the node key range")
                    })?;
                *index = if *keep_low {
                    IndexNode::from_entries(left_range, index.time_range, parts.left)
                } else {
                    IndexNode::from_entries(right_range, index.time_range, parts.right)
                };
                Ok(())
            }
            PageOp::IndexReplaceChild { payload } => {
                let index = index_op(node)?;
                let (old_child, replacements) = decode_replace_child(payload)?;
                index.replace_child(&old_child, replacements)
            }
        }
    }

    /// The page's final image for [`MagneticStore::restore`].
    pub(crate) fn into_bytes(self) -> Vec<u8> {
        match self {
            ReplayPage::Raw(bytes) => bytes,
            ReplayPage::Decoded(node) => node.encode(),
        }
    }
}

/// Encodes the payload of a [`PageOp::IndexReplaceChild`] delta: the old
/// child address followed by the replacement entries. Opaque to
/// `tsb-storage` (like `Commit.meta`); only this module and
/// [`decode_replace_child`] know the layout.
pub(crate) fn encode_replace_child(old_child: &NodeAddr, replacements: &[IndexEntry]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    old_child.encode(&mut w);
    w.put_u32(replacements.len() as u32);
    for entry in replacements {
        entry.encode(&mut w);
    }
    w.into_vec()
}

fn decode_replace_child(payload: &[u8]) -> TsbResult<(NodeAddr, Vec<IndexEntry>)> {
    let mut r = ByteReader::new(payload);
    let old_child = NodeAddr::decode(&mut r)?;
    let count = r.get_u32()? as usize;
    let mut replacements = Vec::with_capacity(count);
    for _ in 0..count {
        replacements.push(IndexEntry::decode(&mut r)?);
    }
    Ok((old_child, replacements))
}

/// The Time-Split B-tree: a single integrated index over a multiversion
/// database whose current part lives on an erasable store and whose
/// historical part lives on a write-once store.
///
/// Reads (`get_*`, `scan_*`, snapshots, statistics, verification) take
/// `&self`; mutations (inserts, deletes, transactions) take `&mut self`.
///
/// Internally every mutation is implemented against `&self` with the tree's
/// mutable state behind locks and atomics, under the invariant that **at
/// most one mutation runs at a time**. The single-threaded API enforces
/// that invariant with `&mut self`; [`crate::ConcurrentTsb`] enforces it
/// with a writer lock and may run any number of readers concurrently (see
/// the module docs of [`crate::concurrent`]).
///
/// ```
/// use tsb_core::TsbTree;
/// use tsb_common::{Key, TsbConfig};
///
/// let mut tree = tsb_core::TsbOptions::in_memory().config(TsbConfig::default()).open_tree().unwrap();
/// let t1 = tree.insert("acct-1", b"balance=100".to_vec()).unwrap();
/// let t2 = tree.insert("acct-1", b"balance=250".to_vec()).unwrap();
/// assert_eq!(tree.get_current(&Key::from("acct-1")).unwrap().unwrap(), b"balance=250".to_vec());
/// // The old version is still reachable as of its own time (rollback database).
/// assert_eq!(tree.get_as_of(&Key::from("acct-1"), t1).unwrap().unwrap(), b"balance=100".to_vec());
/// assert!(t1 < t2);
/// ```
pub struct TsbTree {
    pub(crate) cfg: TsbConfig,
    pub(crate) magnetic: Arc<MagneticStore>,
    pub(crate) pool: BufferPool,
    pub(crate) cache: NodeCache,
    pub(crate) worm: Arc<WormStore>,
    pub(crate) stats: Arc<IoStats>,
    pub(crate) cost: CostModel,
    /// The commit clock. Normally private to this tree; a sharded engine
    /// shares one clock across every shard (`Arc`) so commit timestamps
    /// form a single global order.
    pub(crate) clock: Arc<LogicalClock>,
    /// The root pointer, behind a short-latch lock: readers copy it out at
    /// the top of each descent, the (single) writer replaces it when the
    /// root splits.
    pub(crate) root: RwLock<NodeAddr>,
    pub(crate) meta_page: PageId,
    pub(crate) txns: Mutex<TxnTable>,
    /// Current data pages that blocked a local index time split (Figure 9)
    /// and should prefer a time split at their next opportunity (§3.5).
    pub(crate) marked_for_time_split: Mutex<HashSet<PageId>>,
    /// Set when a *structural* mutation (split / migration / root growth)
    /// failed part-way through: some nodes were rewritten, others were
    /// not, and no retry signal can make the tree consistent again. All
    /// subsequent reads and writes refuse with an error instead of
    /// silently serving the torn structure. Unreachable on in-memory
    /// stores (their writes cannot fail mid-split); it exists for the
    /// file-backed I/O error paths.
    pub(crate) poisoned: std::sync::atomic::AtomicBool,
    /// Write-ahead log state; `None` for non-durable trees.
    pub(crate) durability: Option<Durability>,
    /// Set by [`TsbTree::recover`]: the commit timestamp of the newest
    /// mutation the recovered tree contains (the replay *cut*). `None` on
    /// trees that were not produced by recovery.
    pub(crate) recovered_to: Option<Timestamp>,
    /// Seqlock-style structure epoch for optimistic concurrent readers.
    ///
    /// Even = the tree's multi-node invariants hold; odd = the single
    /// writer is mid-way through a structural change (split, migration,
    /// root growth) and a concurrent descent may observe a torn state. The
    /// writer bumps even→odd at the first structural write of a mutation
    /// ([`TsbTree::note_structural_write`]) and odd→even when the mutation
    /// has fully installed ([`TsbTree::settle_structure`]). Content-only
    /// leaf rewrites never bump it: replacing a leaf is atomic through the
    /// decoded-node cache, and multiversion reads at a pinned past
    /// timestamp are unaffected by new versions. Readers that need a
    /// consistent multi-node view (see [`crate::ConcurrentTsb`]) sample
    /// the epoch before and after and retry on change.
    pub(crate) structure_seq: AtomicU64,
}

impl std::fmt::Debug for TsbTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TsbTree")
            .field("root", &self.current_root())
            .field("page_size", &self.cfg.page_size)
            .field("split_policy", &self.cfg.split_policy)
            .finish()
    }
}

impl TsbTree {
    /// Creates a fresh tree over in-memory stores sized by `cfg`.
    #[deprecated(
        since = "0.1.0",
        note = "use `TsbOptions::in_memory().config(cfg).open_tree()`"
    )]
    pub fn new_in_memory(cfg: TsbConfig) -> TsbResult<Self> {
        Self::new_in_memory_with_clock(cfg, Arc::new(LogicalClock::new()))
    }

    /// [`Self::new_in_memory`] stamping commits from a caller-supplied
    /// (possibly shared) clock — the in-memory counterpart of
    /// [`Self::create_durable_with_clock`] for sharded-engine tests.
    pub(crate) fn new_in_memory_with_clock(
        cfg: TsbConfig,
        clock: Arc<LogicalClock>,
    ) -> TsbResult<Self> {
        cfg.validate()?;
        let stats = Arc::new(IoStats::new());
        let magnetic = Arc::new(MagneticStore::in_memory(cfg.page_size, Arc::clone(&stats)));
        let worm = Arc::new(WormStore::in_memory(
            cfg.worm_sector_size,
            Arc::clone(&stats),
        ));
        Self::create_with(magnetic, worm, cfg, None, clock)
    }

    /// Creates a fresh tree over the provided stores. The magnetic store must
    /// be empty (use [`Self::open`] to reopen an existing tree).
    pub fn create(
        magnetic: Arc<MagneticStore>,
        worm: Arc<WormStore>,
        cfg: TsbConfig,
    ) -> TsbResult<Self> {
        Self::create_with(magnetic, worm, cfg, None, Arc::new(LogicalClock::new()))
    }

    /// Creates a fresh **durable** tree: every mutation is redo-logged to
    /// `wal` before it may dirty a page, and the initial state is fenced
    /// with a checkpoint, so the tree is crash-consistent from its first
    /// instant. Use [`Self::open_durable`] for the directory-based
    /// convenience API and [`Self::recover`] to reopen after a crash.
    pub fn create_durable(
        magnetic: Arc<MagneticStore>,
        worm: Arc<WormStore>,
        wal: Wal,
        cfg: TsbConfig,
    ) -> TsbResult<Self> {
        Self::create_durable_with_clock(magnetic, worm, wal, cfg, Arc::new(LogicalClock::new()))
    }

    /// [`Self::create_durable`] stamping commits from a caller-supplied
    /// (possibly shared) clock — how a sharded engine gives every shard the
    /// same global commit order.
    pub(crate) fn create_durable_with_clock(
        magnetic: Arc<MagneticStore>,
        worm: Arc<WormStore>,
        wal: Wal,
        cfg: TsbConfig,
        clock: Arc<LogicalClock>,
    ) -> TsbResult<Self> {
        let tree = Self::create_with(magnetic, worm, cfg, Some(wal), clock)?;
        // Fence the initial root + metadata so recovery always has a
        // checkpoint to replay from.
        tree.flush_shared()?;
        Ok(tree)
    }

    fn create_with(
        magnetic: Arc<MagneticStore>,
        worm: Arc<WormStore>,
        cfg: TsbConfig,
        wal: Option<Wal>,
        clock: Arc<LogicalClock>,
    ) -> TsbResult<Self> {
        cfg.validate()?;
        if magnetic.allocated_pages() != 0 {
            return Err(TsbError::config(
                "TsbTree::create requires an empty magnetic store; use TsbTree::open to reopen",
            ));
        }
        if magnetic.page_size() != cfg.page_size {
            return Err(TsbError::config(format!(
                "magnetic store page size {} does not match config page size {}",
                magnetic.page_size(),
                cfg.page_size
            )));
        }
        let stats = Arc::clone(magnetic.stats());
        let pool = BufferPool::new(Arc::clone(&magnetic), cfg.buffer_pool_pages);
        let cache = NodeCache::sharded(cfg.node_cache_entries);
        let cost = CostModel::new(cfg.cost);

        let meta_page = magnetic.allocate()?;
        let root_page = magnetic.allocate()?;
        let root = NodeAddr::Current(root_page);
        let durability = wal.map(|wal| Self::attach_wal(wal, &pool, &worm, meta_page));

        let tree = TsbTree {
            cfg,
            magnetic,
            pool,
            cache,
            worm,
            stats,
            cost,
            clock,
            root: RwLock::new(root),
            meta_page,
            txns: Mutex::new(TxnTable::new()),
            marked_for_time_split: Mutex::new(HashSet::new()),
            poisoned: std::sync::atomic::AtomicBool::new(false),
            durability,
            recovered_to: None,
            structure_seq: AtomicU64::new(0),
        };
        let root_node = DataNode::initial_root();
        tree.write_current(root_page, Node::Data(root_node))?;
        tree.write_meta()?;
        Ok(tree)
    }

    /// Builds the [`Durability`] state for a WAL-attached tree: exempts the
    /// metadata page (its content is reconstructed from commit records, not
    /// page images), installs the dirty-page table into the buffer pool so
    /// its write-back sites can assert the WAL-before-page ordering, and
    /// hooks the WORM settle-before-durability rule into the log's fsync
    /// path (see [`Durability::worm_synced`]).
    fn attach_wal(
        wal: Wal,
        pool: &BufferPool,
        worm: &Arc<WormStore>,
        meta_page: PageId,
    ) -> Durability {
        let wal = Arc::new(wal);
        let pages = Arc::new(WalPageTable::new());
        pages.exempt(meta_page);
        pages.attach_wal(Arc::clone(&wal));
        pool.set_wal_table(Arc::clone(&pages));
        let worm_synced = Arc::new(AtomicU64::new(0));
        {
            let worm = Arc::clone(worm);
            let synced = Arc::clone(&worm_synced);
            wal.set_pre_sync_hook(Box::new(move || {
                let len = worm.device_bytes();
                if len > synced.load(Ordering::Acquire) {
                    worm.sync()?;
                    synced.store(len, Ordering::Release);
                }
                Ok(())
            }));
        }
        Durability {
            wal,
            pages,
            worm_synced,
            last_fence: Mutex::new(None),
            pending_delta_pages: Mutex::new(HashSet::new()),
            needs_reimage: Mutex::new(HashSet::new()),
            pending_wait: Mutex::new(None),
            acks: Mutex::new(CommitAcks::default()),
        }
    }

    /// Reopens an existing tree, or creates a fresh one if the magnetic
    /// store is empty. The metadata page is the lowest allocated page id.
    pub fn open(
        magnetic: Arc<MagneticStore>,
        worm: Arc<WormStore>,
        cfg: TsbConfig,
    ) -> TsbResult<Self> {
        cfg.validate()?;
        if magnetic.allocated_pages() == 0 {
            return Self::create(magnetic, worm, cfg);
        }
        if magnetic.page_size() != cfg.page_size {
            return Err(TsbError::config(format!(
                "magnetic store page size {} does not match config page size {}",
                magnetic.page_size(),
                cfg.page_size
            )));
        }
        let meta_page = magnetic
            .allocated_page_ids()
            .into_iter()
            .min()
            .ok_or_else(|| TsbError::internal("non-empty store with no pages"))?;
        let meta_bytes = magnetic.read(meta_page)?;
        let (root, clock_next, next_txn) = Self::decode_meta(&meta_bytes)?;

        let stats = Arc::clone(magnetic.stats());
        let pool = BufferPool::new(Arc::clone(&magnetic), cfg.buffer_pool_pages);
        let cache = NodeCache::sharded(cfg.node_cache_entries);
        let cost = CostModel::new(cfg.cost);
        let clock = Arc::new(LogicalClock::starting_at(clock_next));

        Ok(TsbTree {
            cfg,
            magnetic,
            pool,
            cache,
            worm,
            stats,
            cost,
            clock,
            root: RwLock::new(root),
            meta_page,
            txns: Mutex::new(TxnTable::starting_at(next_txn)),
            marked_for_time_split: Mutex::new(HashSet::new()),
            poisoned: std::sync::atomic::AtomicBool::new(false),
            durability: None,
            recovered_to: None,
            structure_seq: AtomicU64::new(0),
        })
    }

    /// Opens (or creates) a **durable** tree rooted at directory `dir`,
    /// holding the magnetic store (`current.pages`), the WORM store
    /// (`history.worm`), and the redo log (`redo.wal`).
    ///
    /// * A fresh directory creates a new tree ([`Self::create_durable`]).
    /// * A directory with durable state runs crash-consistent recovery
    ///   ([`Self::recover`]) — this is the same code path whether the last
    ///   session shut down cleanly (the log's tail is a checkpoint; replay
    ///   is empty) or died mid-write.
    /// * A directory where *nothing* was ever durably committed (a fresh
    ///   directory, or a crash inside the very first create before its
    ///   checkpoint fence) is recreated; no acknowledged state can be lost
    ///   because none ever existed. A directory that holds *real store
    ///   data* but no usable log — a pre-WAL database, or a lost/deleted
    ///   `redo.wal` — is a hard error instead: recreating it would destroy
    ///   data this method cannot prove disposable.
    #[deprecated(
        since = "0.1.0",
        note = "use `TsbOptions::durable(dir).config(cfg).open_tree()`"
    )]
    pub fn open_durable(dir: impl AsRef<Path>, cfg: TsbConfig) -> TsbResult<Self> {
        Self::open_durable_staged(dir, cfg, Arc::new(LogicalClock::new()))?.resolve_locally()
    }

    /// [`Self::open_durable`] split in two for the sharded engine: returns
    /// a [`StagedRecovery`] whose in-doubt two-phase-commit prepares are
    /// *not yet resolved* — the caller resolves each against the
    /// coordinator shard's decision (commit or presumed abort) and then
    /// calls [`StagedRecovery::finish`]. `clock` is advanced to (never
    /// reset below) the recovered clock value, so sharing one clock across
    /// shards re-derives the global clock as the max across all of them.
    pub(crate) fn open_durable_staged(
        dir: impl AsRef<Path>,
        cfg: TsbConfig,
        clock: Arc<LogicalClock>,
    ) -> TsbResult<StagedRecovery> {
        cfg.validate()?;
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let stats = Arc::new(IoStats::new());
        let wal_path = dir.join(WAL_FILE);
        let (wal, scan) = Wal::open(&wal_path, cfg.fsync_policy, Arc::clone(&stats))?;
        let has_fence = scan.records.iter().any(|(_, r)| {
            matches!(
                r,
                WalRecord::Commit { .. } | WalRecord::Checkpoint { .. } | WalRecord::Prepare { .. }
            )
        });
        let magnetic = Arc::new(MagneticStore::open_file(
            dir.join(MAGNETIC_FILE),
            cfg.page_size,
            Arc::clone(&stats),
        )?);
        let worm = Arc::new(WormStore::open_file(
            dir.join(WORM_FILE),
            cfg.worm_sector_size,
            Arc::clone(&stats),
        )?);
        if has_fence {
            return Self::recover_staged(magnetic, worm, wal, scan, cfg, clock);
        }
        // No fence: nothing was ever durably committed through this log.
        // Starting fresh is only safe when the stores hold no data of
        // their own...
        if magnetic.allocated_pages() == 0 && worm.device_bytes() == 0 {
            drop(wal);
            let wal = Wal::create(&wal_path, cfg.fsync_policy, stats)?;
            return Self::create_durable_with_clock(magnetic, worm, wal, cfg, clock)
                .map(StagedRecovery::fresh);
        }
        // ...or when every byte in them provably came from an unfinished
        // first create: a non-empty, fence-less log can only be the first
        // create's page images (every completed create or mutation appends
        // a fence, and a torn tail that ate *every* fence must lie at or
        // before the first one). Recreate from scratch.
        if !scan.records.is_empty() {
            drop(wal);
            drop(magnetic);
            drop(worm);
            std::fs::remove_file(dir.join(MAGNETIC_FILE))?;
            std::fs::remove_file(dir.join(WORM_FILE))?;
            let wal = Wal::create(&wal_path, cfg.fsync_policy, Arc::clone(&stats))?;
            let magnetic = Arc::new(MagneticStore::open_file(
                dir.join(MAGNETIC_FILE),
                cfg.page_size,
                Arc::clone(&stats),
            )?);
            let worm = Arc::new(WormStore::open_file(
                dir.join(WORM_FILE),
                cfg.worm_sector_size,
                stats,
            )?);
            return Self::create_durable_with_clock(magnetic, worm, wal, cfg, clock)
                .map(StagedRecovery::fresh);
        }
        // Real store data, empty log: a pre-WAL database or a lost
        // redo.wal. Refuse rather than guess.
        Err(TsbError::corruption(format!(
            "directory {} holds store data but its write-ahead log has no usable \
             fence; refusing to recreate (use TsbTree::open for a non-durable \
             reopen, or restore the missing redo.wal)",
            dir.display()
        )))
    }

    /// Crash-consistent reopen: replays the redo log over the magnetic
    /// store and rebuilds a verified tree.
    ///
    /// The protocol ("repeating history", then discarding the un-fenced
    /// tail):
    ///
    /// 1. **Base.** Replay starts after the newest `Checkpoint` record (the
    ///    fence LSN) — the magnetic device is known to equal that state. A
    ///    log with commits but no checkpoint replays from the empty store
    ///    the first session started with.
    /// 2. **Cut.** The replay target is the newest `Commit` record such
    ///    that every commit up to it has its WORM history intact
    ///    (`worm_len` within the surviving WORM file). Records after the
    ///    cut belong to a mutation that never finished logging; its page
    ///    images are discarded and any WORM sectors it burned are dead
    ///    space (write-once media cannot be un-burned — §1).
    /// 3. **Repeat history.** Every `PageImage` between base and cut is
    ///    installed into the magnetic store in LSN order
    ///    ([`MagneticStore::restore`] force-allocates pages the on-disk
    ///    superblock predates). This overwrites any torn or half-flushed
    ///    device state — correctness does not depend on *which* writes
    ///    happened to reach the device before the crash.
    /// 4. **Metadata.** The root pointer, logical clock, and transaction
    ///    counter come from the cut's metadata payload, not from the
    ///    (possibly stale) on-device metadata page.
    /// 5. **Implicit abort.** Uncommitted versions that made it into
    ///    replayed pages are erased — in-flight writer transactions died
    ///    with the process, exactly the erasure §4 makes possible on the
    ///    erasable store.
    /// 6. **Reclaim.** The magnetic free list is rebuilt from reachability:
    ///    any allocated page the recovered root cannot reach is freed. The
    ///    log has no record kind for page frees, so replay can only ever
    ///    allocate — without this step a page freed since the checkpoint
    ///    would come back allocated-but-unreachable and stay leaked across
    ///    every later session.
    /// 7. **Verify, then fence.** The rebuilt tree must pass [`Self::verify`]
    ///    before serving, and a fresh checkpoint fences the next recovery.
    ///
    /// The recovered tree answers every query exactly as the oracle's
    /// replay of the committed prefix up to [`Self::last_durable_commit`].
    pub fn recover(
        magnetic: Arc<MagneticStore>,
        worm: Arc<WormStore>,
        wal: Wal,
        scan: WalScan,
        cfg: TsbConfig,
    ) -> TsbResult<Self> {
        Self::recover_staged(
            magnetic,
            worm,
            wal,
            scan,
            cfg,
            Arc::new(LogicalClock::new()),
        )?
        .resolve_locally()
    }

    /// [`Self::recover`] up to — but not including — the resolution of
    /// in-doubt two-phase-commit prepares and the final
    /// purge/reclaim/verify/checkpoint pass. The returned
    /// [`StagedRecovery`] lists every prepare that survived the cut with
    /// its transaction still unstamped; the caller decides each one
    /// (against the coordinator shard's decision record) and then calls
    /// [`StagedRecovery::finish`]. A `Prepare` record is a cut candidate
    /// exactly like a commit — its page images must replay so the in-doubt
    /// writes exist to be stamped or erased — but it never advances the
    /// recovered-to timestamp (the transaction may yet abort).
    pub(crate) fn recover_staged(
        magnetic: Arc<MagneticStore>,
        worm: Arc<WormStore>,
        wal: Wal,
        scan: WalScan,
        cfg: TsbConfig,
        clock: Arc<LogicalClock>,
    ) -> TsbResult<StagedRecovery> {
        cfg.validate()?;
        if magnetic.page_size() != cfg.page_size {
            return Err(TsbError::config(format!(
                "magnetic store page size {} does not match config page size {}",
                magnetic.page_size(),
                cfg.page_size
            )));
        }
        // 1. Base: the newest checkpoint, if any.
        let chk_idx = scan
            .records
            .iter()
            .rposition(|(_, r)| matches!(r, WalRecord::Checkpoint { .. }));
        let mut cut_state: Option<(NodeAddr, Timestamp, u64)> =
            match chk_idx.map(|i| &scan.records[i].1) {
                Some(WalRecord::Checkpoint { meta, .. }) => Some(Self::decode_meta(meta)?),
                Some(_) => unreachable!("rposition matched a checkpoint"),
                None => None,
            };
        // 2. Cut: the longest post-base prefix of commits whose WORM
        //    history survived. A commit with an elided (empty) metadata
        //    payload inherits root and txn counter from the previous fence
        //    and derives its clock from its own timestamp — exactly the
        //    predictability `wal_commit` checked before eliding.
        let replay_from = chk_idx.map(|i| i + 1).unwrap_or(0);
        let worm_len_actual = worm.device_bytes();
        // Any intact decision record is honorable: the coordinator logs it
        // only after every participant's prepare is durable, so even a
        // decision past this shard's own cut proves the commit outcome.
        let decisions: HashSet<u64> = scan
            .records
            .iter()
            .filter_map(|(_, r)| match r {
                WalRecord::Decision { ts, .. } => Some(*ts),
                _ => None,
            })
            .collect();
        let mut prepares: Vec<InDoubtTxn> = Vec::new();
        let mut cut_idx = None;
        let mut cut_ts = None;
        for (idx, (_, record)) in scan.records.iter().enumerate().skip(replay_from) {
            match record {
                WalRecord::Commit { ts, worm_len, meta } => {
                    if *worm_len > worm_len_actual {
                        break;
                    }
                    let state = if meta.is_empty() {
                        let (root, _, next_txn) = cut_state.ok_or_else(|| {
                            TsbError::corruption(
                                "WAL commit with elided metadata has no prior fence to inherit from",
                            )
                        })?;
                        (root, Timestamp(*ts).next(), next_txn)
                    } else {
                        Self::decode_meta(meta)?
                    };
                    cut_idx = Some(idx);
                    cut_ts = Some(Timestamp(*ts));
                    cut_state = Some(state);
                }
                // A prepare fences like a commit (always full metadata)
                // but does not advance the commit cut timestamp — whether
                // its transaction committed is decided later.
                WalRecord::Prepare {
                    ts,
                    worm_len,
                    meta,
                    txn,
                    coordinator,
                    ..
                } => {
                    if *worm_len > worm_len_actual {
                        break;
                    }
                    cut_idx = Some(idx);
                    cut_state = Some(Self::decode_meta(meta)?);
                    prepares.push(InDoubtTxn {
                        ts: Timestamp(*ts),
                        txn: TxnId(*txn),
                        coordinator: *coordinator,
                    });
                }
                _ => {}
            }
        }
        let cut_state = cut_state.ok_or_else(|| {
            TsbError::corruption(
                "write-ahead log has no usable fence (no checkpoint, and no commit \
                 whose WORM history survived); nothing was ever durable",
            )
        })?;
        // 3. Repeat history up to the cut: collect each page's newest
        //    logged image, re-apply its deltas in LSN order, and install
        //    the final state. Deltas never read the device — the
        //    first-touch rule guarantees an in-log image precedes every
        //    delta of its page within the generation, so a torn or
        //    never-flushed device page can't poison replay.
        if let Some(cut_idx) = cut_idx {
            let mut replayed: HashMap<PageId, ReplayPage> = HashMap::new();
            for (_, record) in &scan.records[replay_from..=cut_idx] {
                match record {
                    WalRecord::PageImage { page, bytes } => {
                        replayed.insert(*page, ReplayPage::Raw(bytes.clone()));
                    }
                    WalRecord::PageDelta { page, op } => {
                        let state = replayed.get_mut(page).ok_or_else(|| {
                            TsbError::corruption(format!(
                                "WAL delta for page {page} precedes the page's image \
                                 in this log generation (first-touch rule violated)"
                            ))
                        })?;
                        state.apply(op)?;
                    }
                    WalRecord::Commit { .. }
                    | WalRecord::Checkpoint { .. }
                    | WalRecord::Prepare { .. }
                    | WalRecord::Decision { .. } => {}
                }
            }
            for (page, state) in replayed {
                magnetic.restore(page, &state.into_bytes())?;
            }
        }
        // 4. Install the cut's metadata.
        let (root, clock_next, next_txn) = cut_state;
        let meta_page = magnetic
            .allocated_page_ids()
            .into_iter()
            .min()
            .ok_or_else(|| TsbError::corruption("recovered store has no pages"))?;
        let stats = Arc::clone(magnetic.stats());
        let pool = BufferPool::new(Arc::clone(&magnetic), cfg.buffer_pool_pages);
        let cache = NodeCache::sharded(cfg.node_cache_entries);
        let cost = CostModel::new(cfg.cost);
        clock.advance_to(clock_next);
        let recovered_to = cut_ts.unwrap_or_else(|| clock_next.prev());
        let durability = Some(Self::attach_wal(wal, &pool, &worm, meta_page));

        let tree = TsbTree {
            cfg,
            magnetic,
            pool,
            cache,
            worm,
            stats,
            cost,
            clock,
            root: RwLock::new(root),
            meta_page,
            txns: Mutex::new(TxnTable::starting_at(next_txn)),
            marked_for_time_split: Mutex::new(HashSet::new()),
            poisoned: std::sync::atomic::AtomicBool::new(false),
            durability,
            recovered_to: Some(recovered_to),
            structure_seq: AtomicU64::new(0),
        };
        // The WORM bytes the cut references survived, so they are as
        // stable as they will ever be.
        if let Some(d) = &tree.durability {
            d.worm_synced.store(worm_len_actual, Ordering::Release);
        }
        tree.write_meta()?;
        // In-doubt = a surviving prepare whose transaction is still
        // unstamped in the replayed tree. A prepare whose transaction was
        // later committed (a commit record at or before the cut stamped
        // it) or aborted leaves no uncommitted versions and needs no
        // resolution.
        let unstamped = tree.collect_uncommitted_txns()?;
        prepares.retain(|p| unstamped.contains(&p.txn));
        Ok(StagedRecovery {
            tree,
            in_doubt: prepares,
            decisions,
            needs_finish: true,
        })
    }

    // ----- replication (replica side) -------------------------------------

    /// Reopens a replication replica's local state at directory `dir`, or
    /// returns `None` when the directory holds nothing usable (fresh, or a
    /// base install that never finished — the caller wipes and re-fetches
    /// the base). See [`ReplicaRecovery`] for how this differs from the
    /// primary's [`Self::open_durable_staged`].
    pub(crate) fn open_durable_replica(
        dir: impl AsRef<Path>,
        cfg: TsbConfig,
    ) -> TsbResult<Option<ReplicaRecovery>> {
        cfg.validate()?;
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let wal_path = dir.join(WAL_FILE);
        if !wal_path.exists() {
            return Ok(None);
        }
        let stats = Arc::new(IoStats::new());
        let (wal, scan) = Wal::open(&wal_path, cfg.fsync_policy, Arc::clone(&stats))?;
        let has_fence = scan
            .records
            .iter()
            .any(|(_, r)| matches!(r, WalRecord::Commit { .. } | WalRecord::Checkpoint { .. }));
        if !has_fence {
            // A shipped log always starts at a fence (the base image's
            // checkpoint); no fence means the install never completed.
            drop(wal);
            return Ok(None);
        }
        let magnetic = Arc::new(MagneticStore::open_file(
            dir.join(MAGNETIC_FILE),
            cfg.page_size,
            Arc::clone(&stats),
        )?);
        let worm = Arc::new(WormStore::open_file(
            dir.join(WORM_FILE),
            cfg.worm_sector_size,
            stats,
        )?);
        Self::recover_replica(magnetic, worm, wal, scan, cfg).map(Some)
    }

    /// [`Self::recover_staged`]'s replica variant: replays the local copy
    /// of the primary's log to the newest fence, but keeps uncommitted
    /// versions (their transactions are still live on the primary), never
    /// appends records of its own (no purge fences, no local checkpoint),
    /// and hands back the un-fenced tail for the apply overlay. A log
    /// holding two-phase-commit records is rejected: replication ships a
    /// single shard's log, and a sharded primary must be subscribed to
    /// per-shard (unsupported in this version).
    pub(crate) fn recover_replica(
        magnetic: Arc<MagneticStore>,
        worm: Arc<WormStore>,
        wal: Wal,
        scan: WalScan,
        cfg: TsbConfig,
    ) -> TsbResult<ReplicaRecovery> {
        cfg.validate()?;
        if magnetic.page_size() != cfg.page_size {
            return Err(TsbError::config(format!(
                "magnetic store page size {} does not match config page size {}",
                magnetic.page_size(),
                cfg.page_size
            )));
        }
        if scan
            .records
            .iter()
            .any(|(_, r)| matches!(r, WalRecord::Prepare { .. } | WalRecord::Decision { .. }))
        {
            return Err(TsbError::config(
                "replica log holds two-phase-commit records; replicating a \
                 sharded primary is not supported",
            ));
        }
        // Base: the newest checkpoint (the base image's fence, or a
        // primary checkpoint that was applied in place).
        let chk_idx = scan
            .records
            .iter()
            .rposition(|(_, r)| matches!(r, WalRecord::Checkpoint { .. }));
        let mut cut_state: Option<(NodeAddr, Timestamp, u64)> =
            match chk_idx.map(|i| &scan.records[i].1) {
                Some(WalRecord::Checkpoint { meta, .. }) => Some(Self::decode_meta(meta)?),
                Some(_) => unreachable!("rposition matched a checkpoint"),
                None => None,
            };
        let mut applied_lsn = chk_idx.map(|i| scan.records[i].0);
        // Cut: the newest commit fence. The batch-apply protocol makes the
        // WORM durable *before* any record of the batch reaches the local
        // log, so every logged commit must have its history intact — a
        // violation is corruption, not a torn tail to skip.
        let replay_from = chk_idx.map(|i| i + 1).unwrap_or(0);
        let worm_len_actual = worm.device_bytes();
        let mut cut_idx = None;
        let mut cut_ts = None;
        for (idx, (lsn, record)) in scan.records.iter().enumerate().skip(replay_from) {
            if let WalRecord::Commit { ts, worm_len, meta } = record {
                if *worm_len > worm_len_actual {
                    return Err(TsbError::corruption(format!(
                        "replica log commit at lsn {lsn} references {worm_len} WORM \
                         bytes but the device holds {worm_len_actual}; the apply \
                         protocol syncs history before logging its fence"
                    )));
                }
                let state = if meta.is_empty() {
                    let (root, _, next_txn) = cut_state.ok_or_else(|| {
                        TsbError::corruption(
                            "WAL commit with elided metadata has no prior fence to inherit from",
                        )
                    })?;
                    (root, Timestamp(*ts).next(), next_txn)
                } else {
                    Self::decode_meta(meta)?
                };
                cut_idx = Some(idx);
                cut_ts = Some(Timestamp(*ts));
                cut_state = Some(state);
                applied_lsn = Some(*lsn);
            }
        }
        let cut_state = cut_state.ok_or_else(|| {
            TsbError::corruption("replica log has no usable fence; nothing was ever applied")
        })?;
        let applied_lsn = applied_lsn
            .ok_or_else(|| TsbError::corruption("replica log has a fence but no fence lsn"))?;
        // Repeat history through the cut, exactly as primary recovery does.
        let replay_to = cut_idx.or(chk_idx);
        if let Some(replay_to) = replay_to {
            let mut replayed: HashMap<PageId, ReplayPage> = HashMap::new();
            for (_, record) in &scan.records[replay_from..=replay_to] {
                match record {
                    WalRecord::PageImage { page, bytes } => {
                        replayed.insert(*page, ReplayPage::Raw(bytes.clone()));
                    }
                    WalRecord::PageDelta { page, op } => {
                        let state = replayed.get_mut(page).ok_or_else(|| {
                            TsbError::corruption(format!(
                                "WAL delta for page {page} precedes the page's image \
                                 in this log generation (first-touch rule violated)"
                            ))
                        })?;
                        state.apply(op)?;
                    }
                    _ => {}
                }
            }
            for (page, state) in replayed {
                magnetic.restore(page, &state.into_bytes())?;
            }
        }
        // The un-fenced tail: shipped records whose commit fence has not
        // arrived. They re-seed the apply overlay's staging area.
        let tail: Vec<WalRecord> = replay_to
            .map(|i| {
                scan.records[i + 1..]
                    .iter()
                    .map(|(_, r)| r.clone())
                    .collect()
            })
            .unwrap_or_default();
        let last_lsn = wal.last_lsn();
        // Install the cut's metadata and assemble the tree.
        let (root, clock_next, next_txn) = cut_state;
        let meta_page = magnetic
            .allocated_page_ids()
            .into_iter()
            .min()
            .ok_or_else(|| TsbError::corruption("recovered store has no pages"))?;
        let stats = Arc::clone(magnetic.stats());
        let pool = BufferPool::new(Arc::clone(&magnetic), cfg.buffer_pool_pages);
        let cache = NodeCache::sharded(cfg.node_cache_entries);
        let cost = CostModel::new(cfg.cost);
        let clock = Arc::new(LogicalClock::starting_at(clock_next));
        let recovered_to = cut_ts.unwrap_or_else(|| clock_next.prev());
        let durability = Some(Self::attach_wal(wal, &pool, &worm, meta_page));
        let tree = TsbTree {
            cfg,
            magnetic,
            pool,
            cache,
            worm,
            stats,
            cost,
            clock,
            root: RwLock::new(root),
            meta_page,
            txns: Mutex::new(TxnTable::starting_at(next_txn)),
            marked_for_time_split: Mutex::new(HashSet::new()),
            poisoned: std::sync::atomic::AtomicBool::new(false),
            durability,
            recovered_to: Some(recovered_to),
            structure_seq: AtomicU64::new(0),
        };
        if let Some(d) = &tree.durability {
            d.worm_synced.store(worm_len_actual, Ordering::Release);
        }
        tree.write_meta()?;
        // Reclaim pages unreachable at the cut (a free has no log record;
        // see `reclaim_unreachable_pages`) and verify — but no purge and
        // no fencing checkpoint: the replica's state must stay exactly the
        // primary's state at the cut fence, and its log is a pure copy.
        tree.reclaim_unreachable_pages()?;
        tree.verify()?;
        Ok(ReplicaRecovery {
            tree,
            applied_lsn,
            last_lsn,
            tail,
            cut_state,
        })
    }

    /// Installs a shipped page image onto the replica's magnetic device and
    /// invalidates every cached copy. Order matters against concurrent
    /// readers: device first, then the buffer-pool frame, then the node
    /// cache — a racing fill that decoded stale bytes began before the
    /// cache discard bumped the shard stamp, so `complete_fill` refuses to
    /// install it. Caller must hold the writer lock with the structure
    /// epoch marked in flight.
    pub(crate) fn replica_install_page(&self, page: PageId, bytes: &[u8]) -> TsbResult<()> {
        self.magnetic.restore(page, bytes)?;
        self.pool.discard(page);
        self.cache.discard(NodeAddr::Current(page));
        Ok(())
    }

    /// Installs a shipped fence's metadata: the root pointer, the commit
    /// clock, and the transaction counter, mirrored onto the metadata page.
    /// Caller must hold the writer lock with the structure epoch marked in
    /// flight.
    pub(crate) fn replica_install_meta(
        &self,
        root: NodeAddr,
        clock_next: Timestamp,
        next_txn: u64,
    ) -> TsbResult<()> {
        *self.root.write() = root;
        self.clock.advance_to(clock_next);
        *self.txns.lock() = TxnTable::starting_at(next_txn);
        self.write_meta()
    }

    /// The device image of a current page — the base a shipped delta
    /// applies to when the apply overlay holds no newer state for the page
    /// (the page's first-touch image predates the replica's local log
    /// generation; the device equals the state at the last installed
    /// fence).
    pub(crate) fn replica_read_page(&self, page: PageId) -> TsbResult<Vec<u8>> {
        self.magnetic.read(page)
    }

    /// Flushes the replica's device stores so a primary checkpoint record
    /// can become a sound local recovery base: local restart replays from
    /// the newest checkpoint assuming the device equals that state.
    pub(crate) fn replica_sync_devices(&self) -> TsbResult<()> {
        self.pool.flush()?;
        self.magnetic.sync()?;
        self.worm.sync()?;
        if let Some(d) = &self.durability {
            d.worm_synced
                .store(self.worm.device_bytes(), Ordering::Release);
        }
        Ok(())
    }

    /// The redo log handle, for the replica's local record appends and
    /// syncs (`None` on non-durable trees).
    pub(crate) fn wal_handle(&self) -> Option<Arc<Wal>> {
        self.durability.as_ref().map(|d| Arc::clone(&d.wal))
    }

    /// Captures a consistent **base image** for a new (or re-basing)
    /// replica: checkpoints the tree — after [`Self::flush_shared`] the
    /// log is exactly `[Checkpoint]` and the devices equal the
    /// checkpointed state — then snapshots every magnetic page, the whole
    /// WORM device, and the checkpoint record's exact logged body (the
    /// replica seeds its local log with it, byte-identical, preserving the
    /// primary's LSN chain). Caller must hold the writer lock.
    pub(crate) fn capture_replication_base(&self) -> TsbResult<crate::replica::ReplicaBase> {
        let wal = self.wal_handle().ok_or_else(|| {
            TsbError::config("replication requires a durable (WAL-attached) primary")
        })?;
        self.flush_shared()?;
        let checkpoint_lsn = wal.last_lsn();
        if checkpoint_lsn == 0 {
            return Err(TsbError::internal(
                "checkpoint fence landed at lsn 0 (a fresh tree logs page images first)",
            ));
        }
        let mut tailer = tsb_storage::WalTailer::new(wal.path());
        let checkpoint = match tailer.poll(checkpoint_lsn - 1, checkpoint_lsn, usize::MAX)? {
            tsb_storage::TailPoll::Batch(mut bodies) if bodies.len() == 1 => bodies.remove(0),
            _ => {
                return Err(TsbError::internal(
                    "the just-written checkpoint fence is not the log's sole record",
                ))
            }
        };
        let mut pages = Vec::new();
        let mut ids = self.magnetic.allocated_page_ids();
        ids.sort_unstable();
        for page in ids {
            pages.push((page, self.magnetic.read(page)?));
        }
        let worm_len = self.worm.device_bytes();
        let worm = self.worm.read_raw(0, worm_len as usize)?;
        Ok(crate::replica::ReplicaBase {
            checkpoint_lsn,
            checkpoint,
            pages,
            worm,
            page_size: self.cfg.page_size,
            worm_sector_size: self.cfg.worm_sector_size,
        })
    }

    /// Walks the current database collecting the transaction ids of every
    /// surviving uncommitted version (used by staged recovery to tell
    /// in-doubt prepares from already-resolved ones).
    fn collect_uncommitted_txns(&self) -> TsbResult<HashSet<TxnId>> {
        fn walk(tree: &TsbTree, addr: NodeAddr, out: &mut HashSet<TxnId>) -> TsbResult<()> {
            if addr.as_page().is_none() {
                return Ok(());
            }
            let node = tree.read_node(addr)?;
            match &*node {
                Node::Data(data) => {
                    for v in data.entries() {
                        if let Some(txn) = v.state.txn_id() {
                            out.insert(txn);
                        }
                    }
                }
                Node::Index(index) => {
                    let children: Vec<NodeAddr> = index.entries().iter().map(|e| e.child).collect();
                    for child in children {
                        walk(tree, child, out)?;
                    }
                }
            }
            Ok(())
        }
        let mut out = HashSet::new();
        walk(self, self.current_root(), &mut out)?;
        Ok(out)
    }

    /// Stamps every surviving uncommitted version of `txn` as committed at
    /// `ts` and fences the stamping with a commit record — recovery's
    /// roll-forward of an in-doubt two-phase-commit prepare whose
    /// coordinator decided commit. Mirrors the stamping loop of
    /// `commit_txn_shared`, but driven by a tree walk (the transaction
    /// table's write set died with the process).
    pub(crate) fn resolve_in_doubt_commit(&self, txn: TxnId, ts: Timestamp) -> TsbResult<()> {
        self.clock.advance_to(ts.next());
        self.stamp_in_doubt_at(self.current_root(), txn, ts)?;
        self.wal_commit(ts)?;
        // Recovery has no ack pipeline; the deferred wait (if the policy
        // produced one) is settled by the checkpoint in `finish`.
        let _ = self.take_pending_durable_wait();
        Ok(())
    }

    fn stamp_in_doubt_at(&self, addr: NodeAddr, txn: TxnId, ts: Timestamp) -> TsbResult<()> {
        let Some(page) = addr.as_page() else {
            return Ok(());
        };
        let node = self.read_node(addr)?;
        match &*node {
            Node::Data(data) => {
                let keys: Vec<Key> = data
                    .entries()
                    .iter()
                    .filter(|v| v.state.txn_id() == Some(txn))
                    .map(|v| v.key.clone())
                    .collect();
                if keys.is_empty() {
                    return Ok(());
                }
                let mut leaf = DataNode::clone(data);
                for key in keys {
                    let pending = leaf.remove_uncommitted(&key, txn).ok_or_else(|| {
                        TsbError::internal(format!(
                            "in-doubt transaction {txn} lost its uncommitted version of key {key}"
                        ))
                    })?;
                    leaf.insert(Version {
                        key: pending.key,
                        state: tsb_common::TsState::Committed(ts),
                        value: pending.value,
                    })?;
                }
                self.write_current(page, Node::Data(leaf))
            }
            Node::Index(index) => {
                let children: Vec<NodeAddr> = index.entries().iter().map(|e| e.child).collect();
                for child in children {
                    self.stamp_in_doubt_at(child, txn, ts)?;
                }
                Ok(())
            }
        }
    }

    /// The commit timestamp of the newest mutation known to be on stable
    /// storage — the durable prefix's upper bound. For a tree produced by
    /// [`Self::recover`] this starts at the recovery cut; on a live
    /// durable tree it then advances with the WAL's durable-LSN watermark
    /// as commit fences are fsynced (pipelined group commit). `None` for
    /// non-durable trees that were also not born from recovery.
    pub fn last_durable_commit(&self) -> Option<Timestamp> {
        let settled = self.durability.as_ref().and_then(|d| {
            let mut acks = d.acks.lock();
            acks.settle(d.wal.durable_lsn());
            acks.durable_ts
        });
        match (self.recovered_to, settled) {
            (Some(cut), Some(live)) => Some(cut.max(live)),
            (cut, live) => cut.or(live),
        }
    }

    /// Whether this tree redo-logs its mutations to a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Walks the current database and erases every uncommitted version
    /// (recovery's implicit abort of in-flight transactions; uncommitted
    /// versions never migrate, so historical nodes need no visit).
    fn purge_uncommitted(&self) -> TsbResult<()> {
        self.purge_uncommitted_at(self.current_root())
    }

    fn purge_uncommitted_at(&self, addr: NodeAddr) -> TsbResult<()> {
        let Some(page) = addr.as_page() else {
            return Ok(());
        };
        let node = self.read_node(addr)?;
        match &*node {
            Node::Data(data) => {
                if data.entries().iter().any(|v| v.state.is_uncommitted()) {
                    let committed: Vec<_> = data
                        .entries()
                        .iter()
                        .filter(|v| !v.state.is_uncommitted())
                        .cloned()
                        .collect();
                    let cleaned =
                        DataNode::from_entries(data.key_range.clone(), data.time_range, committed);
                    self.write_current(page, Node::Data(cleaned))?;
                }
                Ok(())
            }
            Node::Index(index) => {
                let children: Vec<NodeAddr> = index.entries().iter().map(|e| e.child).collect();
                for child in children {
                    self.purge_uncommitted_at(child)?;
                }
                Ok(())
            }
        }
    }

    /// Rebuilds the magnetic free list from reachability: frees every
    /// allocated page that is neither the metadata page nor reachable from
    /// the recovered root. The redo log has no record kind for page frees,
    /// so replay can only ever *allocate* ([`MagneticStore::restore`] even
    /// pulls replayed pages off the on-disk free list): a page freed since
    /// the last checkpoint would come back allocated-but-unreachable after
    /// recovery and stay leaked across every later session — which
    /// [`Self::verify`] treats as a hard error, turning a space leak into
    /// an unrecoverable store. Deriving the free list from the recovered
    /// tree closes that gap for any free site, present or future, without
    /// a `PageFree` record.
    fn reclaim_unreachable_pages(&self) -> TsbResult<()> {
        let mut reachable: HashSet<PageId> = HashSet::new();
        reachable.insert(self.meta_page);
        self.collect_current_pages(self.current_root(), &mut reachable)?;
        for page in self.magnetic.allocated_page_ids() {
            if !reachable.contains(&page) {
                self.cache.discard(NodeAddr::Current(page));
                self.pool.discard(page);
                self.magnetic.free(page)?;
            }
        }
        Ok(())
    }

    /// Collects into `out` every magnetic page reachable from `addr`
    /// (historical children live on the WORM and are skipped).
    fn collect_current_pages(&self, addr: NodeAddr, out: &mut HashSet<PageId>) -> TsbResult<()> {
        let Some(page) = addr.as_page() else {
            return Ok(());
        };
        if !out.insert(page) {
            return Ok(());
        }
        let node = self.read_node(addr)?;
        if let Node::Index(index) = &*node {
            for entry in index.entries() {
                self.collect_current_pages(entry.child, out)?;
            }
        }
        Ok(())
    }

    /// The tree configuration.
    pub fn config(&self) -> &TsbConfig {
        &self.cfg
    }

    /// The shared I/O statistics counters.
    pub fn io_stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// The device cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Wires `injector` into every device this tree writes — the magnetic
    /// store, the WORM store, and (when durable) the WAL — so crash tests
    /// can kill a fully assembled engine at any instrumented write site.
    /// Sharded crash tests install one injector across every shard, making
    /// "crash after k of n prepares" a single armed trigger.
    pub fn set_fault_injector(&self, injector: &Arc<FaultInjector>) {
        self.magnetic.set_fault_injector(Arc::clone(injector));
        self.worm.set_fault_injector(Arc::clone(injector));
        if let Some(d) = &self.durability {
            d.wal.set_fault_injector(Arc::clone(injector));
        }
    }

    /// The current logical time (the timestamp the next commit would get).
    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// The root node address.
    pub fn root_addr(&self) -> NodeAddr {
        self.current_root()
    }

    /// Copies the root pointer out of its latch (a short shared latch, held
    /// only for the copy).
    pub(crate) fn current_root(&self) -> NodeAddr {
        *self.root.read()
    }

    // ----- structure epoch (single-writer seqlock) ------------------------

    /// The current structure epoch (even = stable, odd = a structural
    /// change is in flight). Readers needing a consistent multi-node view
    /// sample this before and after their descent and retry on change.
    pub(crate) fn structure_epoch(&self) -> u64 {
        self.structure_seq.load(Ordering::Acquire)
    }

    /// Marks the beginning of a structural change (first split / migration /
    /// root replacement of the current mutation). Idempotent within one
    /// mutation: only the even→odd transition stores. Must only be called
    /// by the single writer.
    pub(crate) fn note_structural_write(&self) {
        let seq = self.structure_seq.load(Ordering::Relaxed);
        if seq.is_multiple_of(2) {
            self.structure_seq.store(seq + 1, Ordering::Release);
        }
    }

    /// Marks the end of the current mutation: if a structural change was
    /// noted, the epoch settles back to even. Must only be called by the
    /// single writer.
    pub(crate) fn settle_structure(&self) {
        let seq = self.structure_seq.load(Ordering::Relaxed);
        if seq % 2 == 1 {
            self.structure_seq.store(seq + 1, Ordering::Release);
        }
    }

    /// Ends a mutation that may have performed structural writes. If the
    /// mutation `failed` while the epoch was odd — i.e. after at least one
    /// structural write landed but before the change fully installed — the
    /// tree is permanently poisoned: some nodes were rewritten and others
    /// were not, and neither the writer nor a retrying reader can
    /// reconstruct a consistent view. All subsequent operations then
    /// refuse (see [`Self::check_not_poisoned`]) instead of silently
    /// serving the torn structure.
    pub(crate) fn settle_structure_after(&self, failed: bool) {
        if failed && self.structure_seq.load(Ordering::Relaxed) % 2 == 1 {
            self.poisoned.store(true, Ordering::Release);
        }
        self.settle_structure();
    }

    /// Errors if a previous structural mutation failed part-way through.
    pub(crate) fn check_not_poisoned(&self) -> TsbResult<()> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(TsbError::invariant(
                "the tree is poisoned: a structural change (split/migration) failed \
                 part-way through and the on-device structure is torn",
            ));
        }
        Ok(())
    }

    /// Space currently occupied on the two devices (the paper's `SpaceM` and
    /// `SpaceO`).
    pub fn space(&self) -> SpaceSnapshot {
        SpaceSnapshot {
            magnetic_bytes: self.magnetic.device_bytes(),
            worm_bytes: self.worm.device_bytes(),
            magnetic_payload_bytes: self.magnetic.payload_bytes(),
            worm_payload_bytes: self.worm.payload_bytes(),
        }
    }

    /// The storage cost `CS = SpaceM·CM + SpaceO·CO` of the current state.
    pub fn storage_cost(&self) -> f64 {
        self.cost.storage_cost(&self.space())
    }

    /// Flushes dirty nodes, dirty pages, the metadata page, and both
    /// devices. On a durable tree this is a full **checkpoint**: once the
    /// devices are synced, a checkpoint record fences the redo log, so the
    /// next recovery replays nothing that precedes this call.
    pub fn flush(&mut self) -> TsbResult<()> {
        self.flush_shared()
    }

    /// Synonym for [`Self::flush`] under its durability name.
    pub fn checkpoint(&mut self) -> TsbResult<()> {
        self.flush_shared()
    }

    /// [`Self::flush`] against `&self`, for callers that serialize writers
    /// externally ([`crate::ConcurrentTsb`]).
    ///
    /// Checkpoint ordering is what makes the fence sound: the checkpoint
    /// record is appended (and fsynced) only *after* every dirty node is
    /// encoded, every dirty page written, and both devices synced. A crash
    /// anywhere inside this sequence leaves the log without the new
    /// checkpoint, so recovery replays from the previous fence — and
    /// because every page image since that fence is in the log, replay
    /// overwrites whatever subset of the flush had landed.
    pub(crate) fn flush_shared(&self) -> TsbResult<()> {
        self.write_meta()?;
        self.flush_node_cache()?;
        self.pool.flush()?;
        self.magnetic.sync()?;
        self.worm.sync()?;
        if let Some(d) = &self.durability {
            let worm_len = self.worm.device_bytes();
            let record = WalRecord::Checkpoint {
                worm_len,
                meta: self.encode_meta_bytes(),
            };
            // A completed checkpoint fences everything before it, so the
            // log is atomically *replaced* by the new fence record
            // (write-new-then-rename inside `reset_with`, fsynced) instead
            // of growing without bound: the log stays one checkpoint
            // interval long, and reopen cost is O(since last checkpoint).
            d.wal.reset_with(&record).inspect_err(|_| {
                self.poisoned.store(true, Ordering::Release);
            })?;
            // A fresh log generation holds no page bases: the first-touch
            // set resets so every page logs a full image again before its
            // next delta, and the write-back coverage map starts over (the
            // flush above drained every dirty page).
            d.pages.begin_interval();
            // The log reset obsoleted any quarantined phantoms along with
            // everything else pre-fence.
            d.needs_reimage.lock().clear();
            d.pending_delta_pages.lock().clear();
            // The checkpoint is a full-meta fence: later commits may elide
            // their metadata against it.
            *d.last_fence.lock() = Some((self.current_root(), self.txns.lock().next_id_value()));
            d.worm_synced.store(worm_len, Ordering::Release);
            // The checkpoint quiesced the commit pipeline: every appended
            // fence is durable (the reset jumped the watermark over them)
            // and no deferred wait remains outstanding.
            d.acks.lock().settle(Lsn::MAX);
            *d.pending_wait.lock() = None;
        }
        Ok(())
    }

    // ----- write-ahead logging --------------------------------------------

    /// Appends one record to the WAL. A failed append **poisons the tree**:
    /// the in-memory state is ahead of what can ever be made durable again,
    /// and continuing to serve (or mutate) it would silently widen the gap,
    /// so every subsequent operation refuses instead.
    fn wal_append(&self, record: &WalRecord) -> TsbResult<Lsn> {
        let d = self
            .durability
            .as_ref()
            .expect("wal_append is only called on durable trees");
        d.wal.append(record).inspect_err(|_| {
            self.poisoned.store(true, Ordering::Release);
        })
    }

    /// Appends the commit fence ending a mutation: a `Commit` record whose
    /// metadata describes the resulting tree state, promising that every
    /// page image the mutation produced precedes it in the log. The WAL's
    /// fsync policy (group commit) decides whether this forces stable
    /// storage. No-op on non-durable trees.
    ///
    /// Overflow write-back deferred by [`Self::write_current`] drains here,
    /// *after* the fence: a page image may only reach the device once a
    /// commit record covers it, otherwise a crash could leave the device
    /// holding state that recovery's replay cut discards (see
    /// [`Self::recover`], step 3).
    pub(crate) fn wal_commit(&self, ts: Timestamp) -> TsbResult<()> {
        let Some(d) = &self.durability else {
            return Ok(());
        };
        self.wal_reimage_stale(d)?;
        // This mutation reached its fence: its pending deltas (if any)
        // composed with the split records that followed them.
        d.pending_delta_pages.lock().clear();
        let worm_len = self.worm.device_bytes();
        // If this mutation migrated history, the WORM bytes must be stable
        // before a commit record referencing them can be *durable* — under
        // every fsync policy. For `Always` the reason is the
        // acknowledgement contract: a power failure after the commit's
        // fsync but before the OS flushed the WORM tail would force
        // recovery to cut before this commit. For `EveryN`/`Os` the reason
        // is device consistency: the flushed-LSN barrier forces the *WAL*
        // (not the WORM) before page write-backs, so the page device could
        // otherwise hold images from a commit whose WORM history was lost.
        // The WAL's pre-sync hook (installed by `attach_wal`) settles the
        // WORM immediately before *every* fsync of the log — the only
        // moments a commit record can become durable — so an `Os` or
        // mid-group `EveryN` commit no longer pays an eager WORM fsync
        // here; `Always` pays it inside its own commit fsync, as before.
        // Elide the metadata payload when recovery can re-derive it from
        // the previous fence: same root, same txn counter, and the logical
        // clock sitting exactly one past the commit timestamp (true for
        // every plain insert/delete/commit; an out-of-order `insert_at`
        // leaves the clock ahead and falls back to full metadata).
        let root = self.current_root();
        let next_txn = self.txns.lock().next_id_value();
        let meta = {
            let mut last = d.last_fence.lock();
            if self.clock.now() == ts.next() && *last == Some((root, next_txn)) {
                Vec::new()
            } else {
                *last = Some((root, next_txn));
                self.encode_meta_bytes()
            }
        };
        let record = WalRecord::Commit {
            ts: ts.value(),
            worm_len,
            meta,
        };
        // Pipelined commit: the fence is appended (and its sync requested
        // at policy boundaries) but *never* fsynced on this thread. The
        // deferred wait lands in `pending_wait` for the engine wrapper to
        // consume once its locks are released; the fence/timestamp pair
        // lands in `acks` so `last_durable_commit` can track the watermark.
        let (lsn, boundary) = d.wal.append_commit(&record).inspect_err(|_| {
            self.poisoned.store(true, Ordering::Release);
        })?;
        {
            let mut acks = d.acks.lock();
            acks.push(lsn, ts);
            acks.settle(d.wal.durable_lsn());
        }
        *d.pending_wait.lock() = boundary;
        while let Some((page, node)) = self.cache.any_dirty_overflow_victim() {
            self.write_back_dirty(page, &node)?;
        }
        Ok(())
    }

    /// Neutralizes phantoms quarantined by an earlier failed mutation
    /// *before* a fence makes them replayable: each page gets a full
    /// image of its true current state, which supersedes the phantom
    /// deltas at replay (a later image always wins). Pages a successful
    /// write already re-imaged (their first touch after the quarantine)
    /// need nothing. The set is only emptied after every corrective
    /// image landed, so an error here retries at the next fence.
    fn wal_reimage_stale(&self, d: &Durability) -> TsbResult<()> {
        let stale: Vec<PageId> = d.needs_reimage.lock().iter().copied().collect();
        if !stale.is_empty() {
            for &page in &stale {
                if d.pages.is_imaged(page) {
                    continue;
                }
                let node = self.read_node(NodeAddr::Current(page))?;
                let record = WalRecord::PageImage {
                    page,
                    bytes: node.encode(),
                };
                let lsn = self.wal_append(&record)?;
                d.pages.record(page, lsn);
                d.pages.first_touch(page);
            }
            let mut set = d.needs_reimage.lock();
            for page in &stale {
                set.remove(page);
            }
        }
        Ok(())
    }

    /// Appends (and force-syncs) a two-phase-commit **prepare** fence: the
    /// transaction's writes are all in the log before it, its metadata is
    /// always written in full (a prepare is a cut candidate recovery must
    /// be able to stand on), and the record is on stable storage when this
    /// returns — the participant's promise that it can commit. No-op on
    /// non-durable trees.
    pub(crate) fn wal_prepare(
        &self,
        ts: Timestamp,
        txn: TxnId,
        coordinator: u32,
        participants: &[u32],
    ) -> TsbResult<()> {
        let Some(d) = &self.durability else {
            return Ok(());
        };
        self.wal_reimage_stale(d)?;
        d.pending_delta_pages.lock().clear();
        let worm_len = self.worm.device_bytes();
        let root = self.current_root();
        let next_txn = self.txns.lock().next_id_value();
        // A prepare is a full-meta fence: later commits may elide their
        // metadata against it, exactly as against a checkpoint.
        *d.last_fence.lock() = Some((root, next_txn));
        let record = WalRecord::Prepare {
            ts: ts.value(),
            worm_len,
            meta: self.encode_meta_bytes(),
            txn: txn.value(),
            coordinator,
            participants: participants.to_vec(),
        };
        self.wal_append(&record)?;
        self.wal_force_sync()
    }

    /// Appends (and force-syncs) the coordinator's two-phase-commit
    /// **decision**: logged only once every participant's prepare is
    /// durable, it is the single record that decides the transaction —
    /// recovery commits an in-doubt prepare iff the coordinator's log
    /// holds its decision. No-op on non-durable trees.
    pub(crate) fn wal_decision(&self, ts: Timestamp, participants: &[u32]) -> TsbResult<()> {
        if self.durability.is_none() {
            return Ok(());
        }
        let record = WalRecord::Decision {
            ts: ts.value(),
            participants: participants.to_vec(),
        };
        self.wal_append(&record)?;
        self.wal_force_sync()
    }

    /// Forces the WAL to stable storage on the calling thread, regardless
    /// of the fsync policy (the 2PC fences must not ride the group-commit
    /// pipeline: the protocol's next step may only start once the previous
    /// fence is durable). No-op on non-durable trees.
    pub(crate) fn wal_force_sync(&self) -> TsbResult<()> {
        let Some(d) = &self.durability else {
            return Ok(());
        };
        d.wal.sync().inspect_err(|_| {
            self.poisoned.store(true, Ordering::Release);
        })?;
        d.acks.lock().settle(d.wal.durable_lsn());
        Ok(())
    }

    /// Takes the durable-LSN wait deferred by the newest commit fence, if
    /// any. The concurrent engine calls this while still holding its
    /// writer lock (the cell is a single slot the next writer overwrites),
    /// then parks via [`Self::wait_durable_lsn`] after releasing it.
    pub(crate) fn take_pending_durable_wait(&self) -> Option<Lsn> {
        self.durability.as_ref()?.pending_wait.lock().take()
    }

    /// Parks until the WAL's durable watermark covers `lsn` — the
    /// acknowledgement half of a pipelined commit. A failed wait **poisons
    /// the tree**: the fence was appended but can never become durable, so
    /// the in-memory state is permanently ahead of the log.
    pub(crate) fn wait_durable_lsn(&self, lsn: Lsn) -> TsbResult<()> {
        let Some(d) = &self.durability else {
            return Ok(());
        };
        d.wal.wait_durable(lsn).inspect_err(|_| {
            self.poisoned.store(true, Ordering::Release);
        })?;
        d.acks.lock().settle(d.wal.durable_lsn());
        Ok(())
    }

    /// Completes a single-writer mutation: consumes the deferred
    /// durability wait and, when the mutation succeeded, parks on it —
    /// preserving the acknowledgement contract (`insert` returning under
    /// `Always` means the commit is on stable storage). The concurrent
    /// engine splits these two steps around its writer-lock release
    /// instead.
    pub(crate) fn settle_durability<T>(&self, result: TsbResult<T>) -> TsbResult<T> {
        let wait = self.take_pending_durable_wait();
        let value = result?;
        if let Some(lsn) = wait {
            self.wait_durable_lsn(lsn)?;
        }
        Ok(value)
    }

    // ----- node I/O -------------------------------------------------------

    /// Usable bytes for an encoded node on a magnetic page.
    pub(crate) fn page_capacity(&self) -> usize {
        self.magnetic.capacity()
    }

    /// The size at which an insertion triggers a split.
    pub(crate) fn split_threshold(&self) -> usize {
        (self.page_capacity() as f64 * self.cfg.split_fill_threshold) as usize
    }

    /// Reads the node at `addr`, recording a logical node access. Served
    /// from the decoded-node cache when possible — a hit performs no decode
    /// and no page-image copy, just a shared handle.
    pub(crate) fn read_node(&self, addr: NodeAddr) -> TsbResult<Arc<Node>> {
        self.check_not_poisoned()?;
        match addr {
            NodeAddr::Current(_) => self.stats.record_current_node_access(),
            NodeAddr::Historical(_) => self.stats.record_historical_node_access(),
        }
        let fill_stamp = match self.cache.begin_fill(addr) {
            Ok(node) => {
                self.stats.record_node_cache_hit();
                return Ok(node);
            }
            Err(stamp) => stamp,
        };
        self.stats.record_node_cache_miss();
        let decoded = Arc::new(self.decode_node_at(addr)?);
        // Caching a clean node is pure in-memory bookkeeping (dirty entries
        // are pinned against eviction), so the read path performs no page
        // I/O beyond the decode above. The fill is stamp-validated: if the
        // writer changed this cache shard's contents while we were
        // decoding, our decode may be stale and is returned *uncached*
        // (still a legal answer for a read that began before the write
        // installed); a resident entry always wins.
        Ok(self.cache.complete_fill(addr, decoded, fill_stamp))
    }

    /// Decodes the node at `addr` from its device image (buffer pool for
    /// current pages, WORM store for historical nodes), bypassing the
    /// decoded-node cache.
    fn decode_node_at(&self, addr: NodeAddr) -> TsbResult<Node> {
        self.stats.record_node_decode();
        match addr {
            NodeAddr::Current(page) => {
                let bytes = self.pool.get(page)?;
                Node::decode(&bytes)
            }
            NodeAddr::Historical(hist) => {
                let bytes = self.worm.read(hist)?;
                Node::decode(&bytes)
            }
        }
    }

    /// Reads and decodes the node at `addr` directly from the devices. Any
    /// pending dirty state *for that address* is flushed first so its
    /// device image is the newest one (other deferred encodes stay
    /// deferred). Diagnostic surface used to check cache coherence.
    pub fn read_node_bypass(&self, addr: NodeAddr) -> TsbResult<Node> {
        self.flush_dirty_node_at(addr)?;
        self.decode_node_at(addr)
    }

    /// Reads a node expected to be a data node.
    pub(crate) fn read_data(&self, addr: NodeAddr) -> TsbResult<DataRef> {
        let node = self.read_node(addr)?;
        match &*node {
            Node::Data(_) => Ok(DataRef(node)),
            Node::Index(_) => Err(TsbError::corruption(format!(
                "expected a data node at {addr}, found an index node"
            ))),
        }
    }

    /// Reads a node expected to be an index node.
    #[allow(dead_code)] // kept for symmetry with `read_data`; used by debugging tools
    pub(crate) fn read_index(&self, addr: NodeAddr) -> TsbResult<IndexRef> {
        let node = self.read_node(addr)?;
        match &*node {
            Node::Index(_) => Ok(IndexRef(node)),
            Node::Data(_) => Err(TsbError::corruption(format!(
                "expected an index node at {addr}, found a data node"
            ))),
        }
    }

    /// Whether content-only rewrites on this tree should describe
    /// themselves as logical [`PageOp`] deltas for the redo log. Callers
    /// on the hot path use this to skip building the ops (and the version
    /// clone they cost) entirely when nothing would consume them.
    pub(crate) fn logs_deltas(&self) -> bool {
        self.durability.is_some() && self.cfg.wal_mode == WalMode::Hybrid
    }

    /// Whether a *pending* delta for `page` — one logged mid-split, before
    /// the page's final node is installed — would have a base to apply to.
    /// False when the page has no image in the current log generation: the
    /// pending op is then skipped entirely, because the page's next full
    /// write will first-touch an image that subsumes it.
    pub(crate) fn pending_ops_allowed(&self, page: PageId) -> bool {
        match &self.durability {
            Some(d) => self.logs_deltas() && d.pages.is_imaged(page),
            None => false,
        }
    }

    /// Appends standalone delta records for `page` without installing a
    /// node — the split path's way of logging an in-flight intermediate
    /// state (the triggering insert, a survivor partition) that the next
    /// delta of the same mutation builds on. Caller contract: the page's
    /// logged state ⊕ `ops` equals the in-memory node the next logged
    /// record assumes, and [`Self::pending_ops_allowed`] returned true.
    pub(crate) fn wal_append_ops(&self, page: PageId, ops: Vec<PageOp>) -> TsbResult<()> {
        let Some(d) = &self.durability else {
            return Ok(());
        };
        // Tracked before the append: should the mutation die anywhere past
        // this point without poisoning the tree, these records are
        // phantoms and must be superseded before the next fence (see
        // [`Self::quarantine_pending_deltas`]).
        d.pending_delta_pages.lock().insert(page);
        for op in ops {
            let record = WalRecord::PageDelta { page, op };
            let lsn = self.wal_append(&record)?;
            d.pages.record(page, lsn);
        }
        Ok(())
    }

    /// Disowns the current mutation's pending deltas after it failed
    /// without poisoning the tree — a split that errored in pure planning
    /// or allocation *after* its triggering delta was already logged. The
    /// in-memory tree rolled the mutation back (all work happened on
    /// clones), but the log now ends in deltas describing state that never
    /// happened; once any later commit fences them, recovery would replay
    /// them. Each such page loses its delta base (next write logs a full
    /// image) and is queued for a corrective image at the next fence, so
    /// the phantoms are superseded before they can ever become replayable.
    pub(crate) fn quarantine_pending_deltas(&self) {
        let Some(d) = &self.durability else {
            return;
        };
        let mut pending = d.pending_delta_pages.lock();
        if pending.is_empty() {
            return;
        }
        let mut stale = d.needs_reimage.lock();
        for page in pending.drain() {
            d.pages.unimage(page);
            stale.insert(page);
        }
    }

    /// Installs the newest version of a current node after a **structural**
    /// rewrite (split piece, migration survivor, root growth, node
    /// initialization, wholesale repair): the redo log always receives the
    /// full page image. Content-only rewrites should use
    /// [`Self::write_current_delta`] instead.
    pub(crate) fn write_current(&self, page: PageId, node: Node) -> TsbResult<()> {
        self.write_current_inner(page, node, Vec::new())
    }

    /// Installs the newest version of a current node after a
    /// **content-only** rewrite fully described by `ops` (the logical redo
    /// deltas that turn the node's previous state into `node`). Under
    /// [`WalMode::Hybrid`], the first dirtying of the page per checkpoint
    /// interval still logs the full image (the replay base); every later
    /// call logs only `ops` — tens of bytes instead of a page. `ops` may
    /// be empty on non-durable or [`WalMode::ImagesOnly`] trees (see
    /// [`Self::logs_deltas`]).
    pub(crate) fn write_current_delta(
        &self,
        page: PageId,
        node: Node,
        ops: Vec<PageOp>,
    ) -> TsbResult<()> {
        self.write_current_inner(page, node, ops)
    }

    /// Shared write-install path. The node goes into the decoded-node
    /// cache marked dirty; the encode into its page image is deferred
    /// until the entry is evicted or the tree flushes, so a hot leaf
    /// rewritten many times between flushes encodes once.
    fn write_current_inner(&self, page: PageId, node: Node, ops: Vec<PageOp>) -> TsbResult<()> {
        let size = node.encoded_size();
        if size > self.page_capacity() {
            return Err(TsbError::internal(format!(
                "attempted to write a {}-byte node into a {}-byte page; splitting should have prevented this",
                size,
                self.page_capacity()
            )));
        }
        // WAL-before-page: the redo record(s) go into the log *before* the
        // cache may hold the node dirty. If an append fails nothing has
        // changed in memory, so the error is clean (though the tree is
        // poisoned — the log device is gone).
        //
        // First-touch rule: a page's first dirtying per checkpoint
        // interval logs its full image whatever the caller offered —
        // recovery replays deltas against in-log images only, never the
        // (possibly torn, possibly never-written) device page. After that,
        // a content-only rewrite with ops logs just the deltas; the full
        // encode this path used to pay per mutation happens only on first
        // touch and structural rewrites.
        if let Some(d) = &self.durability {
            let first_touch = d.pages.first_touch(page);
            if first_touch || ops.is_empty() || self.cfg.wal_mode == WalMode::ImagesOnly {
                let record = WalRecord::PageImage {
                    page,
                    bytes: node.encode(),
                };
                let lsn = self.wal_append(&record)?;
                d.pages.record(page, lsn);
            } else {
                // Caller contract, cross-checked in debug builds: the ops
                // must derive `node` from the page's logged state. Checked
                // only for pure content ops — there the logged state *is*
                // the cached prior node; a split survivor's ops instead
                // build on pending deltas logged mid-mutation
                // ([`Self::wal_append_ops`]), which the cache never held.
                #[cfg(debug_assertions)]
                {
                    let content_only = ops.iter().all(|op| {
                        matches!(
                            op,
                            PageOp::InsertVersion(_)
                                | PageOp::RemoveUncommitted { .. }
                                | PageOp::IndexReplaceChild { .. }
                        )
                    });
                    if content_only {
                        if let Ok(prior) = self.read_node(NodeAddr::Current(page)) {
                            let mut derived = ReplayPage::Decoded(Node::clone(&prior));
                            let applied = ops.iter().try_for_each(|op| derived.apply(op));
                            if let (Ok(()), ReplayPage::Decoded(derived)) = (applied, derived) {
                                debug_assert_eq!(
                                    derived, node,
                                    "WAL delta contract violated for page {page}: the \
                                     logged ops do not derive the installed node from \
                                     its prior state"
                                );
                            }
                        }
                    }
                }
                for op in ops {
                    let record = WalRecord::PageDelta { page, op };
                    let lsn = self.wal_append(&record)?;
                    d.pages.record(page, lsn);
                }
            }
        }
        self.cache.insert_dirty(page, Arc::new(node));
        // Bound the dirty residency: when this page's cache shard holds
        // more deferred encodes than its capacity, write the least recently
        // written one back now (writer context, so this is race-free). The
        // victim stays resident and is marked clean only after its image is
        // in the pool — a concurrent reader therefore never sees a gap.
        //
        // Durable trees defer this to the end of the mutation
        // ([`Self::wal_commit`]): writing a victim back here could push an
        // image from the *in-flight* mutation toward the device before its
        // commit fence exists, and recovery discards un-fenced images — the
        // device would hold state replay cannot reproduce.
        if self.durability.is_none() {
            if let Some((victim_page, victim_node)) =
                self.cache.dirty_overflow_victim(NodeAddr::Current(page))
            {
                self.write_back_dirty(victim_page, &victim_node)?;
            }
        }
        Ok(())
    }

    /// Encodes and writes one dirty cached node into its page image, then
    /// confirms the write-back so the cache unpins the entry. The entry
    /// stays dirty — pinned against eviction — until its image is in the
    /// pool, so a concurrent reader can never evict-then-refill it from a
    /// stale page image mid-flush.
    fn write_back_dirty(&self, page: PageId, node: &Node) -> TsbResult<()> {
        // WAL-before-page invariant: a dirty node may only start its way to
        // the device if its image was logged when the node was installed
        // (`write_current`). The buffer pool asserts the same contract at
        // its own write-back sites via the shared WalPageTable.
        if let Some(d) = &self.durability {
            d.pages.assert_covered(page);
        }
        self.stats.record_node_encode();
        self.pool.put(page, node.encode())?;
        self.cache.mark_clean(NodeAddr::Current(page));
        Ok(())
    }

    /// Encodes every dirty cached node into its page image (ascending
    /// `PageId` order). The entries stay cached, now clean. Public so
    /// measurement harnesses can draw a line between build-phase and
    /// query-phase encode/write traffic without a full device flush.
    pub fn flush_node_cache(&self) -> TsbResult<()> {
        for (page, node) in self.cache.dirty_entries() {
            self.write_back_dirty(page, &node)?;
        }
        Ok(())
    }

    /// Encodes one address's dirty cached node into its page image, if it
    /// has one; every other deferred encode stays deferred.
    fn flush_dirty_node_at(&self, addr: NodeAddr) -> TsbResult<()> {
        match self.cache.dirty_at(addr) {
            Some((page, node)) => self.write_back_dirty(page, &node),
            None => Ok(()),
        }
    }

    /// Consolidates a node and appends it to the historical store,
    /// returning its address (§3.4: the historical node is written once, at
    /// whatever length it has). The node is retained in the decoded-node
    /// cache — freshly migrated history is the history most likely to be
    /// queried.
    pub(crate) fn append_historical(&self, node: Node) -> TsbResult<HistAddr> {
        self.stats.record_node_encode();
        let addr = self.worm.append(&node.encode())?;
        self.cache
            .insert_clean(NodeAddr::Historical(addr), Arc::new(node));
        Ok(addr)
    }

    /// Drops every cached decoded node and page frame, writing dirty state
    /// to the devices first. Subsequent reads re-read pages from the device
    /// *and* re-decode them — the fully-cold baseline.
    pub fn drop_caches(&self) -> TsbResult<()> {
        self.drop_node_cache()?;
        self.pool.flush_and_clear()
    }

    /// Drops only the decoded-node cache (after flushing its dirty state),
    /// leaving the buffer pool warm. Subsequent reads pay one `Node::decode`
    /// per access but no device I/O — exactly the engine's behaviour before
    /// the decoded-node cache existed, which makes this the baseline for
    /// measuring what the cache itself buys.
    pub fn drop_node_cache(&self) -> TsbResult<()> {
        self.flush_node_cache()?;
        self.cache.clear();
        Ok(())
    }

    /// Invalidates the decoded-node cache entry for `addr`, if any. That
    /// entry's dirty state is flushed first, so no write is lost — and
    /// *only* that entry's, so invalidating one node does not act as a
    /// full flush; the next read re-decodes the device image.
    pub fn invalidate_cached_node(&self, addr: NodeAddr) -> TsbResult<()> {
        self.flush_dirty_node_at(addr)?;
        self.cache.discard(addr);
        Ok(())
    }

    /// Walks every node reachable from the root and checks that the cached
    /// copy equals what decoding the device image produces (pending dirty
    /// nodes are flushed first). Returns the first divergence found.
    pub fn verify_cache_coherence(&self) -> TsbResult<()> {
        self.flush_node_cache()?;
        let mut visited: HashSet<NodeAddr> = HashSet::new();
        self.check_coherence(self.current_root(), &mut visited)
    }

    fn check_coherence(&self, addr: NodeAddr, visited: &mut HashSet<NodeAddr>) -> TsbResult<()> {
        if !visited.insert(addr) {
            return Ok(());
        }
        let cached = self.read_node(addr)?;
        let direct = self.decode_node_at(addr)?;
        if *cached != direct {
            return Err(TsbError::invariant(format!(
                "decoded-node cache diverges from the device image at {addr}"
            )));
        }
        if let Node::Index(index) = &*cached {
            for entry in index.entries() {
                self.check_coherence(entry.child, visited)?;
            }
        }
        Ok(())
    }

    /// Allocates a fresh current page. Under durability, anything the WAL
    /// page table knew about a recycled page is forgotten: its old image
    /// is not a redo base for its new life, so the first write of new
    /// content logs a fresh full image.
    pub(crate) fn allocate_page(&self) -> TsbResult<PageId> {
        let page = self.magnetic.allocate()?;
        if let Some(d) = &self.durability {
            d.pages.forget(page);
        }
        Ok(page)
    }

    // ----- metadata -------------------------------------------------------

    /// The metadata encoding shared by the on-device metadata page and the
    /// WAL's commit / checkpoint records (recovery trusts the latter; the
    /// page is a convenience for non-durable reopen).
    fn encode_meta_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(META_MAGIC);
        self.current_root().encode(&mut w);
        w.put_u64(self.clock.now().value());
        w.put_u64(self.txns.lock().next_id_value());
        w.into_vec()
    }

    pub(crate) fn write_meta(&self) -> TsbResult<()> {
        self.pool.put(self.meta_page, self.encode_meta_bytes())
    }

    pub(crate) fn decode_meta(bytes: &[u8]) -> TsbResult<(NodeAddr, Timestamp, u64)> {
        let mut r = ByteReader::new(bytes);
        if r.get_u64()? != META_MAGIC {
            return Err(TsbError::corruption("bad TSB-tree metadata magic"));
        }
        let root = NodeAddr::decode(&mut r)?;
        let clock_next = Timestamp(r.get_u64()?);
        let next_txn = r.get_u64()?;
        Ok((root, clock_next, next_txn))
    }

    /// Updates the root pointer and persists the metadata page. A root
    /// replacement is a structural change, so the caller (the insert path)
    /// must have noted the structure epoch as in-flight.
    pub(crate) fn set_root(&self, root: NodeAddr) -> TsbResult<()> {
        *self.root.write() = root;
        self.write_meta()
    }
}

/// A shared read handle to a cached data node. Dereferences to
/// [`DataNode`]; cloning the target (`DataNode::clone(&r)`) yields an owned
/// node for mutation paths.
pub(crate) struct DataRef(pub(crate) Arc<Node>);

impl Deref for DataRef {
    type Target = DataNode;
    fn deref(&self) -> &DataNode {
        match &*self.0 {
            Node::Data(n) => n,
            Node::Index(_) => unreachable!("DataRef only wraps data nodes"),
        }
    }
}

/// A shared read handle to a cached index node.
pub(crate) struct IndexRef(Arc<Node>);

impl Deref for IndexRef {
    type Target = IndexNode;
    fn deref(&self) -> &IndexNode {
        match &*self.0 {
            Node::Index(n) => n,
            Node::Data(_) => unreachable!("IndexRef only wraps index nodes"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsb_common::Key;

    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "tsb-tree-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn durable_tree_recovers_unflushed_writes_from_the_wal() {
        let dir = TempDir::new("wal-recover");
        let cfg =
            TsbConfig::small_pages().with_split_policy(tsb_common::SplitPolicyKind::TimePreferring);
        let mut stamps = Vec::new();
        {
            let tree = crate::TsbOptions::durable(&dir.0)
                .config(cfg.clone())
                .open_tree()
                .unwrap();
            assert!(tree.is_durable());
            for i in 0..120u64 {
                let ts = tree
                    .insert_shared(i % 12, format!("v{i}").into_bytes())
                    .unwrap();
                stamps.push((i % 12, ts, format!("v{i}").into_bytes()));
            }
            // No flush, no checkpoint: everything durable lives in the WAL.
            // Dropping the tree models a crash of the caches.
        }
        let tree = crate::TsbOptions::durable(&dir.0)
            .config(cfg)
            .open_tree()
            .unwrap();
        let cut = tree
            .last_durable_commit()
            .expect("recovered tree has a cut");
        assert!(cut >= stamps.last().unwrap().1, "every commit was logged");
        for (key, ts, value) in &stamps {
            assert_eq!(
                tree.get_as_of(&Key::from_u64(*key), *ts).unwrap().unwrap(),
                *value,
                "key {key} as of {ts}"
            );
        }
        tree.verify().unwrap();
    }

    #[test]
    fn durable_tree_survives_clean_checkpoint_and_reopen() {
        let dir = TempDir::new("wal-clean");
        let cfg = TsbConfig::small_pages();
        {
            let mut tree = crate::TsbOptions::durable(&dir.0)
                .config(cfg.clone())
                .open_tree()
                .unwrap();
            for i in 0..60u64 {
                tree.insert(i, format!("x{i}").into_bytes()).unwrap();
            }
            tree.checkpoint().unwrap();
        }
        let tree = crate::TsbOptions::durable(&dir.0)
            .config(cfg)
            .open_tree()
            .unwrap();
        for i in 0..60u64 {
            assert_eq!(
                tree.get_current(&Key::from_u64(i)).unwrap().unwrap(),
                format!("x{i}").into_bytes()
            );
        }
        tree.verify().unwrap();
    }

    #[test]
    fn recovery_erases_in_flight_transactions() {
        let dir = TempDir::new("wal-txn");
        let cfg = TsbConfig::small_pages();
        {
            let mut tree = crate::TsbOptions::durable(&dir.0)
                .config(cfg.clone())
                .open_tree()
                .unwrap();
            tree.insert(1u64, b"committed".to_vec()).unwrap();
            let txn = tree.begin_txn();
            tree.txn_insert(txn, 1u64, b"pending-update".to_vec())
                .unwrap();
            tree.txn_insert(txn, 99u64, b"pending-new".to_vec())
                .unwrap();
            // Crash with the transaction still open.
        }
        let tree = crate::TsbOptions::durable(&dir.0)
            .config(cfg)
            .open_tree()
            .unwrap();
        assert_eq!(
            tree.get_current(&Key::from_u64(1)).unwrap().unwrap(),
            b"committed".to_vec()
        );
        assert!(tree.get_current(&Key::from_u64(99)).unwrap().is_none());
        assert!(
            tree.pending_version(&Key::from_u64(1)).unwrap().is_none(),
            "recovery aborts in-flight transactions"
        );
        tree.verify().unwrap();
    }

    #[test]
    fn phantom_deltas_from_a_failed_mutation_never_reach_recovery() {
        // A split can log its triggering delta as a *pending* record and
        // then fail in pure planning or allocation — before any structural
        // write, so the tree is not poisoned and keeps serving. Those
        // deltas describe state the mutation rolled back; the next
        // successful fence must supersede them with a corrective full
        // image, or recovery would replay a change the caller was told
        // failed. This drives the quarantine machinery directly (the
        // failure window itself needs ENOSPC-grade faults to reach).
        let dir = TempDir::new("wal-phantom");
        let cfg = TsbConfig::small_pages();
        {
            let tree = crate::TsbOptions::durable(&dir.0)
                .config(cfg.clone())
                .open_tree()
                .unwrap();
            tree.insert_shared(1u64, b"real".to_vec()).unwrap();
            let page = tree.root_addr().as_page().expect("root is a leaf page");
            assert!(tree.pending_ops_allowed(page), "leaf has a delta base");
            // The failed mutation: a pending delta lands in the log…
            tree.wal_append_ops(
                page,
                vec![PageOp::InsertVersion(tsb_common::Version::committed(
                    99u64,
                    Timestamp(77),
                    b"phantom".to_vec(),
                ))],
            )
            .unwrap();
            // …then the split dies without a structural write.
            tree.quarantine_pending_deltas();
            assert!(
                !tree.pending_ops_allowed(page),
                "a quarantined page loses its delta base"
            );
            // The next successful mutation fences; its corrective image
            // must win over the phantom at replay.
            tree.insert_shared(2u64, b"after".to_vec()).unwrap();
        }
        let tree = crate::TsbOptions::durable(&dir.0)
            .config(cfg)
            .open_tree()
            .unwrap();
        tree.verify().unwrap();
        assert!(
            tree.get_current(&Key::from_u64(99)).unwrap().is_none(),
            "the phantom version must not survive recovery"
        );
        assert_eq!(
            tree.get_current(&Key::from_u64(1)).unwrap().unwrap(),
            b"real".to_vec()
        );
        assert_eq!(
            tree.get_current(&Key::from_u64(2)).unwrap().unwrap(),
            b"after".to_vec()
        );
    }

    #[test]
    fn a_directory_with_nothing_durable_is_recreated() {
        let dir = TempDir::new("wal-fresh");
        let cfg = TsbConfig::small_pages();
        // Simulate a crash during the very first create: a WAL holding only
        // un-fenced page images (no commit, no checkpoint).
        {
            let stats = Arc::new(IoStats::new());
            let wal = Wal::create(dir.0.join(WAL_FILE), cfg.fsync_policy, stats).unwrap();
            wal.append(&WalRecord::PageImage {
                page: PageId(1),
                bytes: vec![1, 2, 3],
            })
            .unwrap();
        }
        let tree = crate::TsbOptions::durable(&dir.0)
            .config(cfg)
            .open_tree()
            .unwrap();
        assert!(tree.get_current(&Key::from_u64(1)).unwrap().is_none());
        tree.verify().unwrap();
    }

    #[test]
    fn create_open_round_trip() {
        let cfg = TsbConfig::small_pages();
        let stats = Arc::new(IoStats::new());
        let magnetic = Arc::new(MagneticStore::in_memory(cfg.page_size, Arc::clone(&stats)));
        let worm = Arc::new(WormStore::in_memory(
            cfg.worm_sector_size,
            Arc::clone(&stats),
        ));

        let root_before;
        {
            let mut tree =
                TsbTree::create(Arc::clone(&magnetic), Arc::clone(&worm), cfg.clone()).unwrap();
            tree.insert(1u64, b"one".to_vec()).unwrap();
            tree.insert(2u64, b"two".to_vec()).unwrap();
            root_before = tree.root_addr();
            tree.flush().unwrap();
        }
        {
            let tree =
                TsbTree::open(Arc::clone(&magnetic), Arc::clone(&worm), cfg.clone()).unwrap();
            assert_eq!(tree.root_addr(), root_before);
            assert_eq!(
                tree.get_current(&Key::from_u64(1)).unwrap().unwrap(),
                b"one".to_vec()
            );
            assert_eq!(
                tree.get_current(&Key::from_u64(2)).unwrap().unwrap(),
                b"two".to_vec()
            );
            // The clock resumes past previously issued timestamps.
            assert!(tree.now() > Timestamp(2));
        }
        // create() refuses a non-empty store.
        assert!(TsbTree::create(magnetic, worm, cfg).is_err());
    }

    #[test]
    fn create_rejects_mismatched_page_size() {
        let cfg = TsbConfig::small_pages();
        let stats = Arc::new(IoStats::new());
        let magnetic = Arc::new(MagneticStore::in_memory(4096, Arc::clone(&stats)));
        let worm = Arc::new(WormStore::in_memory(
            cfg.worm_sector_size,
            Arc::clone(&stats),
        ));
        assert!(TsbTree::create(magnetic, worm, cfg).is_err());
    }

    #[test]
    fn space_and_cost_reflect_the_stores() {
        let mut tree = crate::TsbOptions::in_memory()
            .config(TsbConfig::small_pages())
            .open_tree()
            .unwrap();
        for i in 0..50u64 {
            tree.insert(i, vec![b'v'; 20]).unwrap();
        }
        let space = tree.space();
        assert!(space.magnetic_bytes > 0);
        assert!(tree.storage_cost() > 0.0);
    }

    #[test]
    fn warm_descents_perform_zero_decodes() {
        let cfg = TsbConfig::small_pages().with_node_cache_entries(4096);
        let mut tree = crate::TsbOptions::in_memory()
            .config(cfg)
            .open_tree()
            .unwrap();
        for i in 0..300u64 {
            tree.insert(i % 30, format!("v{i}").into_bytes()).unwrap();
        }
        // First pass warms the cache for every current path.
        for key in 0..30u64 {
            tree.get_current(&Key::from_u64(key)).unwrap();
        }
        let before = tree.io_stats().snapshot();
        for key in 0..30u64 {
            tree.get_current(&Key::from_u64(key)).unwrap();
        }
        let delta = tree.io_stats().snapshot().delta_since(&before);
        assert!(delta.node_cache_hits > 0, "warm reads must hit the cache");
        assert_eq!(delta.node_cache_misses, 0, "every node was already cached");
        assert_eq!(delta.node_decodes, 0, "cache hits perform no decode");
        assert!(
            delta.node_accesses_current >= 30,
            "logical accesses are still counted on hits"
        );
    }

    #[test]
    fn encode_is_deferred_until_flush() {
        // Large pages: no splits, so the root leaf absorbs every insert.
        let mut tree = crate::TsbOptions::in_memory()
            .config(TsbConfig::default())
            .open_tree()
            .unwrap();
        let before = tree.io_stats().snapshot();
        for i in 0..20u64 {
            tree.insert(i, vec![b'x'; 16]).unwrap();
        }
        let delta = tree.io_stats().snapshot().delta_since(&before);
        assert_eq!(
            delta.node_encodes, 0,
            "20 rewrites of the hot leaf must not encode until flush"
        );
        tree.flush().unwrap();
        let delta = tree.io_stats().snapshot().delta_since(&before);
        assert_eq!(delta.node_encodes, 1, "flush encodes the leaf exactly once");
    }

    #[test]
    fn a_poisoned_tree_refuses_reads_and_writes() {
        let mut tree = crate::TsbOptions::in_memory()
            .config(TsbConfig::small_pages())
            .open_tree()
            .unwrap();
        tree.insert(1u64, b"v".to_vec()).unwrap();
        // Simulate a structural mutation failing part-way through (only
        // reachable through file-backed I/O errors in production).
        tree.note_structural_write();
        tree.settle_structure_after(true);
        assert!(tree.get_current(&Key::from_u64(1)).is_err());
        assert!(tree.insert(2u64, b"w".to_vec()).is_err());
        // A clean failure outside a structural window does not poison.
        let tree = crate::TsbOptions::in_memory()
            .config(TsbConfig::small_pages())
            .open_tree()
            .unwrap();
        tree.settle_structure_after(true);
        assert!(tree.get_current(&Key::from_u64(1)).is_ok());
    }

    #[test]
    fn dirty_residency_is_bounded_without_explicit_flush() {
        // KeyOnly: no WORM migration, so every node encode in this run can
        // only come from the dirty-overflow write-back. A long unflushed
        // insert run must not let deferred encodes pile up past the cache
        // capacity — the overflow path drains them as it goes.
        let cfg = TsbConfig::small_pages()
            .with_node_cache_entries(64)
            .with_split_policy(tsb_common::SplitPolicyKind::KeyOnly);
        let mut tree = crate::TsbOptions::in_memory()
            .config(cfg)
            .open_tree()
            .unwrap();
        let before = tree.io_stats().snapshot();
        for i in 0..2000u64 {
            tree.insert(i, vec![b'v'; 24]).unwrap();
        }
        let delta = tree.io_stats().snapshot().delta_since(&before);
        assert_eq!(delta.worm_appends, 0, "KeyOnly must not migrate");
        assert!(
            delta.node_encodes > 0,
            "dirty overflow write-back never fired across 2000 unflushed inserts"
        );
        tree.verify().unwrap();
        tree.verify_cache_coherence().unwrap();
        // Nothing was lost to the early write-backs.
        for i in (0..2000u64).step_by(97) {
            assert!(tree.get_current(&Key::from_u64(i)).unwrap().is_some());
        }
    }

    #[test]
    fn bypass_reads_and_cache_invalidation_agree_with_the_cache() {
        let cfg = TsbConfig::small_pages();
        let mut tree = crate::TsbOptions::in_memory()
            .config(cfg)
            .open_tree()
            .unwrap();
        for i in 0..300u64 {
            tree.insert(i % 25, format!("value-{i}").into_bytes())
                .unwrap();
        }
        tree.verify_cache_coherence().unwrap();

        // A bypass read of the root decodes the same node the cache holds.
        let via_cache = tree.read_node(tree.root_addr()).unwrap();
        let via_device = tree.read_node_bypass(tree.root_addr()).unwrap();
        assert_eq!(*via_cache, via_device);

        // Invalidation forces a re-decode, which still agrees.
        tree.invalidate_cached_node(tree.root_addr()).unwrap();
        let before = tree.io_stats().snapshot();
        let reread = tree.read_node(tree.root_addr()).unwrap();
        let delta = tree.io_stats().snapshot().delta_since(&before);
        assert_eq!(delta.node_cache_misses, 1);
        assert_eq!(*reread, via_device);

        // Dropping every cache cold-starts reads without losing anything.
        tree.drop_caches().unwrap();
        let before = tree.io_stats().snapshot();
        for key in 0..25u64 {
            assert!(tree.get_current(&Key::from_u64(key)).unwrap().is_some());
        }
        let delta = tree.io_stats().snapshot().delta_since(&before);
        assert!(delta.node_decodes > 0, "cold reads decode again");
        tree.verify_cache_coherence().unwrap();
    }

    #[test]
    fn persistence_survives_deferred_encodes() {
        let cfg = TsbConfig::small_pages();
        let stats = Arc::new(IoStats::new());
        let magnetic = Arc::new(MagneticStore::in_memory(cfg.page_size, Arc::clone(&stats)));
        let worm = Arc::new(WormStore::in_memory(
            cfg.worm_sector_size,
            Arc::clone(&stats),
        ));
        {
            let mut tree =
                TsbTree::create(Arc::clone(&magnetic), Arc::clone(&worm), cfg.clone()).unwrap();
            for i in 0..200u64 {
                tree.insert(i % 20, format!("gen-{i}").into_bytes())
                    .unwrap();
            }
            tree.flush().unwrap();
        }
        // A reopened tree (fresh, empty caches) sees every write.
        let tree = TsbTree::open(magnetic, worm, cfg).unwrap();
        for key in 0..20u64 {
            let got = tree.get_current(&Key::from_u64(key)).unwrap().unwrap();
            assert_eq!(got, format!("gen-{}", 180 + key).into_bytes());
        }
        tree.verify().unwrap();
    }
}
