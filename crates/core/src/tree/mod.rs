//! The Time-Split B-tree proper: tree handle, node I/O over the two devices,
//! and the on-disk metadata page.
//!
//! Sub-modules implement the operations:
//!
//! * [`search`](crate::tree) — point lookups (current and as-of),
//! * [`scan`](crate::tree) — range scans, snapshots, version histories,
//! * [`insert`](crate::tree) — insertion, update, logical deletion, and the
//!   split/migration machinery.
//!
//! Transactions live in [`crate::txn`], secondary indexes in
//! [`crate::secondary`], statistics in [`crate::stats`], and the structural
//! verifier in [`crate::verify`].

pub mod history;
pub mod insert;
pub mod scan;
pub mod search;

use std::collections::HashSet;
use std::ops::Deref;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use tsb_common::encode::{ByteReader, ByteWriter};
use tsb_common::{LogicalClock, Timestamp, TsbConfig, TsbError, TsbResult};
use tsb_storage::{
    BufferPool, CostModel, HistAddr, IoStats, Lsn, MagneticStore, PageId, SpaceSnapshot, Wal,
    WalPageTable, WalRecord, WalScan, WormStore,
};

use crate::cache::NodeCache;
use crate::node::{DataNode, IndexNode, Node, NodeAddr};
use crate::txn::TxnTable;

const META_MAGIC: u64 = 0x5453_4254_5245_4531; // "TSBTREE1"

/// File names used by [`TsbTree::open_durable`] inside its directory.
const MAGNETIC_FILE: &str = "current.pages";
const WORM_FILE: &str = "history.worm";
const WAL_FILE: &str = "redo.wal";

/// The durability state of a WAL-attached tree.
///
/// Present on trees opened through [`TsbTree::create_durable`] /
/// [`TsbTree::open_durable`] / [`TsbTree::recover`]; absent (and
/// zero-cost) on plain in-memory or file-backed trees. See the
/// [`tsb_storage::wal`] module docs for the log format and the fence /
/// commit-cut protocol this drives.
pub(crate) struct Durability {
    /// The redo log. Appends happen *before* the node cache may hold the
    /// corresponding node dirty (WAL-before-page).
    wal: Arc<Wal>,
    /// Dirty-page table backing the WAL-before-page barrier at every
    /// write-back site (shared with the buffer pool, which runs the
    /// flushed-LSN rule through it before any device page write).
    pages: Arc<WalPageTable>,
    /// WORM device length known to be on stable storage. A commit fence
    /// whose mutation grew the WORM past this must sync the WORM device
    /// first (under *every* fsync policy), or the commit — fsynced
    /// directly, or dragged to stable storage by the flushed-LSN barrier
    /// before a page write-back — could outlive the history it
    /// references.
    worm_synced: AtomicU64,
}

/// The Time-Split B-tree: a single integrated index over a multiversion
/// database whose current part lives on an erasable store and whose
/// historical part lives on a write-once store.
///
/// Reads (`get_*`, `scan_*`, snapshots, statistics, verification) take
/// `&self`; mutations (inserts, deletes, transactions) take `&mut self`.
///
/// Internally every mutation is implemented against `&self` with the tree's
/// mutable state behind locks and atomics, under the invariant that **at
/// most one mutation runs at a time**. The single-threaded API enforces
/// that invariant with `&mut self`; [`crate::ConcurrentTsb`] enforces it
/// with a writer lock and may run any number of readers concurrently (see
/// the module docs of [`crate::concurrent`]).
///
/// ```
/// use tsb_core::TsbTree;
/// use tsb_common::{Key, TsbConfig};
///
/// let mut tree = TsbTree::new_in_memory(TsbConfig::default()).unwrap();
/// let t1 = tree.insert("acct-1", b"balance=100".to_vec()).unwrap();
/// let t2 = tree.insert("acct-1", b"balance=250".to_vec()).unwrap();
/// assert_eq!(tree.get_current(&Key::from("acct-1")).unwrap().unwrap(), b"balance=250".to_vec());
/// // The old version is still reachable as of its own time (rollback database).
/// assert_eq!(tree.get_as_of(&Key::from("acct-1"), t1).unwrap().unwrap(), b"balance=100".to_vec());
/// assert!(t1 < t2);
/// ```
pub struct TsbTree {
    pub(crate) cfg: TsbConfig,
    pub(crate) magnetic: Arc<MagneticStore>,
    pub(crate) pool: BufferPool,
    pub(crate) cache: NodeCache,
    pub(crate) worm: Arc<WormStore>,
    pub(crate) stats: Arc<IoStats>,
    pub(crate) cost: CostModel,
    pub(crate) clock: LogicalClock,
    /// The root pointer, behind a short-latch lock: readers copy it out at
    /// the top of each descent, the (single) writer replaces it when the
    /// root splits.
    pub(crate) root: RwLock<NodeAddr>,
    pub(crate) meta_page: PageId,
    pub(crate) txns: Mutex<TxnTable>,
    /// Current data pages that blocked a local index time split (Figure 9)
    /// and should prefer a time split at their next opportunity (§3.5).
    pub(crate) marked_for_time_split: Mutex<HashSet<PageId>>,
    /// Set when a *structural* mutation (split / migration / root growth)
    /// failed part-way through: some nodes were rewritten, others were
    /// not, and no retry signal can make the tree consistent again. All
    /// subsequent reads and writes refuse with an error instead of
    /// silently serving the torn structure. Unreachable on in-memory
    /// stores (their writes cannot fail mid-split); it exists for the
    /// file-backed I/O error paths.
    pub(crate) poisoned: std::sync::atomic::AtomicBool,
    /// Write-ahead log state; `None` for non-durable trees.
    pub(crate) durability: Option<Durability>,
    /// Set by [`TsbTree::recover`]: the commit timestamp of the newest
    /// mutation the recovered tree contains (the replay *cut*). `None` on
    /// trees that were not produced by recovery.
    pub(crate) recovered_to: Option<Timestamp>,
    /// Seqlock-style structure epoch for optimistic concurrent readers.
    ///
    /// Even = the tree's multi-node invariants hold; odd = the single
    /// writer is mid-way through a structural change (split, migration,
    /// root growth) and a concurrent descent may observe a torn state. The
    /// writer bumps even→odd at the first structural write of a mutation
    /// ([`TsbTree::note_structural_write`]) and odd→even when the mutation
    /// has fully installed ([`TsbTree::settle_structure`]). Content-only
    /// leaf rewrites never bump it: replacing a leaf is atomic through the
    /// decoded-node cache, and multiversion reads at a pinned past
    /// timestamp are unaffected by new versions. Readers that need a
    /// consistent multi-node view (see [`crate::ConcurrentTsb`]) sample
    /// the epoch before and after and retry on change.
    pub(crate) structure_seq: AtomicU64,
}

impl std::fmt::Debug for TsbTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TsbTree")
            .field("root", &self.current_root())
            .field("page_size", &self.cfg.page_size)
            .field("split_policy", &self.cfg.split_policy)
            .finish()
    }
}

impl TsbTree {
    /// Creates a fresh tree over in-memory stores sized by `cfg`.
    pub fn new_in_memory(cfg: TsbConfig) -> TsbResult<Self> {
        cfg.validate()?;
        let stats = Arc::new(IoStats::new());
        let magnetic = Arc::new(MagneticStore::in_memory(cfg.page_size, Arc::clone(&stats)));
        let worm = Arc::new(WormStore::in_memory(
            cfg.worm_sector_size,
            Arc::clone(&stats),
        ));
        Self::create(magnetic, worm, cfg)
    }

    /// Creates a fresh tree over the provided stores. The magnetic store must
    /// be empty (use [`Self::open`] to reopen an existing tree).
    pub fn create(
        magnetic: Arc<MagneticStore>,
        worm: Arc<WormStore>,
        cfg: TsbConfig,
    ) -> TsbResult<Self> {
        Self::create_with(magnetic, worm, cfg, None)
    }

    /// Creates a fresh **durable** tree: every mutation is redo-logged to
    /// `wal` before it may dirty a page, and the initial state is fenced
    /// with a checkpoint, so the tree is crash-consistent from its first
    /// instant. Use [`Self::open_durable`] for the directory-based
    /// convenience API and [`Self::recover`] to reopen after a crash.
    pub fn create_durable(
        magnetic: Arc<MagneticStore>,
        worm: Arc<WormStore>,
        wal: Wal,
        cfg: TsbConfig,
    ) -> TsbResult<Self> {
        let tree = Self::create_with(magnetic, worm, cfg, Some(wal))?;
        // Fence the initial root + metadata so recovery always has a
        // checkpoint to replay from.
        tree.flush_shared()?;
        Ok(tree)
    }

    fn create_with(
        magnetic: Arc<MagneticStore>,
        worm: Arc<WormStore>,
        cfg: TsbConfig,
        wal: Option<Wal>,
    ) -> TsbResult<Self> {
        cfg.validate()?;
        if magnetic.allocated_pages() != 0 {
            return Err(TsbError::config(
                "TsbTree::create requires an empty magnetic store; use TsbTree::open to reopen",
            ));
        }
        if magnetic.page_size() != cfg.page_size {
            return Err(TsbError::config(format!(
                "magnetic store page size {} does not match config page size {}",
                magnetic.page_size(),
                cfg.page_size
            )));
        }
        let stats = Arc::clone(magnetic.stats());
        let pool = BufferPool::new(Arc::clone(&magnetic), cfg.buffer_pool_pages);
        let cache = NodeCache::sharded(cfg.node_cache_entries);
        let cost = CostModel::new(cfg.cost);
        let clock = LogicalClock::new();

        let meta_page = magnetic.allocate()?;
        let root_page = magnetic.allocate()?;
        let root = NodeAddr::Current(root_page);
        let durability = wal.map(|wal| Self::attach_wal(wal, &pool, meta_page));

        let tree = TsbTree {
            cfg,
            magnetic,
            pool,
            cache,
            worm,
            stats,
            cost,
            clock,
            root: RwLock::new(root),
            meta_page,
            txns: Mutex::new(TxnTable::new()),
            marked_for_time_split: Mutex::new(HashSet::new()),
            poisoned: std::sync::atomic::AtomicBool::new(false),
            durability,
            recovered_to: None,
            structure_seq: AtomicU64::new(0),
        };
        let root_node = DataNode::initial_root();
        tree.write_current(root_page, Node::Data(root_node))?;
        tree.write_meta()?;
        Ok(tree)
    }

    /// Builds the [`Durability`] state for a WAL-attached tree: exempts the
    /// metadata page (its content is reconstructed from commit records, not
    /// page images) and installs the dirty-page table into the buffer pool
    /// so its write-back sites can assert the WAL-before-page ordering.
    fn attach_wal(wal: Wal, pool: &BufferPool, meta_page: PageId) -> Durability {
        let wal = Arc::new(wal);
        let pages = Arc::new(WalPageTable::new());
        pages.exempt(meta_page);
        pages.attach_wal(Arc::clone(&wal));
        pool.set_wal_table(Arc::clone(&pages));
        Durability {
            wal,
            pages,
            worm_synced: AtomicU64::new(0),
        }
    }

    /// Reopens an existing tree, or creates a fresh one if the magnetic
    /// store is empty. The metadata page is the lowest allocated page id.
    pub fn open(
        magnetic: Arc<MagneticStore>,
        worm: Arc<WormStore>,
        cfg: TsbConfig,
    ) -> TsbResult<Self> {
        cfg.validate()?;
        if magnetic.allocated_pages() == 0 {
            return Self::create(magnetic, worm, cfg);
        }
        if magnetic.page_size() != cfg.page_size {
            return Err(TsbError::config(format!(
                "magnetic store page size {} does not match config page size {}",
                magnetic.page_size(),
                cfg.page_size
            )));
        }
        let meta_page = magnetic
            .allocated_page_ids()
            .into_iter()
            .min()
            .ok_or_else(|| TsbError::internal("non-empty store with no pages"))?;
        let meta_bytes = magnetic.read(meta_page)?;
        let (root, clock_next, next_txn) = Self::decode_meta(&meta_bytes)?;

        let stats = Arc::clone(magnetic.stats());
        let pool = BufferPool::new(Arc::clone(&magnetic), cfg.buffer_pool_pages);
        let cache = NodeCache::sharded(cfg.node_cache_entries);
        let cost = CostModel::new(cfg.cost);
        let clock = LogicalClock::starting_at(clock_next);

        Ok(TsbTree {
            cfg,
            magnetic,
            pool,
            cache,
            worm,
            stats,
            cost,
            clock,
            root: RwLock::new(root),
            meta_page,
            txns: Mutex::new(TxnTable::starting_at(next_txn)),
            marked_for_time_split: Mutex::new(HashSet::new()),
            poisoned: std::sync::atomic::AtomicBool::new(false),
            durability: None,
            recovered_to: None,
            structure_seq: AtomicU64::new(0),
        })
    }

    /// Opens (or creates) a **durable** tree rooted at directory `dir`,
    /// holding the magnetic store (`current.pages`), the WORM store
    /// (`history.worm`), and the redo log (`redo.wal`).
    ///
    /// * A fresh directory creates a new tree ([`Self::create_durable`]).
    /// * A directory with durable state runs crash-consistent recovery
    ///   ([`Self::recover`]) — this is the same code path whether the last
    ///   session shut down cleanly (the log's tail is a checkpoint; replay
    ///   is empty) or died mid-write.
    /// * A directory where *nothing* was ever durably committed (a fresh
    ///   directory, or a crash inside the very first create before its
    ///   checkpoint fence) is recreated; no acknowledged state can be lost
    ///   because none ever existed. A directory that holds *real store
    ///   data* but no usable log — a pre-WAL database, or a lost/deleted
    ///   `redo.wal` — is a hard error instead: recreating it would destroy
    ///   data this method cannot prove disposable.
    pub fn open_durable(dir: impl AsRef<Path>, cfg: TsbConfig) -> TsbResult<Self> {
        cfg.validate()?;
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let stats = Arc::new(IoStats::new());
        let wal_path = dir.join(WAL_FILE);
        let (wal, scan) = Wal::open(&wal_path, cfg.fsync_policy, Arc::clone(&stats))?;
        let has_fence = scan
            .records
            .iter()
            .any(|(_, r)| matches!(r, WalRecord::Commit { .. } | WalRecord::Checkpoint { .. }));
        let magnetic = Arc::new(MagneticStore::open_file(
            dir.join(MAGNETIC_FILE),
            cfg.page_size,
            Arc::clone(&stats),
        )?);
        let worm = Arc::new(WormStore::open_file(
            dir.join(WORM_FILE),
            cfg.worm_sector_size,
            Arc::clone(&stats),
        )?);
        if has_fence {
            return Self::recover(magnetic, worm, wal, scan, cfg);
        }
        // No fence: nothing was ever durably committed through this log.
        // Starting fresh is only safe when the stores hold no data of
        // their own...
        if magnetic.allocated_pages() == 0 && worm.device_bytes() == 0 {
            drop(wal);
            let wal = Wal::create(&wal_path, cfg.fsync_policy, stats)?;
            return Self::create_durable(magnetic, worm, wal, cfg);
        }
        // ...or when every byte in them provably came from an unfinished
        // first create: a non-empty, fence-less log can only be the first
        // create's page images (every completed create or mutation appends
        // a fence, and a torn tail that ate *every* fence must lie at or
        // before the first one). Recreate from scratch.
        if !scan.records.is_empty() {
            drop(wal);
            drop(magnetic);
            drop(worm);
            std::fs::remove_file(dir.join(MAGNETIC_FILE))?;
            std::fs::remove_file(dir.join(WORM_FILE))?;
            let wal = Wal::create(&wal_path, cfg.fsync_policy, Arc::clone(&stats))?;
            let magnetic = Arc::new(MagneticStore::open_file(
                dir.join(MAGNETIC_FILE),
                cfg.page_size,
                Arc::clone(&stats),
            )?);
            let worm = Arc::new(WormStore::open_file(
                dir.join(WORM_FILE),
                cfg.worm_sector_size,
                stats,
            )?);
            return Self::create_durable(magnetic, worm, wal, cfg);
        }
        // Real store data, empty log: a pre-WAL database or a lost
        // redo.wal. Refuse rather than guess.
        Err(TsbError::corruption(format!(
            "directory {} holds store data but its write-ahead log has no usable \
             fence; refusing to recreate (use TsbTree::open for a non-durable \
             reopen, or restore the missing redo.wal)",
            dir.display()
        )))
    }

    /// Crash-consistent reopen: replays the redo log over the magnetic
    /// store and rebuilds a verified tree.
    ///
    /// The protocol ("repeating history", then discarding the un-fenced
    /// tail):
    ///
    /// 1. **Base.** Replay starts after the newest `Checkpoint` record (the
    ///    fence LSN) — the magnetic device is known to equal that state. A
    ///    log with commits but no checkpoint replays from the empty store
    ///    the first session started with.
    /// 2. **Cut.** The replay target is the newest `Commit` record such
    ///    that every commit up to it has its WORM history intact
    ///    (`worm_len` within the surviving WORM file). Records after the
    ///    cut belong to a mutation that never finished logging; its page
    ///    images are discarded and any WORM sectors it burned are dead
    ///    space (write-once media cannot be un-burned — §1).
    /// 3. **Repeat history.** Every `PageImage` between base and cut is
    ///    installed into the magnetic store in LSN order
    ///    ([`MagneticStore::restore`] force-allocates pages the on-disk
    ///    superblock predates). This overwrites any torn or half-flushed
    ///    device state — correctness does not depend on *which* writes
    ///    happened to reach the device before the crash.
    /// 4. **Metadata.** The root pointer, logical clock, and transaction
    ///    counter come from the cut's metadata payload, not from the
    ///    (possibly stale) on-device metadata page.
    /// 5. **Implicit abort.** Uncommitted versions that made it into
    ///    replayed pages are erased — in-flight writer transactions died
    ///    with the process, exactly the erasure §4 makes possible on the
    ///    erasable store.
    /// 6. **Reclaim.** The magnetic free list is rebuilt from reachability:
    ///    any allocated page the recovered root cannot reach is freed. The
    ///    log has no record kind for page frees, so replay can only ever
    ///    allocate — without this step a page freed since the checkpoint
    ///    would come back allocated-but-unreachable and stay leaked across
    ///    every later session.
    /// 7. **Verify, then fence.** The rebuilt tree must pass [`Self::verify`]
    ///    before serving, and a fresh checkpoint fences the next recovery.
    ///
    /// The recovered tree answers every query exactly as the oracle's
    /// replay of the committed prefix up to [`Self::last_durable_commit`].
    pub fn recover(
        magnetic: Arc<MagneticStore>,
        worm: Arc<WormStore>,
        wal: Wal,
        scan: WalScan,
        cfg: TsbConfig,
    ) -> TsbResult<Self> {
        cfg.validate()?;
        if magnetic.page_size() != cfg.page_size {
            return Err(TsbError::config(format!(
                "magnetic store page size {} does not match config page size {}",
                magnetic.page_size(),
                cfg.page_size
            )));
        }
        // 1. Base: the newest checkpoint, if any.
        let chk_idx = scan
            .records
            .iter()
            .rposition(|(_, r)| matches!(r, WalRecord::Checkpoint { .. }));
        let mut cut_meta: Option<Vec<u8>> = match chk_idx.map(|i| &scan.records[i].1) {
            Some(WalRecord::Checkpoint { meta, .. }) => Some(meta.clone()),
            Some(_) => unreachable!("rposition matched a checkpoint"),
            None => None,
        };
        // 2. Cut: the longest post-base prefix of commits whose WORM
        //    history survived.
        let replay_from = chk_idx.map(|i| i + 1).unwrap_or(0);
        let worm_len_actual = worm.device_bytes();
        let mut cut_idx = None;
        let mut cut_ts = None;
        for (idx, (_, record)) in scan.records.iter().enumerate().skip(replay_from) {
            if let WalRecord::Commit { ts, worm_len, meta } = record {
                if *worm_len > worm_len_actual {
                    break;
                }
                cut_idx = Some(idx);
                cut_ts = Some(Timestamp(*ts));
                cut_meta = Some(meta.clone());
            }
        }
        let cut_meta = cut_meta.ok_or_else(|| {
            TsbError::corruption(
                "write-ahead log has no usable fence (no checkpoint, and no commit \
                 whose WORM history survived); nothing was ever durable",
            )
        })?;
        // 3. Repeat history up to the cut.
        if let Some(cut_idx) = cut_idx {
            for (_, record) in &scan.records[replay_from..=cut_idx] {
                if let WalRecord::PageImage { page, bytes } = record {
                    magnetic.restore(*page, bytes)?;
                }
            }
        }
        // 4. Install the cut's metadata.
        let (root, clock_next, next_txn) = Self::decode_meta(&cut_meta)?;
        let meta_page = magnetic
            .allocated_page_ids()
            .into_iter()
            .min()
            .ok_or_else(|| TsbError::corruption("recovered store has no pages"))?;
        let stats = Arc::clone(magnetic.stats());
        let pool = BufferPool::new(Arc::clone(&magnetic), cfg.buffer_pool_pages);
        let cache = NodeCache::sharded(cfg.node_cache_entries);
        let cost = CostModel::new(cfg.cost);
        let clock = LogicalClock::starting_at(clock_next);
        let recovered_to = cut_ts.unwrap_or_else(|| clock_next.prev());
        let durability = Some(Self::attach_wal(wal, &pool, meta_page));

        let tree = TsbTree {
            cfg,
            magnetic,
            pool,
            cache,
            worm,
            stats,
            cost,
            clock,
            root: RwLock::new(root),
            meta_page,
            txns: Mutex::new(TxnTable::starting_at(next_txn)),
            marked_for_time_split: Mutex::new(HashSet::new()),
            poisoned: std::sync::atomic::AtomicBool::new(false),
            durability,
            recovered_to: Some(recovered_to),
            structure_seq: AtomicU64::new(0),
        };
        // The WORM bytes the cut references survived, so they are as
        // stable as they will ever be.
        if let Some(d) = &tree.durability {
            d.worm_synced.store(worm_len_actual, Ordering::Release);
        }
        tree.write_meta()?;
        // 5. In-flight transactions died with the process: erase their
        //    uncommitted versions.
        tree.purge_uncommitted()?;
        // 6. Free whatever the recovered root cannot reach.
        tree.reclaim_unreachable_pages()?;
        // 7. Never serve an unverified recovery; then fence it.
        tree.verify()?;
        tree.flush_shared()?;
        Ok(tree)
    }

    /// The commit timestamp of the newest mutation this tree contains, when
    /// the tree was produced by [`Self::recover`] — the durable prefix's
    /// upper bound. `None` for trees not born from recovery.
    pub fn last_durable_commit(&self) -> Option<Timestamp> {
        self.recovered_to
    }

    /// Whether this tree redo-logs its mutations to a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Walks the current database and erases every uncommitted version
    /// (recovery's implicit abort of in-flight transactions; uncommitted
    /// versions never migrate, so historical nodes need no visit).
    fn purge_uncommitted(&self) -> TsbResult<()> {
        self.purge_uncommitted_at(self.current_root())
    }

    fn purge_uncommitted_at(&self, addr: NodeAddr) -> TsbResult<()> {
        let Some(page) = addr.as_page() else {
            return Ok(());
        };
        let node = self.read_node(addr)?;
        match &*node {
            Node::Data(data) => {
                if data.entries().iter().any(|v| v.state.is_uncommitted()) {
                    let committed: Vec<_> = data
                        .entries()
                        .iter()
                        .filter(|v| !v.state.is_uncommitted())
                        .cloned()
                        .collect();
                    let cleaned =
                        DataNode::from_entries(data.key_range.clone(), data.time_range, committed);
                    self.write_current(page, Node::Data(cleaned))?;
                }
                Ok(())
            }
            Node::Index(index) => {
                let children: Vec<NodeAddr> = index.entries().iter().map(|e| e.child).collect();
                for child in children {
                    self.purge_uncommitted_at(child)?;
                }
                Ok(())
            }
        }
    }

    /// Rebuilds the magnetic free list from reachability: frees every
    /// allocated page that is neither the metadata page nor reachable from
    /// the recovered root. The redo log has no record kind for page frees,
    /// so replay can only ever *allocate* ([`MagneticStore::restore`] even
    /// pulls replayed pages off the on-disk free list): a page freed since
    /// the last checkpoint would come back allocated-but-unreachable after
    /// recovery and stay leaked across every later session — which
    /// [`Self::verify`] treats as a hard error, turning a space leak into
    /// an unrecoverable store. Deriving the free list from the recovered
    /// tree closes that gap for any free site, present or future, without
    /// a `PageFree` record.
    fn reclaim_unreachable_pages(&self) -> TsbResult<()> {
        let mut reachable: HashSet<PageId> = HashSet::new();
        reachable.insert(self.meta_page);
        self.collect_current_pages(self.current_root(), &mut reachable)?;
        for page in self.magnetic.allocated_page_ids() {
            if !reachable.contains(&page) {
                self.cache.discard(NodeAddr::Current(page));
                self.pool.discard(page);
                self.magnetic.free(page)?;
            }
        }
        Ok(())
    }

    /// Collects into `out` every magnetic page reachable from `addr`
    /// (historical children live on the WORM and are skipped).
    fn collect_current_pages(&self, addr: NodeAddr, out: &mut HashSet<PageId>) -> TsbResult<()> {
        let Some(page) = addr.as_page() else {
            return Ok(());
        };
        if !out.insert(page) {
            return Ok(());
        }
        let node = self.read_node(addr)?;
        if let Node::Index(index) = &*node {
            for entry in index.entries() {
                self.collect_current_pages(entry.child, out)?;
            }
        }
        Ok(())
    }

    /// The tree configuration.
    pub fn config(&self) -> &TsbConfig {
        &self.cfg
    }

    /// The shared I/O statistics counters.
    pub fn io_stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// The device cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The current logical time (the timestamp the next commit would get).
    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// The root node address.
    pub fn root_addr(&self) -> NodeAddr {
        self.current_root()
    }

    /// Copies the root pointer out of its latch (a short shared latch, held
    /// only for the copy).
    pub(crate) fn current_root(&self) -> NodeAddr {
        *self.root.read()
    }

    // ----- structure epoch (single-writer seqlock) ------------------------

    /// The current structure epoch (even = stable, odd = a structural
    /// change is in flight). Readers needing a consistent multi-node view
    /// sample this before and after their descent and retry on change.
    pub(crate) fn structure_epoch(&self) -> u64 {
        self.structure_seq.load(Ordering::Acquire)
    }

    /// Marks the beginning of a structural change (first split / migration /
    /// root replacement of the current mutation). Idempotent within one
    /// mutation: only the even→odd transition stores. Must only be called
    /// by the single writer.
    pub(crate) fn note_structural_write(&self) {
        let seq = self.structure_seq.load(Ordering::Relaxed);
        if seq.is_multiple_of(2) {
            self.structure_seq.store(seq + 1, Ordering::Release);
        }
    }

    /// Marks the end of the current mutation: if a structural change was
    /// noted, the epoch settles back to even. Must only be called by the
    /// single writer.
    pub(crate) fn settle_structure(&self) {
        let seq = self.structure_seq.load(Ordering::Relaxed);
        if seq % 2 == 1 {
            self.structure_seq.store(seq + 1, Ordering::Release);
        }
    }

    /// Ends a mutation that may have performed structural writes. If the
    /// mutation `failed` while the epoch was odd — i.e. after at least one
    /// structural write landed but before the change fully installed — the
    /// tree is permanently poisoned: some nodes were rewritten and others
    /// were not, and neither the writer nor a retrying reader can
    /// reconstruct a consistent view. All subsequent operations then
    /// refuse (see [`Self::check_not_poisoned`]) instead of silently
    /// serving the torn structure.
    pub(crate) fn settle_structure_after(&self, failed: bool) {
        if failed && self.structure_seq.load(Ordering::Relaxed) % 2 == 1 {
            self.poisoned.store(true, Ordering::Release);
        }
        self.settle_structure();
    }

    /// Errors if a previous structural mutation failed part-way through.
    pub(crate) fn check_not_poisoned(&self) -> TsbResult<()> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(TsbError::invariant(
                "the tree is poisoned: a structural change (split/migration) failed \
                 part-way through and the on-device structure is torn",
            ));
        }
        Ok(())
    }

    /// Space currently occupied on the two devices (the paper's `SpaceM` and
    /// `SpaceO`).
    pub fn space(&self) -> SpaceSnapshot {
        SpaceSnapshot {
            magnetic_bytes: self.magnetic.device_bytes(),
            worm_bytes: self.worm.device_bytes(),
            magnetic_payload_bytes: self.magnetic.payload_bytes(),
            worm_payload_bytes: self.worm.payload_bytes(),
        }
    }

    /// The storage cost `CS = SpaceM·CM + SpaceO·CO` of the current state.
    pub fn storage_cost(&self) -> f64 {
        self.cost.storage_cost(&self.space())
    }

    /// Flushes dirty nodes, dirty pages, the metadata page, and both
    /// devices. On a durable tree this is a full **checkpoint**: once the
    /// devices are synced, a checkpoint record fences the redo log, so the
    /// next recovery replays nothing that precedes this call.
    pub fn flush(&mut self) -> TsbResult<()> {
        self.flush_shared()
    }

    /// Synonym for [`Self::flush`] under its durability name.
    pub fn checkpoint(&mut self) -> TsbResult<()> {
        self.flush_shared()
    }

    /// [`Self::flush`] against `&self`, for callers that serialize writers
    /// externally ([`crate::ConcurrentTsb`]).
    ///
    /// Checkpoint ordering is what makes the fence sound: the checkpoint
    /// record is appended (and fsynced) only *after* every dirty node is
    /// encoded, every dirty page written, and both devices synced. A crash
    /// anywhere inside this sequence leaves the log without the new
    /// checkpoint, so recovery replays from the previous fence — and
    /// because every page image since that fence is in the log, replay
    /// overwrites whatever subset of the flush had landed.
    pub(crate) fn flush_shared(&self) -> TsbResult<()> {
        self.write_meta()?;
        self.flush_node_cache()?;
        self.pool.flush()?;
        self.magnetic.sync()?;
        self.worm.sync()?;
        if let Some(d) = &self.durability {
            let worm_len = self.worm.device_bytes();
            let record = WalRecord::Checkpoint {
                worm_len,
                meta: self.encode_meta_bytes(),
            };
            // A completed checkpoint fences everything before it, so the
            // log is atomically *replaced* by the new fence record
            // (write-new-then-rename inside `reset_with`, fsynced) instead
            // of growing without bound: the log stays one checkpoint
            // interval long, and reopen cost is O(since last checkpoint).
            d.wal.reset_with(&record).inspect_err(|_| {
                self.poisoned.store(true, Ordering::Release);
            })?;
            // Everything the devices held is now stable; the replaced
            // log's pre-fence page coverage is obsolete but harmless (the
            // table only gates write-backs, which the flush just drained).
            d.worm_synced.store(worm_len, Ordering::Release);
        }
        Ok(())
    }

    // ----- write-ahead logging --------------------------------------------

    /// Appends one record to the WAL. A failed append **poisons the tree**:
    /// the in-memory state is ahead of what can ever be made durable again,
    /// and continuing to serve (or mutate) it would silently widen the gap,
    /// so every subsequent operation refuses instead.
    fn wal_append(&self, record: &WalRecord) -> TsbResult<Lsn> {
        let d = self
            .durability
            .as_ref()
            .expect("wal_append is only called on durable trees");
        d.wal.append(record).inspect_err(|_| {
            self.poisoned.store(true, Ordering::Release);
        })
    }

    /// Appends the commit fence ending a mutation: a `Commit` record whose
    /// metadata describes the resulting tree state, promising that every
    /// page image the mutation produced precedes it in the log. The WAL's
    /// fsync policy (group commit) decides whether this forces stable
    /// storage. No-op on non-durable trees.
    ///
    /// Overflow write-back deferred by [`Self::write_current`] drains here,
    /// *after* the fence: a page image may only reach the device once a
    /// commit record covers it, otherwise a crash could leave the device
    /// holding state that recovery's replay cut discards (see
    /// [`Self::recover`], step 3).
    pub(crate) fn wal_commit(&self, ts: Timestamp) -> TsbResult<()> {
        let Some(d) = &self.durability else {
            return Ok(());
        };
        let worm_len = self.worm.device_bytes();
        // If this mutation migrated history, the WORM bytes must be stable
        // *before* a commit record referencing them can be — under every
        // fsync policy, not just the ones that fsync the commit itself.
        // For `Always` the reason is the acknowledgement contract: a power
        // failure after the commit's fsync but before the OS flushed the
        // WORM tail would force recovery to cut before this commit. For
        // `EveryN`/`Os` the reason is device consistency: the flushed-LSN
        // barrier forces the *WAL* (not the WORM) before page write-backs,
        // so without this sync the device could hold page images from a
        // commit whose WORM history was lost — a commit past the replay
        // cut, whose surviving device pages (dangling historical
        // addresses) replay has no image in [base, cut] to overwrite.
        // Syncing here restores the invariant that any commit in the
        // durable log has its history intact, so the cut always covers
        // whatever reached the page device.
        if worm_len > d.worm_synced.load(Ordering::Acquire) {
            self.worm.sync()?;
            d.worm_synced.store(worm_len, Ordering::Release);
        }
        let record = WalRecord::Commit {
            ts: ts.value(),
            worm_len,
            meta: self.encode_meta_bytes(),
        };
        self.wal_append(&record)?;
        while let Some((page, node)) = self.cache.any_dirty_overflow_victim() {
            self.write_back_dirty(page, &node)?;
        }
        Ok(())
    }

    // ----- node I/O -------------------------------------------------------

    /// Usable bytes for an encoded node on a magnetic page.
    pub(crate) fn page_capacity(&self) -> usize {
        self.magnetic.capacity()
    }

    /// The size at which an insertion triggers a split.
    pub(crate) fn split_threshold(&self) -> usize {
        (self.page_capacity() as f64 * self.cfg.split_fill_threshold) as usize
    }

    /// Reads the node at `addr`, recording a logical node access. Served
    /// from the decoded-node cache when possible — a hit performs no decode
    /// and no page-image copy, just a shared handle.
    pub(crate) fn read_node(&self, addr: NodeAddr) -> TsbResult<Arc<Node>> {
        self.check_not_poisoned()?;
        match addr {
            NodeAddr::Current(_) => self.stats.record_current_node_access(),
            NodeAddr::Historical(_) => self.stats.record_historical_node_access(),
        }
        let fill_stamp = match self.cache.begin_fill(addr) {
            Ok(node) => {
                self.stats.record_node_cache_hit();
                return Ok(node);
            }
            Err(stamp) => stamp,
        };
        self.stats.record_node_cache_miss();
        let decoded = Arc::new(self.decode_node_at(addr)?);
        // Caching a clean node is pure in-memory bookkeeping (dirty entries
        // are pinned against eviction), so the read path performs no page
        // I/O beyond the decode above. The fill is stamp-validated: if the
        // writer changed this cache shard's contents while we were
        // decoding, our decode may be stale and is returned *uncached*
        // (still a legal answer for a read that began before the write
        // installed); a resident entry always wins.
        Ok(self.cache.complete_fill(addr, decoded, fill_stamp))
    }

    /// Decodes the node at `addr` from its device image (buffer pool for
    /// current pages, WORM store for historical nodes), bypassing the
    /// decoded-node cache.
    fn decode_node_at(&self, addr: NodeAddr) -> TsbResult<Node> {
        self.stats.record_node_decode();
        match addr {
            NodeAddr::Current(page) => {
                let bytes = self.pool.get(page)?;
                Node::decode(&bytes)
            }
            NodeAddr::Historical(hist) => {
                let bytes = self.worm.read(hist)?;
                Node::decode(&bytes)
            }
        }
    }

    /// Reads and decodes the node at `addr` directly from the devices. Any
    /// pending dirty state *for that address* is flushed first so its
    /// device image is the newest one (other deferred encodes stay
    /// deferred). Diagnostic surface used to check cache coherence.
    pub fn read_node_bypass(&self, addr: NodeAddr) -> TsbResult<Node> {
        self.flush_dirty_node_at(addr)?;
        self.decode_node_at(addr)
    }

    /// Reads a node expected to be a data node.
    pub(crate) fn read_data(&self, addr: NodeAddr) -> TsbResult<DataRef> {
        let node = self.read_node(addr)?;
        match &*node {
            Node::Data(_) => Ok(DataRef(node)),
            Node::Index(_) => Err(TsbError::corruption(format!(
                "expected a data node at {addr}, found an index node"
            ))),
        }
    }

    /// Reads a node expected to be an index node.
    #[allow(dead_code)] // kept for symmetry with `read_data`; used by debugging tools
    pub(crate) fn read_index(&self, addr: NodeAddr) -> TsbResult<IndexRef> {
        let node = self.read_node(addr)?;
        match &*node {
            Node::Index(_) => Ok(IndexRef(node)),
            Node::Data(_) => Err(TsbError::corruption(format!(
                "expected an index node at {addr}, found a data node"
            ))),
        }
    }

    /// Installs the newest version of a current node. The node goes into
    /// the decoded-node cache marked dirty; the encode into its page image
    /// is deferred until the entry is evicted or the tree flushes, so a hot
    /// leaf rewritten many times between flushes encodes once.
    pub(crate) fn write_current(&self, page: PageId, node: Node) -> TsbResult<()> {
        let size = node.encoded_size();
        if size > self.page_capacity() {
            return Err(TsbError::internal(format!(
                "attempted to write a {}-byte node into a {}-byte page; splitting should have prevented this",
                size,
                self.page_capacity()
            )));
        }
        // WAL-before-page: the image goes into the redo log *before* the
        // cache may hold the node dirty. If the append fails nothing has
        // changed in memory, so the error is clean (though the tree is
        // poisoned — the log device is gone). This encode is in addition
        // to the deferred one at write-back; durability pays it once per
        // mutation by design (E12 prices it), where fusing the two would
        // tie the cache's lifetime to the log's.
        if let Some(d) = &self.durability {
            let record = WalRecord::PageImage {
                page,
                bytes: node.encode(),
            };
            let lsn = self.wal_append(&record)?;
            d.pages.record(page, lsn);
        }
        self.cache.insert_dirty(page, Arc::new(node));
        // Bound the dirty residency: when this page's cache shard holds
        // more deferred encodes than its capacity, write the least recently
        // written one back now (writer context, so this is race-free). The
        // victim stays resident and is marked clean only after its image is
        // in the pool — a concurrent reader therefore never sees a gap.
        //
        // Durable trees defer this to the end of the mutation
        // ([`Self::wal_commit`]): writing a victim back here could push an
        // image from the *in-flight* mutation toward the device before its
        // commit fence exists, and recovery discards un-fenced images — the
        // device would hold state replay cannot reproduce.
        if self.durability.is_none() {
            if let Some((victim_page, victim_node)) =
                self.cache.dirty_overflow_victim(NodeAddr::Current(page))
            {
                self.write_back_dirty(victim_page, &victim_node)?;
            }
        }
        Ok(())
    }

    /// Encodes and writes one dirty cached node into its page image, then
    /// confirms the write-back so the cache unpins the entry. The entry
    /// stays dirty — pinned against eviction — until its image is in the
    /// pool, so a concurrent reader can never evict-then-refill it from a
    /// stale page image mid-flush.
    fn write_back_dirty(&self, page: PageId, node: &Node) -> TsbResult<()> {
        // WAL-before-page invariant: a dirty node may only start its way to
        // the device if its image was logged when the node was installed
        // (`write_current`). The buffer pool asserts the same contract at
        // its own write-back sites via the shared WalPageTable.
        if let Some(d) = &self.durability {
            d.pages.assert_covered(page);
        }
        self.stats.record_node_encode();
        self.pool.put(page, node.encode())?;
        self.cache.mark_clean(NodeAddr::Current(page));
        Ok(())
    }

    /// Encodes every dirty cached node into its page image (ascending
    /// `PageId` order). The entries stay cached, now clean. Public so
    /// measurement harnesses can draw a line between build-phase and
    /// query-phase encode/write traffic without a full device flush.
    pub fn flush_node_cache(&self) -> TsbResult<()> {
        for (page, node) in self.cache.dirty_entries() {
            self.write_back_dirty(page, &node)?;
        }
        Ok(())
    }

    /// Encodes one address's dirty cached node into its page image, if it
    /// has one; every other deferred encode stays deferred.
    fn flush_dirty_node_at(&self, addr: NodeAddr) -> TsbResult<()> {
        match self.cache.dirty_at(addr) {
            Some((page, node)) => self.write_back_dirty(page, &node),
            None => Ok(()),
        }
    }

    /// Consolidates a node and appends it to the historical store,
    /// returning its address (§3.4: the historical node is written once, at
    /// whatever length it has). The node is retained in the decoded-node
    /// cache — freshly migrated history is the history most likely to be
    /// queried.
    pub(crate) fn append_historical(&self, node: Node) -> TsbResult<HistAddr> {
        self.stats.record_node_encode();
        let addr = self.worm.append(&node.encode())?;
        self.cache
            .insert_clean(NodeAddr::Historical(addr), Arc::new(node));
        Ok(addr)
    }

    /// Drops every cached decoded node and page frame, writing dirty state
    /// to the devices first. Subsequent reads re-read pages from the device
    /// *and* re-decode them — the fully-cold baseline.
    pub fn drop_caches(&self) -> TsbResult<()> {
        self.drop_node_cache()?;
        self.pool.flush_and_clear()
    }

    /// Drops only the decoded-node cache (after flushing its dirty state),
    /// leaving the buffer pool warm. Subsequent reads pay one `Node::decode`
    /// per access but no device I/O — exactly the engine's behaviour before
    /// the decoded-node cache existed, which makes this the baseline for
    /// measuring what the cache itself buys.
    pub fn drop_node_cache(&self) -> TsbResult<()> {
        self.flush_node_cache()?;
        self.cache.clear();
        Ok(())
    }

    /// Invalidates the decoded-node cache entry for `addr`, if any. That
    /// entry's dirty state is flushed first, so no write is lost — and
    /// *only* that entry's, so invalidating one node does not act as a
    /// full flush; the next read re-decodes the device image.
    pub fn invalidate_cached_node(&self, addr: NodeAddr) -> TsbResult<()> {
        self.flush_dirty_node_at(addr)?;
        self.cache.discard(addr);
        Ok(())
    }

    /// Walks every node reachable from the root and checks that the cached
    /// copy equals what decoding the device image produces (pending dirty
    /// nodes are flushed first). Returns the first divergence found.
    pub fn verify_cache_coherence(&self) -> TsbResult<()> {
        self.flush_node_cache()?;
        let mut visited: HashSet<NodeAddr> = HashSet::new();
        self.check_coherence(self.current_root(), &mut visited)
    }

    fn check_coherence(&self, addr: NodeAddr, visited: &mut HashSet<NodeAddr>) -> TsbResult<()> {
        if !visited.insert(addr) {
            return Ok(());
        }
        let cached = self.read_node(addr)?;
        let direct = self.decode_node_at(addr)?;
        if *cached != direct {
            return Err(TsbError::invariant(format!(
                "decoded-node cache diverges from the device image at {addr}"
            )));
        }
        if let Node::Index(index) = &*cached {
            for entry in index.entries() {
                self.check_coherence(entry.child, visited)?;
            }
        }
        Ok(())
    }

    /// Allocates a fresh current page.
    pub(crate) fn allocate_page(&self) -> TsbResult<PageId> {
        self.magnetic.allocate()
    }

    // ----- metadata -------------------------------------------------------

    /// The metadata encoding shared by the on-device metadata page and the
    /// WAL's commit / checkpoint records (recovery trusts the latter; the
    /// page is a convenience for non-durable reopen).
    fn encode_meta_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(META_MAGIC);
        self.current_root().encode(&mut w);
        w.put_u64(self.clock.now().value());
        w.put_u64(self.txns.lock().next_id_value());
        w.into_vec()
    }

    pub(crate) fn write_meta(&self) -> TsbResult<()> {
        self.pool.put(self.meta_page, self.encode_meta_bytes())
    }

    fn decode_meta(bytes: &[u8]) -> TsbResult<(NodeAddr, Timestamp, u64)> {
        let mut r = ByteReader::new(bytes);
        if r.get_u64()? != META_MAGIC {
            return Err(TsbError::corruption("bad TSB-tree metadata magic"));
        }
        let root = NodeAddr::decode(&mut r)?;
        let clock_next = Timestamp(r.get_u64()?);
        let next_txn = r.get_u64()?;
        Ok((root, clock_next, next_txn))
    }

    /// Updates the root pointer and persists the metadata page. A root
    /// replacement is a structural change, so the caller (the insert path)
    /// must have noted the structure epoch as in-flight.
    pub(crate) fn set_root(&self, root: NodeAddr) -> TsbResult<()> {
        *self.root.write() = root;
        self.write_meta()
    }
}

/// A shared read handle to a cached data node. Dereferences to
/// [`DataNode`]; cloning the target (`DataNode::clone(&r)`) yields an owned
/// node for mutation paths.
pub(crate) struct DataRef(pub(crate) Arc<Node>);

impl Deref for DataRef {
    type Target = DataNode;
    fn deref(&self) -> &DataNode {
        match &*self.0 {
            Node::Data(n) => n,
            Node::Index(_) => unreachable!("DataRef only wraps data nodes"),
        }
    }
}

/// A shared read handle to a cached index node.
pub(crate) struct IndexRef(Arc<Node>);

impl Deref for IndexRef {
    type Target = IndexNode;
    fn deref(&self) -> &IndexNode {
        match &*self.0 {
            Node::Index(n) => n,
            Node::Data(_) => unreachable!("IndexRef only wraps index nodes"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsb_common::Key;

    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "tsb-tree-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn durable_tree_recovers_unflushed_writes_from_the_wal() {
        let dir = TempDir::new("wal-recover");
        let cfg =
            TsbConfig::small_pages().with_split_policy(tsb_common::SplitPolicyKind::TimePreferring);
        let mut stamps = Vec::new();
        {
            let tree = TsbTree::open_durable(&dir.0, cfg.clone()).unwrap();
            assert!(tree.is_durable());
            for i in 0..120u64 {
                let ts = tree
                    .insert_shared(i % 12, format!("v{i}").into_bytes())
                    .unwrap();
                stamps.push((i % 12, ts, format!("v{i}").into_bytes()));
            }
            // No flush, no checkpoint: everything durable lives in the WAL.
            // Dropping the tree models a crash of the caches.
        }
        let tree = TsbTree::open_durable(&dir.0, cfg).unwrap();
        let cut = tree
            .last_durable_commit()
            .expect("recovered tree has a cut");
        assert!(cut >= stamps.last().unwrap().1, "every commit was logged");
        for (key, ts, value) in &stamps {
            assert_eq!(
                tree.get_as_of(&Key::from_u64(*key), *ts).unwrap().unwrap(),
                *value,
                "key {key} as of {ts}"
            );
        }
        tree.verify().unwrap();
    }

    #[test]
    fn durable_tree_survives_clean_checkpoint_and_reopen() {
        let dir = TempDir::new("wal-clean");
        let cfg = TsbConfig::small_pages();
        {
            let mut tree = TsbTree::open_durable(&dir.0, cfg.clone()).unwrap();
            for i in 0..60u64 {
                tree.insert(i, format!("x{i}").into_bytes()).unwrap();
            }
            tree.checkpoint().unwrap();
        }
        let tree = TsbTree::open_durable(&dir.0, cfg).unwrap();
        for i in 0..60u64 {
            assert_eq!(
                tree.get_current(&Key::from_u64(i)).unwrap().unwrap(),
                format!("x{i}").into_bytes()
            );
        }
        tree.verify().unwrap();
    }

    #[test]
    fn recovery_erases_in_flight_transactions() {
        let dir = TempDir::new("wal-txn");
        let cfg = TsbConfig::small_pages();
        {
            let mut tree = TsbTree::open_durable(&dir.0, cfg.clone()).unwrap();
            tree.insert(1u64, b"committed".to_vec()).unwrap();
            let txn = tree.begin_txn();
            tree.txn_insert(txn, 1u64, b"pending-update".to_vec())
                .unwrap();
            tree.txn_insert(txn, 99u64, b"pending-new".to_vec())
                .unwrap();
            // Crash with the transaction still open.
        }
        let tree = TsbTree::open_durable(&dir.0, cfg).unwrap();
        assert_eq!(
            tree.get_current(&Key::from_u64(1)).unwrap().unwrap(),
            b"committed".to_vec()
        );
        assert!(tree.get_current(&Key::from_u64(99)).unwrap().is_none());
        assert!(
            tree.pending_version(&Key::from_u64(1)).unwrap().is_none(),
            "recovery aborts in-flight transactions"
        );
        tree.verify().unwrap();
    }

    #[test]
    fn a_directory_with_nothing_durable_is_recreated() {
        let dir = TempDir::new("wal-fresh");
        let cfg = TsbConfig::small_pages();
        // Simulate a crash during the very first create: a WAL holding only
        // un-fenced page images (no commit, no checkpoint).
        {
            let stats = Arc::new(IoStats::new());
            let wal = Wal::create(dir.0.join(WAL_FILE), cfg.fsync_policy, stats).unwrap();
            wal.append(&WalRecord::PageImage {
                page: PageId(1),
                bytes: vec![1, 2, 3],
            })
            .unwrap();
        }
        let tree = TsbTree::open_durable(&dir.0, cfg).unwrap();
        assert!(tree.get_current(&Key::from_u64(1)).unwrap().is_none());
        tree.verify().unwrap();
    }

    #[test]
    fn create_open_round_trip() {
        let cfg = TsbConfig::small_pages();
        let stats = Arc::new(IoStats::new());
        let magnetic = Arc::new(MagneticStore::in_memory(cfg.page_size, Arc::clone(&stats)));
        let worm = Arc::new(WormStore::in_memory(
            cfg.worm_sector_size,
            Arc::clone(&stats),
        ));

        let root_before;
        {
            let mut tree =
                TsbTree::create(Arc::clone(&magnetic), Arc::clone(&worm), cfg.clone()).unwrap();
            tree.insert(1u64, b"one".to_vec()).unwrap();
            tree.insert(2u64, b"two".to_vec()).unwrap();
            root_before = tree.root_addr();
            tree.flush().unwrap();
        }
        {
            let tree =
                TsbTree::open(Arc::clone(&magnetic), Arc::clone(&worm), cfg.clone()).unwrap();
            assert_eq!(tree.root_addr(), root_before);
            assert_eq!(
                tree.get_current(&Key::from_u64(1)).unwrap().unwrap(),
                b"one".to_vec()
            );
            assert_eq!(
                tree.get_current(&Key::from_u64(2)).unwrap().unwrap(),
                b"two".to_vec()
            );
            // The clock resumes past previously issued timestamps.
            assert!(tree.now() > Timestamp(2));
        }
        // create() refuses a non-empty store.
        assert!(TsbTree::create(magnetic, worm, cfg).is_err());
    }

    #[test]
    fn create_rejects_mismatched_page_size() {
        let cfg = TsbConfig::small_pages();
        let stats = Arc::new(IoStats::new());
        let magnetic = Arc::new(MagneticStore::in_memory(4096, Arc::clone(&stats)));
        let worm = Arc::new(WormStore::in_memory(
            cfg.worm_sector_size,
            Arc::clone(&stats),
        ));
        assert!(TsbTree::create(magnetic, worm, cfg).is_err());
    }

    #[test]
    fn space_and_cost_reflect_the_stores() {
        let mut tree = TsbTree::new_in_memory(TsbConfig::small_pages()).unwrap();
        for i in 0..50u64 {
            tree.insert(i, vec![b'v'; 20]).unwrap();
        }
        let space = tree.space();
        assert!(space.magnetic_bytes > 0);
        assert!(tree.storage_cost() > 0.0);
    }

    #[test]
    fn warm_descents_perform_zero_decodes() {
        let cfg = TsbConfig::small_pages().with_node_cache_entries(4096);
        let mut tree = TsbTree::new_in_memory(cfg).unwrap();
        for i in 0..300u64 {
            tree.insert(i % 30, format!("v{i}").into_bytes()).unwrap();
        }
        // First pass warms the cache for every current path.
        for key in 0..30u64 {
            tree.get_current(&Key::from_u64(key)).unwrap();
        }
        let before = tree.io_stats().snapshot();
        for key in 0..30u64 {
            tree.get_current(&Key::from_u64(key)).unwrap();
        }
        let delta = tree.io_stats().snapshot().delta_since(&before);
        assert!(delta.node_cache_hits > 0, "warm reads must hit the cache");
        assert_eq!(delta.node_cache_misses, 0, "every node was already cached");
        assert_eq!(delta.node_decodes, 0, "cache hits perform no decode");
        assert!(
            delta.node_accesses_current >= 30,
            "logical accesses are still counted on hits"
        );
    }

    #[test]
    fn encode_is_deferred_until_flush() {
        // Large pages: no splits, so the root leaf absorbs every insert.
        let mut tree = TsbTree::new_in_memory(TsbConfig::default()).unwrap();
        let before = tree.io_stats().snapshot();
        for i in 0..20u64 {
            tree.insert(i, vec![b'x'; 16]).unwrap();
        }
        let delta = tree.io_stats().snapshot().delta_since(&before);
        assert_eq!(
            delta.node_encodes, 0,
            "20 rewrites of the hot leaf must not encode until flush"
        );
        tree.flush().unwrap();
        let delta = tree.io_stats().snapshot().delta_since(&before);
        assert_eq!(delta.node_encodes, 1, "flush encodes the leaf exactly once");
    }

    #[test]
    fn a_poisoned_tree_refuses_reads_and_writes() {
        let mut tree = TsbTree::new_in_memory(TsbConfig::small_pages()).unwrap();
        tree.insert(1u64, b"v".to_vec()).unwrap();
        // Simulate a structural mutation failing part-way through (only
        // reachable through file-backed I/O errors in production).
        tree.note_structural_write();
        tree.settle_structure_after(true);
        assert!(tree.get_current(&Key::from_u64(1)).is_err());
        assert!(tree.insert(2u64, b"w".to_vec()).is_err());
        // A clean failure outside a structural window does not poison.
        let tree = TsbTree::new_in_memory(TsbConfig::small_pages()).unwrap();
        tree.settle_structure_after(true);
        assert!(tree.get_current(&Key::from_u64(1)).is_ok());
    }

    #[test]
    fn dirty_residency_is_bounded_without_explicit_flush() {
        // KeyOnly: no WORM migration, so every node encode in this run can
        // only come from the dirty-overflow write-back. A long unflushed
        // insert run must not let deferred encodes pile up past the cache
        // capacity — the overflow path drains them as it goes.
        let cfg = TsbConfig::small_pages()
            .with_node_cache_entries(64)
            .with_split_policy(tsb_common::SplitPolicyKind::KeyOnly);
        let mut tree = TsbTree::new_in_memory(cfg).unwrap();
        let before = tree.io_stats().snapshot();
        for i in 0..2000u64 {
            tree.insert(i, vec![b'v'; 24]).unwrap();
        }
        let delta = tree.io_stats().snapshot().delta_since(&before);
        assert_eq!(delta.worm_appends, 0, "KeyOnly must not migrate");
        assert!(
            delta.node_encodes > 0,
            "dirty overflow write-back never fired across 2000 unflushed inserts"
        );
        tree.verify().unwrap();
        tree.verify_cache_coherence().unwrap();
        // Nothing was lost to the early write-backs.
        for i in (0..2000u64).step_by(97) {
            assert!(tree.get_current(&Key::from_u64(i)).unwrap().is_some());
        }
    }

    #[test]
    fn bypass_reads_and_cache_invalidation_agree_with_the_cache() {
        let cfg = TsbConfig::small_pages();
        let mut tree = TsbTree::new_in_memory(cfg).unwrap();
        for i in 0..300u64 {
            tree.insert(i % 25, format!("value-{i}").into_bytes())
                .unwrap();
        }
        tree.verify_cache_coherence().unwrap();

        // A bypass read of the root decodes the same node the cache holds.
        let via_cache = tree.read_node(tree.root_addr()).unwrap();
        let via_device = tree.read_node_bypass(tree.root_addr()).unwrap();
        assert_eq!(*via_cache, via_device);

        // Invalidation forces a re-decode, which still agrees.
        tree.invalidate_cached_node(tree.root_addr()).unwrap();
        let before = tree.io_stats().snapshot();
        let reread = tree.read_node(tree.root_addr()).unwrap();
        let delta = tree.io_stats().snapshot().delta_since(&before);
        assert_eq!(delta.node_cache_misses, 1);
        assert_eq!(*reread, via_device);

        // Dropping every cache cold-starts reads without losing anything.
        tree.drop_caches().unwrap();
        let before = tree.io_stats().snapshot();
        for key in 0..25u64 {
            assert!(tree.get_current(&Key::from_u64(key)).unwrap().is_some());
        }
        let delta = tree.io_stats().snapshot().delta_since(&before);
        assert!(delta.node_decodes > 0, "cold reads decode again");
        tree.verify_cache_coherence().unwrap();
    }

    #[test]
    fn persistence_survives_deferred_encodes() {
        let cfg = TsbConfig::small_pages();
        let stats = Arc::new(IoStats::new());
        let magnetic = Arc::new(MagneticStore::in_memory(cfg.page_size, Arc::clone(&stats)));
        let worm = Arc::new(WormStore::in_memory(
            cfg.worm_sector_size,
            Arc::clone(&stats),
        ));
        {
            let mut tree =
                TsbTree::create(Arc::clone(&magnetic), Arc::clone(&worm), cfg.clone()).unwrap();
            for i in 0..200u64 {
                tree.insert(i % 20, format!("gen-{i}").into_bytes())
                    .unwrap();
            }
            tree.flush().unwrap();
        }
        // A reopened tree (fresh, empty caches) sees every write.
        let tree = TsbTree::open(magnetic, worm, cfg).unwrap();
        for key in 0..20u64 {
            let got = tree.get_current(&Key::from_u64(key)).unwrap().unwrap();
            assert_eq!(got, format!("gen-{}", 180 + key).into_bytes());
        }
        tree.verify().unwrap();
    }
}
