//! The Time-Split B-tree proper: tree handle, node I/O over the two devices,
//! and the on-disk metadata page.
//!
//! Sub-modules implement the operations:
//!
//! * [`search`](crate::tree) — point lookups (current and as-of),
//! * [`scan`](crate::tree) — range scans, snapshots, version histories,
//! * [`insert`](crate::tree) — insertion, update, logical deletion, and the
//!   split/migration machinery.
//!
//! Transactions live in [`crate::txn`], secondary indexes in
//! [`crate::secondary`], statistics in [`crate::stats`], and the structural
//! verifier in [`crate::verify`].

pub mod history;
pub mod insert;
pub mod scan;
pub mod search;

use std::collections::HashSet;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use tsb_common::encode::{ByteReader, ByteWriter};
use tsb_common::{LogicalClock, Timestamp, TsbConfig, TsbError, TsbResult};
use tsb_storage::{
    BufferPool, CostModel, HistAddr, IoStats, MagneticStore, PageId, SpaceSnapshot, WormStore,
};

use crate::cache::NodeCache;
use crate::node::{DataNode, IndexNode, Node, NodeAddr};
use crate::txn::TxnTable;

const META_MAGIC: u64 = 0x5453_4254_5245_4531; // "TSBTREE1"

/// The Time-Split B-tree: a single integrated index over a multiversion
/// database whose current part lives on an erasable store and whose
/// historical part lives on a write-once store.
///
/// Reads (`get_*`, `scan_*`, snapshots, statistics, verification) take
/// `&self`; mutations (inserts, deletes, transactions) take `&mut self`.
///
/// Internally every mutation is implemented against `&self` with the tree's
/// mutable state behind locks and atomics, under the invariant that **at
/// most one mutation runs at a time**. The single-threaded API enforces
/// that invariant with `&mut self`; [`crate::ConcurrentTsb`] enforces it
/// with a writer lock and may run any number of readers concurrently (see
/// the module docs of [`crate::concurrent`]).
///
/// ```
/// use tsb_core::TsbTree;
/// use tsb_common::{Key, TsbConfig};
///
/// let mut tree = TsbTree::new_in_memory(TsbConfig::default()).unwrap();
/// let t1 = tree.insert("acct-1", b"balance=100".to_vec()).unwrap();
/// let t2 = tree.insert("acct-1", b"balance=250".to_vec()).unwrap();
/// assert_eq!(tree.get_current(&Key::from("acct-1")).unwrap().unwrap(), b"balance=250".to_vec());
/// // The old version is still reachable as of its own time (rollback database).
/// assert_eq!(tree.get_as_of(&Key::from("acct-1"), t1).unwrap().unwrap(), b"balance=100".to_vec());
/// assert!(t1 < t2);
/// ```
pub struct TsbTree {
    pub(crate) cfg: TsbConfig,
    pub(crate) magnetic: Arc<MagneticStore>,
    pub(crate) pool: BufferPool,
    pub(crate) cache: NodeCache,
    pub(crate) worm: Arc<WormStore>,
    pub(crate) stats: Arc<IoStats>,
    pub(crate) cost: CostModel,
    pub(crate) clock: LogicalClock,
    /// The root pointer, behind a short-latch lock: readers copy it out at
    /// the top of each descent, the (single) writer replaces it when the
    /// root splits.
    pub(crate) root: RwLock<NodeAddr>,
    pub(crate) meta_page: PageId,
    pub(crate) txns: Mutex<TxnTable>,
    /// Current data pages that blocked a local index time split (Figure 9)
    /// and should prefer a time split at their next opportunity (§3.5).
    pub(crate) marked_for_time_split: Mutex<HashSet<PageId>>,
    /// Set when a *structural* mutation (split / migration / root growth)
    /// failed part-way through: some nodes were rewritten, others were
    /// not, and no retry signal can make the tree consistent again. All
    /// subsequent reads and writes refuse with an error instead of
    /// silently serving the torn structure. Unreachable on in-memory
    /// stores (their writes cannot fail mid-split); it exists for the
    /// file-backed I/O error paths.
    pub(crate) poisoned: std::sync::atomic::AtomicBool,
    /// Seqlock-style structure epoch for optimistic concurrent readers.
    ///
    /// Even = the tree's multi-node invariants hold; odd = the single
    /// writer is mid-way through a structural change (split, migration,
    /// root growth) and a concurrent descent may observe a torn state. The
    /// writer bumps even→odd at the first structural write of a mutation
    /// ([`TsbTree::note_structural_write`]) and odd→even when the mutation
    /// has fully installed ([`TsbTree::settle_structure`]). Content-only
    /// leaf rewrites never bump it: replacing a leaf is atomic through the
    /// decoded-node cache, and multiversion reads at a pinned past
    /// timestamp are unaffected by new versions. Readers that need a
    /// consistent multi-node view (see [`crate::ConcurrentTsb`]) sample
    /// the epoch before and after and retry on change.
    pub(crate) structure_seq: AtomicU64,
}

impl std::fmt::Debug for TsbTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TsbTree")
            .field("root", &self.current_root())
            .field("page_size", &self.cfg.page_size)
            .field("split_policy", &self.cfg.split_policy)
            .finish()
    }
}

impl TsbTree {
    /// Creates a fresh tree over in-memory stores sized by `cfg`.
    pub fn new_in_memory(cfg: TsbConfig) -> TsbResult<Self> {
        cfg.validate()?;
        let stats = Arc::new(IoStats::new());
        let magnetic = Arc::new(MagneticStore::in_memory(cfg.page_size, Arc::clone(&stats)));
        let worm = Arc::new(WormStore::in_memory(
            cfg.worm_sector_size,
            Arc::clone(&stats),
        ));
        Self::create(magnetic, worm, cfg)
    }

    /// Creates a fresh tree over the provided stores. The magnetic store must
    /// be empty (use [`Self::open`] to reopen an existing tree).
    pub fn create(
        magnetic: Arc<MagneticStore>,
        worm: Arc<WormStore>,
        cfg: TsbConfig,
    ) -> TsbResult<Self> {
        cfg.validate()?;
        if magnetic.allocated_pages() != 0 {
            return Err(TsbError::config(
                "TsbTree::create requires an empty magnetic store; use TsbTree::open to reopen",
            ));
        }
        if magnetic.page_size() != cfg.page_size {
            return Err(TsbError::config(format!(
                "magnetic store page size {} does not match config page size {}",
                magnetic.page_size(),
                cfg.page_size
            )));
        }
        let stats = Arc::clone(magnetic.stats());
        let pool = BufferPool::new(Arc::clone(&magnetic), cfg.buffer_pool_pages);
        let cache = NodeCache::sharded(cfg.node_cache_entries);
        let cost = CostModel::new(cfg.cost);
        let clock = LogicalClock::new();

        let meta_page = magnetic.allocate()?;
        let root_page = magnetic.allocate()?;
        let root = NodeAddr::Current(root_page);

        let tree = TsbTree {
            cfg,
            magnetic,
            pool,
            cache,
            worm,
            stats,
            cost,
            clock,
            root: RwLock::new(root),
            meta_page,
            txns: Mutex::new(TxnTable::new()),
            marked_for_time_split: Mutex::new(HashSet::new()),
            poisoned: std::sync::atomic::AtomicBool::new(false),
            structure_seq: AtomicU64::new(0),
        };
        let root_node = DataNode::initial_root();
        tree.write_current(root_page, Node::Data(root_node))?;
        tree.write_meta()?;
        Ok(tree)
    }

    /// Reopens an existing tree, or creates a fresh one if the magnetic
    /// store is empty. The metadata page is the lowest allocated page id.
    pub fn open(
        magnetic: Arc<MagneticStore>,
        worm: Arc<WormStore>,
        cfg: TsbConfig,
    ) -> TsbResult<Self> {
        cfg.validate()?;
        if magnetic.allocated_pages() == 0 {
            return Self::create(magnetic, worm, cfg);
        }
        if magnetic.page_size() != cfg.page_size {
            return Err(TsbError::config(format!(
                "magnetic store page size {} does not match config page size {}",
                magnetic.page_size(),
                cfg.page_size
            )));
        }
        let meta_page = magnetic
            .allocated_page_ids()
            .into_iter()
            .min()
            .ok_or_else(|| TsbError::internal("non-empty store with no pages"))?;
        let meta_bytes = magnetic.read(meta_page)?;
        let (root, clock_next, next_txn) = Self::decode_meta(&meta_bytes)?;

        let stats = Arc::clone(magnetic.stats());
        let pool = BufferPool::new(Arc::clone(&magnetic), cfg.buffer_pool_pages);
        let cache = NodeCache::sharded(cfg.node_cache_entries);
        let cost = CostModel::new(cfg.cost);
        let clock = LogicalClock::starting_at(clock_next);

        Ok(TsbTree {
            cfg,
            magnetic,
            pool,
            cache,
            worm,
            stats,
            cost,
            clock,
            root: RwLock::new(root),
            meta_page,
            txns: Mutex::new(TxnTable::starting_at(next_txn)),
            marked_for_time_split: Mutex::new(HashSet::new()),
            poisoned: std::sync::atomic::AtomicBool::new(false),
            structure_seq: AtomicU64::new(0),
        })
    }

    /// The tree configuration.
    pub fn config(&self) -> &TsbConfig {
        &self.cfg
    }

    /// The shared I/O statistics counters.
    pub fn io_stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// The device cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The current logical time (the timestamp the next commit would get).
    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// The root node address.
    pub fn root_addr(&self) -> NodeAddr {
        self.current_root()
    }

    /// Copies the root pointer out of its latch (a short shared latch, held
    /// only for the copy).
    pub(crate) fn current_root(&self) -> NodeAddr {
        *self.root.read()
    }

    // ----- structure epoch (single-writer seqlock) ------------------------

    /// The current structure epoch (even = stable, odd = a structural
    /// change is in flight). Readers needing a consistent multi-node view
    /// sample this before and after their descent and retry on change.
    pub(crate) fn structure_epoch(&self) -> u64 {
        self.structure_seq.load(Ordering::Acquire)
    }

    /// Marks the beginning of a structural change (first split / migration /
    /// root replacement of the current mutation). Idempotent within one
    /// mutation: only the even→odd transition stores. Must only be called
    /// by the single writer.
    pub(crate) fn note_structural_write(&self) {
        let seq = self.structure_seq.load(Ordering::Relaxed);
        if seq.is_multiple_of(2) {
            self.structure_seq.store(seq + 1, Ordering::Release);
        }
    }

    /// Marks the end of the current mutation: if a structural change was
    /// noted, the epoch settles back to even. Must only be called by the
    /// single writer.
    pub(crate) fn settle_structure(&self) {
        let seq = self.structure_seq.load(Ordering::Relaxed);
        if seq % 2 == 1 {
            self.structure_seq.store(seq + 1, Ordering::Release);
        }
    }

    /// Ends a mutation that may have performed structural writes. If the
    /// mutation `failed` while the epoch was odd — i.e. after at least one
    /// structural write landed but before the change fully installed — the
    /// tree is permanently poisoned: some nodes were rewritten and others
    /// were not, and neither the writer nor a retrying reader can
    /// reconstruct a consistent view. All subsequent operations then
    /// refuse (see [`Self::check_not_poisoned`]) instead of silently
    /// serving the torn structure.
    pub(crate) fn settle_structure_after(&self, failed: bool) {
        if failed && self.structure_seq.load(Ordering::Relaxed) % 2 == 1 {
            self.poisoned.store(true, Ordering::Release);
        }
        self.settle_structure();
    }

    /// Errors if a previous structural mutation failed part-way through.
    pub(crate) fn check_not_poisoned(&self) -> TsbResult<()> {
        if self.poisoned.load(Ordering::Acquire) {
            return Err(TsbError::invariant(
                "the tree is poisoned: a structural change (split/migration) failed \
                 part-way through and the on-device structure is torn",
            ));
        }
        Ok(())
    }

    /// Space currently occupied on the two devices (the paper's `SpaceM` and
    /// `SpaceO`).
    pub fn space(&self) -> SpaceSnapshot {
        SpaceSnapshot {
            magnetic_bytes: self.magnetic.device_bytes(),
            worm_bytes: self.worm.device_bytes(),
            magnetic_payload_bytes: self.magnetic.payload_bytes(),
            worm_payload_bytes: self.worm.payload_bytes(),
        }
    }

    /// The storage cost `CS = SpaceM·CM + SpaceO·CO` of the current state.
    pub fn storage_cost(&self) -> f64 {
        self.cost.storage_cost(&self.space())
    }

    /// Flushes dirty nodes, dirty pages, the metadata page, and both
    /// devices.
    pub fn flush(&mut self) -> TsbResult<()> {
        self.flush_shared()
    }

    /// [`Self::flush`] against `&self`, for callers that serialize writers
    /// externally ([`crate::ConcurrentTsb`]).
    pub(crate) fn flush_shared(&self) -> TsbResult<()> {
        self.write_meta()?;
        self.flush_node_cache()?;
        self.pool.flush()?;
        self.magnetic.sync()?;
        self.worm.sync()?;
        Ok(())
    }

    // ----- node I/O -------------------------------------------------------

    /// Usable bytes for an encoded node on a magnetic page.
    pub(crate) fn page_capacity(&self) -> usize {
        self.magnetic.capacity()
    }

    /// The size at which an insertion triggers a split.
    pub(crate) fn split_threshold(&self) -> usize {
        (self.page_capacity() as f64 * self.cfg.split_fill_threshold) as usize
    }

    /// Reads the node at `addr`, recording a logical node access. Served
    /// from the decoded-node cache when possible — a hit performs no decode
    /// and no page-image copy, just a shared handle.
    pub(crate) fn read_node(&self, addr: NodeAddr) -> TsbResult<Arc<Node>> {
        self.check_not_poisoned()?;
        match addr {
            NodeAddr::Current(_) => self.stats.record_current_node_access(),
            NodeAddr::Historical(_) => self.stats.record_historical_node_access(),
        }
        let fill_stamp = match self.cache.begin_fill(addr) {
            Ok(node) => {
                self.stats.record_node_cache_hit();
                return Ok(node);
            }
            Err(stamp) => stamp,
        };
        self.stats.record_node_cache_miss();
        let decoded = Arc::new(self.decode_node_at(addr)?);
        // Caching a clean node is pure in-memory bookkeeping (dirty entries
        // are pinned against eviction), so the read path performs no page
        // I/O beyond the decode above. The fill is stamp-validated: if the
        // writer changed this cache shard's contents while we were
        // decoding, our decode may be stale and is returned *uncached*
        // (still a legal answer for a read that began before the write
        // installed); a resident entry always wins.
        Ok(self.cache.complete_fill(addr, decoded, fill_stamp))
    }

    /// Decodes the node at `addr` from its device image (buffer pool for
    /// current pages, WORM store for historical nodes), bypassing the
    /// decoded-node cache.
    fn decode_node_at(&self, addr: NodeAddr) -> TsbResult<Node> {
        self.stats.record_node_decode();
        match addr {
            NodeAddr::Current(page) => {
                let bytes = self.pool.get(page)?;
                Node::decode(&bytes)
            }
            NodeAddr::Historical(hist) => {
                let bytes = self.worm.read(hist)?;
                Node::decode(&bytes)
            }
        }
    }

    /// Reads and decodes the node at `addr` directly from the devices. Any
    /// pending dirty state *for that address* is flushed first so its
    /// device image is the newest one (other deferred encodes stay
    /// deferred). Diagnostic surface used to check cache coherence.
    pub fn read_node_bypass(&self, addr: NodeAddr) -> TsbResult<Node> {
        self.flush_dirty_node_at(addr)?;
        self.decode_node_at(addr)
    }

    /// Reads a node expected to be a data node.
    pub(crate) fn read_data(&self, addr: NodeAddr) -> TsbResult<DataRef> {
        let node = self.read_node(addr)?;
        match &*node {
            Node::Data(_) => Ok(DataRef(node)),
            Node::Index(_) => Err(TsbError::corruption(format!(
                "expected a data node at {addr}, found an index node"
            ))),
        }
    }

    /// Reads a node expected to be an index node.
    #[allow(dead_code)] // kept for symmetry with `read_data`; used by debugging tools
    pub(crate) fn read_index(&self, addr: NodeAddr) -> TsbResult<IndexRef> {
        let node = self.read_node(addr)?;
        match &*node {
            Node::Index(_) => Ok(IndexRef(node)),
            Node::Data(_) => Err(TsbError::corruption(format!(
                "expected an index node at {addr}, found a data node"
            ))),
        }
    }

    /// Installs the newest version of a current node. The node goes into
    /// the decoded-node cache marked dirty; the encode into its page image
    /// is deferred until the entry is evicted or the tree flushes, so a hot
    /// leaf rewritten many times between flushes encodes once.
    pub(crate) fn write_current(&self, page: PageId, node: Node) -> TsbResult<()> {
        let size = node.encoded_size();
        if size > self.page_capacity() {
            return Err(TsbError::internal(format!(
                "attempted to write a {}-byte node into a {}-byte page; splitting should have prevented this",
                size,
                self.page_capacity()
            )));
        }
        self.cache.insert_dirty(page, Arc::new(node));
        // Bound the dirty residency: when this page's cache shard holds
        // more deferred encodes than its capacity, write the least recently
        // written one back now (writer context, so this is race-free). The
        // victim stays resident and is marked clean only after its image is
        // in the pool — a concurrent reader therefore never sees a gap.
        if let Some((victim_page, victim_node)) =
            self.cache.dirty_overflow_victim(NodeAddr::Current(page))
        {
            self.write_back_dirty(victim_page, &victim_node)?;
        }
        Ok(())
    }

    /// Encodes and writes one dirty cached node into its page image, then
    /// confirms the write-back so the cache unpins the entry. The entry
    /// stays dirty — pinned against eviction — until its image is in the
    /// pool, so a concurrent reader can never evict-then-refill it from a
    /// stale page image mid-flush.
    fn write_back_dirty(&self, page: PageId, node: &Node) -> TsbResult<()> {
        self.stats.record_node_encode();
        self.pool.put(page, node.encode())?;
        self.cache.mark_clean(NodeAddr::Current(page));
        Ok(())
    }

    /// Encodes every dirty cached node into its page image (ascending
    /// `PageId` order). The entries stay cached, now clean. Public so
    /// measurement harnesses can draw a line between build-phase and
    /// query-phase encode/write traffic without a full device flush.
    pub fn flush_node_cache(&self) -> TsbResult<()> {
        for (page, node) in self.cache.dirty_entries() {
            self.write_back_dirty(page, &node)?;
        }
        Ok(())
    }

    /// Encodes one address's dirty cached node into its page image, if it
    /// has one; every other deferred encode stays deferred.
    fn flush_dirty_node_at(&self, addr: NodeAddr) -> TsbResult<()> {
        match self.cache.dirty_at(addr) {
            Some((page, node)) => self.write_back_dirty(page, &node),
            None => Ok(()),
        }
    }

    /// Consolidates a node and appends it to the historical store,
    /// returning its address (§3.4: the historical node is written once, at
    /// whatever length it has). The node is retained in the decoded-node
    /// cache — freshly migrated history is the history most likely to be
    /// queried.
    pub(crate) fn append_historical(&self, node: Node) -> TsbResult<HistAddr> {
        self.stats.record_node_encode();
        let addr = self.worm.append(&node.encode())?;
        self.cache
            .insert_clean(NodeAddr::Historical(addr), Arc::new(node));
        Ok(addr)
    }

    /// Drops every cached decoded node and page frame, writing dirty state
    /// to the devices first. Subsequent reads re-read pages from the device
    /// *and* re-decode them — the fully-cold baseline.
    pub fn drop_caches(&self) -> TsbResult<()> {
        self.drop_node_cache()?;
        self.pool.flush_and_clear()
    }

    /// Drops only the decoded-node cache (after flushing its dirty state),
    /// leaving the buffer pool warm. Subsequent reads pay one `Node::decode`
    /// per access but no device I/O — exactly the engine's behaviour before
    /// the decoded-node cache existed, which makes this the baseline for
    /// measuring what the cache itself buys.
    pub fn drop_node_cache(&self) -> TsbResult<()> {
        self.flush_node_cache()?;
        self.cache.clear();
        Ok(())
    }

    /// Invalidates the decoded-node cache entry for `addr`, if any. That
    /// entry's dirty state is flushed first, so no write is lost — and
    /// *only* that entry's, so invalidating one node does not act as a
    /// full flush; the next read re-decodes the device image.
    pub fn invalidate_cached_node(&self, addr: NodeAddr) -> TsbResult<()> {
        self.flush_dirty_node_at(addr)?;
        self.cache.discard(addr);
        Ok(())
    }

    /// Walks every node reachable from the root and checks that the cached
    /// copy equals what decoding the device image produces (pending dirty
    /// nodes are flushed first). Returns the first divergence found.
    pub fn verify_cache_coherence(&self) -> TsbResult<()> {
        self.flush_node_cache()?;
        let mut visited: HashSet<NodeAddr> = HashSet::new();
        self.check_coherence(self.current_root(), &mut visited)
    }

    fn check_coherence(&self, addr: NodeAddr, visited: &mut HashSet<NodeAddr>) -> TsbResult<()> {
        if !visited.insert(addr) {
            return Ok(());
        }
        let cached = self.read_node(addr)?;
        let direct = self.decode_node_at(addr)?;
        if *cached != direct {
            return Err(TsbError::invariant(format!(
                "decoded-node cache diverges from the device image at {addr}"
            )));
        }
        if let Node::Index(index) = &*cached {
            for entry in index.entries() {
                self.check_coherence(entry.child, visited)?;
            }
        }
        Ok(())
    }

    /// Allocates a fresh current page.
    pub(crate) fn allocate_page(&self) -> TsbResult<PageId> {
        self.magnetic.allocate()
    }

    // ----- metadata -------------------------------------------------------

    pub(crate) fn write_meta(&self) -> TsbResult<()> {
        let mut w = ByteWriter::new();
        w.put_u64(META_MAGIC);
        self.current_root().encode(&mut w);
        w.put_u64(self.clock.now().value());
        w.put_u64(self.txns.lock().next_id_value());
        self.pool.put(self.meta_page, w.into_vec())
    }

    fn decode_meta(bytes: &[u8]) -> TsbResult<(NodeAddr, Timestamp, u64)> {
        let mut r = ByteReader::new(bytes);
        if r.get_u64()? != META_MAGIC {
            return Err(TsbError::corruption("bad TSB-tree metadata magic"));
        }
        let root = NodeAddr::decode(&mut r)?;
        let clock_next = Timestamp(r.get_u64()?);
        let next_txn = r.get_u64()?;
        Ok((root, clock_next, next_txn))
    }

    /// Updates the root pointer and persists the metadata page. A root
    /// replacement is a structural change, so the caller (the insert path)
    /// must have noted the structure epoch as in-flight.
    pub(crate) fn set_root(&self, root: NodeAddr) -> TsbResult<()> {
        *self.root.write() = root;
        self.write_meta()
    }
}

/// A shared read handle to a cached data node. Dereferences to
/// [`DataNode`]; cloning the target (`DataNode::clone(&r)`) yields an owned
/// node for mutation paths.
pub(crate) struct DataRef(pub(crate) Arc<Node>);

impl Deref for DataRef {
    type Target = DataNode;
    fn deref(&self) -> &DataNode {
        match &*self.0 {
            Node::Data(n) => n,
            Node::Index(_) => unreachable!("DataRef only wraps data nodes"),
        }
    }
}

/// A shared read handle to a cached index node.
pub(crate) struct IndexRef(Arc<Node>);

impl Deref for IndexRef {
    type Target = IndexNode;
    fn deref(&self) -> &IndexNode {
        match &*self.0 {
            Node::Index(n) => n,
            Node::Data(_) => unreachable!("IndexRef only wraps index nodes"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsb_common::Key;

    #[test]
    fn create_open_round_trip() {
        let cfg = TsbConfig::small_pages();
        let stats = Arc::new(IoStats::new());
        let magnetic = Arc::new(MagneticStore::in_memory(cfg.page_size, Arc::clone(&stats)));
        let worm = Arc::new(WormStore::in_memory(
            cfg.worm_sector_size,
            Arc::clone(&stats),
        ));

        let root_before;
        {
            let mut tree =
                TsbTree::create(Arc::clone(&magnetic), Arc::clone(&worm), cfg.clone()).unwrap();
            tree.insert(1u64, b"one".to_vec()).unwrap();
            tree.insert(2u64, b"two".to_vec()).unwrap();
            root_before = tree.root_addr();
            tree.flush().unwrap();
        }
        {
            let tree =
                TsbTree::open(Arc::clone(&magnetic), Arc::clone(&worm), cfg.clone()).unwrap();
            assert_eq!(tree.root_addr(), root_before);
            assert_eq!(
                tree.get_current(&Key::from_u64(1)).unwrap().unwrap(),
                b"one".to_vec()
            );
            assert_eq!(
                tree.get_current(&Key::from_u64(2)).unwrap().unwrap(),
                b"two".to_vec()
            );
            // The clock resumes past previously issued timestamps.
            assert!(tree.now() > Timestamp(2));
        }
        // create() refuses a non-empty store.
        assert!(TsbTree::create(magnetic, worm, cfg).is_err());
    }

    #[test]
    fn create_rejects_mismatched_page_size() {
        let cfg = TsbConfig::small_pages();
        let stats = Arc::new(IoStats::new());
        let magnetic = Arc::new(MagneticStore::in_memory(4096, Arc::clone(&stats)));
        let worm = Arc::new(WormStore::in_memory(
            cfg.worm_sector_size,
            Arc::clone(&stats),
        ));
        assert!(TsbTree::create(magnetic, worm, cfg).is_err());
    }

    #[test]
    fn space_and_cost_reflect_the_stores() {
        let mut tree = TsbTree::new_in_memory(TsbConfig::small_pages()).unwrap();
        for i in 0..50u64 {
            tree.insert(i, vec![b'v'; 20]).unwrap();
        }
        let space = tree.space();
        assert!(space.magnetic_bytes > 0);
        assert!(tree.storage_cost() > 0.0);
    }

    #[test]
    fn warm_descents_perform_zero_decodes() {
        let cfg = TsbConfig::small_pages().with_node_cache_entries(4096);
        let mut tree = TsbTree::new_in_memory(cfg).unwrap();
        for i in 0..300u64 {
            tree.insert(i % 30, format!("v{i}").into_bytes()).unwrap();
        }
        // First pass warms the cache for every current path.
        for key in 0..30u64 {
            tree.get_current(&Key::from_u64(key)).unwrap();
        }
        let before = tree.io_stats().snapshot();
        for key in 0..30u64 {
            tree.get_current(&Key::from_u64(key)).unwrap();
        }
        let delta = tree.io_stats().snapshot().delta_since(&before);
        assert!(delta.node_cache_hits > 0, "warm reads must hit the cache");
        assert_eq!(delta.node_cache_misses, 0, "every node was already cached");
        assert_eq!(delta.node_decodes, 0, "cache hits perform no decode");
        assert!(
            delta.node_accesses_current >= 30,
            "logical accesses are still counted on hits"
        );
    }

    #[test]
    fn encode_is_deferred_until_flush() {
        // Large pages: no splits, so the root leaf absorbs every insert.
        let mut tree = TsbTree::new_in_memory(TsbConfig::default()).unwrap();
        let before = tree.io_stats().snapshot();
        for i in 0..20u64 {
            tree.insert(i, vec![b'x'; 16]).unwrap();
        }
        let delta = tree.io_stats().snapshot().delta_since(&before);
        assert_eq!(
            delta.node_encodes, 0,
            "20 rewrites of the hot leaf must not encode until flush"
        );
        tree.flush().unwrap();
        let delta = tree.io_stats().snapshot().delta_since(&before);
        assert_eq!(delta.node_encodes, 1, "flush encodes the leaf exactly once");
    }

    #[test]
    fn a_poisoned_tree_refuses_reads_and_writes() {
        let mut tree = TsbTree::new_in_memory(TsbConfig::small_pages()).unwrap();
        tree.insert(1u64, b"v".to_vec()).unwrap();
        // Simulate a structural mutation failing part-way through (only
        // reachable through file-backed I/O errors in production).
        tree.note_structural_write();
        tree.settle_structure_after(true);
        assert!(tree.get_current(&Key::from_u64(1)).is_err());
        assert!(tree.insert(2u64, b"w".to_vec()).is_err());
        // A clean failure outside a structural window does not poison.
        let tree = TsbTree::new_in_memory(TsbConfig::small_pages()).unwrap();
        tree.settle_structure_after(true);
        assert!(tree.get_current(&Key::from_u64(1)).is_ok());
    }

    #[test]
    fn dirty_residency_is_bounded_without_explicit_flush() {
        // KeyOnly: no WORM migration, so every node encode in this run can
        // only come from the dirty-overflow write-back. A long unflushed
        // insert run must not let deferred encodes pile up past the cache
        // capacity — the overflow path drains them as it goes.
        let cfg = TsbConfig::small_pages()
            .with_node_cache_entries(64)
            .with_split_policy(tsb_common::SplitPolicyKind::KeyOnly);
        let mut tree = TsbTree::new_in_memory(cfg).unwrap();
        let before = tree.io_stats().snapshot();
        for i in 0..2000u64 {
            tree.insert(i, vec![b'v'; 24]).unwrap();
        }
        let delta = tree.io_stats().snapshot().delta_since(&before);
        assert_eq!(delta.worm_appends, 0, "KeyOnly must not migrate");
        assert!(
            delta.node_encodes > 0,
            "dirty overflow write-back never fired across 2000 unflushed inserts"
        );
        tree.verify().unwrap();
        tree.verify_cache_coherence().unwrap();
        // Nothing was lost to the early write-backs.
        for i in (0..2000u64).step_by(97) {
            assert!(tree.get_current(&Key::from_u64(i)).unwrap().is_some());
        }
    }

    #[test]
    fn bypass_reads_and_cache_invalidation_agree_with_the_cache() {
        let cfg = TsbConfig::small_pages();
        let mut tree = TsbTree::new_in_memory(cfg).unwrap();
        for i in 0..300u64 {
            tree.insert(i % 25, format!("value-{i}").into_bytes())
                .unwrap();
        }
        tree.verify_cache_coherence().unwrap();

        // A bypass read of the root decodes the same node the cache holds.
        let via_cache = tree.read_node(tree.root_addr()).unwrap();
        let via_device = tree.read_node_bypass(tree.root_addr()).unwrap();
        assert_eq!(*via_cache, via_device);

        // Invalidation forces a re-decode, which still agrees.
        tree.invalidate_cached_node(tree.root_addr()).unwrap();
        let before = tree.io_stats().snapshot();
        let reread = tree.read_node(tree.root_addr()).unwrap();
        let delta = tree.io_stats().snapshot().delta_since(&before);
        assert_eq!(delta.node_cache_misses, 1);
        assert_eq!(*reread, via_device);

        // Dropping every cache cold-starts reads without losing anything.
        tree.drop_caches().unwrap();
        let before = tree.io_stats().snapshot();
        for key in 0..25u64 {
            assert!(tree.get_current(&Key::from_u64(key)).unwrap().is_some());
        }
        let delta = tree.io_stats().snapshot().delta_since(&before);
        assert!(delta.node_decodes > 0, "cold reads decode again");
        tree.verify_cache_coherence().unwrap();
    }

    #[test]
    fn persistence_survives_deferred_encodes() {
        let cfg = TsbConfig::small_pages();
        let stats = Arc::new(IoStats::new());
        let magnetic = Arc::new(MagneticStore::in_memory(cfg.page_size, Arc::clone(&stats)));
        let worm = Arc::new(WormStore::in_memory(
            cfg.worm_sector_size,
            Arc::clone(&stats),
        ));
        {
            let mut tree =
                TsbTree::create(Arc::clone(&magnetic), Arc::clone(&worm), cfg.clone()).unwrap();
            for i in 0..200u64 {
                tree.insert(i % 20, format!("gen-{i}").into_bytes())
                    .unwrap();
            }
            tree.flush().unwrap();
        }
        // A reopened tree (fresh, empty caches) sees every write.
        let tree = TsbTree::open(magnetic, worm, cfg).unwrap();
        for key in 0..20u64 {
            let got = tree.get_current(&Key::from_u64(key)).unwrap().unwrap();
            assert_eq!(got, format!("gen-{}", 180 + key).into_bytes());
        }
        tree.verify().unwrap();
    }
}
