//! Range scans, database snapshots, and per-record version histories
//! (§2.5's temporal queries: "find the state of the database as it was at
//! any given time in the past", "find the records with a given key valid at
//! a given point in time", "find all past versions of a given record").

use std::collections::{BTreeMap, HashSet};

use tsb_common::{Key, KeyRange, Timestamp, TsbResult, Version};

use crate::node::{Node, NodeAddr};

use super::TsbTree;

impl TsbTree {
    /// Returns every `(key, value)` pair in `range` as of time `ts`, in key
    /// order. Tombstoned keys are omitted. This answers the paper's
    /// "snapshot of the database at any given past time" restricted to a key
    /// range.
    pub fn scan_as_of(&self, range: &KeyRange, ts: Timestamp) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        let mut out: BTreeMap<Key, Vec<u8>> = BTreeMap::new();
        let mut visited: HashSet<NodeAddr> = HashSet::new();
        self.scan_node(self.current_root(), range, ts, &mut visited, &mut out)?;
        Ok(out.into_iter().collect())
    }

    fn scan_node(
        &self,
        addr: NodeAddr,
        range: &KeyRange,
        ts: Timestamp,
        visited: &mut HashSet<NodeAddr>,
        out: &mut BTreeMap<Key, Vec<u8>>,
    ) -> TsbResult<()> {
        if !visited.insert(addr) {
            return Ok(());
        }
        match &*self.read_node(addr)? {
            Node::Data(data) => {
                // Only keys inside both the query range and the node's own
                // key range are collected; at a fixed time the key ranges of
                // the leaves containing that time are disjoint, so no leaf
                // can contribute a stale answer for a key it does not own.
                //
                // Entries are sorted by (key, version order): binary-search
                // to the query's start, then walk each key's contiguous
                // version group once — no per-leaf key-list allocation, no
                // per-key re-search of the whole node.
                let entries = data.entries();
                let mut i = entries.partition_point(|e| e.key < range.lo);
                while i < entries.len() {
                    let key = &entries[i].key;
                    if !range.hi.is_above(key) {
                        break;
                    }
                    let mut end = i + 1;
                    while end < entries.len() && entries[end].key == *key {
                        end += 1;
                    }
                    if data.key_range.contains(key) {
                        // The governing version: newest commit at or below
                        // `ts` within this key's group.
                        let governing = entries[i..end]
                            .iter()
                            .rfind(|v| v.commit_time().map(|t| t <= ts).unwrap_or(false));
                        if let Some(v) = governing {
                            if !v.is_tombstone() {
                                if let Some(value) = &v.value {
                                    out.insert(key.clone(), value.clone());
                                }
                            }
                        }
                    }
                    i = end;
                }
            }
            Node::Index(index) => {
                // Current children: one binary-searched contiguous run
                // instead of a filter over every entry. The descent into an
                // adjacent leaf therefore reuses this node's routing work —
                // no per-key-group re-descent, no historical-region scan at
                // all for a current-time query.
                for entry in index.current_children_overlapping(range) {
                    if entry.time_range.contains(ts) {
                        self.scan_node(entry.child, range, ts, visited, out)?;
                    }
                }
                // Historical children can only govern past-time queries:
                // their closed time ranges never contain MAX.
                if ts != Timestamp::MAX {
                    for entry in index.historical_region() {
                        if entry.key_range.overlaps(range) && entry.time_range.contains(ts) {
                            self.scan_node(entry.child, range, ts, visited, out)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// A full-database snapshot as of `ts`: every key alive at that time with
    /// its governing value, in key order.
    pub fn snapshot_at(&self, ts: Timestamp) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        self.scan_as_of(&KeyRange::full(), ts)
    }

    /// Every key currently alive with its newest committed value, in key
    /// order.
    pub fn scan_current(&self, range: &KeyRange) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        // "Now" routes to the current nodes; any timestamp at or past the
        // newest commit works, and MAX is simplest.
        self.scan_as_of(range, Timestamp::MAX)
    }

    /// Number of keys alive in `range` as of `ts`.
    pub fn count_as_of(&self, range: &KeyRange, ts: Timestamp) -> TsbResult<usize> {
        Ok(self.scan_as_of(range, ts)?.len())
    }

    /// Every committed version of `key`, oldest first, tombstones included —
    /// the paper's "find all past versions of a given record". Redundant
    /// copies created by time splits are reported once.
    pub fn versions(&self, key: &Key) -> TsbResult<Vec<Version>> {
        let mut leaves: Vec<NodeAddr> = Vec::new();
        let mut visited: HashSet<NodeAddr> = HashSet::new();
        self.collect_leaves_for_key(self.current_root(), key, &mut visited, &mut leaves)?;

        let mut seen: HashSet<Timestamp> = HashSet::new();
        let mut versions: Vec<Version> = Vec::new();
        for leaf in leaves {
            let data = self.read_data(leaf)?;
            for v in data.versions_of(key) {
                if let Some(ts) = v.commit_time() {
                    if seen.insert(ts) {
                        versions.push(v.clone());
                    }
                }
            }
        }
        versions.sort_by_key(|v| v.commit_time().unwrap_or(Timestamp::MAX));
        Ok(versions)
    }

    fn collect_leaves_for_key(
        &self,
        addr: NodeAddr,
        key: &Key,
        visited: &mut HashSet<NodeAddr>,
        leaves: &mut Vec<NodeAddr>,
    ) -> TsbResult<()> {
        if !visited.insert(addr) {
            return Ok(());
        }
        match &*self.read_node(addr)? {
            Node::Data(_) => leaves.push(addr),
            Node::Index(index) => {
                for entry in index.children_containing_key(key) {
                    self.collect_leaves_for_key(entry.child, key, visited, leaves)?;
                }
            }
        }
        Ok(())
    }

    /// The number of distinct keys ever written (alive or deleted), obtained
    /// by walking every leaf. Intended for statistics and tests, not hot
    /// paths.
    pub fn distinct_key_count(&self) -> TsbResult<usize> {
        let mut keys: HashSet<Key> = HashSet::new();
        let mut visited: HashSet<NodeAddr> = HashSet::new();
        self.collect_all_keys(self.current_root(), &mut visited, &mut keys)?;
        Ok(keys.len())
    }

    fn collect_all_keys(
        &self,
        addr: NodeAddr,
        visited: &mut HashSet<NodeAddr>,
        keys: &mut HashSet<Key>,
    ) -> TsbResult<()> {
        if !visited.insert(addr) {
            return Ok(());
        }
        match &*self.read_node(addr)? {
            Node::Data(data) => {
                for k in data.distinct_keys() {
                    keys.insert(k);
                }
            }
            Node::Index(index) => {
                for entry in index.entries() {
                    self.collect_all_keys(entry.child, visited, keys)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsb_common::{SplitPolicyKind, TsbConfig};

    fn build_tree(policy: SplitPolicyKind) -> (TsbTree, Vec<(u64, Timestamp, String)>) {
        let cfg = TsbConfig::small_pages().with_split_policy(policy);
        let mut tree = crate::TsbOptions::in_memory()
            .config(cfg)
            .open_tree()
            .unwrap();
        let mut log = Vec::new();
        for i in 0..240u64 {
            let key = i % 24;
            let value = format!("k{key}-gen{}", i / 24);
            let ts = tree.insert(key, value.clone().into_bytes()).unwrap();
            log.push((key, ts, value));
        }
        (tree, log)
    }

    #[test]
    fn snapshot_reconstructs_past_states() {
        let (tree, log) = build_tree(SplitPolicyKind::default());
        // Snapshot at the midpoint of history: keys written at or before the
        // midpoint are present with their then-current values.
        let mid_idx = log.len() / 2;
        let mid_ts = log[mid_idx].1;
        let snap = tree.snapshot_at(mid_ts).unwrap();
        let mut expected: BTreeMap<u64, String> = BTreeMap::new();
        for (key, ts, value) in &log {
            if *ts <= mid_ts {
                expected.insert(*key, value.clone());
            }
        }
        assert_eq!(snap.len(), expected.len());
        for (k, v) in snap {
            let key = k.as_u64().unwrap();
            assert_eq!(v, expected[&key].clone().into_bytes());
        }
    }

    #[test]
    fn range_scans_respect_bounds_and_time() {
        let (tree, _) = build_tree(SplitPolicyKind::TimePreferring);
        let range = KeyRange::bounded(Key::from_u64(5), Key::from_u64(15));
        let rows = tree.scan_current(&range).unwrap();
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().all(|(k, _)| range.contains(k)));
        // Keys come back sorted.
        let keys: Vec<u64> = rows.iter().map(|(k, _)| k.as_u64().unwrap()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        // Before anything was written the snapshot is empty.
        assert!(tree.snapshot_at(Timestamp::ZERO).unwrap().is_empty());
    }

    #[test]
    fn version_history_is_complete_and_deduplicated() {
        let (tree, log) = build_tree(SplitPolicyKind::TimePreferring);
        for key in 0..24u64 {
            let expected: Vec<_> = log.iter().filter(|(k, _, _)| *k == key).collect();
            let versions = tree.versions(&Key::from_u64(key)).unwrap();
            assert_eq!(versions.len(), expected.len(), "key {key}");
            // Oldest first, and values match the insertion log.
            for (v, (_, ts, value)) in versions.iter().zip(expected.iter()) {
                assert_eq!(v.commit_time().unwrap(), *ts);
                assert_eq!(v.value.as_ref().unwrap(), &value.clone().into_bytes());
            }
        }
        assert!(tree.versions(&Key::from_u64(999)).unwrap().is_empty());
    }

    #[test]
    fn deleted_keys_vanish_from_snapshots_but_keep_history() {
        let cfg = TsbConfig::small_pages();
        let mut tree = crate::TsbOptions::in_memory()
            .config(cfg)
            .open_tree()
            .unwrap();
        for i in 0..10u64 {
            tree.insert(i, format!("v{i}").into_bytes()).unwrap();
        }
        let before_delete = tree.now();
        tree.delete(3u64).unwrap();
        let current = tree.scan_current(&KeyRange::full()).unwrap();
        assert_eq!(current.len(), 9);
        assert!(!current.iter().any(|(k, _)| k.as_u64() == Some(3)));
        // The snapshot before the delete still has it.
        let past = tree.snapshot_at(before_delete.prev()).unwrap();
        assert_eq!(past.len(), 10);
        // And the tombstone shows up in the version history.
        let history = tree.versions(&Key::from_u64(3)).unwrap();
        assert_eq!(history.len(), 2);
        assert!(history.last().unwrap().is_tombstone());
        assert_eq!(tree.distinct_key_count().unwrap(), 10);
    }

    #[test]
    fn count_as_of_tracks_database_growth() {
        let (tree, log) = build_tree(SplitPolicyKind::default());
        let quarter = log[log.len() / 4].1;
        let half = log[log.len() / 2].1;
        let c1 = tree.count_as_of(&KeyRange::full(), quarter).unwrap();
        let c2 = tree.count_as_of(&KeyRange::full(), half).unwrap();
        let c3 = tree.count_as_of(&KeyRange::full(), Timestamp::MAX).unwrap();
        assert!(c1 <= c2 && c2 <= c3);
        assert_eq!(c3, 24);
    }
}
