//! Point lookups: the current version of a key, and the version governing an
//! arbitrary past time (§2.2, §2.5 — the search algorithm is "exactly the
//! same as in the WOBT": one root-to-leaf path per lookup).
//!
//! With explicit rectangles the descent is direct: at each index node follow
//! the unique entry whose rectangle contains `(key, ts)`. For current
//! lookups `ts` is "the end of time" (`Timestamp::MAX`), which always routes
//! to current children.

use tsb_common::{Key, Timestamp, TsbError, TsbResult, Version};
use tsb_storage::PageId;

use crate::node::{Node, NodeAddr};

use super::{DataRef, TsbTree};

impl TsbTree {
    /// Descends to the data node responsible for `(key, ts)`, returning a
    /// shared handle to it (no decode, no copy, when the path is cached).
    pub(crate) fn descend(&self, key: &Key, ts: Timestamp) -> TsbResult<DataRef> {
        let mut addr = self.current_root();
        loop {
            let node = self.read_node(addr)?;
            let next = match &*node {
                Node::Data(_) => None,
                Node::Index(index) => {
                    let entry = index.find_child(key, ts).ok_or_else(|| {
                        TsbError::corruption(format!(
                            "index node {} x {} has no child containing (key {key}, time {ts})",
                            index.key_range, index.time_range
                        ))
                    })?;
                    Some(entry.child)
                }
            };
            match next {
                Some(child) => addr = child,
                None => return Ok(DataRef(node)),
            }
        }
    }

    /// Descends to the *current* data node responsible for `key`, returning
    /// the page id alongside the node (used by transaction commit/abort,
    /// which must rewrite the leaf in place).
    pub(crate) fn descend_to_current_leaf(&self, key: &Key) -> TsbResult<(PageId, DataRef)> {
        let mut addr = self.current_root();
        loop {
            let node = self.read_node(addr)?;
            let next = match &*node {
                Node::Data(_) => None,
                Node::Index(index) => {
                    let entry = index.find_child(key, Timestamp::MAX).ok_or_else(|| {
                        TsbError::corruption(format!(
                            "index node {} x {} has no current child for key {key}",
                            index.key_range, index.time_range
                        ))
                    })?;
                    Some(entry.child)
                }
            };
            match next {
                Some(child) => addr = child,
                None => {
                    let page = addr.as_page().ok_or_else(|| {
                        TsbError::internal("current-leaf descent ended at a historical node")
                    })?;
                    return Ok((page, DataRef(node)));
                }
            }
        }
    }

    /// Returns the newest committed value of `key`, or `None` if the key has
    /// never been written or its newest version is a tombstone.
    pub fn get_current(&self, key: &Key) -> TsbResult<Option<Vec<u8>>> {
        let leaf = self.descend(key, Timestamp::MAX)?;
        Ok(leaf
            .find_latest_committed(key)
            .filter(|v| !v.is_tombstone())
            .and_then(|v| v.value.clone()))
    }

    /// Returns the value of `key` as of time `ts` — the value written by the
    /// last transaction that committed at or before `ts` (stepwise-constant
    /// semantics, Figure 1). `None` if the key did not exist at `ts` or was
    /// deleted by then.
    pub fn get_as_of(&self, key: &Key, ts: Timestamp) -> TsbResult<Option<Vec<u8>>> {
        Ok(self
            .get_version_as_of(key, ts)?
            .filter(|v| !v.is_tombstone())
            .and_then(|v| v.value))
    }

    /// Returns the full version record governing `(key, ts)`, tombstones
    /// included. `None` if the key did not exist at `ts`.
    pub fn get_version_as_of(&self, key: &Key, ts: Timestamp) -> TsbResult<Option<Version>> {
        let leaf = self.descend(key, ts)?;
        Ok(leaf.find_as_of(key, ts).cloned())
    }

    /// Whether the key currently exists (has a committed, non-tombstone
    /// newest version).
    pub fn contains_key(&self, key: &Key) -> TsbResult<bool> {
        Ok(self.get_current(key)?.is_some())
    }

    /// The uncommitted version of `key` written by an in-flight transaction,
    /// if any. Exposed for diagnostics and conflict inspection.
    pub fn pending_version(&self, key: &Key) -> TsbResult<Option<Version>> {
        let leaf = self.descend(key, Timestamp::MAX)?;
        Ok(leaf.find_uncommitted(key).cloned())
    }

    /// Routes like [`Self::get_as_of`] but counts the nodes visited, for the
    /// access-cost experiments.
    pub fn get_as_of_counting(
        &self,
        key: &Key,
        ts: Timestamp,
    ) -> TsbResult<(Option<Vec<u8>>, usize)> {
        let mut addr = self.current_root();
        let mut visited = 0usize;
        loop {
            visited += 1;
            match &*self.read_node(addr)? {
                Node::Data(data) => {
                    let value = data
                        .find_as_of(key, ts)
                        .filter(|v| !v.is_tombstone())
                        .and_then(|v| v.value.clone());
                    return Ok((value, visited));
                }
                Node::Index(index) => {
                    let entry = index.find_child(key, ts).ok_or_else(|| {
                        TsbError::corruption(format!(
                            "index node {} x {} has no child containing (key {key}, time {ts})",
                            index.key_range, index.time_range
                        ))
                    })?;
                    addr = entry.child;
                }
            }
        }
    }

    /// Returns the path of node addresses visited by a lookup of
    /// `(key, ts)`, root first. Diagnostic helper used by tests, the
    /// verifier, and the experiments.
    pub fn lookup_path(&self, key: &Key, ts: Timestamp) -> TsbResult<Vec<NodeAddr>> {
        let mut addr = self.current_root();
        let mut path = vec![addr];
        loop {
            match &*self.read_node(addr)? {
                Node::Data(_) => return Ok(path),
                Node::Index(index) => {
                    let entry = index.find_child(key, ts).ok_or_else(|| {
                        TsbError::corruption(format!(
                            "index node {} x {} has no child containing (key {key}, time {ts})",
                            index.key_range, index.time_range
                        ))
                    })?;
                    addr = entry.child;
                    path.push(addr);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsb_common::{SplitPolicyKind, TsbConfig};

    fn tree_with_history() -> (TsbTree, Vec<(u64, Timestamp, String)>) {
        let cfg = TsbConfig::small_pages().with_split_policy(SplitPolicyKind::default());
        let mut tree = crate::TsbOptions::in_memory()
            .config(cfg)
            .open_tree()
            .unwrap();
        let mut log = Vec::new();
        for i in 0..300u64 {
            let key = i % 30;
            let value = format!("k{key}-gen{}", i / 30);
            let ts = tree.insert(key, value.clone().into_bytes()).unwrap();
            log.push((key, ts, value));
        }
        (tree, log)
    }

    #[test]
    fn current_lookup_returns_the_newest_version() {
        let (tree, log) = tree_with_history();
        for key in 0..30u64 {
            let expected = log
                .iter()
                .filter(|(k, _, _)| *k == key)
                .map(|(_, _, v)| v.clone())
                .next_back()
                .unwrap();
            assert_eq!(
                tree.get_current(&Key::from_u64(key)).unwrap().unwrap(),
                expected.into_bytes()
            );
        }
        assert!(tree.get_current(&Key::from_u64(999)).unwrap().is_none());
        assert!(tree.contains_key(&Key::from_u64(3)).unwrap());
        assert!(!tree.contains_key(&Key::from_u64(999)).unwrap());
    }

    #[test]
    fn as_of_lookup_replays_every_point_in_history() {
        let (tree, log) = tree_with_history();
        // At each recorded timestamp, the governing version of that key is
        // the one written at exactly that timestamp.
        for (key, ts, value) in &log {
            assert_eq!(
                tree.get_as_of(&Key::from_u64(*key), *ts).unwrap().unwrap(),
                value.clone().into_bytes()
            );
        }
        // Before the first write of a key, it does not exist.
        let first_ts = log.iter().find(|(k, _, _)| *k == 29).unwrap().1;
        assert!(tree
            .get_as_of(&Key::from_u64(29), first_ts.prev())
            .unwrap()
            .is_none());
    }

    #[test]
    fn as_of_between_versions_returns_the_earlier_one() {
        let cfg = TsbConfig::small_pages();
        let mut tree = crate::TsbOptions::in_memory()
            .config(cfg)
            .open_tree()
            .unwrap();
        let t1 = tree.insert(1u64, b"v1".to_vec()).unwrap();
        // Unrelated activity advances the clock.
        for i in 100..120u64 {
            tree.insert(i, b"filler".to_vec()).unwrap();
        }
        let t2 = tree.insert(1u64, b"v2".to_vec()).unwrap();
        let mid = Timestamp((t1.value() + t2.value()) / 2);
        assert_eq!(
            tree.get_as_of(&Key::from_u64(1), mid).unwrap().unwrap(),
            b"v1".to_vec()
        );
        assert_eq!(
            tree.get_as_of(&Key::from_u64(1), t2).unwrap().unwrap(),
            b"v2".to_vec()
        );
    }

    #[test]
    fn lookup_path_and_counting_agree() {
        let (tree, log) = tree_with_history();
        let (key, ts, _) = &log[log.len() / 2];
        let path = tree.lookup_path(&Key::from_u64(*key), *ts).unwrap();
        let (_, visited) = tree.get_as_of_counting(&Key::from_u64(*key), *ts).unwrap();
        assert_eq!(path.len(), visited);
        assert!(
            visited >= 2,
            "the tree should have grown at least one level"
        );
        // The last element of the path is a data node.
        let last = *path.last().unwrap();
        assert!(matches!(&*tree.read_node(last).unwrap(), Node::Data(_)));
    }

    #[test]
    fn pending_version_reports_uncommitted_writes() {
        let cfg = TsbConfig::small_pages();
        let mut tree = crate::TsbOptions::in_memory()
            .config(cfg)
            .open_tree()
            .unwrap();
        tree.insert(1u64, b"committed".to_vec()).unwrap();
        assert!(tree.pending_version(&Key::from_u64(1)).unwrap().is_none());
        let txn = tree.begin_txn();
        tree.txn_insert(txn, 1u64, b"pending".to_vec()).unwrap();
        let pending = tree.pending_version(&Key::from_u64(1)).unwrap().unwrap();
        assert!(pending.state.is_uncommitted());
        tree.abort_txn(txn).unwrap();
        assert!(tree.pending_version(&Key::from_u64(1)).unwrap().is_none());
    }
}
