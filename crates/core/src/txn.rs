//! Transaction support (§4).
//!
//! The TSB-tree's transaction story follows the paper:
//!
//! * **Writer transactions** place *uncommitted* versions directly in the
//!   current nodes. Uncommitted versions carry no timestamp, only the writer
//!   transaction id, so they are never migrated to the historical store by a
//!   time split and can always be erased — which is exactly what abort does.
//!   Commit stamps every written version with the transaction's commit
//!   timestamp.
//! * **Write-write conflicts** are refused eagerly: if another in-flight
//!   transaction already holds an uncommitted version of a key, a new write
//!   to it fails with [`TsbError::WriteConflict`].
//! * **Read-only transactions** (§4.1) take a *start* timestamp when they
//!   begin and read as of that timestamp. They never block and never see
//!   uncommitted data: a committed version with a later timestamp is simply
//!   ignored by the as-of search, and uncommitted versions are invisible to
//!   it. This is what lets backups and unloads run without locks.

use std::collections::HashMap;

use tsb_common::{Key, KeyRange, Timestamp, TsbError, TsbResult, TxnId, Version};
use tsb_storage::PageOp;

use crate::node::Node;
use crate::tree::TsbTree;

/// Book-keeping for in-flight writer transactions.
#[derive(Debug)]
pub(crate) struct TxnTable {
    next_id: u64,
    active: HashMap<TxnId, Vec<Key>>,
}

impl TxnTable {
    pub(crate) fn new() -> Self {
        TxnTable {
            next_id: 1,
            active: HashMap::new(),
        }
    }

    pub(crate) fn starting_at(next_id: u64) -> Self {
        TxnTable {
            next_id: next_id.max(1),
            active: HashMap::new(),
        }
    }

    pub(crate) fn next_id_value(&self) -> u64 {
        self.next_id
    }

    fn begin(&mut self) -> TxnId {
        let id = TxnId(self.next_id);
        self.next_id += 1;
        self.active.insert(id, Vec::new());
        id
    }

    fn record_write(&mut self, txn: TxnId, key: Key) -> TsbResult<()> {
        let writes = self
            .active
            .get_mut(&txn)
            .ok_or(TsbError::TxnNotActive(txn))?;
        if !writes.contains(&key) {
            writes.push(key);
        }
        Ok(())
    }

    fn finish(&mut self, txn: TxnId) -> TsbResult<Vec<Key>> {
        self.active.remove(&txn).ok_or(TsbError::TxnNotActive(txn))
    }

    fn is_active(&self, txn: TxnId) -> bool {
        self.active.contains_key(&txn)
    }

    /// Number of in-flight transactions.
    pub(crate) fn active_count(&self) -> usize {
        self.active.len()
    }
}

/// A lock-free read-only view of the database as of a fixed timestamp
/// (§4.1). Obtained from [`TsbTree::begin_snapshot`]; borrows the tree
/// immutably, so it cannot observe later writes even by accident.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotReader<'a> {
    tree: &'a TsbTree,
    ts: Timestamp,
}

impl<'a> SnapshotReader<'a> {
    /// The snapshot's read timestamp.
    pub fn timestamp(&self) -> Timestamp {
        self.ts
    }

    /// Reads a key as of the snapshot time.
    pub fn get(&self, key: &Key) -> TsbResult<Option<Vec<u8>>> {
        self.tree.get_as_of(key, self.ts)
    }

    /// Scans a key range as of the snapshot time.
    pub fn scan(&self, range: &KeyRange) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        self.tree.scan_as_of(range, self.ts)
    }

    /// Dumps the entire database as of the snapshot time (the lock-free
    /// backup/unload use case the paper highlights).
    pub fn dump(&self) -> TsbResult<Vec<(Key, Vec<u8>)>> {
        self.tree.snapshot_at(self.ts)
    }
}

impl TsbTree {
    /// Begins a writer transaction.
    pub fn begin_txn(&mut self) -> TxnId {
        self.begin_txn_shared()
    }

    /// [`Self::begin_txn`] against `&self`, for callers that serialize
    /// writers externally ([`crate::ConcurrentTsb`]).
    pub(crate) fn begin_txn_shared(&self) -> TxnId {
        self.txns.lock().begin()
    }

    /// Number of in-flight writer transactions.
    pub fn active_txn_count(&self) -> usize {
        self.txns.lock().active_count()
    }

    /// Begins a lock-free read-only transaction pinned to the current time
    /// (§4.1). All of its reads observe the database as of this moment,
    /// regardless of concurrent committing writers.
    pub fn begin_snapshot(&self) -> SnapshotReader<'_> {
        SnapshotReader {
            tree: self,
            ts: self.clock.now().prev(),
        }
    }

    /// A read-only view pinned to an explicit past timestamp.
    pub fn snapshot_as_of(&self, ts: Timestamp) -> SnapshotReader<'_> {
        SnapshotReader { tree: self, ts }
    }

    /// Writes `key = value` within transaction `txn` (uncommitted until
    /// [`Self::commit_txn`]). Fails with [`TsbError::WriteConflict`] if
    /// another in-flight transaction already wrote this key.
    pub fn txn_insert(&mut self, txn: TxnId, key: impl Into<Key>, value: Vec<u8>) -> TsbResult<()> {
        let result = self.txn_insert_shared(txn, key, value);
        self.settle_durability(result)
    }

    /// [`Self::txn_insert`] against `&self` (externally serialized writers).
    pub(crate) fn txn_insert_shared(
        &self,
        txn: TxnId,
        key: impl Into<Key>,
        value: Vec<u8>,
    ) -> TsbResult<()> {
        let key = key.into();
        self.txn_write(txn, Version::uncommitted(key, txn, value))
    }

    /// Logically deletes `key` within transaction `txn`.
    pub fn txn_delete(&mut self, txn: TxnId, key: impl Into<Key>) -> TsbResult<()> {
        let result = self.txn_delete_shared(txn, key);
        self.settle_durability(result)
    }

    /// [`Self::txn_delete`] against `&self` (externally serialized writers).
    pub(crate) fn txn_delete_shared(&self, txn: TxnId, key: impl Into<Key>) -> TsbResult<()> {
        let key = key.into();
        self.txn_write(txn, Version::uncommitted_tombstone(key, txn))
    }

    fn txn_write(&self, txn: TxnId, version: Version) -> TsbResult<()> {
        if !self.txns.lock().is_active(txn) {
            return Err(TsbError::TxnNotActive(txn));
        }
        // Eager write-write conflict detection.
        if let Some(existing) = self.pending_version(&version.key)? {
            if existing.state.txn_id() != Some(txn) {
                return Err(TsbError::WriteConflict {
                    key: version.key.clone(),
                    holder: existing.state.txn_id().unwrap_or(TxnId(0)),
                });
            }
        }
        let key = version.key.clone();
        self.insert_version(version)?;
        self.txns.lock().record_write(txn, key)
    }

    /// Reads `key` from inside transaction `txn`: the transaction's own
    /// uncommitted write if it has one, otherwise the newest committed value.
    pub fn txn_get(&self, txn: TxnId, key: &Key) -> TsbResult<Option<Vec<u8>>> {
        if let Some(pending) = self.pending_version(key)? {
            if pending.state.txn_id() == Some(txn) {
                // The transaction's own write: a pending tombstone reads as
                // "gone", a pending value reads as that value.
                return Ok(pending.value);
            }
        }
        self.get_current(key)
    }

    /// Commits transaction `txn`: every version it wrote is stamped with a
    /// single commit timestamp (the transaction's commit time), which is
    /// returned.
    pub fn commit_txn(&mut self, txn: TxnId) -> TsbResult<Timestamp> {
        let result = self.commit_txn_shared(txn);
        self.settle_durability(result)
    }

    /// [`Self::commit_txn`] against `&self` (externally serialized writers).
    ///
    /// A commit stamps one leaf per written key. Even though the versions
    /// only become *visible* at the single commit timestamp, the unpinned
    /// current-state readers of [`crate::ConcurrentTsb`] could otherwise
    /// observe a prefix of the stamped leaves — a torn commit — so a
    /// multi-key commit holds the structure epoch odd for the span of the
    /// loop, making the whole stamping pass atomic to concurrent readers.
    pub(crate) fn commit_txn_shared(&self, txn: TxnId) -> TsbResult<Timestamp> {
        let ts = self.clock.tick();
        self.commit_txn_at_shared(txn, ts)?;
        Ok(ts)
    }

    /// [`Self::commit_txn_shared`] at a caller-supplied commit timestamp
    /// instead of ticking the clock — the participant half of a two-phase
    /// cross-shard commit, where the coordinator reserved one global `ts`
    /// for every shard's stamping pass.
    pub(crate) fn commit_txn_at_shared(&self, txn: TxnId, ts: Timestamp) -> TsbResult<()> {
        let writes = self.txns.lock().finish(txn)?;
        if writes.len() > 1 {
            self.note_structural_write();
        }
        let result = (|| {
            for key in writes {
                let (page, leaf) = self.descend_to_current_leaf(&key)?;
                let mut leaf = crate::node::DataNode::clone(&leaf);
                let pending = leaf.remove_uncommitted(&key, txn).ok_or_else(|| {
                    TsbError::internal(format!(
                        "transaction {txn} lost its uncommitted version of key {key}"
                    ))
                })?;
                let committed = Version {
                    key: pending.key,
                    state: tsb_common::TsState::Committed(ts),
                    value: pending.value,
                };
                // Stamping one key = erase the uncommitted slot, install
                // the committed one: two logical deltas, not a page image.
                let ops = if self.logs_deltas() {
                    vec![
                        PageOp::RemoveUncommitted {
                            key: key.clone(),
                            txn,
                        },
                        PageOp::InsertVersion(committed.clone()),
                    ]
                } else {
                    Vec::new()
                };
                leaf.insert(committed)?;
                self.write_current_delta(page, Node::Data(leaf), ops)?;
            }
            Ok(())
        })()
        // The commit fence covers every stamped leaf: recovery replays the
        // whole commit or none of it, so a crashed multi-key commit can
        // never resurface half-stamped.
        .and_then(|()| self.wal_commit(ts));
        self.settle_structure_after(result.is_err());
        result
    }

    /// Aborts transaction `txn`: every uncommitted version it wrote is erased
    /// from the current store. (This erasure is exactly what the write-once
    /// WOBT cannot do — §2.6, §5.)
    pub fn abort_txn(&mut self, txn: TxnId) -> TsbResult<()> {
        let result = self.abort_txn_shared(txn);
        self.settle_durability(result)
    }

    /// [`Self::abort_txn`] against `&self` (externally serialized writers).
    /// Multi-key erasure is made atomic to concurrent readers the same way
    /// as [`Self::commit_txn_shared`]. (Uncommitted versions are invisible
    /// to reads anyway; the epoch guard protects diagnostic surfaces like
    /// `pending_version` from observing a half-erased transaction.)
    pub(crate) fn abort_txn_shared(&self, txn: TxnId) -> TsbResult<()> {
        let writes = self.txns.lock().finish(txn)?;
        if writes.len() > 1 {
            self.note_structural_write();
        }
        let result = (|| {
            for key in writes {
                let (page, leaf) = self.descend_to_current_leaf(&key)?;
                let mut leaf = crate::node::DataNode::clone(&leaf);
                if leaf.remove_uncommitted(&key, txn).is_some() {
                    let ops = if self.logs_deltas() {
                        vec![PageOp::RemoveUncommitted {
                            key: key.clone(),
                            txn,
                        }]
                    } else {
                        Vec::new()
                    };
                    self.write_current_delta(page, Node::Data(leaf), ops)?;
                }
            }
            Ok(())
        })()
        .and_then(|()| self.wal_commit(self.clock.now().prev()));
        self.settle_structure_after(result.is_err());
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsb_common::{SplitPolicyKind, TsbConfig};

    fn tree() -> TsbTree {
        crate::TsbOptions::in_memory()
            .config(TsbConfig::small_pages())
            .open_tree()
            .unwrap()
    }

    #[test]
    fn commit_makes_writes_visible_with_one_timestamp() {
        let mut t = tree();
        let txn = t.begin_txn();
        t.txn_insert(txn, 1u64, b"a".to_vec()).unwrap();
        t.txn_insert(txn, 2u64, b"b".to_vec()).unwrap();
        // Invisible before commit.
        assert!(t.get_current(&Key::from_u64(1)).unwrap().is_none());
        assert!(t.get_current(&Key::from_u64(2)).unwrap().is_none());
        let ts = t.commit_txn(txn).unwrap();
        assert_eq!(t.get_current(&Key::from_u64(1)).unwrap().unwrap(), b"a");
        assert_eq!(t.get_current(&Key::from_u64(2)).unwrap().unwrap(), b"b");
        // Both versions carry the same commit timestamp.
        assert_eq!(
            t.get_version_as_of(&Key::from_u64(1), ts)
                .unwrap()
                .unwrap()
                .commit_time(),
            Some(ts)
        );
        assert_eq!(
            t.get_version_as_of(&Key::from_u64(2), ts)
                .unwrap()
                .unwrap()
                .commit_time(),
            Some(ts)
        );
        assert_eq!(t.active_txn_count(), 0);
    }

    #[test]
    fn abort_erases_uncommitted_data() {
        let mut t = tree();
        t.insert(1u64, b"old".to_vec()).unwrap();
        let txn = t.begin_txn();
        t.txn_insert(txn, 1u64, b"new".to_vec()).unwrap();
        t.txn_insert(txn, 99u64, b"fresh".to_vec()).unwrap();
        t.abort_txn(txn).unwrap();
        assert_eq!(t.get_current(&Key::from_u64(1)).unwrap().unwrap(), b"old");
        assert!(t.get_current(&Key::from_u64(99)).unwrap().is_none());
        assert!(t.pending_version(&Key::from_u64(1)).unwrap().is_none());
        // The aborted transaction cannot be used again.
        assert!(matches!(
            t.txn_insert(txn, 5u64, b"x".to_vec()),
            Err(TsbError::TxnNotActive(_))
        ));
        assert!(matches!(t.commit_txn(txn), Err(TsbError::TxnNotActive(_))));
    }

    #[test]
    fn write_write_conflicts_are_detected() {
        let mut t = tree();
        let a = t.begin_txn();
        let b = t.begin_txn();
        t.txn_insert(a, 7u64, b"from-a".to_vec()).unwrap();
        let err = t.txn_insert(b, 7u64, b"from-b".to_vec()).unwrap_err();
        assert!(matches!(err, TsbError::WriteConflict { holder, .. } if holder == a));
        // A transaction may overwrite its own pending write.
        t.txn_insert(a, 7u64, b"from-a-v2".to_vec()).unwrap();
        let ts = t.commit_txn(a).unwrap();
        assert_eq!(
            t.get_as_of(&Key::from_u64(7), ts).unwrap().unwrap(),
            b"from-a-v2".to_vec()
        );
        // After a's commit, b can write the key.
        t.txn_insert(b, 7u64, b"from-b".to_vec()).unwrap();
        t.commit_txn(b).unwrap();
        assert_eq!(
            t.get_current(&Key::from_u64(7)).unwrap().unwrap(),
            b"from-b".to_vec()
        );
    }

    #[test]
    fn txn_reads_see_own_writes_but_not_others() {
        let mut t = tree();
        t.insert(1u64, b"committed".to_vec()).unwrap();
        let a = t.begin_txn();
        let b = t.begin_txn();
        t.txn_insert(a, 1u64, b"a-pending".to_vec()).unwrap();
        assert_eq!(
            t.txn_get(a, &Key::from_u64(1)).unwrap().unwrap(),
            b"a-pending".to_vec()
        );
        assert_eq!(
            t.txn_get(b, &Key::from_u64(1)).unwrap().unwrap(),
            b"committed".to_vec()
        );
        t.abort_txn(a).unwrap();
        t.abort_txn(b).unwrap();
    }

    #[test]
    fn txn_delete_commits_a_tombstone() {
        let mut t = tree();
        t.insert(4u64, b"exists".to_vec()).unwrap();
        let txn = t.begin_txn();
        t.txn_delete(txn, 4u64).unwrap();
        assert_eq!(
            t.get_current(&Key::from_u64(4)).unwrap().unwrap(),
            b"exists".to_vec(),
            "delete not visible before commit"
        );
        let ts = t.commit_txn(txn).unwrap();
        assert!(t.get_current(&Key::from_u64(4)).unwrap().is_none());
        assert!(t.get_as_of(&Key::from_u64(4), ts.prev()).unwrap().is_some());
    }

    #[test]
    fn snapshot_readers_are_stable_under_concurrent_commits() {
        let mut t = tree();
        for i in 0..20u64 {
            t.insert(i, b"v1".to_vec()).unwrap();
        }
        let snap_ts;
        {
            let snap = t.begin_snapshot();
            snap_ts = snap.timestamp();
            assert_eq!(snap.dump().unwrap().len(), 20);
        }
        // Later writes do not affect a snapshot pinned to the earlier time.
        for i in 0..20u64 {
            t.insert(i, b"v2".to_vec()).unwrap();
        }
        t.insert(100u64, b"new key".to_vec()).unwrap();
        let snap = t.snapshot_as_of(snap_ts);
        let rows = snap.dump().unwrap();
        assert_eq!(rows.len(), 20);
        assert!(rows.iter().all(|(_, v)| v == b"v1"));
        assert_eq!(
            snap.get(&Key::from_u64(3)).unwrap().unwrap(),
            b"v1".to_vec()
        );
        assert!(snap.get(&Key::from_u64(100)).unwrap().is_none());
        let range = KeyRange::bounded(Key::from_u64(0), Key::from_u64(5));
        assert_eq!(snap.scan(&range).unwrap().len(), 5);
    }

    #[test]
    fn uncommitted_data_survives_splits_and_never_migrates() {
        let cfg = TsbConfig::small_pages().with_split_policy(SplitPolicyKind::TimePreferring);
        let mut t = crate::TsbOptions::in_memory()
            .config(cfg)
            .open_tree()
            .unwrap();
        let txn = t.begin_txn();
        t.txn_insert(txn, 500u64, b"pending-through-splits".to_vec())
            .unwrap();
        // Flood the tree so that many splits (including time splits) happen
        // around the pending write.
        for i in 0..300u64 {
            t.insert(i % 30, format!("v{i}").into_bytes()).unwrap();
        }
        // The pending version is still present, still uncommitted, and still
        // erasable.
        let pending = t.pending_version(&Key::from_u64(500)).unwrap().unwrap();
        assert!(pending.state.is_uncommitted());
        let ts = t.commit_txn(txn).unwrap();
        assert_eq!(
            t.get_as_of(&Key::from_u64(500), ts).unwrap().unwrap(),
            b"pending-through-splits".to_vec()
        );
        t.verify().unwrap();
    }
}
