//! Whole-tree structural verification.
//!
//! [`TsbTree::verify`] walks the entire structure (current and historical
//! parts) and checks the invariants that make the TSB-tree correct:
//!
//! * every node passes its local validation (entry ordering, rectangles,
//!   rule-3 shape, no uncommitted data in historical nodes, and — for index
//!   nodes — the historical/current region partition that backs the
//!   binary-search routing, see [`crate::node::IndexNode`]);
//! * every index entry's rectangle equals the rectangle stored in the child
//!   node it references, and the entry's device (current vs. historical)
//!   matches the child's address and open/closed time range;
//! * within an index node, child rectangles are pairwise disjoint and cover
//!   the node's rectangle (checked by the node-local validation);
//! * the *current* part is a tree: every current page is referenced by at
//!   most one parent (historical nodes may have several parents — the DAG
//!   the paper describes);
//! * all leaves sit at the same depth;
//! * no magnetic page is leaked: the allocated page set is exactly
//!   `{meta page} ∪ reachable current pages`.
//!
//! Integration and property tests call this after every mutation batch.

use std::collections::{HashMap, HashSet};

use tsb_common::{TsbError, TsbResult};
use tsb_storage::PageId;

use crate::node::{Node, NodeAddr};
use crate::tree::TsbTree;

impl TsbTree {
    /// Verifies the structural invariants of the whole tree. Returns the
    /// first violation found.
    pub fn verify(&self) -> TsbResult<()> {
        let mut current_page_refs: HashMap<PageId, usize> = HashMap::new();
        let mut visited: HashSet<NodeAddr> = HashSet::new();
        let mut leaf_depths: HashSet<usize> = HashSet::new();

        // The root must be a current node.
        let root = self.current_root();
        let root_page = root.as_page().ok_or_else(|| {
            TsbError::invariant("the root must live on the erasable current store")
        })?;
        current_page_refs.insert(root_page, 1);

        self.verify_node(
            root,
            1,
            &mut visited,
            &mut current_page_refs,
            &mut leaf_depths,
        )?;

        if leaf_depths.len() > 1 {
            return Err(TsbError::invariant(format!(
                "leaves found at different depths: {leaf_depths:?}"
            )));
        }
        for (page, refs) in &current_page_refs {
            if *refs > 1 {
                return Err(TsbError::invariant(format!(
                    "current page {page} is referenced by {refs} parents; the current part must be a tree"
                )));
            }
        }

        // No leaked or dangling magnetic pages.
        let mut expected: HashSet<PageId> = current_page_refs.keys().copied().collect();
        expected.insert(self.meta_page);
        let allocated: HashSet<PageId> = self.magnetic.allocated_page_ids().into_iter().collect();
        if expected != allocated {
            let leaked: Vec<_> = allocated.difference(&expected).collect();
            let dangling: Vec<_> = expected.difference(&allocated).collect();
            return Err(TsbError::invariant(format!(
                "magnetic page set mismatch: leaked {leaked:?}, dangling {dangling:?}"
            )));
        }
        Ok(())
    }

    fn verify_node(
        &self,
        addr: NodeAddr,
        depth: usize,
        visited: &mut HashSet<NodeAddr>,
        current_page_refs: &mut HashMap<PageId, usize>,
        leaf_depths: &mut HashSet<usize>,
    ) -> TsbResult<()> {
        if !visited.insert(addr) {
            // Already verified via another parent (historical nodes may have
            // several parents). Reference counting happens at the parent, so
            // nothing more to do here.
            return Ok(());
        }
        let node = self.read_node(addr)?;
        node.validate()?;
        match &*node {
            Node::Data(data) => {
                leaf_depths.insert(depth);
                if addr.is_current() != data.is_current() {
                    return Err(TsbError::invariant(format!(
                        "data node at {addr} has time range {} inconsistent with its device",
                        data.time_range
                    )));
                }
            }
            Node::Index(index) => {
                if addr.is_current() != index.is_current() {
                    return Err(TsbError::invariant(format!(
                        "index node at {addr} has time range {} inconsistent with its device",
                        index.time_range
                    )));
                }
                for entry in index.entries() {
                    // Entry/child consistency.
                    if entry.is_current() != entry.time_range.is_current() {
                        return Err(TsbError::invariant(format!(
                            "entry for {} mixes device and time range",
                            entry.child
                        )));
                    }
                    if addr.is_historical() && entry.child.is_current() {
                        return Err(TsbError::invariant(format!(
                            "historical index node {addr} references current child {}",
                            entry.child
                        )));
                    }
                    let child = self.read_node(entry.child)?;
                    let (child_kr, child_tr) = match &*child {
                        Node::Data(d) => (&d.key_range, &d.time_range),
                        Node::Index(i) => (&i.key_range, &i.time_range),
                    };
                    if *child_kr != entry.key_range || *child_tr != entry.time_range {
                        return Err(TsbError::invariant(format!(
                            "entry rectangle {} x {} does not match child {}'s own rectangle {} x {}",
                            entry.key_range, entry.time_range, entry.child, child_kr, child_tr
                        )));
                    }
                    if let Some(page) = entry.child.as_page() {
                        *current_page_refs.entry(page).or_insert(0) += 1;
                    }
                    self.verify_node(
                        entry.child,
                        depth + 1,
                        visited,
                        current_page_refs,
                        leaf_depths,
                    )?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use tsb_common::{SplitPolicyKind, SplitTimeChoice, TsbConfig};

    #[test]
    fn fresh_tree_verifies() {
        let tree = crate::TsbOptions::in_memory()
            .config(TsbConfig::small_pages())
            .open_tree()
            .unwrap();
        tree.verify().unwrap();
    }

    #[test]
    fn verification_passes_after_heavy_mixed_workloads() {
        for policy in [
            SplitPolicyKind::WobtLike,
            SplitPolicyKind::KeyPreferring,
            SplitPolicyKind::TimePreferring,
            SplitPolicyKind::KeyOnly,
            SplitPolicyKind::CostBased,
        ] {
            for choice in [
                SplitTimeChoice::CurrentTime,
                SplitTimeChoice::LastUpdate,
                SplitTimeChoice::MedianVersion,
            ] {
                let cfg = TsbConfig::small_pages()
                    .with_split_policy(policy)
                    .with_split_time_choice(choice);
                let mut tree = crate::TsbOptions::in_memory()
                    .config(cfg)
                    .open_tree()
                    .unwrap();
                for i in 0..250u64 {
                    tree.insert(i % 20, format!("{policy:?}-{i}").into_bytes())
                        .unwrap();
                    if i % 17 == 0 {
                        tree.delete((i + 3) % 20).unwrap();
                    }
                }
                tree.verify()
                    .unwrap_or_else(|e| panic!("{policy:?}/{choice:?}: {e}"));
            }
        }
    }

    #[test]
    fn verification_passes_with_transactions_in_flight() {
        let mut tree = crate::TsbOptions::in_memory()
            .config(TsbConfig::small_pages())
            .open_tree()
            .unwrap();
        let txn = tree.begin_txn();
        tree.txn_insert(txn, 1000u64, b"pending".to_vec()).unwrap();
        for i in 0..120u64 {
            tree.insert(i % 12, format!("v{i}").into_bytes()).unwrap();
        }
        tree.verify().unwrap();
        tree.commit_txn(txn).unwrap();
        tree.verify().unwrap();
    }
}
