//! Promotion at the engine level: a replica that has applied through the
//! primary's durable LSN can be closed and reopened as a primary
//! (ordinary recovery) without losing a single applied record — across
//! plain streaming, an in-place primary checkpoint, and a forced rebase.

use std::collections::BTreeMap;

use tsb_common::{FsyncPolicy, Key, KeyRange, TsbConfig};
use tsb_core::{ReplicaEngine, ReplicationSource, TsbOptions};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("tsb-promotion-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn cfg() -> TsbConfig {
    TsbConfig::small_pages().with_fsync_policy(FsyncPolicy::Always)
}

/// One shipping step: poll once (small batches, like the live runner's
/// frame-capped subscribes) and apply; rebase when the primary's log
/// reset discarded the cursor.
fn ship_once(source: &ReplicationSource, replica: &ReplicaEngine) {
    if replica.needs_base() {
        replica.install_base(&source.base().unwrap()).unwrap();
    }
    let batch = source
        .poll(replica.resume_lsn().unwrap(), replica.worm_have(), 512)
        .unwrap();
    if batch.needs_rebase {
        replica.install_base(&source.base().unwrap()).unwrap();
        return;
    }
    replica.apply_batch(&batch).unwrap();
}

/// Ships until the replica has applied through the *primary's* durable
/// LSN — the honest catch-up criterion. The replica's own lag counters
/// are relative to the watermark it last polled, so they can read zero
/// while the primary holds newer durable records that never shipped;
/// promoting inside that window loses them.
fn ship_until_caught_up(source: &ReplicationSource, replica: &ReplicaEngine) {
    while replica.status().applied_lsn < source.durable_lsn() {
        ship_once(source, replica);
    }
}

#[test]
fn promotion_preserves_the_applied_prefix() {
    let pdir = TempDir::new("primary");
    let rdir = TempDir::new("replica");
    let primary = TsbOptions::durable(&pdir.0)
        .config(cfg())
        .open_concurrent()
        .unwrap();
    let source = ReplicationSource::new(&primary).unwrap();
    let replica = ReplicaEngine::open(&rdir.0, cfg()).unwrap();
    // Bootstrap from an empty primary (the server flow: the replica comes
    // up before the first write), then stream everything.
    replica.install_base(&source.base().unwrap()).unwrap();

    let mut expect = BTreeMap::new();
    for i in 0..40u64 {
        let value = format!("v-{i}").into_bytes();
        primary.insert(Key::from_u64(i), value.clone()).unwrap();
        expect.insert(Key::from_u64(i), value);
        // Interleave shipping with the writes, in live-runner-sized
        // batches, and cross a primary checkpoint mid-stream: both the
        // in-place checkpoint apply and the rebase path must end in a
        // promotable local state.
        if i == 20 {
            ship_until_caught_up(&source, &replica);
            primary.checkpoint().unwrap();
        }
        ship_once(&source, &replica);
    }
    ship_until_caught_up(&source, &replica);
    let status = replica.status();
    assert!(status.serving && status.lag_records == 0, "{status:?}");

    // Promote: close the replica, reopen the directory as a primary with
    // ordinary recovery. Every applied record must survive the cut.
    replica.close();
    let promoted = TsbOptions::durable(&rdir.0)
        .config(cfg())
        .open_concurrent()
        .unwrap();
    for (key, value) in &expect {
        assert_eq!(
            promoted.get_current(key).unwrap().as_ref(),
            Some(value),
            "promotion lost applied key {key:?}"
        );
    }
    assert_eq!(
        promoted.scan_current(&KeyRange::full()).unwrap().len(),
        expect.len()
    );

    // The promoted node is a writable primary on the same lineage.
    primary.insert(Key::from_u64(999), b"old".to_vec()).unwrap();
    promoted
        .insert(Key::from_u64(1000), b"new".to_vec())
        .unwrap();
    assert_eq!(
        promoted.get_current(&Key::from_u64(1000)).unwrap(),
        Some(b"new".to_vec())
    );
}
