//! Property: a replica always equals the primary's durable prefix.
//!
//! Arbitrary interleavings of primary writes (puts, deletes, multi-key
//! transactions, checkpoints), shipping steps (including tiny partial
//! batches), and kills on both ends — the replica killed mid-apply by a
//! fault injector at an arbitrary durable-write count and reopened from
//! its own disk; the primary dropped without a checkpoint and recovered —
//! must leave a final synced replica that answers every current and as-of
//! read exactly as the primary does, under both WAL modes. A caught-up
//! replica's next poll must also be a fixed point (an empty batch).

use std::sync::Arc;

use proptest::prelude::*;

use tsb_common::{FsyncPolicy, Key, KeyRange, Timestamp, WalMode};
use tsb_core::{FaultInjector, ReplicaEngine, ReplicationSource, TsbOptions};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "tsb-prop-repl-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[derive(Clone, Debug)]
enum Step {
    /// Insert `key % KEYSPACE` with a value derived from the op index.
    Put { key: u64 },
    /// Tombstone a key.
    Delete { key: u64 },
    /// A multi-key transaction committing `writes` keys atomically.
    Txn { writes: Vec<u64> },
    /// Checkpoint the primary (resets its log generation).
    Checkpoint,
    /// Ship at most one batch of `max_bytes` to the replica.
    Ship { max_bytes: usize },
    /// Arm the replica's fault injector to die after `budget` durable
    /// writes, ship until it trips, then reopen the replica from disk.
    KillReplicaAfter { budget: u64 },
    /// Drop the primary without a checkpoint and recover it from disk.
    KillPrimary,
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        8 => (0u64..24).prop_map(|key| Step::Put { key }),
        2 => (0u64..24).prop_map(|key| Step::Delete { key }),
        2 => prop::collection::vec(0u64..24, 1..5).prop_map(|writes| Step::Txn { writes }),
        1 => Just(Step::Checkpoint),
        4 => (64usize..4096).prop_map(|max_bytes| Step::Ship { max_bytes }),
        2 => (1u64..40).prop_map(|budget| Step::KillReplicaAfter { budget }),
        1 => Just(Step::KillPrimary),
    ]
}

fn opts(dir: &std::path::Path, mode: WalMode) -> TsbOptions {
    TsbOptions::durable(dir)
        .small_pages()
        .fsync(FsyncPolicy::Always)
        .wal_mode(mode)
}

/// Ships one poll's worth; rebases first if the primary reset past the
/// replica's cursor. Returns whether the replica is now caught up.
fn ship_once(
    source: &ReplicationSource,
    replica: &ReplicaEngine,
    max_bytes: usize,
) -> tsb_common::TsbResult<bool> {
    if replica.needs_base() {
        replica.install_base(&source.base()?)?;
    }
    let batch = source.poll(
        replica.resume_lsn().expect("serving replica has a cursor"),
        replica.worm_have(),
        max_bytes,
    )?;
    if batch.needs_rebase {
        replica.install_base(&source.base()?)?;
        return Ok(false);
    }
    let caught_up = batch.records.is_empty();
    replica.apply_batch(&batch)?;
    Ok(caught_up)
}

fn ship_all(source: &ReplicationSource, replica: &ReplicaEngine) {
    while !ship_once(source, replica, 1 << 20).expect("ship") {}
}

fn run_case(mode: WalMode, steps: &[Step]) -> Result<(), TestCaseError> {
    let pdir = TempDir::new("p");
    let rdir = TempDir::new("r");
    let mut primary = opts(&pdir.0, mode).open_concurrent().unwrap();
    let mut source = Some(ReplicationSource::new(&primary).unwrap());
    let mut replica = opts(&rdir.0, mode).open_replica().unwrap();

    // Every acknowledged (commit-stamped) write, for the as-of oracle.
    let mut stamps: Vec<(u64, Timestamp)> = Vec::new();

    for (i, s) in steps.iter().enumerate() {
        match s {
            Step::Put { key } => {
                let value = format!("v{i}-{key}").into_bytes();
                let ts = primary.insert(Key::from_u64(*key), value).unwrap();
                stamps.push((*key, ts));
            }
            Step::Delete { key } => {
                let ts = primary.delete(Key::from_u64(*key)).unwrap();
                stamps.push((*key, ts));
            }
            Step::Txn { writes } => {
                let txn = primary.begin_txn();
                for key in writes {
                    primary
                        .txn_insert(txn, Key::from_u64(*key), format!("t{i}-{key}").into_bytes())
                        .unwrap();
                }
                let ts = primary.commit_txn(txn).unwrap();
                for key in writes {
                    stamps.push((*key, ts));
                }
            }
            Step::Checkpoint => primary.checkpoint().unwrap(),
            Step::Ship { max_bytes } => {
                let src = source.as_ref().unwrap();
                ship_once(src, &replica, *max_bytes).expect("ship");
            }
            Step::KillReplicaAfter { budget } => {
                let injector = Arc::new(FaultInjector::new());
                replica.set_fault_injector(&injector);
                injector.fail_after_writes(*budget);
                // Ship until the injector trips (an error) or the stream
                // drains without reaching the budget.
                let src = source.as_ref().unwrap();
                loop {
                    match ship_once(src, &replica, 512) {
                        Ok(true) => break,
                        Ok(false) => continue,
                        Err(_) => break, // crash landed mid-apply
                    }
                }
                // Crash-equivalent restart: reopen from whatever the disk
                // holds, with a disarmed process.
                drop(replica);
                replica = opts(&rdir.0, mode).open_replica().unwrap();
            }
            Step::KillPrimary => {
                // No checkpoint, no graceful anything: drop every handle
                // and recover from the directory.
                drop(source.take());
                drop(primary);
                primary = opts(&pdir.0, mode).open_concurrent().unwrap();
                source = Some(ReplicationSource::new(&primary).unwrap());
            }
        }
    }

    // Final convergence, then the oracle comparison.
    let src = source.as_ref().unwrap();
    ship_all(src, &replica);

    let range = KeyRange::full();
    let p = primary.scan_current(&range).unwrap();
    let r = replica.scan_current(&range).unwrap();
    prop_assert_eq!(p, r, "replica current state diverged ({:?})", mode);

    for (key, ts) in &stamps {
        let key = Key::from_u64(*key);
        prop_assert_eq!(
            replica.get_as_of(&key, *ts).unwrap(),
            primary.get_as_of(&key, *ts).unwrap(),
            "as-of read diverged at {:?} ({:?})",
            ts,
            mode
        );
    }

    // Re-subscribing at the caught-up cursor is a fixed point.
    let fixed = src
        .poll(replica.resume_lsn().unwrap(), replica.worm_have(), 1 << 20)
        .unwrap();
    prop_assert!(!fixed.needs_rebase, "caught-up cursor asked to rebase");
    prop_assert!(
        fixed.records.is_empty(),
        "caught-up cursor was shipped {} records",
        fixed.records.len()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn replica_equals_primary_durable_prefix(
        steps in prop::collection::vec(step(), 1..36),
    ) {
        run_case(WalMode::Hybrid, &steps)?;
        run_case(WalMode::ImagesOnly, &steps)?;
    }
}
