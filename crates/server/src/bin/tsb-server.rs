//! The `tsb-server` binary: open (or create) a durable engine in a data
//! directory and serve it over TCP until a client sends the `Shutdown`
//! verb.
//!
//! ```text
//! tsb-server <data-dir> [--addr HOST:PORT] [--fsync always|os|every:N] \
//!            [--shards N] [--small-pages] [--replica-of HOST:PORT] \
//!            [--max-conns N] [--idle-timeout SECS]
//! ```
//!
//! `--shards N` partitions the keyspace across N independent engine
//! shards under one global commit clock (default 1). The shard count is
//! persisted in the data directory and must match on reopen; the wire
//! protocol is identical at every shard count.
//!
//! `--replica-of HOST:PORT` starts a **read replica**: the data directory
//! holds a shipped copy of the primary's log, a background thread keeps it
//! converged (bootstrapping a base image if needed, reconnecting with
//! backoff on failures), and the listener serves read verbs only — write
//! verbs get the `read-only` error. Incompatible with `--shards`. A
//! replica can be **promoted** in place with the `Promote` verb
//! (`tsb-client`'s `promote()`): it stops replicating, recovers its local
//! copy as a primary at a bumped, fsynced promotion epoch, and starts
//! accepting writes — see `docs/operations.md` for the failover runbook.
//!
//! `--max-conns N` sheds connections beyond N with a recoverable
//! `Overloaded` (code 23) error frame instead of queueing them;
//! `--idle-timeout SECS` closes connections that go silent for that long.
//!
//! On success the first stdout line is
//! `tsb-server listening on <addr>` (flushed), so harnesses can scrape the
//! resolved ephemeral port. The process exits 0 after a clean shutdown
//! (workers drained, engine checkpointed), 1 on an engine error, 2 on a
//! usage error.

use std::io::Write;
use std::time::Duration;

use tsb_common::FsyncPolicy;
use tsb_core::TsbOptions;
use tsb_server::{ServerOptions, TsbServer};

struct Args {
    data_dir: std::path::PathBuf,
    addr: String,
    fsync: FsyncPolicy,
    shards: usize,
    small_pages: bool,
    replica_of: Option<String>,
    max_conns: Option<usize>,
    idle_timeout: Option<Duration>,
}

fn usage() -> ! {
    eprintln!(
        "usage: tsb-server <data-dir> [--addr HOST:PORT] [--fsync always|os|every:N] \
         [--shards N] [--small-pages] [--replica-of HOST:PORT] [--max-conns N] \
         [--idle-timeout SECS]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let mut data_dir = None;
    let mut addr = "127.0.0.1:0".to_string();
    let mut fsync = FsyncPolicy::Always;
    let mut shards = 1usize;
    let mut small_pages = false;
    let mut replica_of = None;
    let mut max_conns = None;
    let mut idle_timeout = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => usage(),
            },
            "--fsync" => {
                let value = match args.next() {
                    Some(v) => v,
                    None => usage(),
                };
                fsync = match value.as_str() {
                    "always" => FsyncPolicy::Always,
                    "os" => FsyncPolicy::Os,
                    other => match other.strip_prefix("every:").and_then(|n| n.parse().ok()) {
                        Some(n) => FsyncPolicy::EveryN(n),
                        None => usage(),
                    },
                };
            }
            "--shards" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) if n >= 1 => shards = n,
                _ => usage(),
            },
            "--small-pages" => small_pages = true,
            "--replica-of" => match args.next() {
                Some(a) => replica_of = Some(a),
                None => usage(),
            },
            "--max-conns" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) if n >= 1 => max_conns = Some(n),
                _ => usage(),
            },
            "--idle-timeout" => match args.next().and_then(|n| n.parse().ok()) {
                Some(secs) if secs >= 1 => idle_timeout = Some(Duration::from_secs(secs)),
                _ => usage(),
            },
            "--help" | "-h" => usage(),
            other if data_dir.is_none() && !other.starts_with('-') => {
                data_dir = Some(std::path::PathBuf::from(other));
            }
            _ => usage(),
        }
    }
    match data_dir {
        Some(data_dir) => Args {
            data_dir,
            addr,
            fsync,
            shards,
            small_pages,
            replica_of,
            max_conns,
            idle_timeout,
        },
        None => usage(),
    }
}

fn run(args: Args) -> tsb_common::TsbResult<()> {
    std::fs::create_dir_all(&args.data_dir)?;
    let mut opts = TsbOptions::durable(&args.data_dir).fsync(args.fsync);
    if args.small_pages {
        opts = opts.small_pages();
    }
    let server_opts = ServerOptions {
        max_conns: args.max_conns,
        idle_timeout: args.idle_timeout,
        ..ServerOptions::default()
    };

    if let Some(source) = args.replica_of {
        if args.shards != 1 {
            eprintln!("tsb-server: --replica-of is incompatible with --shards");
            std::process::exit(2);
        }
        let replica = opts.open_replica()?;
        // The server owns the replication runner: the `Promote` verb stops
        // it and swaps in a primary engine recovered from the same
        // directory. `wait()`/drop stop it on the way out.
        let server = TsbServer::start_replica(replica, source, args.addr.as_str(), server_opts)?;
        println!("tsb-server listening on {}", server.local_addr());
        std::io::stdout().flush()?;
        server.wait()?;
        // The parent may have closed our stdout by now; the farewell
        // line is best-effort.
        let _ = writeln!(std::io::stdout(), "tsb-server shut down cleanly");
        return Ok(());
    }

    let server_opts = ServerOptions {
        epoch: tsb_core::epoch::read_epoch(&args.data_dir)?,
        ..server_opts
    };
    let db = opts.shards(args.shards).open()?;
    let server = TsbServer::start_with(db, args.addr.as_str(), server_opts)?;
    println!("tsb-server listening on {}", server.local_addr());
    std::io::stdout().flush()?;
    server.wait()?;
    let _ = writeln!(std::io::stdout(), "tsb-server shut down cleanly");
    Ok(())
}

fn main() {
    let args = parse_args();
    if let Err(e) = run(args) {
        eprintln!("tsb-server: {e}");
        std::process::exit(1);
    }
}
