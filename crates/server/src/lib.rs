//! `tsb-server`: the TSB-tree engine served over TCP.
//!
//! The ROADMAP's north star is a server under heavy concurrent traffic;
//! this crate is the network surface. It is deliberately boring plumbing —
//! all engine smarts stay in [`ConcurrentTsb`] — built from `std::net`
//! only (no async runtime, per the workspace's no-new-dependencies rule):
//!
//! * **One acceptor thread** blocks on [`TcpListener::accept`] and spawns
//!   a **worker thread per connection**. The engine is single-writer /
//!   many-reader, so worker threads are exactly the closed-loop clients
//!   the pipelined group commit (PR 6) was built for.
//! * **Each worker drains its socket in batches.** A `read()` returns
//!   however many pipelined frames the client has in flight; the worker
//!   executes all of them, issues the writes through the engine's
//!   *deferred-durability* API ([`ShardedTsb::insert_deferred`] &c.),
//!   then parks **once per shard** on the highest LSN the batch produced
//!   on that shard before flushing the batch's replies in a single
//!   `write_all`. Each shard's durable watermark is monotonic, so when a
//!   shard's max LSN is durable every commit the batch placed there is —
//!   a handful of fsync waits (often sharing fsyncs with other
//!   connections' batches) acknowledges the whole burst.
//! * **Acknowledgement means durable.** A `put`/`delete`/`txn_commit`
//!   reply is written only after the commit's LSN is under the durable
//!   watermark per the engine's [`FsyncPolicy`](tsb_common::FsyncPolicy).
//!   If the watermark wait fails (sticky sync failure), the batch's write
//!   acks are *replaced by error replies* — the server never acknowledges
//!   a write it cannot prove durable. The kill -9 probe in this crate's
//!   tests holds the server to that: after SIGKILL mid-load, every
//!   acknowledged write must survive reopen.
//!
//! The served engine is any [`EngineHandle`]: a [`ShardedTsb`] primary
//! (the keyspace may be partitioned across N shards, `tsb-server
//! --shards N`, each with its own WAL and group-commit pipeline under one
//! global commit clock) or a read-only [`tsb_core::ReplicaEngine`] fed by
//! WAL shipping (`tsb-server --replica-of ADDR`, see [`replica`]).
//! Sharding and replication are entirely server-side — requests are
//! routed (and range/history results merged) here, and the wire protocol
//! is identical for every engine flavour; a replica simply answers write
//! verbs with the `read-only` error code.
//!
//! Replication itself is served over the same protocol: `subscribe` pulls
//! record batches off the primary's redo log (stop-and-wait per
//! connection; the next pull's cursor is the cumulative ACK), and
//! `fetch_base` + chunked `fetch_base_pages`/`fetch_base_worm` bootstrap
//! a new replica. See `docs/replication.md`.
//!
//! Wire format and verb set live in [`protocol`]; the spec is
//! `docs/protocol.md`.

#![warn(missing_docs)]

pub mod protocol;
pub mod replica;

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use tsb_common::{TsbError, TsbResult, TxnId};
use tsb_core::epoch::INITIAL_EPOCH;
use tsb_core::{
    EngineHandle, EngineRole, Lsn, ReplicaBase, ReplicaEngine, ReplicationSource, ShardedTsb,
};

use protocol::{FrameDecoder, FrameError, Reply, Request, MAX_FRAME_BODY};

/// Soft cap on record bytes per `subscribe` reply, comfortably inside
/// [`MAX_FRAME_BODY`] with room for the batch's WORM bytes.
const SUBSCRIBE_MAX_BYTES: usize = 1 << 20;

/// Soft cap on page/WORM bytes per base-transfer chunk.
const BASE_CHUNK_MAX_BYTES: usize = 4 << 20;

/// How often a worker blocked in `read()` wakes to check the stop flag and
/// its idle budget. Workers never block unboundedly: a stop request drains
/// within one poll interval without slamming sockets shut.
const CONN_POLL: Duration = Duration::from_millis(250);

/// Tunable connection-handling behaviour, separate from the engine's own
/// configuration. The defaults preserve the pre-options behaviour:
/// unbounded connections, no idle reaping.
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// Accept at most this many live connections; further accepts are
    /// *shed* — answered with one `Overloaded` (code 23) error frame on
    /// the reserved id 0, then closed — instead of silently queueing
    /// behind a saturated worker pool. `None` = unbounded.
    pub max_conns: Option<usize>,
    /// Close a connection that has not delivered a byte for this long.
    /// Protects the worker pool (and `--max-conns` slots) from silent
    /// dead peers. `None` = never reap.
    pub idle_timeout: Option<Duration>,
    /// The promotion epoch this server serves at (echoed in `Role`, checked
    /// against `Subscribe`). Pass `tsb_core::epoch::read_epoch(dir)` for a
    /// durable primary; the default is [`INITIAL_EPOCH`].
    pub epoch: u64,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            max_conns: None,
            idle_timeout: None,
            epoch: INITIAL_EPOCH,
        }
    }
}

/// A running TSB server: an acceptor thread plus one worker thread per
/// live connection, all sharing one [`EngineHandle`].
///
/// Dropping the handle shuts the server down. Shutdown is a *graceful
/// drain*: workers finish the batch they are executing, flush its acks,
/// and close with a FIN — no half-written frame is ever cut off. Prefer
/// [`TsbServer::shutdown`] or serving until a client sends the `Shutdown`
/// verb and then calling [`TsbServer::wait`].
pub struct TsbServer {
    shared: Arc<ServerShared>,
    acceptor: Option<JoinHandle<()>>,
}

/// What a replica server needs on hand to honour a `Promote` verb.
struct PromoteCtx {
    replica: ReplicaEngine,
}

/// Promotion state, under one mutex so concurrent `Promote`s serialize.
#[derive(Default)]
struct PromotionState {
    /// The replication runner, owned by the server so promotion (and
    /// shutdown) can stop it.
    runner: Option<replica::ReplicaRunner>,
    ctx: Option<PromoteCtx>,
}

struct ServerShared {
    /// The served engine. A slot, not a plain field: `Promote` swaps a
    /// replica for a freshly-recovered primary in place. Workers clone the
    /// handle out once per batch.
    engine: RwLock<Arc<dyn EngineHandle>>,
    listener: TcpListener,
    addr: SocketAddr,
    stop: AtomicBool,
    /// Clones of every live connection's stream (they share the worker's
    /// fd), so shutdown can shorten their receive timeouts for a prompt
    /// drain. Also the live-connection count for `max_conns`.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    opts: ServerOptions,
    /// The promotion epoch currently served (see [`ServerOptions::epoch`]).
    /// Bumped by `Promote`; refreshed by the replication runner when a
    /// bootstrap adopts the primary's epoch.
    epoch: Arc<AtomicU64>,
    promotion: Mutex<PromotionState>,
}

impl ServerShared {
    fn engine(&self) -> Arc<dyn EngineHandle> {
        Arc::clone(&self.engine.read())
    }

    /// Flags the stop, wakes the acceptor with a throwaway connection, and
    /// nudges every worker's blocking `read()` onto a short timeout so it
    /// notices the flag, finishes its current batch, flushes, and exits.
    fn request_stop(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
        for stream in self.conns.lock().values() {
            let _ = stream.set_read_timeout(Some(CONN_POLL));
        }
    }
}

impl TsbServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `db`. The engine should be opened durable for acks to mean
    /// anything, but any engine works. A plain [`tsb_core::ConcurrentTsb`]
    /// converts into a one-shard engine via `Into`.
    pub fn start(db: impl Into<ShardedTsb>, addr: impl ToSocketAddrs) -> TsbResult<TsbServer> {
        Self::start_engine(Arc::new(db.into()), addr)
    }

    /// [`TsbServer::start`] with explicit [`ServerOptions`].
    pub fn start_with(
        db: impl Into<ShardedTsb>,
        addr: impl ToSocketAddrs,
        opts: ServerOptions,
    ) -> TsbResult<TsbServer> {
        Self::start_engine_with(Arc::new(db.into()), addr, opts)
    }

    /// [`TsbServer::start`] for any engine behind the [`EngineHandle`]
    /// trait — in particular a [`tsb_core::ReplicaEngine`] (see
    /// [`replica::ReplicaRunner`] for the feed side).
    pub fn start_engine(
        db: Arc<dyn EngineHandle>,
        addr: impl ToSocketAddrs,
    ) -> TsbResult<TsbServer> {
        Self::start_engine_with(db, addr, ServerOptions::default())
    }

    /// [`TsbServer::start_engine`] with explicit [`ServerOptions`].
    pub fn start_engine_with(
        db: Arc<dyn EngineHandle>,
        addr: impl ToSocketAddrs,
        opts: ServerOptions,
    ) -> TsbResult<TsbServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let epoch = Arc::new(AtomicU64::new(opts.epoch));
        let shared = Arc::new(ServerShared {
            engine: RwLock::new(db),
            listener,
            addr,
            stop: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            opts,
            epoch,
            promotion: Mutex::new(PromotionState::default()),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tsb-acceptor".into())
                .spawn(move || acceptor_loop(&shared))
                .map_err(TsbError::Io)?
        };
        Ok(TsbServer {
            shared,
            acceptor: Some(acceptor),
        })
    }

    /// Starts a *promotable* replica server: serves `replica` read-only,
    /// owns the [`replica::ReplicaRunner`] streaming from `source`, and
    /// honours the `Promote` verb (stop the feed, recover the directory as
    /// a primary at a bumped, fsynced epoch, start accepting writes). The
    /// server's epoch tracks the replica's persisted epoch (adopted from
    /// the primary at bootstrap).
    pub fn start_replica(
        replica: ReplicaEngine,
        source: impl Into<String>,
        addr: impl ToSocketAddrs,
        opts: ServerOptions,
    ) -> TsbResult<TsbServer> {
        let opts = ServerOptions {
            epoch: tsb_core::epoch::read_epoch(replica.dir())?,
            ..opts
        };
        let server = Self::start_engine_with(
            Arc::new(replica.clone()) as Arc<dyn EngineHandle>,
            addr,
            opts,
        )?;
        let runner = replica::ReplicaRunner::start_with_epoch(
            replica.clone(),
            source,
            Arc::clone(&server.shared.epoch),
        );
        let mut promo = server.shared.promotion.lock();
        promo.runner = Some(runner);
        promo.ctx = Some(PromoteCtx { replica });
        drop(promo);
        Ok(server)
    }

    /// The address the server is listening on (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The shared engine, e.g. for reading I/O stats around a bench run.
    /// A snapshot: after a promotion the slot holds a different engine.
    pub fn db(&self) -> Arc<dyn EngineHandle> {
        self.shared.engine()
    }

    /// The promotion epoch this server currently serves at.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::SeqCst)
    }

    /// Whether a stop has been requested (locally or via the `Shutdown`
    /// verb).
    pub fn stop_requested(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Blocks until the server stops — i.e. until some client sends the
    /// `Shutdown` verb (or [`TsbServer::shutdown`] is called from another
    /// thread via a clone of the handle... which does not exist; use the
    /// verb). Checkpoints the engine once all workers have drained.
    pub fn wait(mut self) -> TsbResult<()> {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        stop_runner(&self.shared);
        checkpoint_if_primary(&self.shared.engine())
    }

    /// Stops accepting, drains live connections, joins all threads, and
    /// checkpoints the engine.
    pub fn shutdown(mut self) -> TsbResult<()> {
        self.shared.request_stop();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        stop_runner(&self.shared);
        checkpoint_if_primary(&self.shared.engine())
    }
}

fn stop_runner(shared: &Arc<ServerShared>) {
    let runner = shared.promotion.lock().runner.take();
    if let Some(mut runner) = runner {
        runner.stop();
    }
}

impl Drop for TsbServer {
    fn drop(&mut self) {
        self.shared.request_stop();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        stop_runner(&self.shared);
    }
}

fn acceptor_loop(shared: &Arc<ServerShared>) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        match shared.listener.accept() {
            Ok((stream, _peer)) => {
                if shared.stop.load(Ordering::SeqCst) {
                    // The wakeup connection (or a late client): refuse.
                    let _ = stream.shutdown(Shutdown::Both);
                    break;
                }
                if let Some(cap) = shared.opts.max_conns {
                    if shared.conns.lock().len() >= cap {
                        // Shed, don't queue: one explicit Overloaded frame
                        // on the reserved id 0, then close. The peer learns
                        // immediately (and recoverably) instead of hanging
                        // behind a saturated worker pool.
                        shed_connection(stream, cap);
                        continue;
                    }
                }
                let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                if let Ok(clone) = stream.try_clone() {
                    shared.conns.lock().insert(conn_id, clone);
                }
                let worker_shared = Arc::clone(shared);
                let worker = std::thread::Builder::new()
                    .name(format!("tsb-conn-{conn_id}"))
                    .spawn(move || {
                        // Protocol errors and peer disconnects are normal
                        // connection endings, not server failures.
                        let _ = serve_conn(&worker_shared, stream);
                        worker_shared.conns.lock().remove(&conn_id);
                    });
                match worker {
                    Ok(handle) => workers.push(handle),
                    Err(_) => {
                        shared.conns.lock().remove(&conn_id);
                    }
                }
            }
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept failure (e.g. EMFILE burst): keep going.
            }
        }
    }
    for worker in workers {
        let _ = worker.join();
    }
}

/// Refuses one connection with an `Overloaded` error frame and a FIN.
fn shed_connection(mut stream: TcpStream, cap: usize) {
    let reply = Reply::Error {
        code: protocol::CODE_OVERLOADED,
        message: format!("server at its connection limit ({cap}); retry another endpoint"),
    };
    let _ = stream.write_all(&protocol::encode_reply(0, &reply));
    let _ = stream.shutdown(Shutdown::Both);
}

/// What a processed request is waiting on before its reply may be sent.
enum Outcome {
    /// Sendable as soon as the batch flushes (reads, errors, txn plumbing).
    Ready(Reply),
    /// A write ack that must not be sent unless the batch's per-shard max
    /// LSNs (tracked by the caller) all become durable.
    AckAtDurable(Reply),
}

/// The batch's durability obligations: the highest deferred LSN per shard.
/// One wait per touched shard acknowledges every commit the batch placed
/// there (each shard's watermark is monotonic).
struct BatchWaits {
    max_lsns: Vec<Option<Lsn>>,
}

impl BatchWaits {
    fn new(shards: usize) -> Self {
        BatchWaits {
            max_lsns: vec![None; shards],
        }
    }

    fn note(&mut self, (shard, lsn): tsb_core::ShardLsn) {
        let slot = &mut self.max_lsns[shard];
        *slot = Some(slot.map_or(lsn, |m| m.max(lsn)));
    }

    /// Parks on every touched shard's watermark; the first failure wins
    /// (sticky sync failures poison the shard, so precision is moot).
    fn settle(&self, db: &dyn EngineHandle) -> Option<(u8, String)> {
        for (shard, lsn) in self.max_lsns.iter().enumerate() {
            if let Some(lsn) = lsn {
                if let Err(e) = db.wait_durable((shard, *lsn)) {
                    return Some((e.wire_code(), e.to_string()));
                }
            }
        }
        None
    }
}

/// Checkpoints on shutdown paths — unless the engine is a replica, which
/// never writes fences of its own (its local log mirrors the primary's).
fn checkpoint_if_primary(db: &Arc<dyn EngineHandle>) -> TsbResult<()> {
    if db.role() == EngineRole::Replica {
        return Ok(());
    }
    db.checkpoint()
}

/// Per-connection server-side state beyond the socket itself.
#[derive(Default)]
struct ConnState {
    /// Transactions begun on this connection; aborted if it drops dead.
    open_txns: Vec<TxnId>,
    /// Lazily-created log tailer for `subscribe` (per-connection so each
    /// subscriber's cursor cache is its own).
    source: Option<ReplicationSource>,
    /// The base image captured by this connection's last `fetch_base`,
    /// held for chunked transfer. Dropped with the connection.
    base: Option<Arc<ReplicaBase>>,
}

fn serve_conn(shared: &Arc<ServerShared>, mut stream: TcpStream) -> TsbResult<()> {
    // Replies are batched into one write_all per drain; Nagle would only
    // add latency on top of that.
    let _ = stream.set_nodelay(true);
    // Never block unboundedly: wake every CONN_POLL to notice a stop
    // request (graceful drain) and to meter the idle budget.
    let _ = stream.set_read_timeout(Some(CONN_POLL));
    let idle_budget = shared.opts.idle_timeout;
    let mut last_activity = Instant::now();
    let mut decoder = FrameDecoder::new();
    let mut read_buf = vec![0u8; 64 * 1024];
    let mut conn = ConnState::default();
    let result = loop {
        if shared.stop.load(Ordering::SeqCst) {
            break Ok(());
        }
        let n = match stream.read(&mut read_buf) {
            Ok(0) => break Ok(()),
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                match idle_budget {
                    // A silent peer past its budget: close (FIN). Nothing
                    // is in flight — the previous batch was fully flushed.
                    Some(budget) if last_activity.elapsed() >= budget => break Ok(()),
                    _ => continue,
                }
            }
            Err(e) => break Err(TsbError::Io(e)),
        };
        last_activity = Instant::now();
        decoder.feed(&read_buf[..n]);

        // Drain every complete frame the client has pipelined.
        let mut batch: Vec<(u64, Request)> = Vec::new();
        let mut fatal: Option<FrameError> = None;
        loop {
            match decoder.next_frame() {
                Ok(Some(body)) => match protocol::parse_request(&body) {
                    Ok((id, req)) => batch.push((id, req)),
                    Err(e) if e.recoverable() => {
                        // Well-framed but unknown verb: answer just that
                        // frame and keep the connection. The id is the
                        // first 8 bytes (frames are ≥ MIN_FRAME_BODY).
                        let id = u64::from_le_bytes(body[..8].try_into().unwrap());
                        let reply = Reply::Error {
                            code: e.wire_code(),
                            message: e.to_string(),
                        };
                        stream.write_all(&protocol::encode_reply(id, &reply))?;
                    }
                    Err(e) => {
                        fatal = Some(e);
                        break;
                    }
                },
                Ok(None) => break,
                Err(e) => {
                    fatal = Some(e);
                    break;
                }
            }
        }

        let stop_after = process_batch(shared, &batch, &mut conn, &mut stream)?;

        if let Some(e) = fatal {
            // The stream is no longer frame-aligned: report on the
            // reserved id 0 and close.
            let reply = Reply::Error {
                code: e.wire_code(),
                message: e.to_string(),
            };
            let _ = stream.write_all(&protocol::encode_reply(0, &reply));
            break Ok(());
        }
        if stop_after {
            shared.request_stop();
            break Ok(());
        }
    };
    // A dead connection must not leave zombie transactions holding
    // write-conflict claims against every future client.
    let db = shared.engine();
    for txn in conn.open_txns {
        let _ = db.abort_txn(txn);
    }
    result
}

/// Executes one drained batch and flushes its replies. Returns whether a
/// `Shutdown` verb asked the server to stop after this flush.
fn process_batch(
    shared: &Arc<ServerShared>,
    batch: &[(u64, Request)],
    conn: &mut ConnState,
    stream: &mut TcpStream,
) -> TsbResult<bool> {
    if batch.is_empty() {
        return Ok(false);
    }
    // One engine snapshot per batch: a concurrent promotion swaps the
    // slot, and mixing engines inside a batch would confuse the waits.
    let db = shared.engine();
    let ConnState {
        open_txns,
        source,
        base,
    } = conn;
    let mut outcomes: Vec<(u64, Outcome)> = Vec::with_capacity(batch.len());
    let mut waits = BatchWaits::new(db.shard_count());
    let mut stop_after = false;

    for (id, req) in batch {
        let outcome = match req {
            Request::Put { key, value } => match db.insert_deferred(key.clone(), value.clone()) {
                Ok((ts, lsn)) => ack_at(Reply::Committed { ts }, lsn, &mut waits),
                Err(e) => Outcome::Ready(error_reply(&e)),
            },
            Request::Delete { key } => match db.delete_deferred(key.clone()) {
                Ok((ts, lsn)) => ack_at(Reply::Committed { ts }, lsn, &mut waits),
                Err(e) => Outcome::Ready(error_reply(&e)),
            },
            Request::Get { key } => Outcome::Ready(match db.get_current(key) {
                Ok(value) => Reply::Value { value },
                Err(e) => error_reply(&e),
            }),
            Request::GetAsOf { key, as_of } => Outcome::Ready(match db.get_as_of(key, *as_of) {
                Ok(value) => Reply::Value { value },
                Err(e) => error_reply(&e),
            }),
            Request::Range { range, as_of } => {
                let result = match as_of {
                    Some(ts) => db.scan_as_of(range, *ts),
                    None => db.scan_current(range),
                };
                Outcome::Ready(match result {
                    Ok(rows) => Reply::Rows { rows },
                    Err(e) => error_reply(&e),
                })
            }
            Request::History { key, window } => {
                Outcome::Ready(match db.history_between(key, *window) {
                    Ok(versions) => Reply::Versions { versions },
                    Err(e) => error_reply(&e),
                })
            }
            Request::TxnBegin => Outcome::Ready(match db.begin_txn() {
                Ok(txn) => {
                    open_txns.push(txn);
                    Reply::Txn { txn }
                }
                Err(e) => error_reply(&e),
            }),
            Request::TxnWrite { txn, key, value } => {
                // Buffered txn writes carry no commit record, so the
                // blocking call never parks on the watermark.
                let result = match value {
                    Some(v) => db.txn_insert(*txn, key.clone(), v.clone()),
                    None => db.txn_delete(*txn, key.clone()),
                };
                Outcome::Ready(match result {
                    Ok(()) => Reply::Unit,
                    Err(e) => error_reply(&e),
                })
            }
            Request::TxnCommit { txn } => match db.commit_txn_deferred(*txn) {
                Ok((ts, lsn)) => {
                    open_txns.retain(|t| t != txn);
                    ack_at(Reply::Committed { ts }, lsn, &mut waits)
                }
                Err(e) => Outcome::Ready(error_reply(&e)),
            },
            Request::TxnAbort { txn } => {
                let result = db.abort_txn(*txn);
                open_txns.retain(|t| t != txn);
                Outcome::Ready(match result {
                    Ok(()) => Reply::Unit,
                    Err(e) => error_reply(&e),
                })
            }
            Request::Ping => Outcome::Ready(Reply::Pong {
                last_installed: db.last_installed(),
            }),
            Request::Shutdown => {
                stop_after = true;
                Outcome::Ready(Reply::Unit)
            }
            Request::Role => Outcome::Ready(Reply::RoleInfo {
                primary: db.role() == EngineRole::Primary,
                shards: db.shard_count() as u32,
                epoch: shared.epoch.load(Ordering::SeqCst),
                durable_lsn: db.durable_lsn(),
            }),
            Request::Subscribe {
                from_lsn,
                worm_have,
                max_bytes,
                epoch,
            } => Outcome::Ready({
                let ours = shared.epoch.load(Ordering::SeqCst);
                if *epoch != 0 && *epoch != ours {
                    // A subscriber on a different epoch has (or is) a
                    // diverged history: a demoted primary presenting the
                    // old epoch, or a fresher node talking to a stale us.
                    // Either way, shipping a delta would graft divergent
                    // logs — refuse; the subscriber must re-bootstrap.
                    error_reply(&TsbError::StaleEpoch {
                        theirs: *epoch,
                        ours,
                    })
                } else {
                    match subscribe(&db, source, *from_lsn, *worm_have, *max_bytes) {
                        Ok(reply) => reply,
                        Err(e) => error_reply(&e),
                    }
                }
            }),
            Request::FetchBase => Outcome::Ready(match fetch_base(&db, source) {
                Ok(image) => {
                    let info = Reply::BaseInfo {
                        checkpoint_lsn: image.checkpoint_lsn,
                        checkpoint: image.checkpoint.clone(),
                        page_count: image.pages.len() as u64,
                        worm_len: image.worm.len() as u64,
                        page_size: image.page_size as u64,
                        worm_sector_size: image.worm_sector_size as u64,
                        epoch: shared.epoch.load(Ordering::SeqCst),
                    };
                    *base = Some(image);
                    info
                }
                Err(e) => error_reply(&e),
            }),
            Request::FetchBasePages { start, max_bytes } => Outcome::Ready(match base.as_deref() {
                Some(image) => base_pages(image, *start, *max_bytes),
                None => error_reply(&TsbError::config(
                    "no base image captured on this connection: send fetch_base first",
                )),
            }),
            Request::FetchBaseWorm { offset, max_bytes } => Outcome::Ready(match base.as_deref() {
                Some(image) => base_worm(image, *offset, *max_bytes),
                None => error_reply(&TsbError::config(
                    "no base image captured on this connection: send fetch_base first",
                )),
            }),
            Request::ReplicaStatus => Outcome::Ready(match db.replica_status() {
                Some(s) => Reply::ReplicaStatusInfo {
                    serving: s.serving,
                    applied_lsn: s.applied_lsn,
                    received_lsn: s.received_lsn,
                    source_durable_lsn: s.source_durable_lsn,
                    lag_records: s.lag_records,
                    ship_lag_records: s.ship_lag_records,
                    lag_ms: s.lag_ms,
                },
                None => error_reply(&TsbError::config(
                    "this server is a primary: replica_status applies to replicas",
                )),
            }),
            Request::Promote => Outcome::Ready(match promote(shared) {
                Ok(epoch) => Reply::Promoted { epoch },
                Err(e) => error_reply(&e),
            }),
        };
        outcomes.push((*id, outcome));
    }

    // One durability wait per touched shard covers the whole burst: each
    // shard's watermark is monotonic, so per-shard max-LSN durable ⇒ every
    // commit the batch placed on that shard durable.
    let durable_failed: Option<(u8, String)> = waits.settle(db.as_ref());

    let mut out = Vec::with_capacity(outcomes.len() * 32);
    for (id, outcome) in outcomes {
        let reply = match outcome {
            Outcome::Ready(reply) => reply,
            Outcome::AckAtDurable(reply) => match &durable_failed {
                // The commit may be sitting in a buffer that will never
                // reach the device: acknowledging it would be lying.
                Some((code, message)) => Reply::Error {
                    code: *code,
                    message: format!("commit not durable: {message}"),
                },
                None => reply,
            },
        };
        let frame = protocol::encode_reply(id, &reply);
        if frame.len() - 4 > MAX_FRAME_BODY {
            // A scan result too large for one frame: report instead of
            // shipping an unframeable reply.
            out.extend_from_slice(&protocol::encode_reply(
                id,
                &Reply::Error {
                    code: protocol::CODE_OVERSIZED,
                    message: format!(
                        "reply of {} bytes exceeds the {MAX_FRAME_BODY}-byte frame limit; \
                         narrow the range",
                        frame.len() - 4
                    ),
                },
            ));
        } else {
            out.extend_from_slice(&frame);
        }
    }
    stream.write_all(&out)?;
    Ok(stop_after)
}

fn ack_at(reply: Reply, lsn: Option<tsb_core::ShardLsn>, waits: &mut BatchWaits) -> Outcome {
    match lsn {
        Some(lsn) => {
            waits.note(lsn);
            Outcome::AckAtDurable(reply)
        }
        // No durability obligation (in-memory engine, a fully-forced
        // cross-shard commit, or the policy's group is still open): the
        // engine contract says ack now.
        None => Outcome::Ready(reply),
    }
}

fn error_reply(e: &TsbError) -> Reply {
    Reply::Error {
        code: e.wire_code(),
        message: e.to_string(),
    }
}

/// Promotes this server to primary. Idempotent when already primary.
///
/// The sequence is crash-safe at every step:
/// 1. **Stop the feed.** Joining the runner guarantees no apply is in
///    flight; everything shipped up to the last pulled batch is in the
///    replica's local log, installed through its newest fence.
/// 2. **Recover as primary.** The replica releases the directory and the
///    ordinary primary recovery reopens it, cutting at the newest durable
///    commit fence — the un-fenced shipped tail (records past the last
///    fence, never acknowledged to any client) is discarded exactly as a
///    crashed primary's own un-fenced tail would be.
/// 3. **Fence, then serve.** The bumped epoch is fsynced *before* the new
///    engine is swapped into the serving slot, so no write can be accepted
///    at an epoch a crash could roll back. From here, a `Subscribe` from
///    the demoted primary (still at the old epoch) is rejected.
fn promote(shared: &Arc<ServerShared>) -> TsbResult<u64> {
    let mut promo = shared.promotion.lock();
    if shared.engine().role() == EngineRole::Primary {
        return Ok(shared.epoch.load(Ordering::SeqCst));
    }
    let ctx = promo.ctx.as_ref().ok_or_else(|| {
        TsbError::config(
            "this replica server was not started promotable (no local directory context)",
        )
    })?;
    let replica = ctx.replica.clone();
    if let Some(mut runner) = promo.runner.take() {
        runner.stop();
    }
    replica.close();
    let dir = replica.dir();
    let new_epoch = tsb_core::epoch::read_epoch(dir)?.saturating_add(1);
    let db = tsb_core::TsbOptions::durable(dir)
        .config(replica.config().clone())
        .open_concurrent()?;
    tsb_core::epoch::persist_epoch(dir, new_epoch)?;
    *shared.engine.write() = Arc::new(db);
    shared.epoch.store(new_epoch, Ordering::SeqCst);
    promo.ctx = None;
    Ok(new_epoch)
}

/// Lazily creates this connection's [`ReplicationSource`] (errors on
/// engines that cannot serve one: in-memory, multi-shard, replicas).
fn conn_source<'a>(
    db: &Arc<dyn EngineHandle>,
    source: &'a mut Option<ReplicationSource>,
) -> TsbResult<&'a ReplicationSource> {
    if source.is_none() {
        *source = Some(db.replication_source()?);
    }
    Ok(source.as_ref().expect("just filled"))
}

/// Serves one `subscribe` pull: tail the log after `from_lsn`, capped so
/// the reply fits a frame.
fn subscribe(
    db: &Arc<dyn EngineHandle>,
    source: &mut Option<ReplicationSource>,
    from_lsn: u64,
    worm_have: u64,
    max_bytes: u64,
) -> TsbResult<Reply> {
    let source = conn_source(db, source)?;
    let cap = (max_bytes as usize).clamp(1, SUBSCRIBE_MAX_BYTES);
    let batch = source.poll(from_lsn, worm_have, cap)?;
    Ok(Reply::Batch {
        needs_rebase: batch.needs_rebase,
        durable_lsn: batch.durable_lsn,
        worm_start: batch.worm_start,
        worm: batch.worm,
        records: batch.records,
    })
}

/// Serves `fetch_base`: captures a fresh consistent image (briefly
/// write-blocking on the primary).
fn fetch_base(
    db: &Arc<dyn EngineHandle>,
    source: &mut Option<ReplicationSource>,
) -> TsbResult<Arc<ReplicaBase>> {
    let source = conn_source(db, source)?;
    Ok(Arc::new(source.base()?))
}

/// Serves one `fetch_base_pages` chunk.
fn base_pages(image: &ReplicaBase, start: u64, max_bytes: u64) -> Reply {
    let cap = (max_bytes as usize).clamp(1, BASE_CHUNK_MAX_BYTES);
    let start = (start as usize).min(image.pages.len());
    let mut pages = Vec::new();
    let mut total = 0usize;
    for (page, bytes) in &image.pages[start..] {
        if total >= cap && !pages.is_empty() {
            break;
        }
        total += bytes.len();
        pages.push((page.value(), bytes.clone()));
    }
    let done = start + pages.len() >= image.pages.len();
    Reply::BasePages { pages, done }
}

/// Serves one `fetch_base_worm` chunk.
fn base_worm(image: &ReplicaBase, offset: u64, max_bytes: u64) -> Reply {
    let cap = (max_bytes as usize).clamp(1, BASE_CHUNK_MAX_BYTES);
    let offset = (offset as usize).min(image.worm.len());
    let end = (offset + cap).min(image.worm.len());
    Reply::BaseWorm {
        bytes: image.worm[offset..end].to_vec(),
        done: end >= image.worm.len(),
    }
}
